//! # nearest-concept — facade crate
//!
//! Umbrella crate re-exporting the whole *Nearest Concept Queries* stack,
//! a Rust reproduction of Schmidt, Kersten & Windhouwer, *"Querying XML
//! Documents Made Easy: Nearest Concept Queries"*, ICDE 2001.
//!
//! Most applications only need [`Database`]:
//!
//! ```
//! use nearest_concept::Database;
//!
//! let db = Database::from_xml_str(
//!     "<bib><article><author>Ben Bit</author><year>1999</year></article></bib>",
//! ).unwrap();
//! let answers = db.meet_terms(&["Bit", "1999"]).unwrap();
//! assert_eq!(answers.results[0].tag, "article");
//! ```
//!
//! The individual layers are re-exported as modules:
//!
//! * [`xml`] — XML parser and syntax tree (conceptual model)
//! * [`store`] — Monet transform (physical model, path-partitioned relations)
//! * [`fulltext`] — inverted index producing meet inputs
//! * [`core`] — the meet operator family, the depth-aware meet planner
//!   and the [`Database`] facade
//! * [`query`] — the paper's SQL-with-paths dialect incl. the `meet` aggregate
//! * [`shard`] — preorder-interval sharded execution (partition map,
//!   replicated spine, scatter/gather meets)
//! * [`server`] — batched concurrent query service over any
//!   [`ncq_core::MeetBackend`] (`Database` or [`ShardedDb`])
//! * [`simd`] — lane-parallel set kernels with runtime CPU dispatch and
//!   bit-identical scalar fallbacks (`NCQ_SIMD` overrides the mode)
//! * [`datagen`] — synthetic DBLP / multimedia corpora used by the benchmarks

pub use ncq_core as core;
pub use ncq_datagen as datagen;
pub use ncq_fulltext as fulltext;
pub use ncq_query as query;
pub use ncq_server as server;
pub use ncq_shard as shard;
pub use ncq_simd as simd;
pub use ncq_store as store;
pub use ncq_xml as xml;

pub use ncq_core::{
    Answer, AnswerSet, Catalog, CatalogError, Database, ForestBackend, MeetBackend, MeetOptions,
    MeetStrategy, RefGraph,
};
pub use ncq_fulltext::Thesaurus;
pub use ncq_query::{run_query, run_query_opts, QueryOptions, QueryOutput};
pub use ncq_server::{Client, Server, ServerConfig};
pub use ncq_shard::{open_forest, ShardedDb};
pub use ncq_store::{
    Manifest, ManifestEntry, ManifestError, SnapshotError, SnapshotReader, SnapshotWriter,
    MANIFEST_VERSION, SNAPSHOT_VERSION,
};
