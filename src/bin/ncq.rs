//! `ncq` — command-line nearest concept queries over any XML file.
//!
//! ```text
//! ncq FILE.xml --terms Bit,1999                # meet of full-text terms
//! ncq FILE.xml --query "select meet(a,b) from ..."   # the SQL dialect
//! ncq FILE.xml --stats                         # storage statistics
//! ncq FILE.xml                                 # interactive query loop
//! ```

use nearest_concept::core::{MeetOptions, PathFilter};
use nearest_concept::{run_query, Database, QueryOutput};
use std::io::{BufRead, Write};

struct Args {
    file: String,
    terms: Option<Vec<String>>,
    query: Option<String>,
    stats: bool,
    exclude_root: bool,
    within: Option<usize>,
}

fn usage() -> ! {
    eprintln!(
        "usage: ncq FILE.xml [--terms a,b,...] [--query SQL] [--stats] \
         [--exclude-root] [--within N]\n\
         With no mode flag, ncq reads queries from stdin (one per line; \
         lines starting with ? are term lists)."
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        file: String::new(),
        terms: None,
        query: None,
        stats: false,
        exclude_root: false,
        within: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--terms" => {
                let v = it.next().unwrap_or_else(|| usage());
                args.terms = Some(v.split(',').map(str::to_owned).collect());
            }
            "--query" => args.query = Some(it.next().unwrap_or_else(|| usage())),
            "--stats" => args.stats = true,
            "--exclude-root" => args.exclude_root = true,
            "--within" => {
                args.within = it.next().and_then(|n| n.parse().ok()).or_else(|| usage());
            }
            "--help" | "-h" => usage(),
            _ if args.file.is_empty() && !a.starts_with('-') => args.file = a,
            _ => usage(),
        }
    }
    if args.file.is_empty() {
        usage();
    }
    args
}

fn options(args: &Args, db: &Database) -> MeetOptions {
    MeetOptions {
        filter: if args.exclude_root {
            PathFilter::exclude_root(db.store())
        } else {
            PathFilter::All
        },
        max_distance: args.within,
        ..MeetOptions::default()
    }
}

fn run_terms(db: &Database, terms: &[String], opts: &MeetOptions) {
    let refs: Vec<&str> = terms.iter().map(String::as_str).collect();
    match db.meet_terms_with(&refs, opts) {
        Ok(answers) => {
            println!("{}", answers.to_answer_xml());
            for a in &answers.results {
                println!("  {} at {} (distance {})", a.oid, a.path, a.distance);
            }
        }
        Err(e) => eprintln!("error: {e}"),
    }
}

fn run_sql(db: &Database, query: &str) {
    match run_query(db, query) {
        Ok(QueryOutput::Answers(a)) => println!("{}", a.to_answer_xml()),
        Ok(QueryOutput::Rows(r)) => println!("{}", r.to_answer_xml()),
        Err(e) => eprintln!("error: {e}"),
    }
}

fn main() {
    let args = parse_args();
    let xml = match std::fs::read_to_string(&args.file) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("cannot read {}: {e}", args.file);
            std::process::exit(1);
        }
    };
    let db = match Database::from_xml_str(&xml) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("parse error in {}: {e}", args.file);
            std::process::exit(1);
        }
    };
    eprintln!(
        "loaded {}: {} objects, {} paths",
        args.file,
        db.store().node_count(),
        db.store().summary().len()
    );

    if args.stats {
        println!("{}", db.store().stats());
        return;
    }
    let opts = options(&args, &db);
    if let Some(terms) = &args.terms {
        run_terms(&db, terms, &opts);
        return;
    }
    if let Some(q) = &args.query {
        run_sql(&db, q);
        return;
    }

    // Interactive loop: `? term1 term2` for meets, anything else is SQL.
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        print!("ncq> ");
        let _ = out.flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let line = line.trim();
        if line.is_empty() || line == "quit" || line == "exit" {
            break;
        }
        if let Some(terms) = line.strip_prefix('?') {
            let terms: Vec<String> = terms.split_whitespace().map(str::to_owned).collect();
            run_terms(&db, &terms, &opts);
        } else {
            run_sql(&db, line);
        }
    }
}
