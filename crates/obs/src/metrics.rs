//! The metrics half of `ncq-obs`: monotonic counters, gauges, and
//! log-bucketed latency histograms behind a name-keyed registry.
//!
//! The design splits registration from recording. The [`Registry`]
//! holds a mutex-guarded name → metric map, but it is touched only at
//! *registration* — call sites look a metric up once (typically into a
//! `OnceLock<Arc<Counter>>` static) and then record through the shared
//! handle, which is a single relaxed atomic op. Nothing on the hot
//! path takes a lock.
//!
//! Histograms bucket by bit length (powers of two), so a recorded
//! nanosecond duration lands in bucket `⌈log2(v+1)⌉` — 65 buckets
//! cover the whole `u64` range with a branch-free index. Quantile
//! extraction walks the cumulative counts to the rank and reports the
//! containing bucket, which makes p50/p90/p99 *exact at bucket
//! resolution*: the true order statistic is guaranteed to lie inside
//! the returned bucket's `[lower, upper]` bounds (the unit suite pins
//! this against a sorted reference).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Relaxed);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// A gauge: a value that can move both ways.
#[derive(Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Overwrite the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Relaxed);
    }

    /// Adjust by a (possibly negative) delta.
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Relaxed)
    }
}

/// Number of histogram buckets: bucket 0 holds the value `0`, bucket
/// `i ≥ 1` holds values whose bit length is `i`, i.e. `[2^(i-1),
/// 2^i - 1]`. 64 value buckets plus the zero bucket cover all of
/// `u64`.
pub const BUCKETS: usize = 65;

/// A log-bucketed histogram of `u64` samples (latencies in
/// nanoseconds, batch sizes, …). Recording is three relaxed atomic
/// adds; no locks, no allocation.
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

/// The bucket index a value lands in: its bit length.
fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// The inclusive `[lower, upper]` value range of bucket `i`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    if i == 0 {
        (0, 0)
    } else if i >= 64 {
        (1u64 << 63, u64::MAX)
    } else {
        (1u64 << (i - 1), (1u64 << i) - 1)
    }
}

impl Histogram {
    /// Record one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Relaxed);
        self.sum.fetch_add(v, Relaxed);
        self.count.fetch_add(1, Relaxed);
    }

    /// Zero every bucket plus the sum/count accumulators — the
    /// histogram half of a stats-window reset. Relaxed stores: a
    /// sample racing the reset lands wholly before or wholly after it
    /// at bucket granularity, same contract as recording itself.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Relaxed);
        }
        self.sum.store(0, Relaxed);
        self.count.store(0, Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Relaxed)
    }

    /// Mean sample, `0.0` when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Per-bucket counts (a relaxed snapshot).
    pub fn bucket_counts(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Relaxed))
    }

    /// The `[lower, upper]` bounds of the bucket containing the
    /// `q`-quantile sample (rank `⌈q·count⌉`), or `None` when empty.
    /// The true order statistic lies inside the returned range.
    pub fn quantile_bounds(&self, q: f64) -> Option<(u64, u64)> {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Some(bucket_bounds(i));
            }
        }
        Some(bucket_bounds(BUCKETS - 1))
    }

    /// Upper bound of the bucket holding the `q`-quantile, `0` when
    /// empty. This is the conservative single-number read: the true
    /// quantile is `≤` it and within 2× of it (bucket width).
    pub fn quantile(&self, q: f64) -> u64 {
        self.quantile_bounds(q).map_or(0, |(_, hi)| hi)
    }

    /// Median upper bound.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile upper bound.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile upper bound.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

/// A registered metric, by kind.
#[derive(Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// Name-keyed metric registry. Registration takes the mutex;
/// recording never does (call sites keep the returned `Arc` handles).
#[derive(Default)]
pub struct Registry {
    map: Mutex<BTreeMap<&'static str, Metric>>,
}

impl Registry {
    /// Get or create the counter `name`. Panics if `name` is already
    /// registered as a different kind (a programming error).
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        let mut map = self.map.lock().expect("metrics registry lock");
        match map
            .entry(name)
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric {name:?} is not a counter"),
        }
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        let mut map = self.map.lock().expect("metrics registry lock");
        match map
            .entry(name)
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric {name:?} is not a gauge"),
        }
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        let mut map = self.map.lock().expect("metrics registry lock");
        match map
            .entry(name)
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::default())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric {name:?} is not a histogram"),
        }
    }

    /// Reset every registered histogram (counters and gauges are left
    /// alone: counters are monotonic by contract, and the server's
    /// window reset handles its own counter set). Backs `STATS RESET`.
    pub fn reset_histograms(&self) {
        let map = self.map.lock().expect("metrics registry lock");
        for metric in map.values() {
            if let Metric::Histogram(h) = metric {
                h.reset();
            }
        }
    }

    /// Prometheus-style text exposition of every registered metric,
    /// one `Vec` entry per line. Histograms render cumulative
    /// `_bucket{le="…"}` lines (empty leading buckets elided), the
    /// `+Inf` bucket, `_sum`/`_count`, and a quantile summary comment.
    pub fn render(&self) -> Vec<String> {
        let map = self.map.lock().expect("metrics registry lock");
        let mut out = Vec::new();
        for (name, metric) in map.iter() {
            match metric {
                Metric::Counter(c) => {
                    out.push(format!("# TYPE {name} counter"));
                    out.push(format!("{name} {}", c.get()));
                }
                Metric::Gauge(g) => {
                    out.push(format!("# TYPE {name} gauge"));
                    out.push(format!("{name} {}", g.get()));
                }
                Metric::Histogram(h) => {
                    out.push(format!("# TYPE {name} histogram"));
                    let counts = h.bucket_counts();
                    let last = counts.iter().rposition(|&c| c > 0);
                    let mut cum = 0u64;
                    if let Some(last) = last {
                        for (i, &c) in counts.iter().enumerate().take(last + 1) {
                            cum += c;
                            if c == 0 && cum == 0 {
                                continue; // elide empty leading buckets
                            }
                            let (_, hi) = bucket_bounds(i);
                            out.push(format!("{name}_bucket{{le=\"{hi}\"}} {cum}"));
                        }
                    }
                    out.push(format!("{name}_bucket{{le=\"+Inf\"}} {}", h.count()));
                    out.push(format!("{name}_sum {}", h.sum()));
                    out.push(format!("{name}_count {}", h.count()));
                    let mut q = format!("# {name}");
                    for (label, v) in [("p50", h.p50()), ("p90", h.p90()), ("p99", h.p99())] {
                        let _ = write!(q, " {label}<={v}");
                    }
                    out.push(q);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_do_arithmetic() {
        let c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::default();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn bucket_boundaries_land_where_the_bounds_say() {
        // Every power of two, its predecessor and successor: the value
        // must fall inside bucket_bounds of its own bucket.
        let mut values = vec![0u64, 1, 2, 3];
        for shift in 2..64 {
            let p = 1u64 << shift;
            values.extend([p - 1, p, p + 1]);
        }
        values.push(u64::MAX);
        for v in values {
            let i = bucket_index(v);
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v && v <= hi, "{v} outside bucket {i} [{lo}, {hi}]");
        }
        // Exact boundary pins: 0 is its own bucket, 1 starts bucket 1,
        // 1024 starts bucket 11 (i.e. 1023 and 1024 differ).
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_ne!(bucket_index(1023), bucket_index(1024));
    }

    #[test]
    fn quantiles_bracket_a_sorted_reference() {
        // A spread of samples across several decades; the true order
        // statistic must lie inside the returned bucket bounds.
        let h = Histogram::default();
        let mut samples: Vec<u64> = (0..1000u64).map(|i| i * i % 90_000 + 7).collect();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_unstable();
        for q in [0.50, 0.90, 0.99] {
            let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
            let truth = samples[rank - 1];
            let (lo, hi) = h.quantile_bounds(q).unwrap();
            assert!(
                lo <= truth && truth <= hi,
                "q={q}: true {truth} outside [{lo}, {hi}]"
            );
            assert!(h.quantile(q) >= truth);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), samples.iter().sum::<u64>());
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::default();
        assert_eq!(h.quantile_bounds(0.5), None);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn concurrent_recording_reconciles_exactly() {
        // N threads × M samples each: count, sum, and the per-bucket
        // totals must all reconcile exactly — relaxed atomics lose
        // nothing.
        let h = Arc::new(Histogram::default());
        let threads = 8;
        let per_thread = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        h.record(t as u64 * 1_000 + i % 97);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(h.count(), threads as u64 * per_thread);
        let mut expected_sum = 0u64;
        let mut expected_buckets = [0u64; BUCKETS];
        for t in 0..threads {
            for i in 0..per_thread {
                let v = t as u64 * 1_000 + i % 97;
                expected_sum += v;
                expected_buckets[bucket_index(v)] += 1;
            }
        }
        assert_eq!(h.sum(), expected_sum);
        assert_eq!(h.bucket_counts(), expected_buckets);
    }

    #[test]
    fn registry_hands_out_shared_handles_and_renders() {
        let r = Registry::default();
        let a = r.counter("ncq_test_total");
        let b = r.counter("ncq_test_total");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2, "same handle behind both Arcs");
        r.gauge("ncq_test_gauge").set(-5);
        let h = r.histogram("ncq_test_ns");
        h.record(100);
        h.record(100_000);
        let text = r.render().join("\n");
        assert!(text.contains("# TYPE ncq_test_total counter"), "{text}");
        assert!(text.contains("ncq_test_total 2"), "{text}");
        assert!(text.contains("ncq_test_gauge -5"), "{text}");
        assert!(text.contains("ncq_test_ns_count 2"), "{text}");
        assert!(text.contains("le=\"+Inf\"} 2"), "{text}");
    }

    #[test]
    fn reset_zeroes_buckets_sum_and_count() {
        let h = Histogram::default();
        for v in [0u64, 5, 1_000, 1 << 40] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.bucket_counts(), [0u64; BUCKETS]);
        assert_eq!(h.quantile_bounds(0.5), None);
        // The histogram keeps working after a reset.
        h.record(7);
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 7);
    }

    #[test]
    fn registry_reset_touches_only_histograms() {
        let r = Registry::default();
        let c = r.counter("ncq_reset_total");
        c.add(3);
        r.gauge("ncq_reset_gauge").set(9);
        let h = r.histogram("ncq_reset_ns");
        h.record(123);
        r.reset_histograms();
        assert_eq!(h.count(), 0, "histogram window cleared");
        assert_eq!(c.get(), 3, "counter untouched");
        assert_eq!(r.gauge("ncq_reset_gauge").get(), 9, "gauge untouched");
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn kind_mismatch_is_a_programming_error() {
        let r = Registry::default();
        r.histogram("ncq_kind_clash");
        r.counter("ncq_kind_clash");
    }
}
