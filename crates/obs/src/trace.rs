//! The tracing half of `ncq-obs`: per-query span trees.
//!
//! A request gets one [`Trace`] — a flat vector of [`SpanRec`]s whose
//! `parent` indices encode the tree — carried in a thread-local slot
//! while the owning thread works on it. The server's workers process
//! one job at a time, so thread-local is the natural home; when a job
//! parks between phases its trace is [`suspend`]ed back into the job
//! and [`resume`]d later, and batched evaluation stitches a closed
//! span into every rider's trace after the fact
//! ([`Trace::record_closed`]).
//!
//! Every instrumentation primitive ([`span`], [`event`], [`annotate`])
//! is a no-op when no trace is active on the thread, so instrumented
//! library code (planner, shards, remote router) costs one TLS check
//! when tracing is off the request path.

use std::cell::RefCell;
use std::time::Instant;

/// One span of a trace: a stage the request actually crossed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRec {
    /// Index of the parent span in the trace's `spans` vector;
    /// `None` only for the root.
    pub parent: Option<u32>,
    /// Stage name (static: "parse", "plan", "scatter", …).
    pub stage: &'static str,
    /// Start, nanoseconds relative to the trace's start.
    pub start_ns: u64,
    /// Duration in nanoseconds (0 for instant events).
    pub dur_ns: u64,
    /// Key/value annotations (strategy chosen, replica address, …).
    pub attrs: Vec<(&'static str, String)>,
}

/// An in-flight trace. Create with [`start`] (installs into the
/// thread-local slot) and close with [`finish`].
#[derive(Debug)]
pub struct Trace {
    /// The request's trace id — propagated across the remote wire so
    /// replica-side traces stitch to the coordinator's.
    pub id: u64,
    started: Instant,
    spans: Vec<SpanRec>,
    /// Stack of currently open span indices; the top is the parent of
    /// the next span.
    open: Vec<u32>,
}

impl Trace {
    fn new(id: u64) -> Trace {
        Trace {
            id,
            started: Instant::now(),
            spans: vec![SpanRec {
                parent: None,
                stage: "request",
                start_ns: 0,
                dur_ns: 0,
                attrs: Vec::new(),
            }],
            open: vec![0],
        }
    }

    fn elapsed_ns(&self) -> u64 {
        self.started.elapsed().as_nanos() as u64
    }

    /// Record an already-measured span (used when one piece of work —
    /// a grouped batch evaluation — served several requests: the
    /// duration is attached to every rider's trace after the fact).
    pub fn record_closed(
        &mut self,
        stage: &'static str,
        dur_ns: u64,
        attrs: Vec<(&'static str, String)>,
    ) {
        let now = self.elapsed_ns();
        let parent = self.open.last().copied();
        self.spans.push(SpanRec {
            parent,
            stage,
            start_ns: now.saturating_sub(dur_ns),
            dur_ns,
            attrs,
        });
    }

    /// Annotate the innermost open span.
    pub fn annotate(&mut self, key: &'static str, value: String) {
        if let Some(&idx) = self.open.last() {
            self.spans[idx as usize].attrs.push((key, value));
        }
    }

    /// Close everything still open and seal the trace.
    fn into_finished(mut self) -> FinishedTrace {
        let now = self.elapsed_ns();
        while let Some(idx) = self.open.pop() {
            let span = &mut self.spans[idx as usize];
            span.dur_ns = now.saturating_sub(span.start_ns);
        }
        FinishedTrace {
            id: self.id,
            total_ns: self.spans[0].dur_ns,
            spans: self.spans,
        }
    }
}

/// A completed span tree, as held in the trace ring / slow-query log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FinishedTrace {
    /// The request's trace id.
    pub id: u64,
    /// End-to-end duration (the root span's).
    pub total_ns: u64,
    /// Spans in recording order; parents precede children.
    pub spans: Vec<SpanRec>,
}

impl FinishedTrace {
    /// Spans with the given stage name.
    pub fn spans_named(&self, stage: &str) -> Vec<&SpanRec> {
        self.spans.iter().filter(|s| s.stage == stage).collect()
    }

    /// Render as an indented text tree, one line per span:
    /// `trace <id> total_us=<n>` then `  <stage> start_us=… dur_us=…
    /// k=v …` nested by depth.
    pub fn render(&self) -> Vec<String> {
        let mut depth = vec![0usize; self.spans.len()];
        let mut out = Vec::with_capacity(self.spans.len() + 1);
        out.push(format!(
            "trace {} total_us={}",
            self.id,
            self.total_ns / 1_000
        ));
        for (i, span) in self.spans.iter().enumerate() {
            depth[i] = span.parent.map_or(0, |p| depth[p as usize] + 1);
            let mut line = format!(
                "{}{} start_us={} dur_us={}",
                "  ".repeat(depth[i] + 1),
                span.stage,
                span.start_ns / 1_000,
                span.dur_ns / 1_000
            );
            for (k, v) in &span.attrs {
                line.push_str(&format!(" {k}={v}"));
            }
            out.push(line);
        }
        out
    }
}

thread_local! {
    static CURRENT: RefCell<Option<Trace>> = const { RefCell::new(None) };
}

/// Begin a new trace with the given id and install it as this
/// thread's current trace (replacing any leftover one).
pub fn start(id: u64) {
    CURRENT.with(|c| *c.borrow_mut() = Some(Trace::new(id)));
}

/// Install a suspended trace as this thread's current trace.
pub fn resume(trace: Trace) {
    CURRENT.with(|c| *c.borrow_mut() = Some(trace));
}

/// Take the current trace off the thread (to park it with a job).
pub fn suspend() -> Option<Trace> {
    CURRENT.with(|c| c.borrow_mut().take())
}

/// Whether a trace is active on this thread.
pub fn is_active() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

/// The active trace's id, for propagation (remote frames, `ERR`
/// correlation).
pub fn current_id() -> Option<u64> {
    CURRENT.with(|c| c.borrow().as_ref().map(|t| t.id))
}

/// Drop the current trace without finishing it (panic recovery).
pub fn clear() {
    CURRENT.with(|c| *c.borrow_mut() = None);
}

/// Finish the current trace: closes all open spans and returns the
/// sealed tree. `None` when no trace is active.
pub fn finish() -> Option<FinishedTrace> {
    suspend().map(Trace::into_finished)
}

/// Open a span; it closes (duration recorded) when the returned guard
/// drops. A no-op guard when no trace is active.
pub fn span(stage: &'static str) -> SpanGuard {
    let idx = CURRENT.with(|c| {
        let mut cur = c.borrow_mut();
        let trace = cur.as_mut()?;
        let now = trace.elapsed_ns();
        let parent = trace.open.last().copied();
        let idx = trace.spans.len() as u32;
        trace.spans.push(SpanRec {
            parent,
            stage,
            start_ns: now,
            dur_ns: 0,
            attrs: Vec::new(),
        });
        trace.open.push(idx);
        Some(idx)
    });
    SpanGuard { idx }
}

/// Guard for an open span; dropping closes it.
pub struct SpanGuard {
    idx: Option<u32>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(idx) = self.idx else { return };
        CURRENT.with(|c| {
            let mut cur = c.borrow_mut();
            // The trace may have been suspended/finished while the
            // guard was alive (panic unwind paths); closing is then
            // moot.
            let Some(trace) = cur.as_mut() else { return };
            let now = trace.elapsed_ns();
            if let Some(span) = trace.spans.get_mut(idx as usize) {
                if span.dur_ns == 0 {
                    span.dur_ns = now.saturating_sub(span.start_ns);
                }
            }
            trace.open.retain(|&i| i != idx);
        });
    }
}

/// Annotate the innermost open span of the current trace.
pub fn annotate(key: &'static str, value: String) {
    CURRENT.with(|c| {
        if let Some(trace) = c.borrow_mut().as_mut() {
            trace.annotate(key, value);
        }
    });
}

/// Record an already-measured span on the current trace (see
/// [`Trace::record_closed`]) — how work timed on *another* thread
/// (a scatter worker) lands in the coordinating thread's trace.
pub fn record_closed(stage: &'static str, dur_ns: u64, attrs: Vec<(&'static str, String)>) {
    CURRENT.with(|c| {
        if let Some(trace) = c.borrow_mut().as_mut() {
            trace.record_closed(stage, dur_ns, attrs);
        }
    });
}

/// Record an instant event (a zero-duration span) on the current
/// trace, with one detail attribute.
pub fn event(stage: &'static str, detail: String) {
    CURRENT.with(|c| {
        if let Some(trace) = c.borrow_mut().as_mut() {
            let now = trace.elapsed_ns();
            let parent = trace.open.last().copied();
            trace.spans.push(SpanRec {
                parent,
                stage,
                start_ns: now,
                dur_ns: 0,
                attrs: vec![("detail", detail)],
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_seal_into_a_tree() {
        start(7);
        {
            let _outer = span("outer");
            annotate("k", "v".into());
            {
                let _inner = span("inner");
                event("tick", "detail".into());
            }
        }
        let t = finish().expect("trace was active");
        assert_eq!(t.id, 7);
        let stages: Vec<&str> = t.spans.iter().map(|s| s.stage).collect();
        assert_eq!(stages, vec!["request", "outer", "inner", "tick"]);
        // Parent chain: outer under request, inner under outer, the
        // event under inner.
        assert_eq!(t.spans[1].parent, Some(0));
        assert_eq!(t.spans[2].parent, Some(1));
        assert_eq!(t.spans[3].parent, Some(2));
        assert_eq!(t.spans[1].attrs, vec![("k", "v".to_owned())]);
        assert!(t.total_ns >= t.spans[1].dur_ns);
        assert!(t.spans[1].dur_ns >= t.spans[2].dur_ns);
        let text = t.render().join("\n");
        assert!(text.contains("trace 7"), "{text}");
        assert!(text.contains("    inner "), "indented twice: {text}");
    }

    #[test]
    fn everything_is_a_noop_without_an_active_trace() {
        clear();
        assert!(!is_active());
        assert_eq!(current_id(), None);
        {
            let _g = span("orphan");
            annotate("k", "v".into());
            event("e", "d".into());
        }
        assert_eq!(finish(), None);
    }

    #[test]
    fn suspend_resume_round_trips_and_record_closed_attaches() {
        start(9);
        let mut parked = suspend().expect("active");
        assert!(!is_active());
        parked.record_closed("batch_eval", 1_000, vec![("batch", "4".into())]);
        resume(parked);
        assert_eq!(current_id(), Some(9));
        let t = finish().unwrap();
        let batch = t.spans_named("batch_eval");
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].dur_ns, 1_000);
        assert_eq!(batch[0].parent, Some(0), "attached under the root");
    }

    #[test]
    fn guard_outliving_the_trace_is_harmless() {
        start(11);
        let g = span("escapee");
        let _ = finish();
        drop(g); // no trace on the thread any more: must not panic
        assert!(!is_active());
    }
}
