//! `ncq-obs` — hand-rolled observability for the nearest-concept
//! engine: a lock-free metrics registry (counters, gauges,
//! log-bucketed latency histograms with exact-at-bucket-resolution
//! p50/p90/p99) and structured per-query tracing (span trees in a
//! bounded ring, with a slow-query log above a configurable
//! threshold).
//!
//! The crate is dependency-free by design: the build image has no
//! registry access, so this plays the role `metrics`/`tracing` would
//! — same shapes, a fraction of the surface. One process-global
//! [`Obs`] instance ([`obs`]) owns the registry, the trace sinks, the
//! trace-id allocator, and the master on/off switch; instrumented
//! code guards its recording on [`Obs::enabled`], one relaxed atomic
//! load, so metrics-off overhead on the hot meet path is measurable
//! noise (`BENCH_pr8.json` pins it ≤ 5% even with metrics *on*).

pub mod metrics;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, Registry};
pub use trace::{FinishedTrace, SpanRec, Trace};

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Completed traces kept in the ring buffer.
const TRACE_RING: usize = 256;
/// Entries kept in the slow-query log.
const SLOW_RING: usize = 64;
/// Default slow-query threshold: 50 ms.
const DEFAULT_SLOW_THRESHOLD_NS: u64 = 50_000_000;

/// Process-global observability state. Use [`obs`].
pub struct Obs {
    enabled: AtomicBool,
    /// The metrics registry; look handles up once, record through the
    /// `Arc`.
    pub registry: Registry,
    next_trace_id: AtomicU64,
    slow_threshold_ns: AtomicU64,
    traces: Mutex<VecDeque<Arc<FinishedTrace>>>,
    slow: Mutex<VecDeque<Arc<FinishedTrace>>>,
    slow_total: metrics::Counter,
}

/// The process-global [`Obs`] instance.
pub fn obs() -> &'static Obs {
    static OBS: OnceLock<Obs> = OnceLock::new();
    OBS.get_or_init(|| Obs {
        enabled: AtomicBool::new(true),
        registry: Registry::default(),
        next_trace_id: AtomicU64::new(1),
        slow_threshold_ns: AtomicU64::new(DEFAULT_SLOW_THRESHOLD_NS),
        traces: Mutex::new(VecDeque::new()),
        slow: Mutex::new(VecDeque::new()),
        slow_total: metrics::Counter::default(),
    })
}

impl Obs {
    /// The master switch: instrumented code records only when this is
    /// on (one relaxed load). On by default.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Relaxed)
    }

    /// Flip the master switch at runtime.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Relaxed);
    }

    /// Allocate a fresh trace/request id (never 0).
    pub fn next_trace_id(&self) -> u64 {
        self.next_trace_id.fetch_add(1, Relaxed)
    }

    /// Start a trace with the given id on this thread, if enabled.
    pub fn begin_trace(&self, id: u64) {
        if self.enabled() {
            trace::start(id);
        }
    }

    /// Finish this thread's trace into the ring buffer (and the
    /// slow-query log when over threshold). Returns the sealed trace.
    pub fn finish_trace(&self) -> Option<Arc<FinishedTrace>> {
        let finished = Arc::new(trace::finish()?);
        push_ring(&self.traces, TRACE_RING, Arc::clone(&finished));
        if finished.total_ns > self.slow_threshold_ns.load(Relaxed) {
            self.slow_total.inc();
            push_ring(&self.slow, SLOW_RING, Arc::clone(&finished));
        }
        Some(finished)
    }

    /// The last `n` completed traces, most recent first.
    pub fn recent_traces(&self, n: usize) -> Vec<Arc<FinishedTrace>> {
        read_ring(&self.traces, n)
    }

    /// The last `n` slow-query traces, most recent first.
    pub fn recent_slow(&self, n: usize) -> Vec<Arc<FinishedTrace>> {
        read_ring(&self.slow, n)
    }

    /// Traces recorded over the slow threshold since start.
    pub fn slow_count(&self) -> u64 {
        self.slow_total.get()
    }

    /// The slow-query threshold.
    pub fn slow_threshold(&self) -> Duration {
        Duration::from_nanos(self.slow_threshold_ns.load(Relaxed))
    }

    /// Set the slow-query threshold.
    pub fn set_slow_threshold(&self, d: Duration) {
        self.slow_threshold_ns
            .store(d.as_nanos().min(u64::MAX as u128) as u64, Relaxed);
    }
}

fn push_ring(ring: &Mutex<VecDeque<Arc<FinishedTrace>>>, cap: usize, t: Arc<FinishedTrace>) {
    let mut ring = ring.lock().expect("trace ring lock");
    if ring.len() >= cap {
        ring.pop_front();
    }
    ring.push_back(t);
}

fn read_ring(ring: &Mutex<VecDeque<Arc<FinishedTrace>>>, n: usize) -> Vec<Arc<FinishedTrace>> {
    let ring = ring.lock().expect("trace ring lock");
    ring.iter().rev().take(n).cloned().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_unique_and_nonzero() {
        let a = obs().next_trace_id();
        let b = obs().next_trace_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn finished_traces_land_in_the_ring() {
        let id = obs().next_trace_id();
        obs().begin_trace(id);
        {
            let _s = trace::span("stage");
        }
        let sealed = obs().finish_trace().expect("trace was active");
        assert_eq!(sealed.id, id);
        let recent = obs().recent_traces(TRACE_RING);
        assert!(
            recent.iter().any(|t| t.id == id),
            "trace {id} not in the ring"
        );
    }

    #[test]
    fn slow_threshold_routes_to_the_slow_log() {
        // Threshold zero: everything with nonzero duration is slow.
        let id = obs().next_trace_id();
        let before = obs().slow_threshold();
        obs().set_slow_threshold(Duration::ZERO);
        obs().begin_trace(id);
        std::thread::sleep(Duration::from_millis(1));
        obs().finish_trace().unwrap();
        obs().set_slow_threshold(before);
        assert!(
            obs().recent_slow(SLOW_RING).iter().any(|t| t.id == id),
            "trace {id} not in the slow log"
        );
        assert!(obs().slow_count() >= 1);
    }

    #[test]
    fn disabled_switch_suppresses_trace_creation() {
        // Serialize against other tests touching the global switch by
        // only asserting the local effect.
        let was = obs().enabled();
        obs().set_enabled(false);
        obs().begin_trace(obs().next_trace_id());
        assert!(!trace::is_active(), "begin_trace must be a no-op when off");
        assert_eq!(obs().finish_trace().map(|t| t.id), None);
        obs().set_enabled(was);
    }
}
