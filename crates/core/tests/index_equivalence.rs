//! Index equivalence on realistic corpora: on randomized `ncq-datagen`
//! documents (DBLP bibliography and multimedia feature shapes), the
//! indexed primitives must agree exactly with the paper's walk/lift
//! evaluation — `meet2_indexed` ≡ steered `meet2` ≡ `meet2_naive`, and
//! the plane-sweep `meet_sets` / `meet_multi` return the same answers as
//! the frontier-lifting / token roll-up versions.

use ncq_core::{
    meet2, meet2_indexed, meet2_naive, meet_multi, meet_multi_indexed, meet_sets, meet_sets_sweep,
    Database, MeetOptions,
};
use ncq_datagen::{DblpConfig, DblpCorpus, MultimediaConfig, MultimediaCorpus};
use ncq_fulltext::HitSet;
use ncq_store::Oid;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn dblp_db(seed: u64) -> Database {
    let corpus = DblpCorpus::generate(&DblpConfig {
        seed,
        papers_per_edition: 4,
        journal_articles_per_year: 2,
        ..DblpConfig::default()
    });
    Database::from_document(&corpus.document)
}

fn multimedia_db(seed: u64) -> Database {
    let corpus = MultimediaCorpus::generate(&MultimediaConfig {
        seed,
        noise_items: 40,
        max_distance: 12,
        probes_per_distance: 2,
    });
    Database::from_document(&corpus.document)
}

fn random_oid(rng: &mut StdRng, db: &Database) -> Oid {
    Oid::from_index(rng.random_range(0..db.store().node_count()))
}

#[test]
fn all_three_meet2_implementations_agree_on_corpora() {
    for seed in 0..8u64 {
        for db in [dblp_db(seed), multimedia_db(seed)] {
            let store = db.store();
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..500 {
                let a = random_oid(&mut rng, &db);
                let b = random_oid(&mut rng, &db);
                let steered = meet2(store, a, b);
                let naive = meet2_naive(store, a, b);
                let indexed = meet2_indexed(store, a, b);
                assert_eq!(steered.meet, naive.meet, "seed {seed} {a:?} {b:?}");
                assert_eq!(steered.meet, indexed.meet, "seed {seed} {a:?} {b:?}");
                assert_eq!(steered.distance, naive.distance, "seed {seed}");
                assert_eq!(steered.distance, indexed.distance, "seed {seed}");
            }
        }
    }
}

#[test]
fn index_lca_and_distance_match_parent_walks_on_corpora() {
    for seed in 0..4u64 {
        for db in [dblp_db(seed), multimedia_db(seed)] {
            let store = db.store();
            let index = store.meet_index();
            let mut rng = StdRng::seed_from_u64(1 << 32 | seed);
            for _ in 0..500 {
                let a = random_oid(&mut rng, &db);
                let b = random_oid(&mut rng, &db);
                // Reference by ancestor-list intersection.
                let anc: Vec<Oid> = store.ancestors(a).collect();
                let reference = store.ancestors(b).find(|x| anc.contains(x)).unwrap();
                assert_eq!(index.lca(a, b), reference, "seed {seed} {a:?} {b:?}");
                let d = store.depth(a) + store.depth(b) - 2 * store.depth(reference);
                assert_eq!(index.distance(a, b), d, "seed {seed} {a:?} {b:?}");
            }
        }
    }
}

#[test]
fn sweep_meet_sets_matches_lift_on_corpus_hit_lists() {
    // Real full-text hit lists (homogeneous per relation) from the DBLP
    // substitute: conference acronyms vs years — the paper's case-study
    // shape.
    for seed in 0..4u64 {
        let db = dblp_db(seed);
        let store = db.store();
        let mut groups: Vec<Vec<Oid>> = Vec::new();
        for term in ["ICDE", "VLDB", "1999", "1995", "IEEE"] {
            for g in db.search_word(term).groups().values() {
                groups.push(g.clone());
            }
        }
        for s1 in &groups {
            for s2 in &groups {
                let lift = meet_sets(store, s1, s2).unwrap();
                let sweep = meet_sets_sweep(store, s1, s2).unwrap();
                let mut a = lift.meets.clone();
                let mut b = sweep.meets.clone();
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "seed {seed}");
            }
        }
    }
}

#[test]
fn sweep_meet_multi_matches_rollup_on_corpus_queries() {
    let canonical = |ms: &[ncq_core::Meet]| {
        ms.iter()
            .map(|m| {
                let mut ws: Vec<_> = m
                    .witnesses
                    .iter()
                    .map(|w| (w.origin, w.input, w.climb))
                    .collect();
                ws.sort_unstable();
                (m.node, m.path, m.distance, m.witness_count, ws)
            })
            .collect::<Vec<_>>()
    };
    for seed in 0..4u64 {
        // DBLP: the paper's "ICDE AND year" query at several δ bounds.
        let db = dblp_db(seed);
        let mut years = HitSet::new();
        for y in [1994u16, 1995, 1996] {
            years.union(&db.search_word(&y.to_string()));
        }
        let inputs = [db.search_word("ICDE"), years];
        for max_distance in [None, Some(0), Some(2), Some(6)] {
            let opts = MeetOptions {
                max_distance,
                witness_cap: 1024,
                ..MeetOptions::default()
            };
            let rollup = meet_multi(db.store(), &inputs, &opts);
            let indexed = meet_multi_indexed(db.store(), &inputs, &opts);
            assert_eq!(
                canonical(&rollup),
                canonical(&indexed),
                "seed {seed} δ={max_distance:?}"
            );
        }

        // Multimedia: probe markers at exact planted distances.
        let db = multimedia_db(seed);
        for d in [0usize, 1, 5, 12] {
            let (ta, tb) = MultimediaCorpus::marker_terms(d, 0);
            let inputs = [db.search_contains(&ta), db.search_contains(&tb)];
            let opts = MeetOptions {
                witness_cap: 1024,
                ..MeetOptions::default()
            };
            let rollup = meet_multi(db.store(), &inputs, &opts);
            let indexed = meet_multi_indexed(db.store(), &inputs, &opts);
            assert_eq!(canonical(&rollup), canonical(&indexed), "seed {seed} d={d}");
            assert_eq!(rollup.len(), 1, "seed {seed} d={d}");
            assert_eq!(rollup[0].distance, d, "seed {seed} d={d}");
        }
    }
}
