//! Planner regression tests: seeded-PRNG corpora at depth ∈ {3, 16, 256}
//! pin (a) that sweep and lift return identical `SetMeets` and (b) that
//! the planner picks lift on the flat corpus and sweep on the deep one —
//! the `BENCH_pr1.json` flat-row regression, closed.

use ncq_core::{
    meet_sets, meet_sets_sweep, ChosenStrategy, Database, MeetError, MeetPlanner, MeetStrategy,
    SetMeets,
};
use ncq_store::Oid;
use ncq_xml::Document;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A corpus whose marker cdatas sit at exactly `depth`: `records` record
/// heads under the root, each carrying a chain of `depth - 3` inner
/// elements (so root=0, record=1, chain…, a/b, cdata=depth), ending in a
/// randomized number of `<a>s</a>` / `<b>t</b>` leaf pairs plus noise
/// children. Seeded, so every run builds the same trees.
fn corpus(seed: u64, depth: usize, records: usize) -> Database {
    assert!(depth >= 3, "root/record/a/cdata is already depth 3");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut doc = Document::new("root");
    for _ in 0..records {
        let head = doc.add_element(doc.root(), "record");
        let mut cur = head;
        for _ in 0..depth - 3 {
            cur = doc.add_element(cur, "link");
            // Noise siblings keep OID gaps irregular.
            for _ in 0..rng.random_range(0usize..2) {
                doc.add_element(cur, "pad");
            }
        }
        for _ in 0..rng.random_range(1usize..4) {
            let a = doc.add_element(cur, "a");
            doc.add_text(a, "s");
            let b = doc.add_element(cur, "b");
            doc.add_text(b, "t");
        }
    }
    Database::from_document(&doc)
}

/// The two homogeneous marker sets (every `s` cdata, every `t` cdata).
fn marker_sets(db: &Database) -> (Vec<Oid>, Vec<Oid>) {
    let store = db.store();
    let pick = |needle: &str| -> Vec<Oid> {
        let mut v: Vec<Oid> = store
            .string_paths()
            .flat_map(|p| store.strings_of(p))
            .filter(|(_, t)| &**t == needle)
            .map(|(o, _)| *o)
            .collect();
        v.sort_unstable();
        v
    };
    (pick("s"), pick("t"))
}

fn sorted(r: &SetMeets) -> Vec<(Oid, usize)> {
    let mut m = r.meets.clone();
    m.sort_unstable();
    m
}

const DEPTHS: [usize; 3] = [3, 16, 256];

#[test]
fn sweep_and_lift_agree_at_every_depth() {
    for (i, &depth) in DEPTHS.iter().enumerate() {
        for seed in 0..8u64 {
            let records = if depth >= 256 { 6 } else { 24 };
            let db = corpus((i as u64) << 32 | seed, depth, records);
            let (s, t) = marker_sets(&db);
            assert!(!s.is_empty() && !t.is_empty());
            let store = db.store();
            assert_eq!(store.depth(s[0]), depth, "marker depth is exact");
            let lift = meet_sets(store, &s, &t).unwrap();
            let sweep = meet_sets_sweep(store, &s, &t).unwrap();
            assert_eq!(
                sorted(&lift),
                sorted(&sweep),
                "depth {depth} seed {seed}: lift and sweep diverged"
            );
            // Every record head is a minimal meet: one per record's pairs.
            assert!(!lift.meets.is_empty());
            // The planner dispatch returns the same answers as both.
            let auto = db.meet_oid_sets(&s, &t).unwrap();
            assert_eq!(sorted(&auto), sorted(&lift));
        }
    }
}

#[test]
fn planner_picks_lift_flat_and_sweep_deep() {
    let flat = corpus(0xF1A7, 3, 64);
    let (s, t) = marker_sets(&flat);
    let plan = flat.plan_oid_sets(&s, &t).unwrap();
    assert_eq!(
        plan.strategy,
        ChosenStrategy::Lift,
        "flat corpus (depth 3, {} hits) must lift: {plan:?}",
        plan.hits
    );

    let deep = corpus(0xDEEB, 256, 8);
    let (s, t) = marker_sets(&deep);
    let plan = deep.plan_oid_sets(&s, &t).unwrap();
    assert_eq!(
        plan.strategy,
        ChosenStrategy::Sweep,
        "deep corpus (depth 256, {} hits) must sweep: {plan:?}",
        plan.hits
    );
    assert_eq!(plan.est_rounds, 256);
}

#[test]
fn forced_strategies_execute_the_forced_path() {
    // Pin the override contract on a mid-depth corpus where Auto could
    // go either way: lookups is the tell (the lift counts parent
    // look-ups ≥ rounds × hits; the sweep counts O(hits) LCA probes).
    let db = corpus(0x16, 16, 24);
    let (s, t) = marker_sets(&db);
    let planner = MeetPlanner::new(db.store());
    let lift = planner.meet_sets(&s, &t, MeetStrategy::Lift).unwrap();
    let sweep = planner.meet_sets(&s, &t, MeetStrategy::Sweep).unwrap();
    let reference_lift = meet_sets(db.store(), &s, &t).unwrap();
    let reference_sweep = meet_sets_sweep(db.store(), &s, &t).unwrap();
    assert_eq!(lift.lookups, reference_lift.lookups);
    assert_eq!(sweep.lookups, reference_sweep.lookups);
    assert_ne!(
        lift.lookups, sweep.lookups,
        "the two strategies must be observably different evaluations"
    );
}

#[test]
fn planner_empty_input_regression() {
    let db = corpus(0, 3, 4);
    let (s, _) = marker_sets(&db);
    assert_eq!(db.meet_oid_sets(&s, &[]), Err(MeetError::EmptyInput));
    assert_eq!(db.meet_oid_sets(&[], &s), Err(MeetError::EmptyInput));
    assert_eq!(
        meet_sets_sweep(db.store(), &[], &s),
        Err(MeetError::EmptyInput)
    );
}
