//! Randomized property tests of the meet operator family on random trees.
//!
//! Seeded loops over a deterministic PRNG stand in for proptest (the
//! offline build cannot fetch it); failures print the seed.

use ncq_core::{
    meet2, meet2_indexed, meet2_naive, meet_multi, meet_multi_indexed, meet_sets,
    meet_sets_lift_ordered, meet_sets_sweep, meet_sets_sweep_merged, MeetOptions,
};
use ncq_fulltext::HitSet;
use ncq_store::{MonetDb, Oid};
use ncq_xml::Document;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashSet;

/// Random tree: node `i + 1` hangs under a random earlier node. Tags
/// cycle through a small vocabulary so path summaries stay non-trivial.
fn random_tree(rng: &mut StdRng) -> Document {
    const TAGS: [&str; 5] = ["a", "b", "c", "d", "e"];
    let mut doc = Document::new("root");
    let mut nodes = vec![doc.root()];
    let n = rng.random_range(1usize..120);
    for i in 0..n {
        let parent = nodes[rng.random_range(0..nodes.len())];
        let node = doc.add_element(parent, TAGS[i % TAGS.len()]);
        nodes.push(node);
    }
    doc
}

/// Independent LCA reference: intersect full ancestor lists.
fn reference_lca(db: &MonetDb, a: Oid, b: Oid) -> (Oid, usize) {
    let anc_a: Vec<Oid> = db.ancestors(a).collect();
    let set_a: HashSet<Oid> = anc_a.iter().copied().collect();
    for (climb_b, anc) in db.ancestors(b).enumerate() {
        if set_a.contains(&anc) {
            let climb_a = anc_a.iter().position(|&x| x == anc).unwrap();
            return (anc, climb_a + climb_b);
        }
    }
    unreachable!("all nodes share the root");
}

fn random_oid(rng: &mut StdRng, db: &MonetDb) -> Oid {
    Oid::from_index(rng.random_range(0..db.node_count()))
}

const CASES: u64 = 128;

/// Steered meet2 equals the ancestor-set reference, the naive baseline,
/// and the indexed fast path, with exact distances.
#[test]
fn meet2_matches_reference() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let db = MonetDb::from_document(&random_tree(&mut rng));
        for _ in 0..rng.random_range(1usize..20) {
            let a = random_oid(&mut rng, &db);
            let b = random_oid(&mut rng, &db);
            let (ref_meet, ref_dist) = reference_lca(&db, a, b);
            let steered = meet2(&db, a, b);
            let naive = meet2_naive(&db, a, b);
            let indexed = meet2_indexed(&db, a, b);
            assert_eq!(steered.meet, ref_meet, "seed {seed} {a:?} {b:?}");
            assert_eq!(steered.distance, ref_dist, "seed {seed} {a:?} {b:?}");
            assert_eq!(naive.meet, ref_meet, "seed {seed} {a:?} {b:?}");
            assert_eq!(naive.distance, ref_dist, "seed {seed} {a:?} {b:?}");
            assert_eq!(indexed.meet, ref_meet, "seed {seed} {a:?} {b:?}");
            assert_eq!(indexed.distance, ref_dist, "seed {seed} {a:?} {b:?}");
            assert_eq!(steered.lookups, steered.distance);
            assert_eq!(indexed.lookups, 0);
        }
    }
}

/// meet2 algebra: commutative, idempotent, absorbs ancestors.
#[test]
fn meet2_algebraic_laws() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(1 << 32 | seed);
        let db = MonetDb::from_document(&random_tree(&mut rng));
        let a = random_oid(&mut rng, &db);
        let b = random_oid(&mut rng, &db);
        assert_eq!(meet2(&db, a, b).meet, meet2(&db, b, a).meet, "seed {seed}");
        assert_eq!(meet2(&db, a, a).meet, a, "seed {seed}");
        let m = meet2(&db, a, b).meet;
        // The meet is a common ancestor…
        assert!(db.is_ancestor_or_self(m, a), "seed {seed}");
        assert!(db.is_ancestor_or_self(m, b), "seed {seed}");
        // …and meeting with it is absorbing.
        assert_eq!(meet2(&db, a, m).meet, m, "seed {seed}");
        assert_eq!(meet2(&db, m, b).meet, m, "seed {seed}");
    }
}

/// Set meet on singletons coincides with meet2, for both evaluations.
#[test]
fn meet_sets_singletons_match_meet2() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(2 << 32 | seed);
        let db = MonetDb::from_document(&random_tree(&mut rng));
        let a = random_oid(&mut rng, &db);
        let b = random_oid(&mut rng, &db);
        let expect = meet2(&db, a, b).meet;
        for result in [
            meet_sets(&db, &[a], &[b]).unwrap(),
            meet_sets_sweep(&db, &[a], &[b]).unwrap(),
        ] {
            assert_eq!(result.meets.len(), 1, "seed {seed}");
            assert_eq!(result.meets[0].0, expect, "seed {seed}");
        }
    }
}

/// Every meet_sets result is a common ancestor of at least one element
/// from each input set, and the plane sweep returns exactly the lift's
/// (meet, round) multiset.
#[test]
fn meet_sets_results_are_minimal_and_sweep_agrees() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(3 << 32 | seed);
        let db = MonetDb::from_document(&random_tree(&mut rng));
        // Homogeneous sets: group oids by path, keep the populated ones.
        let mut by_path: std::collections::HashMap<_, Vec<Oid>> = Default::default();
        for o in db.iter_oids() {
            by_path.entry(db.sigma(o)).or_default().push(o);
        }
        let mut groups: Vec<Vec<Oid>> = by_path.into_values().collect();
        groups.sort_by_key(|g| std::cmp::Reverse(g.len()));
        if groups.len() < 2 {
            continue;
        }
        let s1 = &groups[0];
        let s2 = &groups[rng.random_range(1..groups.len())];
        let result = meet_sets(&db, s1, s2).unwrap();
        for &(m, _) in &result.meets {
            // Each meet covers at least one element of each input.
            assert!(
                s1.iter().any(|&o| db.is_ancestor_or_self(m, o)),
                "seed {seed}"
            );
            assert!(
                s2.iter().any(|&o| db.is_ancestor_or_self(m, o)),
                "seed {seed}"
            );
        }
        let sweep = meet_sets_sweep(&db, s1, s2).unwrap();
        let mut lift_meets = result.meets.clone();
        let mut sweep_meets = sweep.meets.clone();
        lift_meets.sort_unstable();
        sweep_meets.sort_unstable();
        assert_eq!(lift_meets, sweep_meets, "seed {seed}");
        // The planner-tier executors reproduce their baselines exactly
        // (meets, rounds and look-up/probe counts) on random trees.
        let ordered = meet_sets_lift_ordered(&db, s1, s2).unwrap();
        let mut ordered_meets = ordered.meets.clone();
        ordered_meets.sort_unstable();
        assert_eq!(lift_meets, ordered_meets, "seed {seed}");
        assert_eq!(result.join_rounds, ordered.join_rounds, "seed {seed}");
        assert_eq!(result.lookups, ordered.lookups, "seed {seed}");
        let merged = meet_sets_sweep_merged(&db, s1, s2).unwrap();
        assert_eq!(sweep, merged, "seed {seed}");
    }
}

/// Random hit groups over a random tree.
fn random_inputs(rng: &mut StdRng, db: &MonetDb, max_groups: usize, picks: usize) -> Vec<HitSet> {
    let mut groups: Vec<Vec<(ncq_store::PathId, Oid)>> = vec![Vec::new(); max_groups];
    for _ in 0..picks {
        let o = random_oid(rng, db);
        let g = rng.random_range(0..max_groups);
        groups[g].push((db.sigma(o), o));
    }
    groups
        .iter()
        .map(|g| HitSet::from_pairs(g.iter().copied()))
        .collect()
}

/// meet_multi invariants: witnesses' pairwise LCA is exactly the meet
/// node; the reported distance is the closest witness pair's distance;
/// every hit is consumed by exactly one meet, except at most one lone
/// survivor (which dies at the root). The indexed sweep returns exactly
/// the same meets, witness for witness.
#[test]
fn meet_multi_witness_invariants_and_sweep_agrees() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(4 << 32 | seed);
        let db = MonetDb::from_document(&random_tree(&mut rng));
        let picks = rng.random_range(2usize..24);
        let inputs = random_inputs(&mut rng, &db, 4, picks);
        let total_hits: usize = inputs.iter().map(HitSet::len).sum();

        let opts = MeetOptions {
            witness_cap: 64,
            ..MeetOptions::default()
        };
        let meets = meet_multi(&db, &inputs, &opts);

        let mut consumed = 0usize;
        for m in &meets {
            assert!(m.witness_count >= 2, "seed {seed}");
            consumed += m.witness_count;
            // Witness sample is complete thanks to the high cap.
            assert_eq!(m.witnesses.len(), m.witness_count, "seed {seed}");
            let mut best = usize::MAX;
            for (i, w1) in m.witnesses.iter().enumerate() {
                // climb is the real tree distance origin → meet.
                let (lca_om, d_om) = reference_lca(&db, w1.origin, m.node);
                assert_eq!(lca_om, m.node, "seed {seed}");
                assert_eq!(d_om, w1.climb, "seed {seed}");
                for w2 in m.witnesses.iter().skip(i + 1) {
                    if (w1.origin, w1.input) == (w2.origin, w2.input) {
                        continue;
                    }
                    let (lca, d) = reference_lca(&db, w1.origin, w2.origin);
                    assert_eq!(
                        lca, m.node,
                        "seed {seed}: witness pair LCA must be the meet"
                    );
                    best = best.min(d);
                }
            }
            assert_eq!(m.distance, best, "seed {seed}");
        }
        // Conservation: all hits consumed, minus at most one lone token.
        assert!(
            total_hits - consumed <= 1,
            "seed {seed}: hits={total_hits} consumed={consumed}"
        );

        // The indexed sweep is witness-for-witness identical.
        let indexed = meet_multi_indexed(&db, &inputs, &opts);
        let canonical = |ms: &[ncq_core::Meet]| {
            ms.iter()
                .map(|m| {
                    let mut ws: Vec<_> = m
                        .witnesses
                        .iter()
                        .map(|w| (w.origin, w.input, w.climb))
                        .collect();
                    ws.sort_unstable();
                    (m.node, m.path, m.distance, m.witness_count, ws)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(canonical(&meets), canonical(&indexed), "seed {seed}");
    }
}

/// meet_multi is invariant under permutation of the input groups, in
/// both evaluations.
#[test]
fn meet_multi_is_order_invariant() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(5 << 32 | seed);
        let db = MonetDb::from_document(&random_tree(&mut rng));
        let picks = rng.random_range(2usize..18);
        let inputs = random_inputs(&mut rng, &db, 3, picks);
        let inputs_rev: Vec<HitSet> = inputs.iter().rev().cloned().collect();
        for eval in [meet_multi, meet_multi_indexed] {
            let fwd = eval(&db, &inputs, &MeetOptions::default());
            let rev = eval(&db, &inputs_rev, &MeetOptions::default());
            let a: Vec<(Oid, usize, usize)> = fwd
                .iter()
                .map(|m| (m.node, m.distance, m.witness_count))
                .collect();
            let b: Vec<(Oid, usize, usize)> = rev
                .iter()
                .map(|m| (m.node, m.distance, m.witness_count))
                .collect();
            assert_eq!(a, b, "seed {seed}");
        }
    }
}

/// The distance bound meet^δ only ever removes answers, every surviving
/// answer respects the bound, and roll-up and sweep agree under δ.
#[test]
fn max_distance_is_monotone_and_sweep_agrees() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(6 << 32 | seed);
        let db = MonetDb::from_document(&random_tree(&mut rng));
        let picks = rng.random_range(2usize..16);
        let inputs = random_inputs(&mut rng, &db, 2, picks);
        let delta = rng.random_range(0usize..12);
        let opts = MeetOptions {
            max_distance: Some(delta),
            ..MeetOptions::default()
        };
        let bounded = meet_multi(&db, &inputs, &opts);
        for m in &bounded {
            assert!(m.distance <= delta, "seed {seed}");
            assert!(m.witness_count >= 2, "seed {seed}");
        }
        let indexed = meet_multi_indexed(&db, &inputs, &opts);
        let key = |ms: &[ncq_core::Meet]| {
            ms.iter()
                .map(|m| (m.node, m.distance, m.witness_count))
                .collect::<Vec<_>>()
        };
        assert_eq!(key(&bounded), key(&indexed), "seed {seed} δ={delta}");
    }
}
