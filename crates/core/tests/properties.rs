//! Property-based tests of the meet operator family on random trees.

use ncq_core::{meet2, meet2_naive, meet_multi, meet_sets, MeetOptions};
use ncq_fulltext::HitSet;
use ncq_store::{MonetDb, Oid};
use ncq_xml::{Document, NodeId};
use proptest::prelude::*;
use std::collections::HashSet;

/// Random tree: a parent-pointer recipe. `parents[i]` chooses the parent
/// of node `i+1` among the already-created nodes `0..=i`.
fn tree_recipe() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0usize..1000, 1..120)
}

/// Build a document from the recipe: node i+1 hangs under
/// `parents[i] % (i+1)`. Tags cycle through a small vocabulary so that
/// path summaries stay non-trivial; every node gets a text child with a
/// unique term so full-text hits can address any node.
fn build(recipe: &[usize]) -> (Document, Vec<NodeId>) {
    const TAGS: [&str; 5] = ["a", "b", "c", "d", "e"];
    let mut doc = Document::new("root");
    let mut nodes = vec![doc.root()];
    for (i, &p) in recipe.iter().enumerate() {
        let parent = nodes[p % nodes.len()];
        let n = doc.add_element(parent, TAGS[i % TAGS.len()]);
        nodes.push(n);
    }
    (doc, nodes)
}

/// Independent LCA reference: intersect full ancestor lists.
fn reference_lca(db: &MonetDb, a: Oid, b: Oid) -> (Oid, usize) {
    let anc_a: Vec<Oid> = db.ancestors(a).collect();
    let set_a: HashSet<Oid> = anc_a.iter().copied().collect();
    for (climb_b, anc) in db.ancestors(b).enumerate() {
        if set_a.contains(&anc) {
            let climb_a = anc_a.iter().position(|&x| x == anc).unwrap();
            return (anc, climb_a + climb_b);
        }
    }
    unreachable!("all nodes share the root");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Steered meet2 equals the ancestor-set reference and the naive
    /// baseline, with exact distances.
    #[test]
    fn meet2_matches_reference(recipe in tree_recipe(), pairs in prop::collection::vec((0usize..1000, 0usize..1000), 1..20)) {
        let (doc, _) = build(&recipe);
        let db = MonetDb::from_document(&doc);
        let n = db.node_count();
        for (x, y) in pairs {
            let a = Oid::from_index(x % n);
            let b = Oid::from_index(y % n);
            let (ref_meet, ref_dist) = reference_lca(&db, a, b);
            let steered = meet2(&db, a, b);
            let naive = meet2_naive(&db, a, b);
            prop_assert_eq!(steered.meet, ref_meet);
            prop_assert_eq!(steered.distance, ref_dist);
            prop_assert_eq!(naive.meet, ref_meet);
            prop_assert_eq!(naive.distance, ref_dist);
            prop_assert_eq!(steered.lookups, steered.distance);
        }
    }

    /// meet2 algebra: commutative, idempotent, absorbs ancestors.
    #[test]
    fn meet2_algebraic_laws(recipe in tree_recipe(), x in 0usize..1000, y in 0usize..1000) {
        let (doc, _) = build(&recipe);
        let db = MonetDb::from_document(&doc);
        let n = db.node_count();
        let a = Oid::from_index(x % n);
        let b = Oid::from_index(y % n);
        prop_assert_eq!(meet2(&db, a, b).meet, meet2(&db, b, a).meet);
        prop_assert_eq!(meet2(&db, a, a).meet, a);
        let m = meet2(&db, a, b).meet;
        // The meet is a common ancestor…
        prop_assert!(db.is_ancestor_or_self(m, a));
        prop_assert!(db.is_ancestor_or_self(m, b));
        // …and meeting with it is absorbing.
        prop_assert_eq!(meet2(&db, a, m).meet, m);
        prop_assert_eq!(meet2(&db, m, b).meet, m);
    }

    /// Set meet on singletons coincides with meet2.
    #[test]
    fn meet_sets_singletons_match_meet2(recipe in tree_recipe(), x in 0usize..1000, y in 0usize..1000) {
        let (doc, _) = build(&recipe);
        let db = MonetDb::from_document(&doc);
        let n = db.node_count();
        let a = Oid::from_index(x % n);
        let b = Oid::from_index(y % n);
        let sm = meet_sets(&db, &[a], &[b]).unwrap();
        prop_assert_eq!(sm.meets.len(), 1);
        prop_assert_eq!(sm.meets[0].0, meet2(&db, a, b).meet);
    }

    /// Every meet_sets result is a common ancestor of at least one element
    /// from each input set, and results are pairwise non-nested…
    /// (minimality: removing witnesses prevents ancestor results).
    #[test]
    fn meet_sets_results_are_minimal(recipe in tree_recipe(), seed in any::<u64>()) {
        let (doc, _) = build(&recipe);
        let db = MonetDb::from_document(&doc);
        // Two homogeneous sets: pick the two most populated paths.
        let mut by_path: std::collections::HashMap<_, Vec<Oid>> = Default::default();
        for o in db.iter_oids() {
            by_path.entry(db.sigma(o)).or_default().push(o);
        }
        let mut groups: Vec<Vec<Oid>> = by_path.into_values().collect();
        groups.sort_by_key(|g| std::cmp::Reverse(g.len()));
        prop_assume!(groups.len() >= 2);
        let s1 = &groups[0];
        let s2 = &groups[seed as usize % (groups.len() - 1) + 1];
        let result = meet_sets(&db, s1, s2).unwrap();
        for &(m, _) in &result.meets {
            // Each meet covers at least one element of each input.
            prop_assert!(s1.iter().any(|&o| db.is_ancestor_or_self(m, o)));
            prop_assert!(s2.iter().any(|&o| db.is_ancestor_or_self(m, o)));
        }
    }

    /// meet_multi invariants: witnesses' pairwise LCA is exactly the meet
    /// node; the reported distance is the closest witness pair's distance;
    /// every hit is consumed by exactly one meet, except at most one lone
    /// survivor (which dies at the root).
    #[test]
    fn meet_multi_witness_invariants(recipe in tree_recipe(), picks in prop::collection::vec((0usize..1000, 0usize..4), 2..24)) {
        let (doc, _) = build(&recipe);
        let db = MonetDb::from_document(&doc);
        let n = db.node_count();
        // Build up to 4 hit groups from random nodes.
        let mut groups: Vec<Vec<(ncq_store::PathId, Oid)>> = vec![Vec::new(); 4];
        for (x, g) in picks {
            let o = Oid::from_index(x % n);
            groups[g].push((db.sigma(o), o));
        }
        let inputs: Vec<HitSet> = groups
            .iter()
            .map(|g| HitSet::from_pairs(g.iter().copied()))
            .collect();
        let total_hits: usize = inputs.iter().map(HitSet::len).sum();

        let opts = MeetOptions { witness_cap: 64, ..MeetOptions::default() };
        let meets = meet_multi(&db, &inputs, &opts);

        let mut consumed = 0usize;
        for m in &meets {
            prop_assert!(m.witness_count >= 2);
            consumed += m.witness_count;
            // Witness sample is complete thanks to the high cap.
            prop_assert_eq!(m.witnesses.len(), m.witness_count);
            let mut best = usize::MAX;
            for (i, w1) in m.witnesses.iter().enumerate() {
                // climb is the real tree distance origin → meet.
                let (lca_om, d_om) = reference_lca(&db, w1.origin, m.node);
                prop_assert_eq!(lca_om, m.node);
                prop_assert_eq!(d_om, w1.climb);
                for w2 in m.witnesses.iter().skip(i + 1) {
                    if (w1.origin, w1.input) == (w2.origin, w2.input) { continue; }
                    let (lca, d) = reference_lca(&db, w1.origin, w2.origin);
                    prop_assert_eq!(lca, m.node, "witness pair LCA must be the meet");
                    best = best.min(d);
                }
            }
            prop_assert_eq!(m.distance, best);
        }
        // Conservation: all hits consumed, minus at most one lone token.
        prop_assert!(total_hits - consumed <= 1, "hits={total_hits} consumed={consumed}");
    }

    /// meet_multi is invariant under permutation of the input groups.
    #[test]
    fn meet_multi_is_order_invariant(recipe in tree_recipe(), picks in prop::collection::vec((0usize..1000, 0usize..3), 2..18)) {
        let (doc, _) = build(&recipe);
        let db = MonetDb::from_document(&doc);
        let n = db.node_count();
        let mut groups: Vec<Vec<(ncq_store::PathId, Oid)>> = vec![Vec::new(); 3];
        for (x, g) in picks {
            let o = Oid::from_index(x % n);
            groups[g].push((db.sigma(o), o));
        }
        let inputs: Vec<HitSet> = groups.iter().map(|g| HitSet::from_pairs(g.iter().copied())).collect();
        let meets_fwd = meet_multi(&db, &inputs, &MeetOptions::default());
        let inputs_rev: Vec<HitSet> = inputs.iter().rev().cloned().collect();
        let meets_rev = meet_multi(&db, &inputs_rev, &MeetOptions::default());
        let a: Vec<(Oid, usize, usize)> = meets_fwd.iter().map(|m| (m.node, m.distance, m.witness_count)).collect();
        let b: Vec<(Oid, usize, usize)> = meets_rev.iter().map(|m| (m.node, m.distance, m.witness_count)).collect();
        prop_assert_eq!(a, b);
    }

    /// The distance bound meet^δ only ever removes answers, and every
    /// surviving answer respects the bound.
    #[test]
    fn max_distance_is_monotone(recipe in tree_recipe(), picks in prop::collection::vec((0usize..1000, 0usize..2), 2..16), delta in 0usize..12) {
        let (doc, _) = build(&recipe);
        let db = MonetDb::from_document(&doc);
        let n = db.node_count();
        let mut groups: Vec<Vec<(ncq_store::PathId, Oid)>> = vec![Vec::new(); 2];
        for (x, g) in picks {
            let o = Oid::from_index(x % n);
            groups[g].push((db.sigma(o), o));
        }
        let inputs: Vec<HitSet> = groups.iter().map(|g| HitSet::from_pairs(g.iter().copied())).collect();
        let unbounded = meet_multi(&db, &inputs, &MeetOptions::default());
        let bounded = meet_multi(&db, &inputs, &MeetOptions { max_distance: Some(delta), ..MeetOptions::default() });
        for m in &bounded {
            prop_assert!(m.distance <= delta);
        }
        // Bounded answers are a subset of unbounded ones *in node terms*
        // only when no re-pairing happened; the robust check: bounded
        // finds no more answers than unbounded has hits to explain.
        let unbounded_nodes: HashSet<Oid> = unbounded.iter().map(|m| m.node).collect();
        for m in &bounded {
            // Each bounded meet is an LCA of ≥2 hits, so the unbounded run
            // either reports it or consumed its witnesses deeper/equal.
            let _ = &unbounded_nodes;
            prop_assert!(m.witness_count >= 2);
        }
    }
}
