//! Distance calculation and the distance-bounded meet (`meet^δ`, §4).
//!
//! > "the number of joins executed while calculating `meet₂(o₁, o₂)`
//! > corresponds to the number of edges on the shortest path from `o₁`
//! > to `o₂`. So we can define `d(o₁, o₂)` = number of joins …"

use crate::meet2::{meet2_indexed, Meet2};
use ncq_store::{MonetDb, Oid};

/// Number of edges on the shortest path between two nodes (through their
/// meet) — the paper's `d(o₁, o₂)`. Served by the O(1) indexed meet; the
/// value is identical to what the steered walk would count.
pub fn distance(db: &MonetDb, o1: Oid, o2: Oid) -> usize {
    meet2_indexed(db, o1, o2).distance
}

/// `meet^δ`: the pairwise meet, or `None` ("⊥") when the nodes are more
/// than `max_distance` edges apart.
pub fn meet2_bounded(db: &MonetDb, o1: Oid, o2: Oid, max_distance: usize) -> Option<Meet2> {
    let m = meet2_indexed(db, o1, o2);
    (m.distance <= max_distance).then_some(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncq_store::MonetDb;
    use ncq_xml::parse;

    fn db() -> MonetDb {
        MonetDb::from_document(&parse("<r><a><b><c>x</c></b></a><d>y</d></r>").unwrap())
    }

    fn by_label(db: &MonetDb, l: &str) -> Oid {
        db.iter_oids().find(|&o| db.label(o) == l).unwrap()
    }

    #[test]
    fn distance_is_shortest_path_length() {
        let db = db();
        let c = by_label(&db, "c");
        let d = by_label(&db, "d");
        // c → b → a → r → d = 4 edges.
        assert_eq!(distance(&db, c, d), 4);
        assert_eq!(distance(&db, c, c), 0);
        assert_eq!(distance(&db, c, by_label(&db, "b")), 1);
    }

    #[test]
    fn distance_is_symmetric() {
        let db = db();
        for a in db.iter_oids() {
            for b in db.iter_oids() {
                assert_eq!(distance(&db, a, b), distance(&db, b, a));
            }
        }
    }

    #[test]
    fn distance_satisfies_triangle_inequality() {
        let db = db();
        let oids: Vec<Oid> = db.iter_oids().collect();
        for &a in &oids {
            for &b in &oids {
                for &c in &oids {
                    assert!(distance(&db, a, c) <= distance(&db, a, b) + distance(&db, b, c));
                }
            }
        }
    }

    #[test]
    fn bounded_meet_returns_bottom_beyond_delta() {
        let db = db();
        let c = by_label(&db, "c");
        let d = by_label(&db, "d");
        assert!(meet2_bounded(&db, c, d, 3).is_none());
        let m = meet2_bounded(&db, c, d, 4).unwrap();
        assert_eq!(m.meet, db.root());
        assert!(meet2_bounded(&db, c, c, 0).is_some());
    }
}
