//! Shared-evaluation batch sweeps.
//!
//! The server's batch window (PR 2) already amortizes *term decodes*
//! across concurrent queries; this module amortizes *evaluation*. A
//! batch of meet queries usually shares hit sets (popular terms recur),
//! and the dominant cost of the indexed sweep is putting every hit in
//! document order. So the batch executor:
//!
//! 1. decodes each **distinct** hit set into a document-order sorted
//!    oid run exactly once per batch (identity by `&HitSet` address —
//!    the server's term cache hands out shared `Arc<HitSet>`s, so equal
//!    terms are pointer-equal);
//! 2. builds each query's item list by a tagged multiway merge of its
//!    inputs' pre-sorted runs — ties take the lower input index,
//!    reproducing `sort_unstable` on `(oid, input)` exactly;
//! 3. evaluates duplicate queries (same inputs, same options) once and
//!    clones the result;
//! 4. runs the very same per-query core as the serial path
//!    ([`meet_multi_items`]), then ranks and truncates exactly like
//!    [`Database::meet_hits`].
//!
//! Because step 4 is *the same code on the same item order*, batched
//! answers are byte-identical to one-at-a-time evaluation by
//! construction; `tests/batch_equivalence.rs` proves it differentially.

use crate::meet_multi::{meet_multi, meet_multi_items, Meet, MeetOptions};
use crate::planner::ChosenStrategy;
use crate::rank::rank_meets;
use crate::Database;
use crate::MeetStrategy;
use ncq_fulltext::HitSet;
use ncq_store::Oid;
use std::collections::HashMap;

/// One query of a batch: exactly the arguments of
/// [`crate::MeetBackend::meet_hit_groups`].
#[derive(Debug)]
pub struct BatchQuery<'a> {
    /// The hit groups to meet, in input order (witness `input` indices
    /// are positions in this list).
    pub inputs: Vec<&'a HitSet>,
    /// Per-query options (filter, distance bound, strategy, limit).
    pub options: MeetOptions,
}

impl<'a> BatchQuery<'a> {
    /// Convenience constructor.
    pub fn new(inputs: Vec<&'a HitSet>, options: MeetOptions) -> BatchQuery<'a> {
        BatchQuery { inputs, options }
    }

    /// Same inputs (by address) and same options: safe to evaluate once.
    fn same_as(&self, other: &BatchQuery<'_>) -> bool {
        self.options == other.options
            && self.inputs.len() == other.inputs.len()
            && self
                .inputs
                .iter()
                .zip(&other.inputs)
                .all(|(a, b)| std::ptr::eq(*a, *b))
    }
}

/// Merge pre-sorted per-input oid runs into one `(oid, input)` list.
/// Ties take the lower input index — exactly the order
/// `sort_unstable` gives the serial path's flattened items.
///
/// With a SIMD mode active, each `(oid, input)` pair is packed into a
/// `u64` (`oid` high, tag low — packed order *is* `(Oid, u32)` lex
/// order) and the runs go through the vectorized pairwise merge tree;
/// under `NCQ_SIMD=off` the original k-way scan runs unchanged. Small
/// merges (under ~256 items total) skip the pack/unpack round trip —
/// at that size it costs more than the lanes recover.
fn merge_tagged(runs: &[&[Oid]]) -> Vec<(Oid, u32)> {
    const VECTOR_MIN: usize = 256;
    let total_len: usize = runs.iter().map(|r| r.len()).sum();
    if total_len >= VECTOR_MIN && ncq_simd::mode() != ncq_simd::Mode::Scalar {
        let packed: Vec<Vec<u64>> = runs
            .iter()
            .enumerate()
            .map(|(tag, run)| {
                run.iter()
                    .map(|o| (o.raw() as u64) << 32 | tag as u64)
                    .collect()
            })
            .collect();
        let refs: Vec<&[u64]> = packed.iter().map(Vec::as_slice).collect();
        let mut merged = Vec::new();
        ncq_simd::merge_tagged_u64(&refs, &mut merged);
        return merged
            .into_iter()
            .map(|v| (Oid::from_raw((v >> 32) as u32), v as u32))
            .collect();
    }
    let total: usize = runs.iter().map(|r| r.len()).sum();
    let mut out = Vec::with_capacity(total);
    let mut cursor = vec![0usize; runs.len()];
    loop {
        let mut next: Option<(Oid, usize)> = None;
        for (i, run) in runs.iter().enumerate() {
            if let Some(&o) = run.get(cursor[i]) {
                if next.is_none_or(|(best, _)| o < best) {
                    next = Some((o, i));
                }
            }
        }
        let Some((o, i)) = next else { break };
        out.push((o, i as u32));
        cursor[i] += 1;
    }
    out
}

/// Registry handle for the batch-window-size histogram.
fn batch_size_histogram() -> &'static std::sync::Arc<ncq_obs::Histogram> {
    static H: std::sync::OnceLock<std::sync::Arc<ncq_obs::Histogram>> = std::sync::OnceLock::new();
    H.get_or_init(|| ncq_obs::obs().registry.histogram("ncq_batch_size"))
}

/// The batch executor behind [`Database::meet_hits_batch`].
pub fn meet_hits_batch(db: &Database, queries: &[BatchQuery<'_>]) -> Vec<Vec<Meet>> {
    if ncq_obs::obs().enabled() && !queries.is_empty() {
        batch_size_histogram().record(queries.len() as u64);
    }
    let _span = ncq_obs::trace::span("meet_batch");
    ncq_obs::trace::annotate("batch", queries.len().to_string());
    // A batch of one is just the serial path — no shared work to find.
    if queries.len() == 1 {
        let q = &queries[0];
        return vec![db.meet_hits(&q.inputs, &q.options)];
    }

    // Distinct hit sets across the batch, decoded lazily: address →
    // document-order sorted oids. Per-path groups inside a HitSet are
    // already sorted; the flatten+sort is paid once per distinct set.
    let mut runs: HashMap<usize, Vec<Oid>> = HashMap::new();

    let mut results: Vec<Option<Vec<Meet>>> = Vec::with_capacity(queries.len());
    for (qi, q) in queries.iter().enumerate() {
        // Duplicate of an earlier query: clone its answer.
        if let Some(prev) = (0..qi).find(|&p| queries[p].same_as(q)) {
            let prior = results[prev].clone();
            results.push(prior);
            continue;
        }
        // The planner decision is per query and identical to the
        // serial path's — batching never changes the chosen strategy.
        let chosen = match q.options.strategy {
            MeetStrategy::Auto => db.planner().plan_multi(&q.inputs).strategy,
            MeetStrategy::Lift => ChosenStrategy::Lift,
            MeetStrategy::Sweep => ChosenStrategy::Sweep,
        };
        let mut meets = match chosen {
            // The roll-up climbs tokens path-by-path; there is no sort
            // to share. The planner only picks it for tiny inputs.
            ChosenStrategy::Lift => meet_multi(db.store(), &q.inputs, &q.options),
            ChosenStrategy::Sweep => {
                for &h in &q.inputs {
                    runs.entry(std::ptr::from_ref(h) as usize)
                        .or_insert_with(|| {
                            let mut oids: Vec<Oid> = h.iter().map(|(_, o)| o).collect();
                            oids.sort_unstable();
                            oids
                        });
                }
                let query_runs: Vec<&[Oid]> = q
                    .inputs
                    .iter()
                    .map(|&h| runs[&(std::ptr::from_ref(h) as usize)].as_slice())
                    .collect();
                let items = merge_tagged(&query_runs);
                meet_multi_items(db.store(), &items, &q.options)
            }
        };
        rank_meets(&mut meets);
        if let Some(k) = q.options.limit {
            meets.truncate(k);
        }
        results.push(Some(meets));
    }
    results
        .into_iter()
        .map(|r| r.expect("every query resolves to an answer"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIGURE1: &str = r#"
<bibliography>
  <institute>
    <article key="BB99">
      <author><firstname>Ben</firstname><lastname>Bit</lastname></author>
      <title>How to Hack</title>
      <year>1999</year>
    </article>
    <article key="BK99">
      <author>Bob Byte</author>
      <title>Hacking &amp; RSI</title>
      <year>1999</year>
    </article>
  </institute>
</bibliography>"#;

    #[test]
    fn batched_matches_serial_on_overlapping_terms() {
        let db = Database::from_xml_str(FIGURE1).unwrap();
        let bit = db.search("Bit");
        let y99 = db.search("1999");
        let ben = db.search("Ben");
        let queries = vec![
            BatchQuery::new(vec![&bit, &y99], MeetOptions::default()),
            BatchQuery::new(vec![&ben, &bit], MeetOptions::default()),
            BatchQuery::new(vec![&bit, &y99], MeetOptions::default()),
            BatchQuery::new(
                vec![&y99, &ben, &bit],
                MeetOptions {
                    strategy: MeetStrategy::Sweep,
                    ..MeetOptions::default()
                },
            ),
        ];
        let batched = db.meet_hits_batch(&queries);
        for (q, got) in queries.iter().zip(&batched) {
            assert_eq!(got, &db.meet_hits(&q.inputs, &q.options));
        }
        // The duplicate pair really is byte-identical.
        assert_eq!(batched[0], batched[2]);
    }

    #[test]
    fn merge_tagged_matches_sort_unstable() {
        let a = [3usize, 5, 9].map(Oid::from_index);
        let b = [1usize, 5, 7].map(Oid::from_index);
        let merged = merge_tagged(&[&a, &b]);
        let mut flat: Vec<(Oid, u32)> = a
            .iter()
            .map(|&o| (o, 0u32))
            .chain(b.iter().map(|&o| (o, 1u32)))
            .collect();
        flat.sort_unstable();
        assert_eq!(merged, flat);
    }

    #[test]
    fn empty_batch_is_fine() {
        let db = Database::from_xml_str(FIGURE1).unwrap();
        assert!(db.meet_hits_batch(&[]).is_empty());
    }
}
