//! Answer ranking (§4).
//!
//! > "The number of joins is also a simple yet effective heuristic for
//! > establishing a ranking between the result OIDs."
//!
//! Meets whose witnesses lie closer together rank higher. Ties break
//! toward more witnesses (a concept explaining more hits is more
//! interesting), then document order for determinism. The paper mentions
//! thesauri and IR techniques as future work — [`rank_meets_by`] is the
//! hook where such scoring plugs in.

use crate::meet_multi::Meet;

/// Rank in-place by the paper's join-count heuristic.
pub fn rank_meets(meets: &mut [Meet]) {
    meets.sort_by(|a, b| {
        a.distance
            .cmp(&b.distance)
            .then(b.witness_count.cmp(&a.witness_count))
            .then(a.node.cmp(&b.node))
    });
}

/// Rank by a custom score (lower is better), stable within equal scores.
pub fn rank_meets_by<S: Ord>(meets: &mut [Meet], mut score: impl FnMut(&Meet) -> S) {
    meets.sort_by_key(|m| score(m));
}

/// The paper's second heuristic: "it is worthwhile to apply additional
/// heuristics like **distances in the source file**". OIDs are assigned
/// in document order, so the span of witness origins approximates their
/// spread in the source text; tighter spans rank first, tree distance
/// breaks ties.
pub fn rank_meets_by_source_proximity(meets: &mut [Meet]) {
    meets.sort_by_key(|m| {
        let min = m.witnesses.iter().map(|w| w.origin).min();
        let max = m.witnesses.iter().map(|w| w.origin).max();
        let span = match (min, max) {
            (Some(a), Some(b)) => b.index() - a.index(),
            _ => usize::MAX,
        };
        (span, m.distance, m.node)
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meet_multi::MeetWitness;
    use ncq_store::{Oid, PathId};

    fn meet(node: usize, distance: usize, witnesses: usize) -> Meet {
        Meet {
            node: Oid::from_index(node),
            path: PathId::from_index(0),
            distance,
            witness_count: witnesses,
            witnesses: (0..witnesses.min(2))
                .map(|i| MeetWitness {
                    origin: Oid::from_index(100 + i),
                    input: i,
                    climb: distance / 2,
                })
                .collect(),
        }
    }

    #[test]
    fn closer_meets_rank_first() {
        let mut v = vec![meet(1, 9, 2), meet(2, 1, 2), meet(3, 4, 2)];
        rank_meets(&mut v);
        let order: Vec<usize> = v.iter().map(|m| m.node.index()).collect();
        assert_eq!(order, vec![2, 3, 1]);
    }

    #[test]
    fn more_witnesses_break_distance_ties() {
        let mut v = vec![meet(1, 3, 2), meet(2, 3, 5)];
        rank_meets(&mut v);
        assert_eq!(v[0].node.index(), 2);
    }

    #[test]
    fn document_order_breaks_remaining_ties() {
        let mut v = vec![meet(9, 3, 2), meet(4, 3, 2)];
        rank_meets(&mut v);
        assert_eq!(v[0].node.index(), 4);
    }

    #[test]
    fn custom_scores_override() {
        let mut v = vec![meet(1, 1, 1), meet(2, 9, 9)];
        // Prefer many witnesses regardless of distance.
        rank_meets_by(&mut v, |m| std::cmp::Reverse(m.witness_count));
        assert_eq!(v[0].node.index(), 2);
    }

    fn meet_with_origins(node: usize, distance: usize, origins: &[usize]) -> Meet {
        Meet {
            node: Oid::from_index(node),
            path: PathId::from_index(0),
            distance,
            witness_count: origins.len(),
            witnesses: origins
                .iter()
                .enumerate()
                .map(|(i, &o)| MeetWitness {
                    origin: Oid::from_index(o),
                    input: i,
                    climb: 1,
                })
                .collect(),
        }
    }

    #[test]
    fn source_proximity_prefers_tight_spans() {
        // Meet 1: witnesses far apart in the source; meet 2: adjacent.
        let mut v = vec![
            meet_with_origins(1, 2, &[10, 500]),
            meet_with_origins(2, 9, &[100, 103]),
        ];
        rank_meets_by_source_proximity(&mut v);
        assert_eq!(v[0].node.index(), 2, "tight source span wins");
    }

    #[test]
    fn source_proximity_falls_back_to_distance() {
        let mut v = vec![
            meet_with_origins(1, 9, &[10, 20]),
            meet_with_origins(2, 2, &[100, 110]),
        ];
        rank_meets_by_source_proximity(&mut v);
        // Equal spans (10): tree distance decides.
        assert_eq!(v[0].node.index(), 2);
    }

    #[test]
    fn empty_slice_is_fine() {
        let mut v: Vec<Meet> = Vec::new();
        rank_meets(&mut v);
        assert!(v.is_empty());
    }
}
