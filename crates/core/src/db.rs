//! The [`Database`] facade: parse → Monet transform → index → meet.
//!
//! This is the "search engine add-on" deployment of the paper's
//! conclusion: the meet operator "can serve as a sensible and valuable
//! add-on to an already existing search engine for semi-structured or XML
//! data that comes at little cost".

use crate::answer::AnswerSet;
use crate::meet2::{meet2_indexed, Meet2};
use crate::meet_multi::{Meet, MeetOptions};
use crate::meet_sets::{MeetError, SetMeets};
use crate::planner::{MeetPlanner, MeetStrategy, PlanDecision};
use crate::rank::rank_meets;
use ncq_fulltext::{search, HitSet, InvertedIndex};
use ncq_store::snapshot::{SnapshotError, SnapshotReader, SnapshotSource, SnapshotWriter};
use ncq_store::{MonetDb, Oid, SnapshotWriterV3};
use ncq_xml::{Document, ParseError};
use std::path::Path;

/// A queryable XML database: storage, full-text index and meet operators
/// behind one handle.
#[derive(Debug, Clone)]
pub struct Database {
    store: MonetDb,
    index: InvertedIndex,
}

/// Registry handles for the snapshot-open telemetry: open latency plus
/// one counter per open style, so METRICS can tell mapped (v3 zero-copy)
/// cold starts from materialized (legacy decode / no-mmap) ones.
fn snapshot_open_metrics() -> &'static (
    std::sync::Arc<ncq_obs::Histogram>,
    std::sync::Arc<ncq_obs::Counter>,
    std::sync::Arc<ncq_obs::Counter>,
) {
    static M: std::sync::OnceLock<(
        std::sync::Arc<ncq_obs::Histogram>,
        std::sync::Arc<ncq_obs::Counter>,
        std::sync::Arc<ncq_obs::Counter>,
    )> = std::sync::OnceLock::new();
    M.get_or_init(|| {
        let registry = &ncq_obs::obs().registry;
        (
            registry.histogram("ncq_snapshot_open_ns"),
            registry.counter("ncq_snapshot_mapped_total"),
            registry.counter("ncq_snapshot_materialized_total"),
        )
    })
}

/// Record one snapshot open: latency into the histogram, one tick on
/// the mapped or materialized counter. `pub(crate)` so every cold-start
/// entry point (database, sharded, catalog) reports through one funnel.
pub(crate) fn record_snapshot_open(started: std::time::Instant, mapped: bool) {
    let (open_ns, mapped_total, materialized_total) = snapshot_open_metrics();
    open_ns.record(started.elapsed().as_nanos() as u64);
    if mapped {
        mapped_total.inc();
    } else {
        materialized_total.inc();
    }
}

impl Database {
    /// Parse an XML string and load it.
    pub fn from_xml_str(xml: &str) -> Result<Database, ParseError> {
        Ok(Database::from_document(&ncq_xml::parse(xml)?))
    }

    /// Load an already-parsed document.
    pub fn from_document(doc: &Document) -> Database {
        let store = MonetDb::from_document(doc);
        let index = InvertedIndex::build(&store);
        Database { store, index }
    }

    /// The underlying Monet transform.
    pub fn store(&self) -> &MonetDb {
        &self.store
    }

    // ----- persistence -----
    //
    // The versioned snapshot container is `ncq_store::snapshot`; the
    // facade stacks the full-text section on the store's sections so
    // one file cold-starts the whole engine with no parse, no meet
    // index DFS and no re-tokenization.

    /// Serialize the whole engine into a **legacy** (v1) snapshot
    /// writer. Exposed so execution layers with extra state (e.g. a
    /// shard partition map) can append their own sections before
    /// writing the file, and so compatibility tests can mint
    /// old-generation files.
    pub fn encode_snapshot(&self) -> SnapshotWriter {
        let mut writer = SnapshotWriter::new();
        self.store.encode_snapshot(&mut writer);
        self.index.encode_snapshot(&mut writer);
        writer
    }

    /// Serialize the whole engine into a v3 snapshot writer: every
    /// section in final form, so opening the file is mmap + checksum +
    /// pointer fixup. This is what [`Database::save_snapshot`] writes.
    pub fn encode_snapshot_v3(&self) -> SnapshotWriterV3 {
        let mut writer = SnapshotWriterV3::new();
        self.store.encode_snapshot_v3(&mut writer);
        self.index.encode_snapshot_v3(&mut writer);
        writer
    }

    /// Reconstruct an engine from a verified **legacy** snapshot
    /// reader.
    pub fn decode_snapshot(reader: &SnapshotReader) -> Result<Database, SnapshotError> {
        let store = MonetDb::decode_snapshot(reader)?;
        let index = InvertedIndex::decode_snapshot(reader, &store)?;
        Ok(Database { store, index })
    }

    fn decode_source_untimed(source: &SnapshotSource) -> Result<Database, SnapshotError> {
        match source {
            SnapshotSource::Legacy(reader) => Database::decode_snapshot(reader),
            SnapshotSource::Mapped(snap) => {
                let store = MonetDb::decode_snapshot_v3(snap)?;
                let index = InvertedIndex::decode_snapshot_v3(snap, &store)?;
                Ok(Database { store, index })
            }
        }
    }

    /// Reconstruct an engine from an already-opened snapshot of either
    /// generation: legacy files decode section by section, v3 files fix
    /// up zero-copy views over the mapped (or owned) arena.
    pub fn decode_from(source: &SnapshotSource) -> Result<Database, SnapshotError> {
        let started = std::time::Instant::now();
        let db = Database::decode_source_untimed(source)?;
        record_snapshot_open(started, source.is_mapped());
        Ok(db)
    }

    /// Save a snapshot file (atomic rename; deterministic bytes; v3
    /// layout).
    pub fn save_snapshot(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        self.encode_snapshot_v3().write_to(path.as_ref())
    }

    /// Cold-start from a snapshot file. A v3 file is mmapped and served
    /// zero-copy — microseconds of header/table checksums and pointer
    /// fixup instead of the parse → transform → index build pipeline;
    /// legacy (v1/v2) files take the materializing decode. Version
    /// dispatch is automatic; set `NCQ_NO_MMAP=1` to force the owned
    /// in-memory arena for v3 files.
    pub fn open_snapshot(path: impl AsRef<Path>) -> Result<Database, SnapshotError> {
        let started = std::time::Instant::now();
        let source = SnapshotSource::open(path.as_ref())?;
        let db = Database::decode_source_untimed(&source)?;
        record_snapshot_open(started, source.is_mapped());
        Ok(db)
    }

    /// The snapshot as in-memory bytes (tests and tooling; v3 layout).
    pub fn snapshot_to_bytes(&self) -> Vec<u8> {
        self.encode_snapshot_v3().to_bytes()
    }

    /// Decode an engine from in-memory snapshot bytes of either
    /// generation.
    pub fn from_snapshot_bytes(bytes: Vec<u8>) -> Result<Database, SnapshotError> {
        Database::decode_from(&SnapshotSource::from_bytes(bytes)?)
    }

    /// The underlying inverted index.
    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    // ----- full-text entry points -----

    /// Hits for one term (word, phrase or substring — see
    /// [`search::term_hits`]).
    pub fn search(&self, term: &str) -> HitSet {
        search::term_hits(&self.store, &self.index, term)
    }

    /// Hits for a whole word only (pure index lookup).
    pub fn search_word(&self, word: &str) -> HitSet {
        search::word_hits(&self.index, word)
    }

    /// Hits by substring scan (the `contains` predicate).
    pub fn search_contains(&self, needle: &str) -> HitSet {
        search::substring_hits(&self.store, needle)
    }

    /// Hits broadened by a thesaurus (paper §4: "thesauri are a promising
    /// tool … especially to broaden a search that returned too few
    /// answers").
    pub fn search_expanded(&self, term: &str, thesaurus: &ncq_fulltext::Thesaurus) -> HitSet {
        ncq_fulltext::expanded_hits(&self.store, &self.index, thesaurus, term)
    }

    // ----- meet entry points -----
    //
    // The facade serves every meet through the depth-aware
    // [`MeetPlanner`]: shallow inputs keep the paper's frontier
    // lift/roll-up, deep inputs take the indexed plane sweep (O(1) LCA
    // over the Euler-tour index). The raw operators in `meet2` /
    // `meet_sets` / `meet_multi` remain the fixed strategies the
    // ablations measure against.

    /// The depth-aware planner over this database.
    pub fn planner(&self) -> MeetPlanner<'_> {
        MeetPlanner::new(&self.store)
    }

    /// Pairwise meet (paper Fig. 3), via the O(1) indexed fast path.
    pub fn meet_pair(&self, o1: Oid, o2: Oid) -> Meet2 {
        meet2_indexed(&self.store, o1, o2)
    }

    /// Set meet over two homogeneous OID sets (paper Fig. 4), with the
    /// planner choosing between frontier lift and plane sweep.
    ///
    /// Errors with [`MeetError::EmptyInput`] when either set is empty.
    pub fn meet_oid_sets(&self, s1: &[Oid], s2: &[Oid]) -> Result<SetMeets, MeetError> {
        self.meet_oid_sets_with(s1, s2, MeetStrategy::Auto)
    }

    /// [`Database::meet_oid_sets`] with an explicit strategy override.
    pub fn meet_oid_sets_with(
        &self,
        s1: &[Oid],
        s2: &[Oid],
        strategy: MeetStrategy,
    ) -> Result<SetMeets, MeetError> {
        self.planner().meet_sets(s1, s2, strategy)
    }

    /// The plan [`Database::meet_oid_sets`] would execute, without
    /// running it.
    pub fn plan_oid_sets(&self, s1: &[Oid], s2: &[Oid]) -> Result<PlanDecision, MeetError> {
        self.planner().plan_sets(s1, s2)
    }

    /// Generalized meet over hit groups (paper Fig. 5), ranked. The
    /// planner picks roll-up or indexed sweep;
    /// [`MeetOptions::strategy`] forces either. Inputs are accepted
    /// through any [`std::borrow::Borrow`]-able holder (`HitSet`,
    /// `&HitSet`, `Arc<HitSet>`), so shared caches need no deep copy.
    pub fn meet_hits<H: std::borrow::Borrow<HitSet>>(
        &self,
        inputs: &[H],
        options: &MeetOptions,
    ) -> Vec<Meet> {
        let _span = ncq_obs::trace::span("meet_eval");
        let mut meets = self.planner().meet_multi(inputs, options);
        rank_meets(&mut meets);
        if let Some(k) = options.limit {
            meets.truncate(k);
        }
        meets
    }

    /// A whole batch of meet queries with **shared evaluation**: hit
    /// sets appearing in several queries (the common case under the
    /// server's batch window, where concurrent queries share terms) are
    /// decoded and document-order sorted once, and each query's sweep
    /// runs over merged pre-sorted runs instead of re-sorting from
    /// scratch. Answers are byte-identical to calling
    /// [`Database::meet_hits`] once per query — the differential suite
    /// (`tests/batch_equivalence.rs`) pins this.
    pub fn meet_hits_batch(&self, queries: &[crate::batch::BatchQuery<'_>]) -> Vec<Vec<Meet>> {
        crate::batch::meet_hits_batch(self, queries)
    }

    /// The paper's signature query: full-text search each term, then meet
    /// the hit groups. Default options (no type restriction, no distance
    /// bound).
    ///
    /// Returns `None`-like empty answers when any term has no hits? No —
    /// terms without hits simply contribute nothing; the remaining groups
    /// still meet (matching the behaviour of combining independent
    /// full-text searches).
    pub fn meet_terms(&self, terms: &[&str]) -> Result<AnswerSet, MeetError> {
        self.meet_terms_with(terms, &MeetOptions::default())
    }

    /// [`Database::meet_terms`] with explicit [`MeetOptions`].
    pub fn meet_terms_with(
        &self,
        terms: &[&str],
        options: &MeetOptions,
    ) -> Result<AnswerSet, MeetError> {
        let inputs: Vec<HitSet> = terms.iter().map(|t| self.search(t)).collect();
        let meets = self.meet_hits(&inputs, options);
        Ok(AnswerSet::from_meets(&self.store, meets))
    }

    /// [`Database::meet_terms`] with thesaurus broadening per term.
    pub fn meet_terms_expanded(
        &self,
        terms: &[&str],
        thesaurus: &ncq_fulltext::Thesaurus,
        options: &MeetOptions,
    ) -> Result<AnswerSet, MeetError> {
        let inputs: Vec<HitSet> = terms
            .iter()
            .map(|t| self.search_expanded(t, thesaurus))
            .collect();
        let meets = self.meet_hits(&inputs, options);
        Ok(AnswerSet::from_meets(&self.store, meets))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::PathFilter;

    const FIGURE1: &str = r#"
<bibliography>
  <institute>
    <article key="BB99">
      <author><firstname>Ben</firstname><lastname>Bit</lastname></author>
      <title>How to Hack</title>
      <year>1999</year>
    </article>
    <article key="BK99">
      <author>Bob Byte</author>
      <title>Hacking &amp; RSI</title>
      <year>1999</year>
    </article>
  </institute>
</bibliography>"#;

    #[test]
    fn end_to_end_listing2() {
        let db = Database::from_xml_str(FIGURE1).unwrap();
        let answers = db.meet_terms(&["Bit", "1999"]).unwrap();
        assert_eq!(answers.tags(), vec!["article"]);
    }

    #[test]
    fn parse_errors_propagate() {
        assert!(Database::from_xml_str("<broken>").is_err());
    }

    #[test]
    fn search_modes_agree_on_simple_words() {
        let db = Database::from_xml_str(FIGURE1).unwrap();
        assert_eq!(db.search("Ben").len(), db.search_word("Ben").len());
        assert_eq!(db.search_contains("Ben").len(), 1);
    }

    #[test]
    fn meet_pair_through_facade() {
        let db = Database::from_xml_str(FIGURE1).unwrap();
        let ben = db.search("Ben").iter().next().unwrap().1;
        let bit = db.search("Bit").iter().next().unwrap().1;
        let m = db.meet_pair(ben, bit);
        assert_eq!(db.store().tag(m.meet), Some("author"));
    }

    #[test]
    fn meet_oid_sets_through_facade() {
        let db = Database::from_xml_str(FIGURE1).unwrap();
        let years: Vec<Oid> = db.search("1999").iter().map(|(_, o)| o).collect();
        let titles: Vec<Oid> = db.search_word("Hack").iter().map(|(_, o)| o).collect();
        let meets = db.meet_oid_sets(&years, &titles).unwrap();
        assert_eq!(meets.meets.len(), 1);
    }

    #[test]
    fn meet_oid_sets_rejects_empty_inputs() {
        let db = Database::from_xml_str(FIGURE1).unwrap();
        let years: Vec<Oid> = db.search("1999").iter().map(|(_, o)| o).collect();
        assert_eq!(db.meet_oid_sets(&[], &years), Err(MeetError::EmptyInput));
        assert_eq!(db.meet_oid_sets(&years, &[]), Err(MeetError::EmptyInput));
        assert_eq!(db.meet_oid_sets(&[], &[]), Err(MeetError::EmptyInput));
        assert_eq!(db.plan_oid_sets(&[], &years), Err(MeetError::EmptyInput));
    }

    #[test]
    fn strategy_overrides_agree_through_the_facade() {
        let db = Database::from_xml_str(FIGURE1).unwrap();
        let years: Vec<Oid> = db.search("1999").iter().map(|(_, o)| o).collect();
        let titles: Vec<Oid> = db.search_word("Hack").iter().map(|(_, o)| o).collect();
        let sorted = |r: SetMeets| {
            let mut m = r.meets;
            m.sort_unstable();
            m
        };
        let auto = sorted(db.meet_oid_sets(&years, &titles).unwrap());
        for strategy in [crate::MeetStrategy::Lift, crate::MeetStrategy::Sweep] {
            let forced = sorted(db.meet_oid_sets_with(&years, &titles, strategy).unwrap());
            assert_eq!(auto, forced, "{strategy:?}");
        }
        // Forced strategies agree for the generalized meet too.
        let inputs = vec![db.search("Bit"), db.search("1999")];
        let key = |ms: Vec<Meet>| -> Vec<_> {
            ms.iter()
                .map(|m| (m.node, m.distance, m.witness_count))
                .collect()
        };
        let lift = key(db.meet_hits(
            &inputs,
            &MeetOptions {
                strategy: crate::MeetStrategy::Lift,
                ..MeetOptions::default()
            },
        ));
        let sweep = key(db.meet_hits(
            &inputs,
            &MeetOptions {
                strategy: crate::MeetStrategy::Sweep,
                ..MeetOptions::default()
            },
        ));
        assert_eq!(lift, sweep);
    }

    #[test]
    fn options_reach_the_operator() {
        let db = Database::from_xml_str(FIGURE1).unwrap();
        let opts = MeetOptions {
            filter: PathFilter::exclude_root(db.store()),
            max_distance: Some(4),
            ..MeetOptions::default()
        };
        // Bit+1999 needs distance 5 → blocked.
        let answers = db.meet_terms_with(&["Bit", "1999"], &opts).unwrap();
        assert!(answers.is_empty());
    }

    #[test]
    fn unmatched_terms_contribute_nothing() {
        let db = Database::from_xml_str(FIGURE1).unwrap();
        let answers = db.meet_terms(&["Ben", "Bit", "zzz-absent"]).unwrap();
        assert_eq!(answers.tags(), vec!["author"]);
    }

    #[test]
    fn answers_are_ranked_by_distance() {
        let db = Database::from_xml_str(FIGURE1).unwrap();
        // Bob+Byte meet at distance 0; Ben+Bit at 4; with all four terms
        // the cdata meet must rank first.
        let answers = db.meet_terms(&["Bob", "Byte", "Ben", "Bit"]).unwrap();
        assert_eq!(answers.len(), 2);
        assert!(answers.results[0].distance <= answers.results[1].distance);
        assert_eq!(answers.results[0].tag, "cdata");
    }
}
