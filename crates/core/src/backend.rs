//! The execution-backend abstraction: one query surface, many engines.
//!
//! The query language (`ncq-query`), the server and the examples all
//! consume the same three capabilities — resolve a term to hits, meet
//! hit groups, expose the store for schema work. [`MeetBackend`] names
//! that surface so callers can be written once and served by either the
//! single-process [`Database`] or a sharded execution layer
//! (`ncq-shard`'s `ShardedDb`), with identical answers.
//!
//! The trait is object-safe on purpose: `ncq-server` holds its backend
//! as `Arc<dyn MeetBackend>` so one worker pool can front whichever
//! engine the deployment loaded.

use crate::answer::AnswerSet;
use crate::db::Database;
use crate::meet_multi::{Meet, MeetOptions};
use ncq_fulltext::HitSet;
use ncq_store::snapshot::SnapshotError;
use ncq_store::MonetDb;
use std::fmt;
use std::path::Path;
use std::sync::Arc;

/// Typed execution failures of a fallible backend. Local engines never
/// fail (their `try_*` defaults wrap the infallible surface); remote
/// engines surface transport exhaustion and remote-side refusals here —
/// never a panic, never a hang past the configured timeout budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendError {
    /// Every replica of the engine was tried (with retries and
    /// backoff) and none answered.
    Unavailable {
        /// What the last transport failure looked like.
        detail: String,
        /// Total connection/request attempts made before giving up.
        attempts: usize,
    },
    /// The remote engine answered, but with an in-band error (the
    /// request itself was refused — retrying elsewhere would not help).
    Remote {
        /// The remote error message.
        detail: String,
    },
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::Unavailable { detail, attempts } => {
                write!(f, "engine unavailable after {attempts} attempts: {detail}")
            }
            BackendError::Remote { detail } => write!(f, "remote engine error: {detail}"),
        }
    }
}

impl std::error::Error for BackendError {}

/// Robustness counters a backend accumulates while serving: the
/// forest-wide roll-up feeds the server's `STATS` verb. Local engines
/// report zeros; [`crate::RemoteBackend`] counts its failover router's
/// work; `ForestBackend` sums over its corpora.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RobustnessStats {
    /// Backoff retry rounds taken after a full replica sweep failed.
    pub retries: u64,
    /// Mid-call re-issues on another replica after one failed.
    pub failovers: u64,
    /// Replicas currently believed down (a gauge, not a counter).
    pub replicas_down: u64,
    /// Connect/read/write timeouts observed on replica transports.
    pub timeouts: u64,
}

impl RobustnessStats {
    /// Accumulate another backend's counters into this one.
    pub fn merge(&mut self, other: &RobustnessStats) {
        self.retries += other.retries;
        self.failovers += other.failovers;
        self.replicas_down += other.replicas_down;
        self.timeouts += other.timeouts;
    }
}

/// A queryable meet engine: full-text resolution plus the generalized
/// meet, over one shared [`MonetDb`] schema.
///
/// Implementations must agree with [`Database`] bit-for-bit: the golden
/// suite and the sharding equivalence property tests run the same
/// queries through every backend and compare serialized answers.
pub trait MeetBackend: Send + Sync {
    /// The underlying Monet transform (for sharded engines: the full
    /// store, whose top levels double as the replicated spine).
    fn store(&self) -> &MonetDb;

    /// Hits for one term (word, phrase or substring — the dispatch of
    /// [`ncq_fulltext::search::term_hits`]).
    fn search(&self, term: &str) -> HitSet;

    /// The generalized meet over hit groups (paper Fig. 5), ranked —
    /// the engine's equivalent of [`Database::meet_hits`].
    fn meet_hit_groups(&self, inputs: &[&HitSet], options: &MeetOptions) -> Vec<Meet>;

    /// A batch of meets at once, answers in query order. The default
    /// evaluates serially; [`Database`] overrides with the
    /// shared-evaluation executor ([`crate::batch`]) — either way,
    /// answers are byte-identical to per-query [`MeetBackend::meet_hit_groups`].
    fn meet_hit_groups_batch(&self, queries: &[crate::batch::BatchQuery<'_>]) -> Vec<Vec<Meet>> {
        queries
            .iter()
            .map(|q| self.meet_hit_groups(&q.inputs, &q.options))
            .collect()
    }

    /// The paper's signature query through this engine: search each
    /// term, meet the hit groups, resolve an [`AnswerSet`].
    fn meet_terms_answers(&self, terms: &[&str], options: &MeetOptions) -> AnswerSet {
        let inputs: Vec<HitSet> = terms.iter().map(|t| self.search(t)).collect();
        let refs: Vec<&HitSet> = inputs.iter().collect();
        let meets = self.meet_hit_groups(&refs, options);
        AnswerSet::from_meets(self.store(), meets)
    }

    // ----- fallible surface -----
    //
    // Local engines cannot fail, so the defaults below just wrap the
    // infallible methods. Remote engines override these to surface
    // transport exhaustion as typed [`BackendError`]s; every serving
    // path (the query evaluator, the server's batch executor, the
    // forest fan-out) calls the `try_*` forms so a dead replica set
    // degrades to an error or a partial answer instead of a panic.

    /// Fallible [`MeetBackend::search`].
    fn try_search(&self, term: &str) -> Result<HitSet, BackendError> {
        Ok(self.search(term))
    }

    /// Fallible [`MeetBackend::meet_hit_groups`].
    fn try_meet_hit_groups(
        &self,
        inputs: &[&HitSet],
        options: &MeetOptions,
    ) -> Result<Vec<Meet>, BackendError> {
        Ok(self.meet_hit_groups(inputs, options))
    }

    /// Fallible [`MeetBackend::meet_hit_groups_batch`]. The default
    /// evaluates query by query so remote engines surface per-call
    /// transport errors; local engines override to share evaluation.
    fn try_meet_hit_groups_batch(
        &self,
        queries: &[crate::batch::BatchQuery<'_>],
    ) -> Result<Vec<Vec<Meet>>, BackendError> {
        queries
            .iter()
            .map(|q| self.try_meet_hit_groups(&q.inputs, &q.options))
            .collect()
    }

    /// Fallible [`MeetBackend::meet_terms_answers`].
    fn try_meet_terms_answers(
        &self,
        terms: &[&str],
        options: &MeetOptions,
    ) -> Result<AnswerSet, BackendError> {
        let mut inputs = Vec::with_capacity(terms.len());
        for t in terms {
            inputs.push(self.try_search(t)?);
        }
        let refs: Vec<&HitSet> = inputs.iter().collect();
        let meets = self.try_meet_hit_groups(&refs, options)?;
        Ok(AnswerSet::from_meets(self.store(), meets))
    }

    /// This engine's robustness counters (zeros for local engines).
    fn robustness_stats(&self) -> RobustnessStats {
        RobustnessStats::default()
    }

    // ----- forest surface -----
    //
    // Single-document engines are a forest of one: the default
    // implementations below say "no named corpora" and route the
    // all-corpora meet to the engine itself. `ncq-core::ForestBackend`
    // overrides the lot to serve a `Catalog` of named corpora; callers
    // (the query evaluator's `from corpus(name)` resolution, the
    // server's `USE`/`CORPORA` verbs) stay engine-agnostic.

    /// Resolve a named corpus to its engine. `None` when this backend
    /// serves no corpus of that name (single-document engines always
    /// answer `None`).
    fn corpus(&self, _name: &str) -> Option<Arc<dyn MeetBackend>> {
        None
    }

    /// The corpus names this backend serves, in catalog order. Empty
    /// for single-document engines.
    fn corpus_names(&self) -> Vec<String> {
        Vec::new()
    }

    /// The name of the corpus unqualified queries hit, when this
    /// backend routes by corpus.
    fn default_corpus(&self) -> Option<String> {
        None
    }

    /// The signature query fanned out across *every* corpus: answers
    /// concatenate in catalog order (stable cross-corpus document
    /// order), each tagged with its corpus name. A single-document
    /// engine is its own one-corpus forest, untagged.
    fn meet_terms_forest(&self, terms: &[&str], options: &MeetOptions) -> AnswerSet {
        self.meet_terms_answers(terms, options)
    }

    /// Cold-load a snapshot and splice it in as corpus `name`,
    /// returning the backend to serve *subsequent* batches. The
    /// replacement keeps the corpus's current engine shape (via
    /// [`MeetBackend::open_snapshot_like`] on that corpus) and shares
    /// every other corpus's engine by refcount, so in-flight batches on
    /// the old backend — and all other corpora — are untouched.
    fn reload_corpus(
        &self,
        _name: &str,
        _path: &Path,
    ) -> Result<Arc<dyn MeetBackend>, SnapshotError> {
        Err(SnapshotError::Unsupported {
            context: "this backend has no named corpora to reload",
        })
    }

    /// Persist this engine's full state as a versioned snapshot file
    /// (the server's `SNAPSHOT SAVE` verb dispatches here). Engines
    /// with extra state beyond store + postings override this to stack
    /// their own sections; the default serves the common
    /// store+fulltext shape.
    fn save_snapshot(&self, _path: &Path) -> Result<(), SnapshotError> {
        Err(SnapshotError::Unsupported {
            context: "this backend does not persist snapshots",
        })
    }

    /// Cold-load a snapshot as an engine of the *same shape* as `self`
    /// (the server's `SNAPSHOT LOAD` hot-swap dispatches here, so
    /// reloading never silently downgrades a sharded deployment to a
    /// single-process one). The default loads a plain [`Database`];
    /// sharded engines override to re-partition at their current K.
    fn open_snapshot_like(&self, path: &Path) -> Result<Arc<dyn MeetBackend>, SnapshotError> {
        Ok(Arc::new(Database::open_snapshot(path)?))
    }
}

impl MeetBackend for Database {
    fn store(&self) -> &MonetDb {
        Database::store(self)
    }

    fn search(&self, term: &str) -> HitSet {
        Database::search(self, term)
    }

    fn meet_hit_groups(&self, inputs: &[&HitSet], options: &MeetOptions) -> Vec<Meet> {
        self.meet_hits(inputs, options)
    }

    fn meet_hit_groups_batch(&self, queries: &[crate::batch::BatchQuery<'_>]) -> Vec<Vec<Meet>> {
        self.meet_hits_batch(queries)
    }

    fn try_meet_hit_groups_batch(
        &self,
        queries: &[crate::batch::BatchQuery<'_>],
    ) -> Result<Vec<Vec<Meet>>, BackendError> {
        Ok(self.meet_hits_batch(queries))
    }

    fn save_snapshot(&self, path: &Path) -> Result<(), SnapshotError> {
        Database::save_snapshot(self, path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIGURE1: &str = r#"
<bibliography>
  <institute>
    <article key="BB99">
      <author><firstname>Ben</firstname><lastname>Bit</lastname></author>
      <title>How to Hack</title>
      <year>1999</year>
    </article>
  </institute>
</bibliography>"#;

    #[test]
    fn database_backend_matches_its_inherent_api() {
        let db = Database::from_xml_str(FIGURE1).unwrap();
        let backend: &dyn MeetBackend = &db;
        assert_eq!(backend.search("Bit"), db.search("Bit"));
        let inputs = vec![db.search("Bit"), db.search("1999")];
        let refs: Vec<&HitSet> = inputs.iter().collect();
        let opts = MeetOptions::default();
        assert_eq!(
            backend.meet_hit_groups(&refs, &opts),
            db.meet_hits(&inputs, &opts)
        );
        let answers = backend.meet_terms_answers(&["Bit", "1999"], &opts);
        assert_eq!(answers, db.meet_terms(&["Bit", "1999"]).unwrap());
    }
}
