//! The execution-backend abstraction: one query surface, many engines.
//!
//! The query language ([`ncq-query`]), the server and the examples all
//! consume the same three capabilities — resolve a term to hits, meet
//! hit groups, expose the store for schema work. [`MeetBackend`] names
//! that surface so callers can be written once and served by either the
//! single-process [`Database`] or a sharded execution layer
//! (`ncq-shard`'s `ShardedDb`), with identical answers.
//!
//! The trait is object-safe on purpose: `ncq-server` holds its backend
//! as `Arc<dyn MeetBackend>` so one worker pool can front whichever
//! engine the deployment loaded.

use crate::answer::AnswerSet;
use crate::db::Database;
use crate::meet_multi::{Meet, MeetOptions};
use ncq_fulltext::HitSet;
use ncq_store::snapshot::SnapshotError;
use ncq_store::MonetDb;
use std::path::Path;
use std::sync::Arc;

/// A queryable meet engine: full-text resolution plus the generalized
/// meet, over one shared [`MonetDb`] schema.
///
/// Implementations must agree with [`Database`] bit-for-bit: the golden
/// suite and the sharding equivalence property tests run the same
/// queries through every backend and compare serialized answers.
pub trait MeetBackend: Send + Sync {
    /// The underlying Monet transform (for sharded engines: the full
    /// store, whose top levels double as the replicated spine).
    fn store(&self) -> &MonetDb;

    /// Hits for one term (word, phrase or substring — the dispatch of
    /// [`ncq_fulltext::search::term_hits`]).
    fn search(&self, term: &str) -> HitSet;

    /// The generalized meet over hit groups (paper Fig. 5), ranked —
    /// the engine's equivalent of [`Database::meet_hits`].
    fn meet_hit_groups(&self, inputs: &[&HitSet], options: &MeetOptions) -> Vec<Meet>;

    /// The paper's signature query through this engine: search each
    /// term, meet the hit groups, resolve an [`AnswerSet`].
    fn meet_terms_answers(&self, terms: &[&str], options: &MeetOptions) -> AnswerSet {
        let inputs: Vec<HitSet> = terms.iter().map(|t| self.search(t)).collect();
        let refs: Vec<&HitSet> = inputs.iter().collect();
        let meets = self.meet_hit_groups(&refs, options);
        AnswerSet::from_meets(self.store(), meets)
    }

    /// Persist this engine's full state as a versioned snapshot file
    /// (the server's `SNAPSHOT SAVE` verb dispatches here). Engines
    /// with extra state beyond store + postings override this to stack
    /// their own sections; the default serves the common
    /// store+fulltext shape.
    fn save_snapshot(&self, _path: &Path) -> Result<(), SnapshotError> {
        Err(SnapshotError::Unsupported {
            context: "this backend does not persist snapshots",
        })
    }

    /// Cold-load a snapshot as an engine of the *same shape* as `self`
    /// (the server's `SNAPSHOT LOAD` hot-swap dispatches here, so
    /// reloading never silently downgrades a sharded deployment to a
    /// single-process one). The default loads a plain [`Database`];
    /// sharded engines override to re-partition at their current K.
    fn open_snapshot_like(&self, path: &Path) -> Result<Arc<dyn MeetBackend>, SnapshotError> {
        Ok(Arc::new(Database::open_snapshot(path)?))
    }
}

impl MeetBackend for Database {
    fn store(&self) -> &MonetDb {
        Database::store(self)
    }

    fn search(&self, term: &str) -> HitSet {
        Database::search(self, term)
    }

    fn meet_hit_groups(&self, inputs: &[&HitSet], options: &MeetOptions) -> Vec<Meet> {
        self.meet_hits(inputs, options)
    }

    fn save_snapshot(&self, path: &Path) -> Result<(), SnapshotError> {
        Database::save_snapshot(self, path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIGURE1: &str = r#"
<bibliography>
  <institute>
    <article key="BB99">
      <author><firstname>Ben</firstname><lastname>Bit</lastname></author>
      <title>How to Hack</title>
      <year>1999</year>
    </article>
  </institute>
</bibliography>"#;

    #[test]
    fn database_backend_matches_its_inherent_api() {
        let db = Database::from_xml_str(FIGURE1).unwrap();
        let backend: &dyn MeetBackend = &db;
        assert_eq!(backend.search("Bit"), db.search("Bit"));
        let inputs = vec![db.search("Bit"), db.search("1999")];
        let refs: Vec<&HitSet> = inputs.iter().collect();
        let opts = MeetOptions::default();
        assert_eq!(
            backend.meet_hit_groups(&refs, &opts),
            db.meet_hits(&inputs, &opts)
        );
        let answers = backend.meet_terms_answers(&["Bit", "1999"], &opts);
        assert_eq!(answers, db.meet_terms(&["Bit", "1999"]).unwrap());
    }
}
