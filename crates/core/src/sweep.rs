//! Shared document-order plane-sweep engine for the indexed set
//! operators.
//!
//! [`meet_sets_sweep`](crate::meet_sets::meet_sets_sweep) and
//! [`meet_multi_indexed`](crate::meet_multi::meet_multi_indexed) share
//! the same core: items sorted in document order form a doubly-linked
//! list; candidate meets are the LCAs of adjacent alive items, processed
//! deepest first from a max-heap; accepting a meet consumes the
//! contiguous run of alive items inside its subtree (preorder intervals
//! are contiguous, so the run is an interval of the list) and bridges
//! the gap, creating exactly one new adjacency. This module hosts that
//! machinery once; the operators differ only in which adjacencies may
//! propose and what happens at a candidate.
//!
//! A rejected candidate (only `meet^δ` rejects) is memoized by node:
//! consumption can only *remove* witnesses from a subtree, so the two
//! closest climbs at a node can only grow — a node that once failed the
//! distance bound fails it forever. The memo caps the per-node run-scan
//! work at once per distinct node, avoiding a quadratic blow-up when
//! many adjacencies share one shallow LCA.

use ncq_store::{MeetIndex, Oid};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// What the per-candidate callback decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Consume the run; the callback has recorded the meet (or chosen to
    /// suppress it — consumption happens either way).
    Accept,
    /// Leave the run alive; the node is memoized and never re-proposed
    /// by this sweep. Two callers rely on it: `meet^δ` failures (the
    /// distance can only grow, so the node fails forever), and the
    /// sharded scatter phase, which *defers* candidates on the
    /// replicated spine — their runs span shards, so only the gather
    /// sweep may consume them.
    Reject,
}

/// Run the sweep over `oids` (document-order sorted, multiplicity
/// preserved). `proposes(li, ri)` gates which adjacencies may form a
/// candidate (e.g. cross-side only for the two-set operator);
/// `on_candidate(meet, run)` receives the meet node and the alive run's
/// item indices, deepest candidates first. Returns the number of LCA
/// probes performed.
///
/// Accepted candidates surface in `(depth descending, node ascending)`
/// order: initial candidates all enter the heap up front, a bridge
/// adjacency created by consuming a run at depth `d` proposes a proper
/// ancestor (depth < `d`), and rejected candidates propose nothing — so
/// the heap never receives a candidate at a depth it has already
/// drained past. The sharded scatter/gather executors rely on this to
/// stitch per-shard accept sequences back into the exact global order
/// by a single sort.
pub fn plane_sweep(
    index: &MeetIndex,
    oids: &[Oid],
    proposes: impl FnMut(usize, usize) -> bool,
    on_candidate: impl FnMut(Oid, &[usize]) -> Verdict,
) -> usize {
    sweep_core(
        index,
        oids,
        proposes,
        on_candidate,
        None::<fn(usize) -> bool>,
    )
}

/// [`plane_sweep`] with a top-k early-exit hook. After every accepted
/// candidate the sweep computes a **floor on the distance of any meet it
/// could still produce** and hands it to `should_stop`; returning `true`
/// ends the sweep immediately.
///
/// The floor is sound because the sweep drains candidates deepest first:
/// every remaining candidate (in the heap or proposed later by a bridge)
/// sits at depth ≤ the current heap top `d_next`, and its two closest
/// witnesses are items that are alive *now* (consumption only removes
/// items). With `a₁ ≤ a₂` the two smallest alive item depths, any future
/// meet distance is ≥ `a₁ + a₂ − 2·d_next`. Stale heap entries only
/// overestimate `d_next`, weakening the floor — never unsoundly.
///
/// Callers implementing `LIMIT k` stop once they hold `k` results whose
/// k-th best distance is **strictly** below the floor: a future meet at
/// the same distance could still outrank the k-th result on the
/// witness-count/document-order tie-breaks, so ties must keep sweeping.
pub fn plane_sweep_bounded(
    index: &MeetIndex,
    oids: &[Oid],
    proposes: impl FnMut(usize, usize) -> bool,
    on_candidate: impl FnMut(Oid, &[usize]) -> Verdict,
    should_stop: impl FnMut(usize) -> bool,
) -> usize {
    sweep_core(index, oids, proposes, on_candidate, Some(should_stop))
}

fn sweep_core(
    index: &MeetIndex,
    oids: &[Oid],
    mut proposes: impl FnMut(usize, usize) -> bool,
    mut on_candidate: impl FnMut(Oid, &[usize]) -> Verdict,
    mut should_stop: Option<impl FnMut(usize) -> bool>,
) -> usize {
    let n = oids.len();
    let mut probes = 0usize;
    if n < 2 {
        return probes;
    }

    const NONE: usize = usize::MAX;
    let mut prev: Vec<usize> = (0..n).map(|i| i.checked_sub(1).unwrap_or(NONE)).collect();
    let mut next: Vec<usize> = (1..=n).map(|i| if i < n { i } else { NONE }).collect();
    let mut alive = vec![true; n];

    // Max-heap: (LCA depth, doc order, left, right) — deepest first;
    // equal depths are disjoint subtrees, ordered by document position
    // for determinism.
    let mut heap: BinaryHeap<(u32, std::cmp::Reverse<u32>, u32, u32)> = BinaryHeap::new();
    let mut rejected: HashSet<Oid> = HashSet::new();
    let mut run: Vec<usize> = Vec::new();

    // Bounded sweeps track the two shallowest alive items in a lazy
    // min-heap (dead tops are skimmed off on demand); unbounded sweeps
    // pay nothing.
    let mut shallow: BinaryHeap<Reverse<(u32, u32)>> = if should_stop.is_some() {
        (0..n)
            .map(|i| Reverse((index.depth(oids[i]) as u32, i as u32)))
            .collect()
    } else {
        BinaryHeap::new()
    };

    macro_rules! push_candidate {
        ($li:expr, $ri:expr) => {
            if proposes($li, $ri) {
                let m = index.lca(oids[$li], oids[$ri]);
                probes += 1;
                heap.push((
                    index.depth(m) as u32,
                    std::cmp::Reverse(m.index() as u32),
                    $li as u32,
                    $ri as u32,
                ));
            }
        };
    }
    for i in 1..n {
        push_candidate!(i - 1, i);
    }

    while let Some((_, std::cmp::Reverse(m_raw), li, ri)) = heap.pop() {
        let (li, ri) = (li as usize, ri as usize);
        if !alive[li] || !alive[ri] || next[li] != ri {
            continue; // stale adjacency
        }
        let m = Oid::from_index(m_raw as usize);
        if rejected.contains(&m) {
            continue; // permanently over the distance bound
        }

        // The alive items in subtree(m): a contiguous run around the
        // proposing pair.
        let mut lo = li;
        while prev[lo] != NONE && index.is_ancestor_or_self(m, oids[prev[lo]]) {
            lo = prev[lo];
        }
        let mut hi = ri;
        while next[hi] != NONE && index.is_ancestor_or_self(m, oids[next[hi]]) {
            hi = next[hi];
        }
        run.clear();
        let mut cur = lo;
        loop {
            run.push(cur);
            if cur == hi {
                break;
            }
            cur = next[cur];
        }

        match on_candidate(m, &run) {
            Verdict::Reject => {
                rejected.insert(m);
                continue;
            }
            Verdict::Accept => {}
        }

        // Consume the run and bridge the gap.
        for &i in &run {
            alive[i] = false;
        }
        let (left, right) = (prev[lo], next[hi]);
        if left != NONE {
            next[left] = right;
        }
        if right != NONE {
            prev[right] = left;
        }
        if left != NONE && right != NONE {
            push_candidate!(left, right);
        }

        if let Some(stop) = should_stop.as_mut() {
            // Floor on any future meet distance (see
            // [`plane_sweep_bounded`]). No candidates or fewer than two
            // alive items means no future meets at all.
            let Some(&(d_next, ..)) = heap.peek() else {
                break;
            };
            while shallow
                .peek()
                .is_some_and(|&Reverse((_, i))| !alive[i as usize])
            {
                shallow.pop();
            }
            let Some(first) = shallow.pop() else { break };
            while shallow
                .peek()
                .is_some_and(|&Reverse((_, i))| !alive[i as usize])
            {
                shallow.pop();
            }
            let Some(&Reverse((a2, _))) = shallow.peek() else {
                break;
            };
            let Reverse((a1, _)) = first;
            shallow.push(first);
            let floor = (a1 as usize + a2 as usize).saturating_sub(2 * d_next as usize);
            if stop(floor) {
                break;
            }
        }
    }
    probes
}
