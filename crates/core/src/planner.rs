//! Depth-aware meet planning: lift vs sweep, chosen per query.
//!
//! PR 1 left a regression on shallow corpora (`BENCH_pr1.json`,
//! `meet_sets` flat row ≈ 0.4×): on DBLP-like documents (node depth ≈ 3)
//! the paper's Figure 4 **frontier lift** still beats the indexed
//! **plane sweep**, while on deep documents the sweep wins by a widening
//! margin. The reason is visible in the cost models:
//!
//! * lift pays `O(hits)` parent look-ups *per level* for roughly as many
//!   rounds as the inputs are deep — cheap when depth is small;
//! * the sweep pays one `O(hits log hits)` sorted pass with heap pushes
//!   and O(1) LCA probes — depth-independent, but with a larger constant.
//!
//! [`MeetPlanner`] compares the two estimates per query: the **round
//! estimate** (how deep the inputs sit, i.e. how many parent-join rounds
//! the lift could need) against a **round budget** proportional to
//! `log₂(hits)` (the sweep's per-item cost). Shallow inputs ⇒ lift;
//! deep inputs ⇒ sweep. [`MeetStrategy::Lift`] / [`MeetStrategy::Sweep`]
//! override the decision — tests and the `repro` ablations force either
//! side; [`MeetStrategy::Auto`] plans.
//!
//! For the generalized meet (Fig. 5) the same shape applies, except the
//! lift side is the token roll-up whose hash-map bookkeeping loses to
//! the sweep well before depth does (PR 1 measured the indexed sweep
//! 1.7× faster even on flat DBLP at ~6k hits): the roll-up is only
//! planned for small inputs on shallow corpora, where either evaluation
//! is microseconds and the roll-up avoids touching the Euler-tour index
//! entirely.

use crate::meet_multi::{meet_multi, meet_multi_indexed, Meet, MeetOptions};
use crate::meet_sets::{meet_sets_lift_ordered, meet_sets_sweep_merged, MeetError, SetMeets};
use ncq_fulltext::HitSet;
use ncq_store::{MonetDb, Oid};
use std::borrow::Borrow;

/// Which evaluation strategy a meet query should use.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum MeetStrategy {
    /// Let the [`MeetPlanner`] decide from depth statistics and input
    /// cardinalities (the default).
    #[default]
    Auto,
    /// Force the paper-faithful evaluation: Fig. 4 frontier lifting for
    /// homogeneous sets, Fig. 5 token roll-up for hit groups.
    Lift,
    /// Force the indexed document-order plane sweep.
    Sweep,
}

/// Planner thresholds. The defaults are calibrated against
/// `BENCH_pr1.json` / `BENCH_pr2.json`; tests tighten them to force
/// decisions.
#[derive(Debug, Clone, Copy)]
pub struct PlannerConfig {
    /// Flat component of the lift round budget.
    pub lift_round_base: usize,
    /// Rounds granted per *bit* of input cardinality (bit length =
    /// ⌊log₂(hits)⌋ + 1) — a proxy for the sweep's per-item log factor.
    pub lift_rounds_per_log2: usize,
    /// Above this many total hits the generalized roll-up is never
    /// planned (its per-token hashing loses to the sweep regardless of
    /// depth).
    pub rollup_max_hits: usize,
    /// When the generalized inputs span more than this many distinct
    /// relations, [`MeetPlanner::plan_multi`] stops scanning per-group
    /// depths and uses the corpus-level [`ncq_store::DepthStats`]
    /// (p90 depth) as its round estimate instead.
    pub group_scan_limit: usize,
}

impl Default for PlannerConfig {
    fn default() -> PlannerConfig {
        PlannerConfig {
            lift_round_base: 4,
            lift_rounds_per_log2: 2,
            rollup_max_hits: 64,
            group_scan_limit: 16,
        }
    }
}

/// The strategy a plan resolved to (never `Auto`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChosenStrategy {
    /// Frontier lift / token roll-up.
    Lift,
    /// Indexed plane sweep.
    Sweep,
}

impl ChosenStrategy {
    /// Lower-case name for tables and logs.
    pub fn name(self) -> &'static str {
        match self {
            ChosenStrategy::Lift => "lift",
            ChosenStrategy::Sweep => "sweep",
        }
    }
}

/// One planning decision, with the quantities it weighed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanDecision {
    /// The chosen evaluation.
    pub strategy: ChosenStrategy,
    /// Total input hits.
    pub hits: usize,
    /// Parent-join rounds the lift could need (depth of the deepest
    /// input).
    pub est_rounds: usize,
    /// Rounds the lift is granted before the sweep is preferred.
    pub round_budget: usize,
}

/// Per-query planner over a loaded database.
///
/// Cheap to construct (borrows the store and copies the config);
/// [`crate::Database`] builds one per meet call.
#[derive(Debug, Clone, Copy)]
pub struct MeetPlanner<'a> {
    db: &'a MonetDb,
    config: PlannerConfig,
}

/// Bit length of `n` (⌊log₂(n)⌋ + 1 for n ≥ 1; 1 for n = 0) — the
/// cardinality proxy the round budget scales with.
fn bit_length(n: usize) -> usize {
    usize::BITS as usize - n.max(1).leading_zeros() as usize
}

/// Registry handles for the planner's decision counters (looked up
/// once; incrementing is a relaxed atomic add).
fn plan_counters() -> (
    &'static std::sync::Arc<ncq_obs::Counter>,
    &'static std::sync::Arc<ncq_obs::Counter>,
) {
    static COUNTERS: std::sync::OnceLock<(
        std::sync::Arc<ncq_obs::Counter>,
        std::sync::Arc<ncq_obs::Counter>,
    )> = std::sync::OnceLock::new();
    let (lift, sweep) = COUNTERS.get_or_init(|| {
        let registry = &ncq_obs::obs().registry;
        (
            registry.counter("ncq_plan_lift_total"),
            registry.counter("ncq_plan_sweep_total"),
        )
    });
    (lift, sweep)
}

impl<'a> MeetPlanner<'a> {
    /// Planner with default thresholds.
    pub fn new(db: &'a MonetDb) -> MeetPlanner<'a> {
        MeetPlanner::with_config(db, PlannerConfig::default())
    }

    /// Planner with explicit thresholds.
    pub fn with_config(db: &'a MonetDb, config: PlannerConfig) -> MeetPlanner<'a> {
        MeetPlanner { db, config }
    }

    /// The thresholds in effect.
    pub fn config(&self) -> PlannerConfig {
        self.config
    }

    fn decide(&self, hits: usize, est_rounds: usize) -> PlanDecision {
        let round_budget =
            self.config.lift_round_base + self.config.lift_rounds_per_log2 * bit_length(hits);
        let strategy = if est_rounds <= round_budget {
            ChosenStrategy::Lift
        } else {
            ChosenStrategy::Sweep
        };
        if ncq_obs::obs().enabled() {
            let (lift, sweep) = plan_counters();
            match strategy {
                ChosenStrategy::Lift => lift.inc(),
                ChosenStrategy::Sweep => sweep.inc(),
            }
            ncq_obs::trace::event(
                "plan",
                format!(
                    "{} hits={hits} est_rounds={est_rounds} budget={round_budget}",
                    strategy.name()
                ),
            );
        }
        PlanDecision {
            strategy,
            hits,
            est_rounds,
            round_budget,
        }
    }

    /// Plan a Fig. 4 two-set meet. The inputs are homogeneous, so their
    /// depth — the exact worst-case number of lift rounds — is the depth
    /// of either set's shared path.
    ///
    /// Errors with [`MeetError::EmptyInput`] when either set is empty:
    /// there is nothing to plan (and nothing to meet).
    pub fn plan_sets(&self, set1: &[Oid], set2: &[Oid]) -> Result<PlanDecision, MeetError> {
        // The global plan is the shard plan with no spine above it —
        // one estimator, so the two can never drift apart.
        self.plan_shard_sets(set1, set2, 0)
    }

    /// Plan one *shard's* slice of a Fig. 4 two-set meet. A sharded
    /// scatter phase only evaluates the rounds **below the replicated
    /// spine** — everything at or above the shard's root resolves in
    /// the gather phase — so the lift-round estimate is the input depth
    /// *minus* `floor_depth` (the depth of the shard's shallowest owned
    /// node). Shards over deep chunks still sweep; shards whose chunks
    /// sit just under the spine lift, independently of what their
    /// sibling shards choose.
    pub fn plan_shard_sets(
        &self,
        set1: &[Oid],
        set2: &[Oid],
        floor_depth: usize,
    ) -> Result<PlanDecision, MeetError> {
        let (Some(&o1), Some(&o2)) = (set1.first(), set2.first()) else {
            return Err(MeetError::EmptyInput);
        };
        let est_rounds = self
            .db
            .depth(o1)
            .max(self.db.depth(o2))
            .saturating_sub(floor_depth);
        Ok(self.decide(set1.len() + set2.len(), est_rounds))
    }

    /// Plan-and-execute a Fig. 4 two-set meet. `strategy` overrides the
    /// plan unless it is [`MeetStrategy::Auto`].
    ///
    /// Execution goes through the planner-tier executors
    /// ([`meet_sets_lift_ordered`] / [`meet_sets_sweep_merged`]): same
    /// answers as the paper-faithful operators, exploiting the physical
    /// properties (homogeneous, sorted, deduplicated) the plan
    /// established.
    pub fn meet_sets(
        &self,
        set1: &[Oid],
        set2: &[Oid],
        strategy: MeetStrategy,
    ) -> Result<SetMeets, MeetError> {
        let chosen = match strategy {
            MeetStrategy::Auto => self.plan_sets(set1, set2)?.strategy,
            MeetStrategy::Lift => ChosenStrategy::Lift,
            MeetStrategy::Sweep => ChosenStrategy::Sweep,
        };
        if set1.is_empty() || set2.is_empty() {
            return Err(MeetError::EmptyInput);
        }
        match chosen {
            ChosenStrategy::Lift => meet_sets_lift_ordered(self.db, set1, set2),
            ChosenStrategy::Sweep => meet_sets_sweep_merged(self.db, set1, set2),
        }
    }

    /// Plan a Fig. 5 generalized meet over hit groups. The round
    /// estimate is the depth of the deepest hit path — or, when the
    /// inputs span more than [`PlannerConfig::group_scan_limit`]
    /// distinct relations, the corpus-level p90 depth from the cached
    /// [`ncq_store::DepthStats`] (broad hit sets are statistical
    /// samples of the corpus, and the O(1) summary beats re-scanning
    /// hundreds of group depths per query). The roll-up is additionally
    /// capped at [`PlannerConfig::rollup_max_hits`].
    pub fn plan_multi<H: Borrow<HitSet>>(&self, inputs: &[H]) -> PlanDecision {
        let summary = self.db.summary();
        let hits: usize = inputs.iter().map(|h| h.borrow().len()).sum();
        let group_count: usize = inputs.iter().map(|h| h.borrow().group_count()).sum();
        let est_rounds = if group_count > self.config.group_scan_limit {
            self.db.depth_stats().p90_depth
        } else {
            inputs
                .iter()
                .flat_map(|h| h.borrow().groups().keys())
                .map(|&p| summary.depth(p))
                .max()
                .unwrap_or(0)
        };
        let mut decision = self.decide(hits, est_rounds);
        if hits > self.config.rollup_max_hits {
            decision.strategy = ChosenStrategy::Sweep;
        }
        decision
    }

    /// Plan-and-execute a Fig. 5 generalized meet.
    /// [`MeetOptions::strategy`] carries the override.
    pub fn meet_multi<H: Borrow<HitSet>>(&self, inputs: &[H], options: &MeetOptions) -> Vec<Meet> {
        let chosen = match options.strategy {
            MeetStrategy::Auto => self.plan_multi(inputs).strategy,
            MeetStrategy::Lift => ChosenStrategy::Lift,
            MeetStrategy::Sweep => ChosenStrategy::Sweep,
        };
        match chosen {
            ChosenStrategy::Lift => meet_multi(self.db, inputs, options),
            ChosenStrategy::Sweep => meet_multi_indexed(self.db, inputs, options),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncq_xml::parse;

    fn deep_db(depth: usize, chains: usize) -> MonetDb {
        let mut xml = String::from("<r>");
        for c in 0..chains {
            for _ in 0..depth {
                xml.push_str("<e>");
            }
            xml.push_str(&format!("<a>s{c}</a><b>t{c}</b>"));
            for _ in 0..depth {
                xml.push_str("</e>");
            }
        }
        xml.push_str("</r>");
        MonetDb::from_document(&parse(&xml).unwrap())
    }

    fn cdata_oids(db: &MonetDb, prefix: &str) -> Vec<Oid> {
        let mut v: Vec<Oid> = db
            .string_paths()
            .flat_map(|p| db.strings_of(p))
            .filter(|(_, t)| t.starts_with(prefix))
            .map(|(o, _)| *o)
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn shallow_inputs_plan_lift() {
        let db = deep_db(1, 8);
        let s = cdata_oids(&db, "s");
        let t = cdata_oids(&db, "t");
        let plan = MeetPlanner::new(&db).plan_sets(&s, &t).unwrap();
        assert_eq!(plan.strategy, ChosenStrategy::Lift);
        assert_eq!(plan.hits, 16);
    }

    #[test]
    fn deep_inputs_plan_sweep() {
        let db = deep_db(64, 4);
        let s = cdata_oids(&db, "s");
        let t = cdata_oids(&db, "t");
        let plan = MeetPlanner::new(&db).plan_sets(&s, &t).unwrap();
        // est_rounds = 66 (chain + <a> + cdata), budget = 4 + 2·log2(8).
        assert_eq!(plan.strategy, ChosenStrategy::Sweep);
        assert!(plan.est_rounds > plan.round_budget);
    }

    #[test]
    fn empty_input_is_a_typed_error() {
        let db = deep_db(1, 2);
        let s = cdata_oids(&db, "s");
        let planner = MeetPlanner::new(&db);
        assert_eq!(planner.plan_sets(&s, &[]), Err(MeetError::EmptyInput));
        assert_eq!(planner.plan_sets(&[], &s), Err(MeetError::EmptyInput));
        for strategy in [MeetStrategy::Auto, MeetStrategy::Lift, MeetStrategy::Sweep] {
            assert_eq!(
                planner.meet_sets(&s, &[], strategy),
                Err(MeetError::EmptyInput),
                "{strategy:?}"
            );
        }
    }

    #[test]
    fn overrides_beat_the_plan_but_agree_on_answers() {
        let db = deep_db(16, 6);
        let s = cdata_oids(&db, "s");
        let t = cdata_oids(&db, "t");
        let planner = MeetPlanner::new(&db);
        let auto = planner.meet_sets(&s, &t, MeetStrategy::Auto).unwrap();
        let lift = planner.meet_sets(&s, &t, MeetStrategy::Lift).unwrap();
        let sweep = planner.meet_sets(&s, &t, MeetStrategy::Sweep).unwrap();
        let key = |r: &SetMeets| {
            let mut m = r.meets.clone();
            m.sort_unstable();
            m
        };
        assert_eq!(key(&auto), key(&lift));
        assert_eq!(key(&lift), key(&sweep));
    }

    #[test]
    fn multi_rollup_is_capped_by_hits() {
        let db = deep_db(1, 40); // shallow, 80 hits > rollup_max_hits
        let planner = MeetPlanner::new(&db);
        let inputs = vec![
            HitSet::from_pairs(cdata_oids(&db, "s").into_iter().map(|o| (db.sigma(o), o))),
            HitSet::from_pairs(cdata_oids(&db, "t").into_iter().map(|o| (db.sigma(o), o))),
        ];
        let plan = planner.plan_multi(&inputs);
        assert_eq!(plan.strategy, ChosenStrategy::Sweep);
        assert_eq!(plan.hits, 80);
        // The small prefix still plans the roll-up.
        let small = vec![
            HitSet::from_pairs(
                cdata_oids(&db, "s")
                    .into_iter()
                    .take(4)
                    .map(|o| (db.sigma(o), o)),
            ),
            HitSet::from_pairs(
                cdata_oids(&db, "t")
                    .into_iter()
                    .take(4)
                    .map(|o| (db.sigma(o), o)),
            ),
        ];
        assert_eq!(planner.plan_multi(&small).strategy, ChosenStrategy::Lift);
    }

    #[test]
    fn shard_plans_subtract_the_spine_floor() {
        let db = deep_db(64, 4);
        let s = cdata_oids(&db, "s");
        let t = cdata_oids(&db, "t");
        let planner = MeetPlanner::new(&db);
        // Globally the inputs are deep → sweep; a shard whose spine
        // floor sits just above the hits has almost no rounds left → lift.
        assert_eq!(
            planner.plan_sets(&s, &t).unwrap().strategy,
            ChosenStrategy::Sweep
        );
        let floored = planner.plan_shard_sets(&s, &t, 64).unwrap();
        assert_eq!(floored.strategy, ChosenStrategy::Lift);
        assert_eq!(floored.est_rounds, 2);
        // Floor 0 degenerates to the global estimate.
        assert_eq!(
            planner.plan_shard_sets(&s, &t, 0).unwrap(),
            planner.plan_sets(&s, &t).unwrap()
        );
        assert_eq!(
            planner.plan_shard_sets(&[], &t, 3),
            Err(MeetError::EmptyInput)
        );
    }

    #[test]
    fn bit_length_is_sane() {
        assert_eq!(bit_length(0), 1);
        assert_eq!(bit_length(1), 1);
        assert_eq!(bit_length(2), 2);
        assert_eq!(bit_length(3), 2);
        assert_eq!(bit_length(1024), 11);
    }

    #[test]
    fn wide_inputs_plan_from_corpus_depth_stats() {
        // More distinct relations than group_scan_limit: the estimate
        // must come from the cached corpus DepthStats, not a scan.
        let mut xml = String::from("<r>");
        for i in 0..40 {
            xml.push_str(&format!("<t{i}>w</t{i}>"));
        }
        xml.push_str("</r>");
        let db = MonetDb::from_document(&ncq_xml::parse(&xml).unwrap());
        let planner = MeetPlanner::new(&db);
        let wide =
            vec![HitSet::from_pairs(db.string_paths().flat_map(|p| {
                db.strings_of(p).iter().map(move |&(o, _)| (p, o))
            }))];
        assert!(wide[0].group_count() > planner.config().group_scan_limit);
        let plan = planner.plan_multi(&wide);
        assert_eq!(plan.est_rounds, db.depth_stats().p90_depth);
        // Under the limit, the exact per-group scan is used.
        let narrow =
            vec![HitSet::from_pairs(db.string_paths().take(2).flat_map(
                |p| db.strings_of(p).iter().map(move |&(o, _)| (p, o)),
            ))];
        let plan = planner.plan_multi(&narrow);
        assert_eq!(plan.est_rounds, 2); // r/t{i}/cdata
    }
}
