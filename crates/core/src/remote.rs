//! Remote meet engines: a framed wire protocol and a failover-routing
//! [`RemoteBackend`].
//!
//! The forest catalog (PR 5) still assumed every engine lives
//! in-process. This module is the distribution step: a corpus or shard
//! engine can run in another process behind `ncq-server`'s framed
//! engine listener, and the coordinator holds a [`RemoteBackend`] that
//! proxies the [`MeetBackend`] surface over TCP — answers byte-identical
//! to in-process execution, because the replica runs the same engine
//! over the same snapshot and the wire codec is lossless.
//!
//! # Frame layout
//!
//! ```text
//! offset 0   payload length (u32 LE)       4 bytes
//!        4   checksum64(payload) (u64 LE)  8 bytes
//!       12   payload                       length bytes
//! ```
//!
//! The checksum makes a corrupted-in-flight frame a *typed* failure
//! ([`WireError::Corrupt`]) instead of a silently wrong answer — the
//! fault-injection suite flips response bytes and expects the router to
//! fail over, not to return garbage. Request payloads are
//! `[opcode u8][body]`; response payloads are `[status u8][body]` with
//! status 0 = OK and 1 = an in-band error message. Bodies use the
//! bounds-checked [`SectionBuf`]/[`SectionCursor`] readers shared with
//! the snapshot layer, so truncation and garbage decode to typed
//! errors, never panics.
//!
//! # Failover routing
//!
//! A [`RemoteBackend`] names one or more replica endpoints. Each
//! replica carries a health state machine — healthy → suspect → down,
//! driven by in-band call failures and (optionally) a periodic
//! [`HealthMonitor`] ping thread. Calls sweep replicas in endpoint
//! order, skipping ones believed down (until their half-open probe
//! timer elapses), re-issuing the request on the next replica
//! mid-query on any transport or framing failure, with bounded retry
//! rounds under exponential backoff + seeded jitter. When every sweep
//! fails, the call returns a typed
//! [`BackendError::Unavailable`] — never a panic, never a hang past
//! the configured timeout budget (every socket carries connect, read
//! and write timeouts).

use crate::backend::{BackendError, MeetBackend, RobustnessStats};
use crate::db::Database;
use crate::filter::PathFilter;
use crate::meet_multi::{Meet, MeetOptions, MeetWitness};
use crate::planner::MeetStrategy;
use ncq_fulltext::HitSet;
use ncq_store::snapshot::{checksum64, SectionBuf, SectionCursor, SnapshotError};
use ncq_store::{MonetDb, Oid, PathId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::fmt;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, Weak};
use std::time::{Duration, Instant};

/// Frame header length: u32 payload length + u64 payload checksum.
pub const FRAME_HEADER_LEN: usize = 12;

/// Default cap on a single frame's payload (64 MiB): a length field
/// past this is refused before any allocation.
pub const DEFAULT_FRAME_CAP: u32 = 64 << 20;

/// Typed wire failures. Decoding never panics on malformed input.
#[derive(Debug)]
pub enum WireError {
    /// The underlying socket failed (includes connect/read/write
    /// timeouts — see [`WireError::is_timeout`]).
    Io(std::io::Error),
    /// A frame's length field exceeds the configured cap.
    FrameTooLarge {
        /// Advertised payload length.
        len: u64,
        /// The cap in effect.
        cap: u64,
    },
    /// The stream ended before the advertised structure did.
    Truncated {
        /// What was being read when the bytes ran out.
        context: &'static str,
    },
    /// A complete frame decodes to inconsistent data (failed payload
    /// checksum, unknown opcode/status, malformed body).
    Corrupt {
        /// What failed to validate.
        context: String,
    },
    /// The remote engine answered with an in-band error message.
    Remote(String),
}

impl WireError {
    /// Whether this failure is a socket timeout (connect, read or
    /// write deadline exceeded) — counted separately by the router.
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            WireError::Io(e) if matches!(
                e.kind(),
                std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
            )
        )
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire io error: {e}"),
            WireError::FrameTooLarge { len, cap } => {
                write!(f, "frame length {len} exceeds cap {cap}")
            }
            WireError::Truncated { context } => {
                write!(f, "wire stream truncated while reading {context}")
            }
            WireError::Corrupt { context } => write!(f, "wire frame is corrupt: {context}"),
            WireError::Remote(msg) => write!(f, "remote engine error: {msg}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> WireError {
        WireError::Io(e)
    }
}

/// Cursor failures become wire failures, keeping their context.
impl From<SnapshotError> for WireError {
    fn from(e: SnapshotError) -> WireError {
        match e {
            SnapshotError::Truncated { context, .. } => WireError::Corrupt {
                context: format!("body truncated at {context}"),
            },
            other => WireError::Corrupt {
                context: other.to_string(),
            },
        }
    }
}

/// Write one checksummed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8], cap: u32) -> Result<(), WireError> {
    if payload.len() as u64 > cap as u64 {
        return Err(WireError::FrameTooLarge {
            len: payload.len() as u64,
            cap: cap as u64,
        });
    }
    let mut header = [0u8; FRAME_HEADER_LEN];
    header[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    header[4..].copy_from_slice(&checksum64(payload).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Read one frame, verifying length cap and payload checksum. A clean
/// EOF before the first header byte is reported as `Truncated { "frame
/// header" }` — callers that treat end-of-session as normal check for
/// that context with zero bytes read via [`read_frame_or_eof`].
pub fn read_frame(r: &mut impl Read, cap: u32) -> Result<Vec<u8>, WireError> {
    match read_frame_or_eof(r, cap)? {
        Some(payload) => Ok(payload),
        None => Err(WireError::Truncated {
            context: "frame header",
        }),
    }
}

/// [`read_frame`], but a clean EOF at a frame boundary returns
/// `Ok(None)` (a session ending between requests is not an error).
pub fn read_frame_or_eof(r: &mut impl Read, cap: u32) -> Result<Option<Vec<u8>>, WireError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    let mut filled = 0usize;
    while filled < FRAME_HEADER_LEN {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(WireError::Truncated {
                    context: "frame header",
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes"));
    let checksum = u64::from_le_bytes(header[4..].try_into().expect("8 bytes"));
    if len > cap {
        return Err(WireError::FrameTooLarge {
            len: len as u64,
            cap: cap as u64,
        });
    }
    let mut payload = vec![0u8; len as usize];
    if let Err(e) = r.read_exact(&mut payload) {
        return if e.kind() == std::io::ErrorKind::UnexpectedEof {
            Err(WireError::Truncated {
                context: "frame payload",
            })
        } else {
            Err(e.into())
        };
    }
    if checksum64(&payload) != checksum {
        return Err(WireError::Corrupt {
            context: "frame payload failed its checksum".to_owned(),
        });
    }
    Ok(Some(payload))
}

// ----- request / response codec -----

const OP_PING: u8 = 1;
const OP_SEARCH: u8 = 2;
const OP_MEET: u8 = 3;
/// A tracing envelope: `[OP_TRACED][trace id u64 LE][inner request]`.
/// The coordinator wraps requests in it only when a trace is active,
/// so the replica's engine-side spans stitch to the coordinator's
/// trace by shared id. Engines decode through
/// [`decode_request_traced`], which accepts both shapes; an engine
/// that predates the envelope rejects opcode 4 as a typed in-band
/// error (requests without an active trace are unaffected).
const OP_TRACED: u8 = 4;

const STATUS_OK: u8 = 0;
const STATUS_ERR: u8 = 1;

const RESP_PONG: u8 = 0;
const RESP_HITS: u8 = 1;
const RESP_MEETS: u8 = 2;

/// One engine-protocol request: the [`MeetBackend`] surface on the
/// wire. `meet_terms`/`run_query` compose from these on the
/// coordinator (search per term, one meet over the groups), so the
/// protocol stays three opcodes.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineRequest {
    /// Liveness probe (the health monitor's heartbeat).
    Ping,
    /// Resolve one term to hits.
    Search {
        /// The term (word, phrase or substring syntax).
        term: String,
    },
    /// The generalized meet over hit groups.
    Meet {
        /// The hit groups.
        inputs: Vec<HitSet>,
        /// Meet options (filter, distance bound, witness cap,
        /// strategy).
        options: MeetOptions,
    },
}

/// One engine-protocol response.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineResponse {
    /// Answer to [`EngineRequest::Ping`].
    Pong,
    /// Answer to [`EngineRequest::Search`].
    Hits(HitSet),
    /// Answer to [`EngineRequest::Meet`].
    Meets(Vec<Meet>),
}

fn put_hit_set(b: &mut SectionBuf<'_>, hits: &HitSet) {
    b.put_u32(hits.group_count() as u32);
    for (path, oids) in hits.groups() {
        b.put_u32(path.index() as u32);
        b.put_u32_col(oids.iter().map(|o| o.index() as u32));
    }
}

fn get_hit_set(c: &mut SectionCursor<'_>) -> Result<HitSet, WireError> {
    let groups = c.get_u32("hit set group count")? as usize;
    let mut pairs: Vec<(PathId, Oid)> = Vec::new();
    for _ in 0..groups {
        let path = PathId::from_index(c.get_u32("hit group path")? as usize);
        let oids = c.get_u32_col("hit group oids")?;
        pairs.extend(
            oids.into_iter()
                .map(|o| (path, Oid::from_index(o as usize))),
        );
    }
    Ok(HitSet::from_pairs(pairs))
}

fn put_options(b: &mut SectionBuf<'_>, options: &MeetOptions) {
    match &options.filter {
        PathFilter::All => b.put_u8(0),
        PathFilter::Exclude(set) => {
            b.put_u8(1);
            let mut ids: Vec<u32> = set.iter().map(|p| p.index() as u32).collect();
            ids.sort_unstable();
            b.put_u32_col(ids.into_iter());
        }
        PathFilter::Allow(set) => {
            b.put_u8(2);
            let mut ids: Vec<u32> = set.iter().map(|p| p.index() as u32).collect();
            ids.sort_unstable();
            b.put_u32_col(ids.into_iter());
        }
    }
    match options.max_distance {
        None => b.put_u8(0),
        Some(d) => {
            b.put_u8(1);
            b.put_u64(d as u64);
        }
    }
    b.put_u64(options.witness_cap as u64);
    b.put_u8(match options.strategy {
        MeetStrategy::Auto => 0,
        MeetStrategy::Lift => 1,
        MeetStrategy::Sweep => 2,
    });
    match options.limit {
        None => b.put_u8(0),
        Some(k) => {
            b.put_u8(1);
            b.put_u64(k as u64);
        }
    }
}

fn get_options(c: &mut SectionCursor<'_>) -> Result<MeetOptions, WireError> {
    let filter = match c.get_u8("filter variant")? {
        0 => PathFilter::All,
        1 => PathFilter::Exclude(
            c.get_u32_col("filter exclude set")?
                .into_iter()
                .map(|p| PathId::from_index(p as usize))
                .collect(),
        ),
        2 => PathFilter::Allow(
            c.get_u32_col("filter allow set")?
                .into_iter()
                .map(|p| PathId::from_index(p as usize))
                .collect(),
        ),
        other => {
            return Err(WireError::Corrupt {
                context: format!("unknown filter variant {other}"),
            })
        }
    };
    let max_distance = match c.get_u8("max distance flag")? {
        0 => None,
        1 => Some(c.get_u64("max distance")? as usize),
        other => {
            return Err(WireError::Corrupt {
                context: format!("bad max-distance flag {other}"),
            })
        }
    };
    let witness_cap = c.get_u64("witness cap")? as usize;
    let strategy = match c.get_u8("strategy")? {
        0 => MeetStrategy::Auto,
        1 => MeetStrategy::Lift,
        2 => MeetStrategy::Sweep,
        other => {
            return Err(WireError::Corrupt {
                context: format!("unknown strategy {other}"),
            })
        }
    };
    let limit = match c.get_u8("limit flag")? {
        0 => None,
        1 => Some(c.get_u64("limit")? as usize),
        other => {
            return Err(WireError::Corrupt {
                context: format!("bad limit flag {other}"),
            })
        }
    };
    Ok(MeetOptions {
        filter,
        max_distance,
        witness_cap,
        strategy,
        limit,
    })
}

fn put_meets(b: &mut SectionBuf<'_>, meets: &[Meet]) {
    b.put_u32(meets.len() as u32);
    for m in meets {
        b.put_u32(m.node.index() as u32);
        b.put_u32(m.path.index() as u32);
        b.put_u64(m.distance as u64);
        b.put_u64(m.witness_count as u64);
        b.put_u32(m.witnesses.len() as u32);
        for w in &m.witnesses {
            b.put_u32(w.origin.index() as u32);
            b.put_u64(w.input as u64);
            b.put_u64(w.climb as u64);
        }
    }
}

fn get_meets(c: &mut SectionCursor<'_>) -> Result<Vec<Meet>, WireError> {
    let count = c.get_u32("meet count")? as usize;
    // Clamped: a meet spans ≥ 24 payload bytes, so a lying count fails
    // typed instead of aborting on a huge pre-allocation.
    let mut meets = Vec::with_capacity(count.min(c.remaining() / 24 + 1));
    for _ in 0..count {
        let node = Oid::from_index(c.get_u32("meet node")? as usize);
        let path = PathId::from_index(c.get_u32("meet path")? as usize);
        let distance = c.get_u64("meet distance")? as usize;
        let witness_count = c.get_u64("meet witness count")? as usize;
        let wlen = c.get_u32("meet witness list length")? as usize;
        let mut witnesses = Vec::with_capacity(wlen.min(c.remaining() / 20 + 1));
        for _ in 0..wlen {
            witnesses.push(MeetWitness {
                origin: Oid::from_index(c.get_u32("witness origin")? as usize),
                input: c.get_u64("witness input")? as usize,
                climb: c.get_u64("witness climb")? as usize,
            });
        }
        meets.push(Meet {
            node,
            path,
            distance,
            witness_count,
            witnesses,
        });
    }
    Ok(meets)
}

/// Serialize a request payload (deterministic).
pub fn encode_request(req: &EngineRequest) -> Vec<u8> {
    let mut out = Vec::new();
    let mut b = SectionBuf::over(&mut out);
    match req {
        EngineRequest::Ping => b.put_u8(OP_PING),
        EngineRequest::Search { term } => {
            b.put_u8(OP_SEARCH);
            b.put_str(term);
        }
        EngineRequest::Meet { inputs, options } => {
            b.put_u8(OP_MEET);
            b.put_u32(inputs.len() as u32);
            for h in inputs {
                put_hit_set(&mut b, h);
            }
            put_options(&mut b, options);
        }
    }
    out
}

/// Serialize a request payload wrapped in the tracing envelope: the
/// trace id rides in the frame body so the replica can stitch its
/// engine-side spans to the coordinator's trace.
pub fn encode_request_traced(req: &EngineRequest, trace_id: u64) -> Vec<u8> {
    let inner = encode_request(req);
    let mut out = Vec::with_capacity(9 + inner.len());
    out.push(OP_TRACED);
    out.extend_from_slice(&trace_id.to_le_bytes());
    out.extend_from_slice(&inner);
    out
}

/// Parse a request payload, unwrapping the tracing envelope when
/// present: returns the inner request plus the propagated trace id
/// (`None` for plain requests). Envelopes never nest — the inner body
/// must be a plain request.
pub fn decode_request_traced(payload: &[u8]) -> Result<(EngineRequest, Option<u64>), WireError> {
    if payload.first() == Some(&OP_TRACED) {
        let Some(id_bytes) = payload.get(1..9) else {
            return Err(WireError::Corrupt {
                context: "traced request envelope shorter than its header".to_owned(),
            });
        };
        let id = u64::from_le_bytes(id_bytes.try_into().expect("8 bytes"));
        let req = decode_request(&payload[9..])?;
        return Ok((req, Some(id)));
    }
    Ok((decode_request(payload)?, None))
}

/// Parse and validate a request payload.
pub fn decode_request(payload: &[u8]) -> Result<EngineRequest, WireError> {
    let mut c = SectionCursor::new(payload);
    let req = match c.get_u8("request opcode")? {
        OP_PING => EngineRequest::Ping,
        OP_SEARCH => EngineRequest::Search {
            term: c.get_str("search term")?.to_owned(),
        },
        OP_MEET => {
            let n = c.get_u32("meet input count")? as usize;
            let mut inputs = Vec::with_capacity(n.min(c.remaining() / 4 + 1));
            for _ in 0..n {
                inputs.push(get_hit_set(&mut c)?);
            }
            let options = get_options(&mut c)?;
            EngineRequest::Meet { inputs, options }
        }
        other => {
            return Err(WireError::Corrupt {
                context: format!("unknown request opcode {other}"),
            })
        }
    };
    if !c.at_end() {
        return Err(WireError::Corrupt {
            context: "trailing bytes after request body".to_owned(),
        });
    }
    Ok(req)
}

/// Serialize a success response payload (deterministic).
pub fn encode_response(resp: &EngineResponse) -> Vec<u8> {
    let mut out = Vec::new();
    let mut b = SectionBuf::over(&mut out);
    b.put_u8(STATUS_OK);
    match resp {
        EngineResponse::Pong => b.put_u8(RESP_PONG),
        EngineResponse::Hits(hits) => {
            b.put_u8(RESP_HITS);
            put_hit_set(&mut b, hits);
        }
        EngineResponse::Meets(meets) => {
            b.put_u8(RESP_MEETS);
            put_meets(&mut b, meets);
        }
    }
    out
}

/// Serialize an in-band error response payload.
pub fn encode_error_response(message: &str) -> Vec<u8> {
    let mut out = Vec::new();
    let mut b = SectionBuf::over(&mut out);
    b.put_u8(STATUS_ERR);
    b.put_str(message);
    out
}

/// Parse and validate a response payload. An in-band error status
/// becomes [`WireError::Remote`].
pub fn decode_response(payload: &[u8]) -> Result<EngineResponse, WireError> {
    let mut c = SectionCursor::new(payload);
    match c.get_u8("response status")? {
        STATUS_OK => {}
        STATUS_ERR => {
            return Err(WireError::Remote(c.get_str("error message")?.to_owned()));
        }
        other => {
            return Err(WireError::Corrupt {
                context: format!("unknown response status {other}"),
            })
        }
    }
    let resp = match c.get_u8("response kind")? {
        RESP_PONG => EngineResponse::Pong,
        RESP_HITS => EngineResponse::Hits(get_hit_set(&mut c)?),
        RESP_MEETS => EngineResponse::Meets(get_meets(&mut c)?),
        other => {
            return Err(WireError::Corrupt {
                context: format!("unknown response kind {other}"),
            })
        }
    };
    if !c.at_end() {
        return Err(WireError::Corrupt {
            context: "trailing bytes after response body".to_owned(),
        });
    }
    Ok(resp)
}

// ----- failover router -----

/// Per-replica health. Transitions: any failure moves `Healthy` to
/// `Suspect`; [`RemoteConfig::suspect_threshold`] consecutive failures
/// move `Suspect` to `Down`; any success resets to `Healthy`. A down
/// replica is skipped by the router until its half-open probe timer
/// ([`RemoteConfig::down_probe_after`]) elapses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaHealth {
    /// Answering normally.
    Healthy,
    /// Failed recently; still tried, but no longer trusted.
    Suspect,
    /// Considered dead; probed at most once per probe interval.
    Down,
}

/// Router tuning knobs. Every socket the router opens carries the
/// connect/read/write timeouts, so the worst-case latency of a call is
/// bounded by `(retry_rounds + 1) × replicas × (connect + read +
/// write)` plus the backoff sleeps — the "timeout budget" the stress
/// suite asserts against.
#[derive(Debug, Clone)]
pub struct RemoteConfig {
    /// TCP connect deadline per attempt.
    pub connect_timeout: Duration,
    /// Socket read deadline per response.
    pub read_timeout: Duration,
    /// Socket write deadline per request.
    pub write_timeout: Duration,
    /// Extra full-sweep rounds after the first (0 = single sweep).
    pub retry_rounds: usize,
    /// Backoff before retry round r: `backoff_base × 2^(r-1)` plus
    /// jitter in `[0, backoff_base)`, capped at `backoff_max`.
    pub backoff_base: Duration,
    /// Upper bound on one backoff sleep.
    pub backoff_max: Duration,
    /// How long a down replica stays skipped before a half-open probe.
    pub down_probe_after: Duration,
    /// Consecutive failures that demote a suspect replica to down.
    pub suspect_threshold: u32,
    /// Frame payload cap for this connection.
    pub frame_cap: u32,
    /// Seed of the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for RemoteConfig {
    fn default() -> RemoteConfig {
        RemoteConfig {
            connect_timeout: Duration::from_millis(1000),
            read_timeout: Duration::from_millis(5000),
            write_timeout: Duration::from_millis(5000),
            retry_rounds: 2,
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_millis(500),
            down_probe_after: Duration::from_millis(500),
            suspect_threshold: 2,
            frame_cap: DEFAULT_FRAME_CAP,
            jitter_seed: 0x6e63_715f_6a69_7474, // "ncq_jitt"
        }
    }
}

struct ReplicaState {
    health: ReplicaHealth,
    conn: Option<TcpStream>,
    consecutive_failures: u32,
    probe_after: Option<Instant>,
}

struct Replica {
    addr: String,
    state: Mutex<ReplicaState>,
}

impl Replica {
    fn new(addr: String) -> Replica {
        Replica {
            addr,
            state: Mutex::new(ReplicaState {
                health: ReplicaHealth::Healthy,
                conn: None,
                consecutive_failures: 0,
                probe_after: None,
            }),
        }
    }

    fn health(&self) -> ReplicaHealth {
        self.state.lock().expect("replica state lock").health
    }

    /// Whether the router should try this replica in the current
    /// sweep: healthy and suspect replicas always, down replicas only
    /// once their half-open probe timer has elapsed.
    fn eligible(&self) -> bool {
        let st = self.state.lock().expect("replica state lock");
        match st.health {
            ReplicaHealth::Healthy | ReplicaHealth::Suspect => true,
            ReplicaHealth::Down => st.probe_after.is_none_or(|t| Instant::now() >= t),
        }
    }

    /// One request/response exchange over the pooled connection
    /// (established lazily, dropped on any failure so the next attempt
    /// starts from a clean socket). The state lock is held across the
    /// exchange: calls to *one replica* serialize, calls across
    /// replicas proceed in parallel.
    fn exchange(&self, request: &[u8], config: &RemoteConfig) -> Result<Vec<u8>, WireError> {
        let mut st = self.state.lock().expect("replica state lock");
        if st.conn.is_none() {
            let addr = self
                .addr
                .to_socket_addrs()?
                .next()
                .ok_or_else(|| WireError::Corrupt {
                    context: format!("endpoint {:?} resolves to no address", self.addr),
                })?;
            let stream = TcpStream::connect_timeout(&addr, config.connect_timeout)?;
            stream.set_read_timeout(Some(config.read_timeout))?;
            stream.set_write_timeout(Some(config.write_timeout))?;
            stream.set_nodelay(true)?;
            st.conn = Some(stream);
        }
        let stream = st.conn.as_mut().expect("connection just ensured");
        let result = write_frame(stream, request, config.frame_cap)
            .and_then(|()| read_frame(stream, config.frame_cap));
        if result.is_err() {
            st.conn = None;
        }
        result
    }

    fn mark_ok(&self) {
        let mut st = self.state.lock().expect("replica state lock");
        st.health = ReplicaHealth::Healthy;
        st.consecutive_failures = 0;
        st.probe_after = None;
    }

    fn mark_failed(&self, config: &RemoteConfig) {
        let mut st = self.state.lock().expect("replica state lock");
        st.conn = None;
        st.consecutive_failures = st.consecutive_failures.saturating_add(1);
        if st.consecutive_failures >= config.suspect_threshold {
            st.health = ReplicaHealth::Down;
            st.probe_after = Some(Instant::now() + config.down_probe_after);
        } else {
            st.health = ReplicaHealth::Suspect;
        }
    }
}

#[derive(Default)]
struct RouterCounters {
    retries: AtomicU64,
    failovers: AtomicU64,
    timeouts: AtomicU64,
}

/// Registry handles for the router's metrics, looked up once.
struct RemoteMetrics {
    attempts: Arc<ncq_obs::Counter>,
    failures: Arc<ncq_obs::Counter>,
    attempt_ns: Arc<ncq_obs::Histogram>,
}

fn remote_metrics() -> &'static RemoteMetrics {
    static METRICS: std::sync::OnceLock<RemoteMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = &ncq_obs::obs().registry;
        RemoteMetrics {
            attempts: registry.counter("ncq_remote_attempts_total"),
            failures: registry.counter("ncq_remote_attempt_failures_total"),
            attempt_ns: registry.histogram("ncq_remote_attempt_ns"),
        }
    })
}

/// [`MeetBackend`] proxied over the framed engine protocol, with
/// replica failover.
///
/// The backend keeps a local *resolver* copy of the corpus (the same
/// snapshot the replicas serve): [`MeetBackend::store`] must hand out
/// schema and string lookups for answer resolution, and those stay
/// local — only search and meet execution travel. Because replicas run
/// the identical engine over the identical snapshot, a remote answer
/// is byte-identical to in-process execution; the golden replay suite
/// asserts exactly that.
pub struct RemoteBackend {
    resolver: Database,
    replicas: Vec<Replica>,
    config: RemoteConfig,
    jitter: Mutex<StdRng>,
    counters: RouterCounters,
}

impl RemoteBackend {
    /// Route to `endpoints` (tried in order — list the preferred
    /// replica first), resolving answers against `resolver`. Refuses
    /// an empty endpoint list.
    pub fn new(
        resolver: Database,
        endpoints: &[String],
        config: RemoteConfig,
    ) -> Result<RemoteBackend, BackendError> {
        if endpoints.is_empty() {
            return Err(BackendError::Unavailable {
                detail: "a remote backend needs at least one replica endpoint".to_owned(),
                attempts: 0,
            });
        }
        let jitter = Mutex::new(StdRng::seed_from_u64(config.jitter_seed));
        Ok(RemoteBackend {
            resolver,
            replicas: endpoints.iter().cloned().map(Replica::new).collect(),
            config,
            jitter,
            counters: RouterCounters::default(),
        })
    }

    /// The configured endpoints, in routing order.
    pub fn endpoints(&self) -> Vec<String> {
        self.replicas.iter().map(|r| r.addr.clone()).collect()
    }

    /// Current per-replica health, in routing order.
    pub fn replica_health(&self) -> Vec<(String, ReplicaHealth)> {
        self.replicas
            .iter()
            .map(|r| (r.addr.clone(), r.health()))
            .collect()
    }

    /// The router configuration in effect.
    pub fn config(&self) -> &RemoteConfig {
        &self.config
    }

    fn backoff_delay(&self, round: usize) -> Duration {
        let base = self.config.backoff_base.max(Duration::from_micros(1));
        let shift = round.saturating_sub(1).min(16) as u32;
        let exp = base
            .saturating_mul(1u32 << shift)
            .min(self.config.backoff_max);
        let jitter_us = self
            .jitter
            .lock()
            .expect("jitter rng lock")
            .random_range(0..base.as_micros().max(1) as u64);
        exp + Duration::from_micros(jitter_us)
    }

    fn note_failure(&self, replica: &Replica, err: &WireError) {
        if err.is_timeout() {
            self.counters.timeouts.fetch_add(1, Relaxed);
        }
        replica.mark_failed(&self.config);
    }

    /// One failover-routed call. Sweeps replicas in order (skipping
    /// ones believed down), then force-probes the skipped ones if the
    /// sweep made no progress, then backs off and repeats up to
    /// [`RemoteConfig::retry_rounds`] more times. An in-band
    /// [`WireError::Remote`] returns immediately — the request itself
    /// was refused, so another replica would refuse it the same way.
    pub fn call(&self, req: &EngineRequest) -> Result<EngineResponse, BackendError> {
        // When a trace is active on this thread, ship its id in the
        // frame body so the replica's engine-side spans stitch to it.
        let obs_on = ncq_obs::obs().enabled();
        let request = match ncq_obs::trace::current_id() {
            Some(id) if obs_on => encode_request_traced(req, id),
            _ => encode_request(req),
        };
        let mut attempts = 0usize;
        let mut last_failure = String::from("no replica attempted");
        for round in 0..=self.config.retry_rounds {
            if round > 0 {
                self.counters.retries.fetch_add(1, Relaxed);
                ncq_obs::trace::event("retry_round", format!("round {round} backing off"));
                std::thread::sleep(self.backoff_delay(round));
            }
            let mut tried = vec![false; self.replicas.len()];
            // Pass 1: replicas currently believed reachable. Pass 2
            // (only over the ones pass 1 skipped): force-probe, so a
            // sweep always attempts at least one replica even when
            // every health record says down — recovery is observable
            // within one call, and the round stays bounded because
            // every replica is attempted at most once per round.
            for force in [false, true] {
                for (i, replica) in self.replicas.iter().enumerate() {
                    if tried[i] || (!force && !replica.eligible()) {
                        continue;
                    }
                    tried[i] = true;
                    attempts += 1;
                    if attempts > 1 {
                        self.counters.failovers.fetch_add(1, Relaxed);
                        ncq_obs::trace::event("failover", format!("to {}", replica.addr));
                    }
                    let span = ncq_obs::trace::span("remote_attempt");
                    ncq_obs::trace::annotate("replica", replica.addr.clone());
                    let health_before = replica.health();
                    let started = Instant::now();
                    let outcome = replica
                        .exchange(&request, &self.config)
                        .and_then(|payload| decode_response(&payload));
                    if obs_on {
                        let m = remote_metrics();
                        m.attempts.inc();
                        m.attempt_ns.record(started.elapsed().as_nanos() as u64);
                    }
                    match outcome {
                        Ok(resp) => {
                            replica.mark_ok();
                            ncq_obs::trace::annotate("outcome", "ok".to_owned());
                            drop(span);
                            return Ok(resp);
                        }
                        Err(WireError::Remote(msg)) => {
                            // The replica is alive and refused the
                            // request in-band: not a health event,
                            // and not retryable elsewhere.
                            replica.mark_ok();
                            ncq_obs::trace::annotate("outcome", "refused".to_owned());
                            drop(span);
                            return Err(BackendError::Remote { detail: msg });
                        }
                        Err(e) => {
                            if obs_on {
                                remote_metrics().failures.inc();
                            }
                            last_failure = format!("{} at {}", e, replica.addr);
                            self.note_failure(replica, &e);
                            ncq_obs::trace::annotate("outcome", format!("error: {e}"));
                            ncq_obs::trace::annotate(
                                "health",
                                format!("{health_before:?}->{:?}", replica.health()),
                            );
                        }
                    }
                }
            }
        }
        Err(BackendError::Unavailable {
            detail: last_failure,
            attempts,
        })
    }

    /// Probe every replica with one `PING`, updating health records.
    /// The [`HealthMonitor`] calls this periodically; tests call it
    /// directly to drive the state machine.
    pub fn ping_replicas(&self) {
        let request = encode_request(&EngineRequest::Ping);
        for replica in &self.replicas {
            match replica.exchange(&request, &self.config) {
                Ok(payload) => match decode_response(&payload) {
                    Ok(EngineResponse::Pong) => replica.mark_ok(),
                    Ok(_) | Err(WireError::Remote(_)) => replica.mark_ok(),
                    Err(e) => self.note_failure(replica, &e),
                },
                Err(e) => self.note_failure(replica, &e),
            }
        }
    }

    /// Start a background thread pinging every replica each
    /// `interval`. The thread holds only a weak reference — dropping
    /// the backend (or the returned [`HealthMonitor`]) stops it.
    pub fn spawn_health_monitor(backend: &Arc<RemoteBackend>, interval: Duration) -> HealthMonitor {
        let weak: Weak<RemoteBackend> = Arc::downgrade(backend);
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("ncq-health-monitor".to_owned())
            .spawn(move || loop {
                if thread_stop.load(Relaxed) {
                    break;
                }
                let Some(backend) = weak.upgrade() else { break };
                backend.ping_replicas();
                drop(backend);
                // Sleep in short steps so stop stays responsive.
                let mut remaining = interval;
                let step = Duration::from_millis(20);
                while !remaining.is_zero() && !thread_stop.load(Relaxed) {
                    let nap = remaining.min(step);
                    std::thread::sleep(nap);
                    remaining = remaining.saturating_sub(nap);
                }
            })
            .expect("spawn health monitor thread");
        HealthMonitor {
            stop,
            handle: Some(handle),
        }
    }
}

impl fmt::Debug for RemoteBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RemoteBackend")
            .field("endpoints", &self.endpoints())
            .finish()
    }
}

impl MeetBackend for RemoteBackend {
    fn store(&self) -> &MonetDb {
        self.resolver.store()
    }

    /// Infallible surface: degrades to an empty hit set when every
    /// replica is down. First-class serving paths call
    /// [`MeetBackend::try_search`] instead and surface the typed error.
    fn search(&self, term: &str) -> HitSet {
        self.try_search(term).unwrap_or_default()
    }

    /// Infallible surface: degrades to no meets when every replica is
    /// down. First-class serving paths call
    /// [`MeetBackend::try_meet_hit_groups`] instead.
    fn meet_hit_groups(&self, inputs: &[&HitSet], options: &MeetOptions) -> Vec<Meet> {
        self.try_meet_hit_groups(inputs, options)
            .unwrap_or_default()
    }

    fn try_search(&self, term: &str) -> Result<HitSet, BackendError> {
        match self.call(&EngineRequest::Search {
            term: term.to_owned(),
        })? {
            EngineResponse::Hits(hits) => Ok(hits),
            other => Err(BackendError::Remote {
                detail: format!("expected hits, got {other:?}"),
            }),
        }
    }

    fn try_meet_hit_groups(
        &self,
        inputs: &[&HitSet],
        options: &MeetOptions,
    ) -> Result<Vec<Meet>, BackendError> {
        let owned: Vec<HitSet> = inputs.iter().map(|h| (*h).clone()).collect();
        match self.call(&EngineRequest::Meet {
            inputs: owned,
            options: options.clone(),
        })? {
            EngineResponse::Meets(meets) => Ok(meets),
            other => Err(BackendError::Remote {
                detail: format!("expected meets, got {other:?}"),
            }),
        }
    }

    fn robustness_stats(&self) -> RobustnessStats {
        RobustnessStats {
            retries: self.counters.retries.load(Relaxed),
            failovers: self.counters.failovers.load(Relaxed),
            replicas_down: self
                .replicas
                .iter()
                .filter(|r| r.health() == ReplicaHealth::Down)
                .count() as u64,
            timeouts: self.counters.timeouts.load(Relaxed),
        }
    }

    /// Persists the *resolver* copy — the same snapshot the replicas
    /// serve, so this is the corpus state.
    fn save_snapshot(&self, path: &Path) -> Result<(), SnapshotError> {
        Database::save_snapshot(&self.resolver, path)
    }

    /// Reload the resolver from `path`, keeping the same endpoints and
    /// router configuration (replica health restarts fresh).
    fn open_snapshot_like(&self, path: &Path) -> Result<Arc<dyn MeetBackend>, SnapshotError> {
        let resolver = Database::open_snapshot(path)?;
        let endpoints = self.endpoints();
        let backend =
            RemoteBackend::new(resolver, &endpoints, self.config.clone()).map_err(|_| {
                SnapshotError::Unsupported {
                    context: "remote backend lost its endpoints during reload",
                }
            })?;
        Ok(Arc::new(backend))
    }
}

/// Handle to a running replica ping thread (see
/// [`RemoteBackend::spawn_health_monitor`]). Dropping it stops and
/// joins the thread.
pub struct HealthMonitor {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl HealthMonitor {
    /// Stop and join the ping thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Relaxed);
            let _ = handle.join();
        }
    }
}

impl Drop for HealthMonitor {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;
    use std::net::TcpListener;

    const FIG: &str = r#"<bib><article key="BB99"><author>Ben Bit</author>
        <year>1999</year></article><article key="MM01"><author>Mary Meet</author>
        <year>1999</year></article></bib>"#;

    fn sample_meet_request(db: &Database) -> EngineRequest {
        EngineRequest::Meet {
            inputs: vec![db.search("Bit"), db.search("1999")],
            options: MeetOptions {
                max_distance: Some(9),
                witness_cap: 4,
                strategy: MeetStrategy::Lift,
                filter: PathFilter::Exclude([PathId::from_index(0)].into_iter().collect()),
                limit: Some(3),
            },
        }
    }

    /// A minimal in-process engine server: decode requests, execute on
    /// a local database, answer framed responses. The real listener
    /// lives in `ncq-server`; this one exists so the codec and router
    /// are provable inside `ncq-core`.
    fn toy_engine(db: Arc<Database>) -> (std::net::SocketAddr, TcpListener) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let accept = listener.try_clone().unwrap();
        std::thread::spawn(move || {
            for stream in accept.incoming() {
                let Ok(stream) = stream else { break };
                let db = Arc::clone(&db);
                std::thread::spawn(move || {
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut writer = stream;
                    while let Ok(Some(payload)) = read_frame_or_eof(&mut reader, DEFAULT_FRAME_CAP)
                    {
                        let response = match decode_request(&payload) {
                            Ok(EngineRequest::Ping) => encode_response(&EngineResponse::Pong),
                            Ok(EngineRequest::Search { term }) => {
                                encode_response(&EngineResponse::Hits(db.search(&term)))
                            }
                            Ok(EngineRequest::Meet { inputs, options }) => {
                                let refs: Vec<&HitSet> = inputs.iter().collect();
                                encode_response(&EngineResponse::Meets(
                                    db.meet_hits(&refs, &options),
                                ))
                            }
                            Err(e) => encode_error_response(&e.to_string()),
                        };
                        if write_frame(&mut writer, &response, DEFAULT_FRAME_CAP).is_err() {
                            break;
                        }
                    }
                });
            }
        });
        (addr, listener)
    }

    fn fast_config() -> RemoteConfig {
        RemoteConfig {
            connect_timeout: Duration::from_millis(200),
            read_timeout: Duration::from_millis(500),
            write_timeout: Duration::from_millis(500),
            retry_rounds: 1,
            backoff_base: Duration::from_millis(1),
            backoff_max: Duration::from_millis(5),
            down_probe_after: Duration::from_millis(10),
            ..RemoteConfig::default()
        }
    }

    #[test]
    fn request_and_response_round_trip_bit_for_bit() {
        let db = Database::from_xml_str(FIG).unwrap();
        for req in [
            EngineRequest::Ping,
            EngineRequest::Search {
                term: "\"Ben Bit\"".to_owned(),
            },
            sample_meet_request(&db),
        ] {
            let bytes = encode_request(&req);
            assert_eq!(decode_request(&bytes).unwrap(), req);
            // Deterministic encoding (the chaos schedule and golden
            // replays rely on it).
            assert_eq!(bytes, encode_request(&req));
        }
        let inputs = [db.search("Bit"), db.search("1999")];
        let refs: Vec<&HitSet> = inputs.iter().collect();
        let meets = db.meet_hits(&refs, &MeetOptions::default());
        for resp in [
            EngineResponse::Pong,
            EngineResponse::Hits(db.search("Bit")),
            EngineResponse::Meets(meets),
        ] {
            let bytes = encode_response(&resp);
            assert_eq!(decode_response(&bytes).unwrap(), resp);
        }
        assert!(matches!(
            decode_response(&encode_error_response("nope")),
            Err(WireError::Remote(msg)) if msg == "nope"
        ));
    }

    #[test]
    fn framed_stream_round_trips() {
        let payload = encode_request(&EngineRequest::Search {
            term: "x".to_owned(),
        });
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload, DEFAULT_FRAME_CAP).unwrap();
        let mut r = wire.as_slice();
        assert_eq!(read_frame(&mut r, DEFAULT_FRAME_CAP).unwrap(), payload);
        // Clean EOF at a frame boundary is Ok(None), not an error.
        assert!(read_frame_or_eof(&mut r, DEFAULT_FRAME_CAP)
            .unwrap()
            .is_none());
    }

    #[test]
    fn truncation_at_every_prefix_is_typed_never_a_panic() {
        let db = Database::from_xml_str(FIG).unwrap();
        let payload = encode_request(&sample_meet_request(&db));
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload, DEFAULT_FRAME_CAP).unwrap();
        for len in 1..wire.len() {
            let mut r = &wire[..len];
            assert!(
                read_frame(&mut r, DEFAULT_FRAME_CAP).is_err(),
                "prefix of {len} bytes decoded"
            );
        }
        // Body-level truncation behind a valid frame: every prefix of
        // the *payload* must also fail typed.
        for len in 0..payload.len() {
            assert!(
                decode_request(&payload[..len]).is_err(),
                "payload prefix of {len} bytes decoded"
            );
        }
        let resp = encode_response(&EngineResponse::Hits(db.search("Bit")));
        for len in 0..resp.len() {
            assert!(
                decode_response(&resp[..len]).is_err(),
                "response prefix of {len} bytes decoded"
            );
        }
    }

    #[test]
    fn oversized_length_and_corrupt_frames_are_typed() {
        // Length field past the cap is refused before allocation.
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        wire.extend_from_slice(&0u64.to_le_bytes());
        assert!(matches!(
            read_frame(&mut wire.as_slice(), DEFAULT_FRAME_CAP),
            Err(WireError::FrameTooLarge { .. })
        ));
        // A flipped payload byte fails the frame checksum.
        let payload = encode_request(&EngineRequest::Ping);
        let mut framed = Vec::new();
        write_frame(&mut framed, &payload, DEFAULT_FRAME_CAP).unwrap();
        for at in 0..framed.len() {
            let mut corrupt = framed.clone();
            corrupt[at] ^= 0x20;
            assert!(
                read_frame(&mut corrupt.as_slice(), DEFAULT_FRAME_CAP).is_err(),
                "flip at {at} went undetected"
            );
        }
        // Garbage bodies behind valid frames are typed too.
        assert!(decode_request(&[0xFF, 0x00, 0x01]).is_err());
        assert!(decode_response(&[0xFF]).is_err());
        assert!(decode_request(&[]).is_err());
    }

    #[test]
    fn remote_backend_answers_byte_identically_to_in_process() {
        let db = Arc::new(Database::from_xml_str(FIG).unwrap());
        let (addr, _listener) = toy_engine(Arc::clone(&db));
        let remote = RemoteBackend::new(
            Database::from_xml_str(FIG).unwrap(),
            &[addr.to_string()],
            fast_config(),
        )
        .unwrap();
        let opts = MeetOptions::default();
        let local = db.meet_terms(&["Bit", "1999"]).unwrap();
        let over_wire = remote
            .try_meet_terms_answers(&["Bit", "1999"], &opts)
            .unwrap();
        assert_eq!(over_wire.to_detailed_xml(), local.to_detailed_xml());
        assert_eq!(remote.try_search("Bit").unwrap(), db.search("Bit"));
        assert_eq!(remote.robustness_stats(), RobustnessStats::default());
    }

    #[test]
    fn failover_reissues_on_the_next_replica_and_counts_it() {
        let db = Arc::new(Database::from_xml_str(FIG).unwrap());
        // Replica 1: a port with nothing listening (bind, note the
        // address, drop — connections are refused).
        let dead = TcpListener::bind("127.0.0.1:0").unwrap();
        let dead_addr = dead.local_addr().unwrap();
        drop(dead);
        let (live_addr, _listener) = toy_engine(Arc::clone(&db));
        let remote = RemoteBackend::new(
            Database::from_xml_str(FIG).unwrap(),
            &[dead_addr.to_string(), live_addr.to_string()],
            fast_config(),
        )
        .unwrap();
        let answers = remote
            .try_meet_terms_answers(&["Bit", "1999"], &MeetOptions::default())
            .unwrap();
        assert_eq!(
            answers.to_detailed_xml(),
            db.meet_terms(&["Bit", "1999"]).unwrap().to_detailed_xml()
        );
        let stats = remote.robustness_stats();
        assert!(stats.failovers > 0, "{stats:?}");
        // After enough failures the dead replica is marked down and
        // the gauge reports it.
        for _ in 0..3 {
            let _ = remote.try_search("Bit");
        }
        let health = remote.replica_health();
        assert_eq!(health[0].1, ReplicaHealth::Down, "{health:?}");
        assert_eq!(health[1].1, ReplicaHealth::Healthy, "{health:?}");
        assert_eq!(remote.robustness_stats().replicas_down, 1);
    }

    #[test]
    fn all_replicas_down_is_a_typed_error_within_the_timeout_budget() {
        let dead = TcpListener::bind("127.0.0.1:0").unwrap();
        let dead_addr = dead.local_addr().unwrap();
        drop(dead);
        let config = fast_config();
        let remote = RemoteBackend::new(
            Database::from_xml_str(FIG).unwrap(),
            &[dead_addr.to_string()],
            config.clone(),
        )
        .unwrap();
        let started = Instant::now();
        let err = remote.try_search("Bit").unwrap_err();
        let elapsed = started.elapsed();
        assert!(matches!(err, BackendError::Unavailable { attempts, .. } if attempts >= 2));
        // Budget: 2 rounds × 1 replica × connect timeout + backoff,
        // with generous slack for CI scheduling.
        let budget = Duration::from_secs(5);
        assert!(elapsed < budget, "took {elapsed:?}");
        // Retries were counted, and the infallible surface degrades to
        // empty instead of panicking.
        assert!(remote.robustness_stats().retries >= 1);
        assert!(remote.search("Bit").is_empty());
        assert!(remote
            .meet_hit_groups(&[], &MeetOptions::default())
            .is_empty());
    }

    #[test]
    fn down_replicas_recover_through_the_health_monitor() {
        let db = Arc::new(Database::from_xml_str(FIG).unwrap());
        // Start dead: grab a port, refuse connections.
        let parked = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = parked.local_addr().unwrap();
        drop(parked);
        let config = fast_config();
        let remote = Arc::new(
            RemoteBackend::new(
                Database::from_xml_str(FIG).unwrap(),
                &[addr.to_string()],
                config,
            )
            .unwrap(),
        );
        assert!(remote.try_search("Bit").is_err());
        assert_eq!(remote.replica_health()[0].1, ReplicaHealth::Down);

        // Bring the replica up on the same port and let pings heal it.
        let listener = TcpListener::bind(addr).unwrap();
        let local = listener.local_addr().unwrap();
        assert_eq!(local, addr);
        let accept = listener.try_clone().unwrap();
        let db2 = Arc::clone(&db);
        std::thread::spawn(move || {
            for stream in accept.incoming() {
                let Ok(stream) = stream else { break };
                let db = Arc::clone(&db2);
                std::thread::spawn(move || {
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut writer = stream;
                    while let Ok(Some(payload)) = read_frame_or_eof(&mut reader, DEFAULT_FRAME_CAP)
                    {
                        let response = match decode_request(&payload) {
                            Ok(EngineRequest::Search { term }) => {
                                encode_response(&EngineResponse::Hits(db.search(&term)))
                            }
                            Ok(_) => encode_response(&EngineResponse::Pong),
                            Err(e) => encode_error_response(&e.to_string()),
                        };
                        if write_frame(&mut writer, &response, DEFAULT_FRAME_CAP).is_err() {
                            break;
                        }
                    }
                });
            }
        });
        let monitor = RemoteBackend::spawn_health_monitor(&remote, Duration::from_millis(10));
        let deadline = Instant::now() + Duration::from_secs(10);
        while remote.replica_health()[0].1 != ReplicaHealth::Healthy {
            assert!(Instant::now() < deadline, "replica never healed");
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(remote.try_search("Bit").unwrap(), db.search("Bit"));
        monitor.shutdown();
    }

    #[test]
    fn in_band_remote_errors_do_not_mark_the_replica_unhealthy() {
        // An engine that refuses every request in-band.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let accept = listener.try_clone().unwrap();
        std::thread::spawn(move || {
            for stream in accept.incoming() {
                let Ok(stream) = stream else { break };
                std::thread::spawn(move || {
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut writer = stream;
                    while let Ok(Some(_)) = read_frame_or_eof(&mut reader, DEFAULT_FRAME_CAP) {
                        let resp = encode_error_response("term cache poisoned");
                        if write_frame(&mut writer, &resp, DEFAULT_FRAME_CAP).is_err() {
                            break;
                        }
                    }
                });
            }
        });
        let remote = RemoteBackend::new(
            Database::from_xml_str(FIG).unwrap(),
            &[addr.to_string()],
            fast_config(),
        )
        .unwrap();
        let err = remote.try_search("Bit").unwrap_err();
        assert!(matches!(err, BackendError::Remote { detail } if detail.contains("poisoned")));
        assert_eq!(remote.replica_health()[0].1, ReplicaHealth::Healthy);
        assert_eq!(remote.robustness_stats().failovers, 0);
    }
}
