//! Result-type restriction — the paper's `meet_Π` (§4).
//!
//! > "we propose to extend the meet operator with … restrictions of the
//! > type of results, i.e., if `o` is a result candidate we restrict
//! > `σ(o)` to a certain set of paths Π; if `σ(o) ∉ Π` we discard `o`"
//!
//! The paper's prose and its case study use the restriction as an
//! *exclusion* ("with the document root excluded from the set of possible
//! results"), while the formula reads as an allow-list. Both are provided;
//! [`PathFilter::exclude_root`] is the variant every experiment uses.

use ncq_store::{MonetDb, PathId};
use std::collections::HashSet;

/// Which result paths a meet query may report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum PathFilter {
    /// No restriction.
    #[default]
    All,
    /// Discard results whose path is in the set.
    Exclude(HashSet<PathId>),
    /// Keep only results whose path is in the set.
    Allow(HashSet<PathId>),
}

impl PathFilter {
    /// The case-study filter: everything except the document root.
    pub fn exclude_root(db: &MonetDb) -> PathFilter {
        PathFilter::Exclude(std::iter::once(db.sigma(db.root())).collect())
    }

    /// Exclude the given paths.
    pub fn excluding(paths: impl IntoIterator<Item = PathId>) -> PathFilter {
        PathFilter::Exclude(paths.into_iter().collect())
    }

    /// Allow only the given paths.
    pub fn allowing(paths: impl IntoIterator<Item = PathId>) -> PathFilter {
        PathFilter::Allow(paths.into_iter().collect())
    }

    /// Whether a result with path `p` passes the filter.
    pub fn accepts(&self, p: PathId) -> bool {
        match self {
            PathFilter::All => true,
            PathFilter::Exclude(set) => !set.contains(&p),
            PathFilter::Allow(set) => set.contains(&p),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncq_store::MonetDb;
    use ncq_xml::parse;

    fn db() -> MonetDb {
        MonetDb::from_document(&parse("<bib><a><b/></a></bib>").unwrap())
    }

    #[test]
    fn all_accepts_everything() {
        let db = db();
        let f = PathFilter::All;
        for p in db.summary().iter() {
            assert!(f.accepts(p));
        }
    }

    #[test]
    fn exclude_root_rejects_only_the_root_path() {
        let db = db();
        let f = PathFilter::exclude_root(&db);
        let root_path = db.sigma(db.root());
        for p in db.summary().iter() {
            assert_eq!(f.accepts(p), p != root_path);
        }
    }

    #[test]
    fn allow_list_accepts_only_members() {
        let db = db();
        let some: Vec<PathId> = db.summary().iter().take(2).collect();
        let f = PathFilter::allowing(some.clone());
        for p in db.summary().iter() {
            assert_eq!(f.accepts(p), some.contains(&p));
        }
    }

    #[test]
    fn default_is_all() {
        assert_eq!(PathFilter::default(), PathFilter::All);
    }
}
