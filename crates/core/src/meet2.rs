//! Pairwise meet — the paper's Figure 3.
//!
//! `meet₂(o₁, o₂)` is the lowest common ancestor of two nodes
//! (Definition 6). The paper's algorithm walks parent pointers, *steered*
//! by comparing `σ(o₁)` and `σ(o₂)`: the node with the strictly longer
//! path is lifted first, so "superfluous look-ups are avoided". Since
//! `depth(o) = |σ(o)|` and `σ` comes for free from the relation name, the
//! steering decision is a depth comparison — the deeper frontier rises
//! until depths agree, then both rise in lockstep until they coincide.
//!
//! [`meet2_naive`] is the baseline the steering is measured against in the
//! ablation benchmarks: materialize the full ancestor list of one node,
//! then walk the other upward probing membership. It performs
//! `depth(o₁) + d` look-ups where the steered version performs exactly
//! `d = distance(o₁, o₂)`.
//!
//! [`meet2_indexed`] is the production fast path: O(1) via the Euler-tour
//! LCA index of [`ncq_store::MeetIndex`], with the steered walk retained
//! as the ablation baseline. All three implementations agree on `meet`
//! and `distance` for every pair.

use ncq_store::{MonetDb, Oid};

/// Result of a pairwise meet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Meet2 {
    /// The nearest concept: the lowest common ancestor.
    pub meet: Oid,
    /// Number of edges on the shortest path between the inputs — equal to
    /// the number of parent joins executed (paper §4: "the number of joins
    /// executed while calculating meet₂ corresponds to the number of edges
    /// on the shortest path").
    pub distance: usize,
    /// Parent look-ups performed (== `distance` for the steered version;
    /// larger for the naive baseline).
    pub lookups: usize,
}

/// σ-steered pairwise meet (paper Fig. 3).
pub fn meet2(db: &MonetDb, o1: Oid, o2: Oid) -> Meet2 {
    let mut a = o1;
    let mut b = o2;
    let mut da = db.depth(a);
    let mut db_ = db.depth(b);
    let mut lookups = 0usize;

    // Case σ(a) < σ(b): a's path is strictly longer — lift a.
    while da > db_ {
        a = db.parent(a).expect("depth > 0 has a parent");
        da -= 1;
        lookups += 1;
    }
    // Case σ(b) < σ(a): lift b.
    while db_ > da {
        b = db.parent(b).expect("depth > 0 has a parent");
        db_ -= 1;
        lookups += 1;
    }
    // Default case: lift both until they coincide.
    while a != b {
        a = db.parent(a).expect("non-equal nodes are below the root");
        b = db.parent(b).expect("non-equal nodes are below the root");
        lookups += 2;
    }
    Meet2 {
        meet: a,
        distance: lookups,
        lookups,
    }
}

/// Indexed fast path: O(1) LCA via the Euler-tour RMQ of
/// [`MonetDb::meet_index`] — no parent walk at all. `distance` is still
/// the paper's join count (`depth(o₁) + depth(o₂) − 2·depth(meet)`), but
/// `lookups` is 0: the relational joins are modelled, not executed.
pub fn meet2_indexed(db: &MonetDb, o1: Oid, o2: Oid) -> Meet2 {
    let (meet, distance) = db.meet_index().meet(o1, o2);
    Meet2 {
        meet,
        distance,
        lookups: 0,
    }
}

/// Naive baseline: collect all ancestors of `o1`, then probe `o2`'s
/// ancestors against them. No σ steering.
pub fn meet2_naive(db: &MonetDb, o1: Oid, o2: Oid) -> Meet2 {
    // Ancestor list of o1, index = climb count. The iterator always
    // yields o1 itself first, but guard the subtraction so an empty list
    // can never underflow in release builds.
    let anc1: Vec<Oid> = db.ancestors(o1).collect();
    let mut lookups = anc1.len().saturating_sub(1); // parent() calls to build the list

    let mut b = o2;
    let mut climb2 = 0usize;
    loop {
        if let Some(pos) = anc1.iter().position(|&a| a == b) {
            return Meet2 {
                meet: b,
                distance: pos + climb2,
                lookups,
            };
        }
        b = db
            .parent(b)
            .expect("every pair of nodes meets at the root at the latest");
        climb2 += 1;
        lookups += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncq_store::MonetDb;
    use ncq_xml::parse;

    /// The paper's Figure 1 document.
    const FIGURE1: &str = r#"
<bibliography>
  <institute>
    <article key="BB99">
      <author><firstname>Ben</firstname><lastname>Bit</lastname></author>
      <title>How to Hack</title>
      <year>1999</year>
    </article>
    <article key="BK99">
      <author>Bob Byte</author>
      <title>Hacking &amp; RSI</title>
      <year>1999</year>
    </article>
  </institute>
</bibliography>"#;

    fn db() -> MonetDb {
        MonetDb::from_document(&parse(FIGURE1).unwrap())
    }

    /// Oid of the cdata node whose text equals `s` (first match).
    fn cdata(db: &MonetDb, s: &str) -> Oid {
        db.string_paths()
            .flat_map(|p| db.strings_of(p))
            .find(|(_, t)| &**t == s)
            .map(|(o, _)| *o)
            .unwrap()
    }

    #[test]
    fn paper_example_ben_bit_meets_at_author() {
        // §3.1: full-text "Ben" & "Bit" → the author node.
        let db = db();
        let m = meet2(&db, cdata(&db, "Ben"), cdata(&db, "Bit"));
        assert_eq!(db.tag(m.meet), Some("author"));
        // firstname/cdata → author is 2 up; lastname/cdata → author 2 up.
        assert_eq!(m.distance, 4);
    }

    #[test]
    fn paper_example_bob_byte_meets_at_cdata_itself() {
        // §3.1: "Bob" and "Byte" hit the same association; the meet is the
        // cdata node itself.
        let db = db();
        let o = cdata(&db, "Bob Byte");
        let m = meet2(&db, o, o);
        assert_eq!(m.meet, o);
        assert_eq!(m.distance, 0);
        assert_eq!(db.label(m.meet), "cdata");
    }

    #[test]
    fn paper_example_bit_1999_meets_at_article() {
        // §3.1: "Bit" & the first article's "1999" meet at the article.
        let db = db();
        let bit = cdata(&db, "Bit");
        // First "1999" in document order belongs to the first article.
        let year = cdata(&db, "1999");
        let m = meet2(&db, bit, year);
        assert_eq!(db.tag(m.meet), Some("article"));
    }

    #[test]
    fn meet_is_commutative() {
        let db = db();
        let a = cdata(&db, "Ben");
        let b = cdata(&db, "How to Hack");
        let m1 = meet2(&db, a, b);
        let m2 = meet2(&db, b, a);
        assert_eq!(m1.meet, m2.meet);
        assert_eq!(m1.distance, m2.distance);
    }

    #[test]
    fn meet_with_ancestor_is_the_ancestor() {
        let db = db();
        let ben = cdata(&db, "Ben");
        let root = db.root();
        let m = meet2(&db, ben, root);
        assert_eq!(m.meet, root);
        assert_eq!(m.distance, db.depth(ben));
        // And in the other argument order.
        assert_eq!(meet2(&db, root, ben).meet, root);
    }

    #[test]
    fn meet_of_node_with_itself_is_identity() {
        let db = db();
        for o in db.iter_oids() {
            let m = meet2(&db, o, o);
            assert_eq!(m.meet, o);
            assert_eq!(m.distance, 0);
            assert_eq!(m.lookups, 0);
        }
    }

    #[test]
    fn cross_article_meet_is_institute() {
        let db = db();
        let ben = cdata(&db, "Ben"); // article 1
        let bob = cdata(&db, "Bob Byte"); // article 2
        let m = meet2(&db, ben, bob);
        assert_eq!(db.tag(m.meet), Some("institute"));
    }

    #[test]
    fn naive_agrees_with_steered_everywhere() {
        let db = db();
        let oids: Vec<Oid> = db.iter_oids().collect();
        for &a in &oids {
            for &b in &oids {
                let s = meet2(&db, a, b);
                let n = meet2_naive(&db, a, b);
                assert_eq!(s.meet, n.meet, "meet mismatch for {a:?},{b:?}");
                assert_eq!(s.distance, n.distance, "distance mismatch for {a:?},{b:?}");
            }
        }
    }

    #[test]
    fn indexed_agrees_with_steered_everywhere() {
        let db = db();
        let oids: Vec<Oid> = db.iter_oids().collect();
        for &a in &oids {
            for &b in &oids {
                let s = meet2(&db, a, b);
                let i = meet2_indexed(&db, a, b);
                assert_eq!(s.meet, i.meet, "meet mismatch for {a:?},{b:?}");
                assert_eq!(s.distance, i.distance, "distance mismatch for {a:?},{b:?}");
                assert_eq!(i.lookups, 0, "indexed meet performs no parent walk");
            }
        }
    }

    #[test]
    fn steered_version_needs_no_more_lookups_than_distance() {
        let db = db();
        let oids: Vec<Oid> = db.iter_oids().collect();
        for &a in &oids {
            for &b in &oids {
                let s = meet2(&db, a, b);
                assert_eq!(s.lookups, s.distance);
                let n = meet2_naive(&db, a, b);
                assert!(n.lookups >= s.lookups);
            }
        }
    }

    #[test]
    fn meet_result_is_a_common_ancestor_and_lowest() {
        let db = db();
        let oids: Vec<Oid> = db.iter_oids().collect();
        for &a in &oids {
            for &b in &oids {
                let m = meet2(&db, a, b).meet;
                assert!(db.is_ancestor_or_self(m, a));
                assert!(db.is_ancestor_or_self(m, b));
                // No child of m is a common ancestor (lowest-ness):
                // the child of m on the path to a differs from the one to
                // b unless a==b (then m==a==b).
                if a != b {
                    let step =
                        |x: Oid| -> Option<Oid> { db.ancestors(x).take_while(|&n| n != m).last() };
                    match (step(a), step(b)) {
                        (Some(ca), Some(cb)) => assert_ne!(ca, cb),
                        // One of them IS the meet.
                        _ => assert!(a == m || b == m),
                    }
                }
            }
        }
    }
}
