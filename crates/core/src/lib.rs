//! # ncq-core — the meet operator (nearest concept queries)
//!
//! The primary contribution of Schmidt, Kersten & Windhouwer, *"Querying
//! XML Documents Made Easy: Nearest Concept Queries"* (ICDE 2001): query
//! XML databases **whose content you know but whose mark-up you don't**,
//! by computing lowest common ancestors ("nearest concepts") of full-text
//! hits. The result *type* is not specified in the query — it emerges from
//! the database instance.
//!
//! Three algorithm tiers, exactly as in the paper:
//!
//! * [`meet2::meet2`] — pairwise LCA with σ-steered parent walks (Fig. 3),
//!   plus the naive two-ancestor-list baseline [`meet2::meet2_naive`] used
//!   by the ablation benchmarks;
//! * [`meet_sets::meet_sets`] — two homogeneous OID sets, evaluated with
//!   bulk parent joins and *minimal meet* extraction (Fig. 4);
//! * [`meet_multi::meet_multi`] — arbitrarily many heterogeneous hit
//!   groups, rolled up bottom-up over the tree-shaped schema (Fig. 5),
//!   with the §4 extensions: result-type restriction `meet_Π`
//!   ([`filter::PathFilter`]), distance bound `meet^δ`, and
//!   distance-based ranking ([`rank`]).
//!
//! [`Database`] packages parsing, the Monet transform, the inverted index
//! and the meet operators behind one facade:
//!
//! ```
//! use ncq_core::Database;
//!
//! let db = Database::from_xml_str(r#"
//!   <bibliography><institute>
//!     <article key="BB99">
//!       <author><firstname>Ben</firstname><lastname>Bit</lastname></author>
//!       <title>How to Hack</title><year>1999</year>
//!     </article>
//!   </institute></bibliography>"#).unwrap();
//!
//! // "What did Bit do in 1999?" — no schema knowledge required:
//! let answers = db.meet_terms(&["Bit", "1999"]).unwrap();
//! assert_eq!(answers.results[0].tag, "article");
//! ```

pub mod answer;
pub mod backend;
pub mod batch;
pub mod catalog;
pub mod db;
pub mod distance;
pub mod filter;
pub mod graph;
pub mod meet2;
pub mod meet_multi;
pub mod meet_sets;
pub mod planner;
pub mod rank;
pub mod remote;
pub mod sweep;

pub use answer::{Answer, AnswerSet, PartialAnswer, Witness};
pub use backend::{BackendError, MeetBackend, RobustnessStats};
pub use batch::BatchQuery;
pub use catalog::{Catalog, CatalogError, ForestBackend};
pub use db::Database;
pub use distance::{distance, meet2_bounded};
pub use filter::PathFilter;
pub use graph::{graph_distance, graph_meet, GraphMeet, RefGraph};
pub use meet2::{meet2, meet2_indexed, meet2_naive, Meet2};
pub use meet_multi::{meet_multi, meet_multi_indexed, meet_multi_items, Meet, MeetOptions};
pub use meet_sets::{
    meet_sets, meet_sets_lift_ordered, meet_sets_sweep, meet_sets_sweep_merged, MeetError, SetMeets,
};
pub use planner::{ChosenStrategy, MeetPlanner, MeetStrategy, PlanDecision, PlannerConfig};
pub use remote::{
    EngineRequest, EngineResponse, HealthMonitor, RemoteBackend, RemoteConfig, ReplicaHealth,
    WireError, DEFAULT_FRAME_CAP,
};
