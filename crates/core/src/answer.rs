//! Answer sets: what a meet query returns to the user.
//!
//! The paper renders answers as
//!
//! ```xml
//! <answer>
//!   <result> article </result>
//! </answer>
//! ```
//!
//! [`AnswerSet`] carries the same information plus everything needed for
//! exploration: the result oid, its tag ("the nearest concept" — a type
//! the user never specified), its full path, the ranking distance, and
//! the witnesses that explain why the node qualified.

use crate::meet_multi::Meet;
use ncq_store::{MonetDb, Oid};
use std::fmt;

/// A single witness in an answer (a resolved [`crate::meet_multi::MeetWitness`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Witness {
    /// The original hit's owner oid.
    pub origin: Oid,
    /// Index of the query term that produced the hit.
    pub term: usize,
    /// Edges between the hit and the result node.
    pub climb: usize,
    /// The matched string (cdata text or attribute value), when resolvable.
    pub text: Option<String>,
}

/// One result of a meet query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Answer {
    /// The corpus the result came from — `None` for single-document
    /// engines, `Some(name)` when a forest backend concatenated
    /// answers across its catalog (the corpus tag disambiguates
    /// per-corpus oids, which collide across documents).
    pub corpus: Option<String>,
    /// The nearest concept node.
    pub oid: Oid,
    /// Its tag — the paper's `<result>` payload (`cdata` for text nodes).
    pub tag: String,
    /// Its full path (relation name), e.g.
    /// `bibliography/institute/article`.
    pub path: String,
    /// Ranking distance (edges between the two closest witnesses).
    pub distance: usize,
    /// Total witnesses that converged on this node.
    pub witness_count: usize,
    /// Witness sample.
    pub witnesses: Vec<Witness>,
}

/// A corpus (or shard) that could not contribute to a fan-out answer:
/// every replica of its engine was down, so the results list covers the
/// surviving corpora only. Typed graceful degradation — the marker
/// rides *inside* the answer set instead of failing the whole batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartialAnswer {
    /// The corpus whose engine did not answer.
    pub corpus: String,
    /// Why (the rendered [`crate::backend::BackendError`]).
    pub detail: String,
}

/// All results of one meet query, ranked.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AnswerSet {
    /// Ranked results (best first).
    pub results: Vec<Answer>,
    /// Corpora that failed to answer during a fan-out (empty on full
    /// answers — the common case, and the only case single-corpus
    /// serializations ever see).
    pub partials: Vec<PartialAnswer>,
}

impl AnswerSet {
    /// Build from ranked meets, resolving display strings against the
    /// database.
    pub fn from_meets(db: &MonetDb, meets: Vec<Meet>) -> AnswerSet {
        let results = meets
            .into_iter()
            .map(|m| Answer {
                corpus: None,
                oid: m.node,
                tag: db.label(m.node),
                path: db.relation_name(m.path),
                distance: m.distance,
                witness_count: m.witness_count,
                witnesses: m
                    .witnesses
                    .into_iter()
                    .map(|w| Witness {
                        origin: w.origin,
                        term: w.input,
                        climb: w.climb,
                        text: db
                            .string_value(db.sigma(w.origin), w.origin)
                            .map(str::to_owned),
                    })
                    .collect(),
            })
            .collect();
        AnswerSet {
            results,
            partials: Vec::new(),
        }
    }

    /// Number of results.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// Whether the query found nothing.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// Whether any corpus failed to contribute (fan-out degradation).
    pub fn is_partial(&self) -> bool {
        !self.partials.is_empty()
    }

    /// Record that `corpus` could not answer.
    pub fn push_partial(&mut self, corpus: impl Into<String>, detail: impl Into<String>) {
        self.partials.push(PartialAnswer {
            corpus: corpus.into(),
            detail: detail.into(),
        });
    }

    /// The tags of all results, in rank order — the paper's answer lists.
    pub fn tags(&self) -> Vec<&str> {
        self.results.iter().map(|r| r.tag.as_str()).collect()
    }

    /// Tag every result with a corpus name (forest concatenation).
    pub fn tag_corpus(&mut self, corpus: &str) {
        for r in &mut self.results {
            r.corpus = Some(corpus.to_owned());
        }
    }

    /// Full serialization: the paper's `<answer>` markup enriched with
    /// everything an [`Answer`] carries — result oid, path, ranking
    /// distance, witness count, and the witness sample with matched
    /// strings. This is the wire format of `ncq-server` responses and
    /// the fixture format of the paper-listing golden suite (exhaustive
    /// by design: any behavioural drift shows up as a fixture diff).
    pub fn to_detailed_xml(&self) -> String {
        use ncq_xml::escape::{escape_attribute, escape_text};
        let mut out = String::from("<answer>\n");
        for r in &self.results {
            // The corpus attribute appears only on forest-tagged
            // answers, so single-corpus serializations (the golden
            // fixtures, the snapshot suites) are byte-identical to the
            // pre-forest format.
            let corpus = r
                .corpus
                .as_deref()
                .map(|c| format!(" corpus=\"{}\"", escape_attribute(c)))
                .unwrap_or_default();
            out.push_str(&format!(
                "  <result{} tag=\"{}\" path=\"{}\" oid=\"{}\" distance=\"{}\" witnesses=\"{}\">\n",
                corpus,
                escape_attribute(&r.tag),
                escape_attribute(&r.path),
                r.oid,
                r.distance,
                r.witness_count
            ));
            for w in &r.witnesses {
                out.push_str(&format!(
                    "    <witness term=\"{}\" origin=\"{}\" climb=\"{}\">{}</witness>\n",
                    w.term,
                    w.origin,
                    w.climb,
                    escape_text(w.text.as_deref().unwrap_or_default())
                ));
            }
            out.push_str("  </result>\n");
        }
        // Partial markers appear only on degraded fan-out answers, so
        // full answers — including every pre-forest golden fixture —
        // serialize byte-identically to the earlier formats.
        for p in &self.partials {
            out.push_str(&format!(
                "  <partial corpus=\"{}\" detail=\"{}\"/>\n",
                escape_attribute(&p.corpus),
                escape_attribute(&p.detail)
            ));
        }
        out.push_str("</answer>");
        out
    }

    /// Render in the paper's `<answer>` markup.
    pub fn to_answer_xml(&self) -> String {
        let mut out = String::from("<answer>\n");
        for r in &self.results {
            out.push_str(&format!("  <result> {} </result> ({})\n", r.tag, r.oid));
        }
        out.push_str("</answer>");
        out
    }
}

impl fmt::Display for AnswerSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_answer_xml())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meet_multi::{meet_multi, MeetOptions};
    use ncq_fulltext::{search, InvertedIndex};
    use ncq_store::MonetDb;
    use ncq_xml::parse;

    fn setup() -> (MonetDb, InvertedIndex) {
        let db = MonetDb::from_document(
            &parse(
                r#"<bib><article key="BB99"><author>Ben Bit</author>
                   <year>1999</year></article></bib>"#,
            )
            .unwrap(),
        );
        let idx = InvertedIndex::build(&db);
        (db, idx)
    }

    #[test]
    fn answers_resolve_tags_paths_and_witness_text() {
        let (db, idx) = setup();
        let inputs = vec![
            search::term_hits(&db, &idx, "Bit"),
            search::term_hits(&db, &idx, "1999"),
        ];
        let meets = meet_multi(&db, &inputs, &MeetOptions::default());
        let answers = AnswerSet::from_meets(&db, meets);
        assert_eq!(answers.len(), 1);
        let a = &answers.results[0];
        assert_eq!(a.tag, "article");
        assert_eq!(a.path, "bib/article");
        assert_eq!(a.witness_count, 2);
        let texts: Vec<&str> = a
            .witnesses
            .iter()
            .filter_map(|w| w.text.as_deref())
            .collect();
        assert!(texts.contains(&"Ben Bit"));
        assert!(texts.contains(&"1999"));
    }

    #[test]
    fn answer_xml_mirrors_the_paper() {
        let (db, idx) = setup();
        let inputs = vec![
            search::term_hits(&db, &idx, "Bit"),
            search::term_hits(&db, &idx, "1999"),
        ];
        let meets = meet_multi(&db, &inputs, &MeetOptions::default());
        let answers = AnswerSet::from_meets(&db, meets);
        let xml = answers.to_answer_xml();
        assert!(xml.starts_with("<answer>"));
        assert!(xml.contains("<result> article </result>"));
        assert!(xml.ends_with("</answer>"));
        assert_eq!(format!("{answers}"), xml);
    }

    #[test]
    fn detailed_xml_serializes_every_field() {
        let (db, idx) = setup();
        let inputs = vec![
            search::term_hits(&db, &idx, "Bit"),
            search::term_hits(&db, &idx, "1999"),
        ];
        let meets = meet_multi(&db, &inputs, &MeetOptions::default());
        let answers = AnswerSet::from_meets(&db, meets);
        let xml = answers.to_detailed_xml();
        assert!(xml.contains("tag=\"article\""));
        assert!(xml.contains("path=\"bib/article\""));
        assert!(xml.contains("distance=\""));
        assert!(xml.contains("witnesses=\"2\""));
        assert!(xml.contains(">Ben Bit</witness>"));
        assert!(xml.contains(">1999</witness>"));
        assert_eq!(
            AnswerSet::default().to_detailed_xml(),
            "<answer>\n</answer>"
        );
    }

    #[test]
    fn empty_answer_set_renders_empty_answer() {
        let set = AnswerSet::default();
        assert!(set.is_empty());
        assert_eq!(set.to_answer_xml(), "<answer>\n</answer>");
        assert!(set.tags().is_empty());
    }
}
