//! The forest engine: a [`Catalog`] of named corpora behind one
//! [`MeetBackend`].
//!
//! The paper defines nearest-concept semantics per document; the
//! ROADMAP's serving story needs *many* documents per process — one
//! spine per corpus, named by a manifest, addressed by the query
//! language (`from corpus(name)`), the line protocol (`USE`,
//! `CORPORA`) and the scatter/gather layer ((corpus, shard) pairs).
//! Two pieces implement that here:
//!
//! * [`Catalog`] — an ordered set of `name → Arc<dyn MeetBackend>`
//!   corpora with a default. Built programmatically or from a
//!   versioned [`Manifest`] file (each entry a PR-4 snapshot, verified
//!   against the manifest's recorded checksum before decode). The
//!   opener is pluggable so `ncq-shard` can materialize multi-shard
//!   entries as `ShardedDb` without this crate depending on it.
//! * [`ForestBackend`] — [`MeetBackend`] over a catalog. The trait
//!   surface (store / search / meet) routes to the **default corpus**,
//!   so unqualified queries answer byte-identically to a direct
//!   `Database` on that corpus; `corpus(name)` resolution routes
//!   qualified queries; [`MeetBackend::meet_terms_forest`] fans out
//!   across every corpus and concatenates corpus-tagged answers in
//!   catalog order. Meets never span corpora — documents share no
//!   root, so a cross-corpus LCA does not exist; concatenation *is*
//!   the complete answer.
//!
//! Hot swaps stay per-corpus: [`MeetBackend::reload_corpus`] clones
//! the catalog, replaces one corpus's engine (same shape, via that
//! corpus's `open_snapshot_like`) and returns a new forest sharing
//! every other engine by refcount — the server's generation-tagged
//! swap then retires the old forest without touching in-flight batches
//! or sibling corpora.

use crate::answer::AnswerSet;
use crate::backend::{BackendError, MeetBackend, RobustnessStats};
use crate::db::Database;
use crate::meet_multi::MeetOptions;
use ncq_fulltext::HitSet;
use ncq_store::manifest::{Manifest, ManifestEntry, ManifestError};
use ncq_store::snapshot::{
    checksum64, SnapshotError, SnapshotSource, SNAPSHOT_LEGACY_MAX, SNAPSHOT_VERSION,
    SNAPSHOT_VERSION_V1,
};
use ncq_store::{validate_corpus_name, MappedSnapshot, MonetDb, VerifyMode};
use std::fmt;
use std::path::Path;
use std::sync::Arc;

/// Typed catalog failures: manifest problems, per-corpus snapshot
/// problems, and structural misuse. Never a panic.
#[derive(Debug)]
pub enum CatalogError {
    /// The manifest file failed to load or validate.
    Manifest(ManifestError),
    /// A corpus's snapshot failed to read or decode.
    Corpus {
        /// The corpus name.
        name: String,
        /// The underlying failure.
        error: SnapshotError,
    },
    /// A corpus's snapshot file does not hash to the manifest's
    /// recorded checksum (swapped, truncated or bit-rotted on disk).
    ChecksumMismatch {
        /// The corpus name.
        name: String,
    },
    /// A corpus's recorded snapshot layout version is not the one this
    /// build reads — the manifest describes another era's snapshots.
    LayoutVersion {
        /// The corpus name.
        name: String,
        /// Version recorded in the manifest.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// Two corpora share a name.
    DuplicateCorpus {
        /// The duplicated name.
        name: String,
    },
    /// A name is empty or carries whitespace / control characters.
    InvalidName {
        /// The offending name.
        name: String,
    },
    /// The named corpus does not exist.
    UnknownCorpus {
        /// The requested name.
        name: String,
    },
    /// A forest needs at least one corpus.
    Empty,
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::Manifest(e) => write!(f, "{e}"),
            CatalogError::Corpus { name, error } => write!(f, "corpus {name:?}: {error}"),
            CatalogError::ChecksumMismatch { name } => write!(
                f,
                "corpus {name:?}: snapshot file does not match the manifest checksum"
            ),
            CatalogError::LayoutVersion {
                name,
                found,
                supported,
            } => write!(
                f,
                "corpus {name:?}: snapshot layout version {found} (this build reads {supported})"
            ),
            CatalogError::DuplicateCorpus { name } => {
                write!(f, "corpus {name:?} appears more than once")
            }
            CatalogError::InvalidName { name } => write!(
                f,
                "corpus name {name:?} must be non-empty without whitespace or control characters"
            ),
            CatalogError::UnknownCorpus { name } => write!(f, "unknown corpus {name:?}"),
            CatalogError::Empty => write!(f, "a catalog needs at least one corpus"),
        }
    }
}

impl std::error::Error for CatalogError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CatalogError::Manifest(e) => Some(e),
            CatalogError::Corpus { error, .. } => Some(error),
            _ => None,
        }
    }
}

impl From<ManifestError> for CatalogError {
    fn from(e: ManifestError) -> CatalogError {
        CatalogError::Manifest(e)
    }
}

/// The per-corpus step of a forest fan-out: meet already-decoded hit
/// groups on one corpus and tag the answers with its name. The single
/// implementation behind both [`MeetBackend::meet_terms_forest`] and
/// `ncq-server`'s `USE *` path (which decodes the hit groups through
/// its per-worker term caches before calling this) — fan-out callers
/// concatenate these in catalog order.
pub fn corpus_tagged_meet(
    name: &str,
    backend: &dyn MeetBackend,
    inputs: &[&HitSet],
    options: &MeetOptions,
) -> AnswerSet {
    let meets = backend.meet_hit_groups(inputs, options);
    let mut answers = AnswerSet::from_meets(backend.store(), meets);
    answers.tag_corpus(name);
    answers
}

/// Fallible [`corpus_tagged_meet`]: a remote corpus whose replicas are
/// all down surfaces a typed [`BackendError`] that fan-out callers
/// convert into a [`crate::answer::PartialAnswer`] marker.
pub fn try_corpus_tagged_meet(
    name: &str,
    backend: &dyn MeetBackend,
    inputs: &[&HitSet],
    options: &MeetOptions,
) -> Result<AnswerSet, BackendError> {
    let meets = backend.try_meet_hit_groups(inputs, options)?;
    let mut answers = AnswerSet::from_meets(backend.store(), meets);
    answers.tag_corpus(name);
    Ok(answers)
}

#[derive(Clone)]
struct Corpus {
    name: String,
    backend: Arc<dyn MeetBackend>,
}

/// An ordered, named set of corpora with a default. Engines are held
/// as `Arc<dyn MeetBackend>`, so a catalog clone shares every engine —
/// the cheap building block of per-corpus hot swaps.
#[derive(Clone, Default)]
pub struct Catalog {
    corpora: Vec<Corpus>,
    default: usize,
}

impl Catalog {
    /// An empty catalog (add corpora, then wrap in a
    /// [`ForestBackend`]).
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Append a corpus. The first added corpus is the default until
    /// [`Catalog::set_default`] changes it. The engine's meet index is
    /// forced eagerly so queries never race the build.
    pub fn add(
        &mut self,
        name: impl Into<String>,
        backend: Arc<dyn MeetBackend>,
    ) -> Result<(), CatalogError> {
        let name = name.into();
        if validate_corpus_name(&name).is_err() {
            return Err(CatalogError::InvalidName { name });
        }
        if self.corpora.iter().any(|c| c.name == name) {
            return Err(CatalogError::DuplicateCorpus { name });
        }
        backend.store().meet_index();
        self.corpora.push(Corpus { name, backend });
        Ok(())
    }

    /// Swap the engine behind an existing corpus (the hot-swap path).
    pub fn replace(
        &mut self,
        name: &str,
        backend: Arc<dyn MeetBackend>,
    ) -> Result<(), CatalogError> {
        let corpus = self
            .corpora
            .iter_mut()
            .find(|c| c.name == name)
            .ok_or_else(|| CatalogError::UnknownCorpus {
                name: name.to_owned(),
            })?;
        backend.store().meet_index();
        corpus.backend = backend;
        Ok(())
    }

    /// Make `name` the corpus unqualified queries hit.
    pub fn set_default(&mut self, name: &str) -> Result<(), CatalogError> {
        self.default = self
            .corpora
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| CatalogError::UnknownCorpus {
                name: name.to_owned(),
            })?;
        Ok(())
    }

    /// The engine behind a corpus name.
    pub fn get(&self, name: &str) -> Option<&Arc<dyn MeetBackend>> {
        self.corpora
            .iter()
            .find(|c| c.name == name)
            .map(|c| &c.backend)
    }

    /// Corpus names, in catalog order.
    pub fn names(&self) -> Vec<String> {
        self.corpora.iter().map(|c| c.name.clone()).collect()
    }

    /// The default corpus's name, if the catalog is non-empty.
    pub fn default_name(&self) -> Option<&str> {
        self.corpora.get(self.default).map(|c| c.name.as_str())
    }

    /// The default corpus's engine. Panics on an empty catalog —
    /// [`ForestBackend::new`] refuses those up front.
    pub fn default_backend(&self) -> &Arc<dyn MeetBackend> {
        &self.corpora[self.default].backend
    }

    /// Number of corpora.
    pub fn len(&self) -> usize {
        self.corpora.len()
    }

    /// Whether the catalog holds no corpora.
    pub fn is_empty(&self) -> bool {
        self.corpora.is_empty()
    }

    /// Iterate `(name, engine)` pairs in catalog order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Arc<dyn MeetBackend>)> {
        self.corpora.iter().map(|c| (c.name.as_str(), &c.backend))
    }

    /// Open every corpus of a manifest as a single-process
    /// [`Database`] (shard counts recorded in the manifest are served
    /// unsharded here — `ncq-shard::open_catalog` is the shard-aware
    /// loader).
    pub fn open_manifest(path: impl AsRef<Path>) -> Result<Catalog, CatalogError> {
        Catalog::open_manifest_with(path, |_entry, source| {
            Ok(Arc::new(Database::decode_from(&source)?) as Arc<dyn MeetBackend>)
        })
    }

    /// Open a manifest with a caller-chosen engine per entry. Each
    /// corpus snapshot is opened once as a [`SnapshotSource`] and
    /// verified before it reaches `opener`: legacy (v1/v2) files are
    /// read into memory and hashed against the manifest's recorded
    /// whole-file checksum; v3 files are mmapped, every section is
    /// verified eagerly against the container's own per-section
    /// checksums, and the mapped bytes are hashed against the
    /// manifest's checksum so a swapped-but-internally-valid file
    /// still fails typed (the pages are already resident from the
    /// eager pass, so this costs no extra IO). Version and checksum
    /// failures are typed. Serving opens that want the lazy
    /// microsecond path go through [`Database::open_snapshot`]
    /// directly.
    ///
    /// Entries with replica endpoints bypass the opener: the snapshot
    /// becomes the coordinator's local resolver copy inside a
    /// [`crate::RemoteBackend`] (default router configuration) that
    /// proxies search/meet to the listed replicas with failover —
    /// shard-aware openers need no remote logic of their own, because
    /// the remote process does its own sharding.
    pub fn open_manifest_with(
        path: impl AsRef<Path>,
        opener: impl FnMut(
            &ManifestEntry,
            SnapshotSource,
        ) -> Result<Arc<dyn MeetBackend>, SnapshotError>,
    ) -> Result<Catalog, CatalogError> {
        Catalog::open_manifest_remote(path, opener, crate::remote::RemoteConfig::default())
    }

    /// [`Catalog::open_manifest_with`] with an explicit router
    /// configuration for endpoint-backed entries (timeouts, retry
    /// rounds, backoff — the stress suites tighten these).
    pub fn open_manifest_remote(
        path: impl AsRef<Path>,
        mut opener: impl FnMut(
            &ManifestEntry,
            SnapshotSource,
        ) -> Result<Arc<dyn MeetBackend>, SnapshotError>,
        remote_config: crate::remote::RemoteConfig,
    ) -> Result<Catalog, CatalogError> {
        let path = path.as_ref();
        let manifest = Manifest::load(path)?;
        let mut catalog = Catalog::new();
        for entry in &manifest.corpora {
            if !(SNAPSHOT_VERSION_V1..=SNAPSHOT_VERSION).contains(&entry.layout_version) {
                return Err(CatalogError::LayoutVersion {
                    name: entry.name.clone(),
                    found: entry.layout_version,
                    supported: SNAPSHOT_VERSION,
                });
            }
            let snapshot_path = Manifest::resolve(path, entry);
            let source = if entry.layout_version > SNAPSHOT_LEGACY_MAX {
                MappedSnapshot::open_with(&snapshot_path, VerifyMode::Eager).and_then(|snap| {
                    if checksum64(snap.bytes()) != entry.checksum {
                        return Err(SnapshotError::ChecksumMismatch {
                            section: "manifest-recorded file checksum",
                            offset: 0,
                        });
                    }
                    Ok(SnapshotSource::Mapped(snap))
                })
            } else {
                std::fs::read(&snapshot_path)
                    .map_err(SnapshotError::Io)
                    .and_then(|bytes| {
                        if checksum64(&bytes) != entry.checksum {
                            return Err(SnapshotError::ChecksumMismatch {
                                section: "manifest-recorded file checksum",
                                offset: 0,
                            });
                        }
                        SnapshotSource::from_bytes(bytes)
                    })
            }
            .map_err(|e| match e {
                SnapshotError::ChecksumMismatch { .. } => CatalogError::ChecksumMismatch {
                    name: entry.name.clone(),
                },
                error => CatalogError::Corpus {
                    name: entry.name.clone(),
                    error,
                },
            })?;
            let backend = if entry.endpoints.is_empty() {
                opener(entry, source).map_err(|e| CatalogError::Corpus {
                    name: entry.name.clone(),
                    error: e,
                })?
            } else {
                let resolver =
                    Database::decode_from(&source).map_err(|e| CatalogError::Corpus {
                        name: entry.name.clone(),
                        error: e,
                    })?;
                let remote = crate::remote::RemoteBackend::new(
                    resolver,
                    &entry.endpoints,
                    remote_config.clone(),
                )
                .map_err(|_| CatalogError::Corpus {
                    name: entry.name.clone(),
                    // Unreachable in practice: the manifest decoder
                    // refuses entries with an empty endpoint string
                    // list only when the list is genuinely empty, and
                    // that case routes to the opener above.
                    error: SnapshotError::Unsupported {
                        context: "remote corpus entry lost its endpoints",
                    },
                })?;
                Arc::new(remote) as Arc<dyn MeetBackend>
            };
            catalog.add(entry.name.clone(), backend)?;
        }
        let default = &manifest.corpora[manifest.default].name;
        catalog.set_default(default)?;
        Ok(catalog)
    }
}

impl fmt::Debug for Catalog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Catalog")
            .field("corpora", &self.names())
            .field("default", &self.default_name())
            .finish()
    }
}

/// [`MeetBackend`] over a [`Catalog`]: the forest engine.
#[derive(Clone)]
pub struct ForestBackend {
    catalog: Catalog,
}

impl ForestBackend {
    /// Wrap a catalog; refuses an empty one (the trait surface needs a
    /// default corpus to route to).
    pub fn new(catalog: Catalog) -> Result<ForestBackend, CatalogError> {
        if catalog.is_empty() {
            return Err(CatalogError::Empty);
        }
        Ok(ForestBackend { catalog })
    }

    /// The catalog in effect.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }
}

impl fmt::Debug for ForestBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ForestBackend")
            .field("catalog", &self.catalog)
            .finish()
    }
}

impl MeetBackend for ForestBackend {
    fn store(&self) -> &MonetDb {
        self.catalog.default_backend().store()
    }

    fn search(&self, term: &str) -> HitSet {
        self.catalog.default_backend().search(term)
    }

    fn meet_hit_groups(
        &self,
        inputs: &[&HitSet],
        options: &MeetOptions,
    ) -> Vec<crate::meet_multi::Meet> {
        self.catalog
            .default_backend()
            .meet_hit_groups(inputs, options)
    }

    fn try_search(&self, term: &str) -> Result<HitSet, BackendError> {
        self.catalog.default_backend().try_search(term)
    }

    fn try_meet_hit_groups(
        &self,
        inputs: &[&HitSet],
        options: &MeetOptions,
    ) -> Result<Vec<crate::meet_multi::Meet>, BackendError> {
        self.catalog
            .default_backend()
            .try_meet_hit_groups(inputs, options)
    }

    fn corpus(&self, name: &str) -> Option<Arc<dyn MeetBackend>> {
        self.catalog.get(name).map(Arc::clone)
    }

    fn corpus_names(&self) -> Vec<String> {
        self.catalog.names()
    }

    fn default_corpus(&self) -> Option<String> {
        self.catalog.default_name().map(str::to_owned)
    }

    /// Graceful degradation: a corpus whose engine is unavailable (a
    /// remote corpus with every replica down) contributes a typed
    /// [`crate::answer::PartialAnswer`] marker instead of failing the
    /// whole fan-out — the surviving corpora still answer, in catalog
    /// order.
    fn meet_terms_forest(&self, terms: &[&str], options: &MeetOptions) -> AnswerSet {
        let mut all = AnswerSet::default();
        for (name, backend) in self.catalog.iter() {
            let answers = (|| {
                let mut inputs = Vec::with_capacity(terms.len());
                for t in terms {
                    inputs.push(backend.try_search(t)?);
                }
                let refs: Vec<&HitSet> = inputs.iter().collect();
                try_corpus_tagged_meet(name, &**backend, &refs, options)
            })();
            match answers {
                Ok(a) => all.results.extend(a.results),
                Err(e) => all.push_partial(name, e.to_string()),
            }
        }
        all
    }

    fn robustness_stats(&self) -> RobustnessStats {
        let mut total = RobustnessStats::default();
        for (_, backend) in self.catalog.iter() {
            total.merge(&backend.robustness_stats());
        }
        total
    }

    fn save_snapshot(&self, _path: &Path) -> Result<(), SnapshotError> {
        Err(SnapshotError::Unsupported {
            context: "a forest has no single snapshot; save each corpus through its own engine",
        })
    }

    fn open_snapshot_like(&self, _path: &Path) -> Result<Arc<dyn MeetBackend>, SnapshotError> {
        Err(SnapshotError::Unsupported {
            context: "forest deployments reload per corpus (SNAPSHOT LOAD <file> INTO <corpus>)",
        })
    }

    fn reload_corpus(
        &self,
        name: &str,
        path: &Path,
    ) -> Result<Arc<dyn MeetBackend>, SnapshotError> {
        let current = self.catalog.get(name).ok_or(SnapshotError::Unsupported {
            context: "no corpus of that name in the catalog",
        })?;
        // Same-shape reload for *this corpus only*: a sharded corpus
        // re-shards at its current K, a plain one stays plain.
        let fresh = current.open_snapshot_like(path)?;
        let mut catalog = self.catalog.clone();
        catalog
            .replace(name, fresh)
            .expect("corpus existence checked above");
        Ok(Arc::new(ForestBackend { catalog }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MeetStrategy;

    const BIB: &str = r#"<bib><article key="BB99"><author>Ben Bit</author>
        <year>1999</year></article></bib>"#;
    const SHOP: &str = r#"<shop><item><label>Bit driver</label>
        <price>1999</price></item></shop>"#;

    fn forest() -> ForestBackend {
        let mut catalog = Catalog::new();
        catalog
            .add("bib", Arc::new(Database::from_xml_str(BIB).unwrap()))
            .unwrap();
        catalog
            .add("shop", Arc::new(Database::from_xml_str(SHOP).unwrap()))
            .unwrap();
        ForestBackend::new(catalog).unwrap()
    }

    #[test]
    fn trait_surface_routes_to_the_default_corpus_byte_identically() {
        let forest = forest();
        let direct = Database::from_xml_str(BIB).unwrap();
        let opts = MeetOptions::default();
        assert_eq!(
            forest
                .meet_terms_answers(&["Bit", "1999"], &opts)
                .to_detailed_xml(),
            direct
                .meet_terms(&["Bit", "1999"])
                .unwrap()
                .to_detailed_xml()
        );
        assert_eq!(forest.search("Bit"), direct.search("Bit"));
        assert_eq!(forest.store().node_count(), direct.store().node_count());
    }

    #[test]
    fn corpus_resolution_and_names() {
        let forest = forest();
        assert_eq!(forest.corpus_names(), vec!["bib", "shop"]);
        assert_eq!(forest.default_corpus().as_deref(), Some("bib"));
        assert!(forest.corpus("shop").is_some());
        assert!(forest.corpus("absent").is_none());
        // Single-document engines are forests of none.
        let db = Database::from_xml_str(BIB).unwrap();
        assert!(db.corpus_names().is_empty());
        assert!(MeetBackend::corpus(&db, "bib").is_none());
    }

    #[test]
    fn forest_fanout_concatenates_in_catalog_order_with_corpus_tags() {
        let forest = forest();
        let opts = MeetOptions::default();
        let all = forest.meet_terms_forest(&["Bit", "1999"], &opts);
        // Both corpora contain both terms: one meet each, bib first
        // (catalog order), every answer corpus-tagged.
        assert_eq!(all.len(), 2);
        assert_eq!(all.results[0].corpus.as_deref(), Some("bib"));
        assert_eq!(all.results[1].corpus.as_deref(), Some("shop"));
        assert_eq!(all.results[0].tag, "article");
        assert_eq!(all.results[1].tag, "item");
        let xml = all.to_detailed_xml();
        assert!(xml.contains("corpus=\"bib\""), "{xml}");
        assert!(xml.contains("corpus=\"shop\""), "{xml}");
        // Deterministic: a second run serializes identically.
        assert_eq!(
            xml,
            forest
                .meet_terms_forest(&["Bit", "1999"], &opts)
                .to_detailed_xml()
        );
        // A single-document engine fans out to itself, untagged.
        let db = Database::from_xml_str(BIB).unwrap();
        let single = db.meet_terms_forest(&["Bit", "1999"], &opts);
        assert_eq!(single.results[0].corpus, None);
    }

    #[test]
    fn catalog_misuse_is_typed() {
        let mut catalog = Catalog::new();
        assert!(matches!(
            ForestBackend::new(catalog.clone()),
            Err(CatalogError::Empty)
        ));
        let db: Arc<dyn MeetBackend> = Arc::new(Database::from_xml_str(BIB).unwrap());
        catalog.add("bib", Arc::clone(&db)).unwrap();
        assert!(matches!(
            catalog.add("bib", Arc::clone(&db)),
            Err(CatalogError::DuplicateCorpus { .. })
        ));
        assert!(matches!(
            catalog.add("two words", Arc::clone(&db)),
            Err(CatalogError::InvalidName { .. })
        ));
        assert!(matches!(
            catalog.set_default("absent"),
            Err(CatalogError::UnknownCorpus { .. })
        ));
        assert!(matches!(
            catalog.replace("absent", db),
            Err(CatalogError::UnknownCorpus { .. })
        ));
    }

    #[test]
    fn reload_corpus_shares_untouched_engines() {
        let dir = std::env::temp_dir().join("ncq-catalog-reload-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shop.ncq");
        Database::from_xml_str(SHOP)
            .unwrap()
            .save_snapshot(&path)
            .unwrap();

        let forest = forest();
        let bib_before = Arc::clone(forest.catalog().get("bib").unwrap());
        let swapped = forest.reload_corpus("shop", &path).unwrap();
        // The untouched corpus is the *same* engine (refcount share)…
        let bib_after = swapped.corpus("bib").unwrap();
        assert!(Arc::ptr_eq(&bib_before, &bib_after));
        // …and the swapped corpus still answers.
        let opts = MeetOptions {
            strategy: MeetStrategy::Auto,
            ..MeetOptions::default()
        };
        let answers = swapped
            .corpus("shop")
            .unwrap()
            .meet_terms_answers(&["Bit", "1999"], &opts);
        assert_eq!(answers.tags(), vec!["item"]);
        // Unknown corpus and non-forest engines fail typed.
        assert!(forest.reload_corpus("absent", &path).is_err());
        let db = Database::from_xml_str(BIB).unwrap();
        assert!(db.reload_corpus("bib", &path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_manifest_round_trips_and_detects_rot() {
        use ncq_store::manifest::{Manifest, ManifestEntry};
        let dir = std::env::temp_dir().join("ncq-catalog-manifest-test");
        std::fs::create_dir_all(&dir).unwrap();
        let bib_snap = dir.join("bib.ncq");
        let shop_snap = dir.join("shop.ncq");
        Database::from_xml_str(BIB)
            .unwrap()
            .save_snapshot(&bib_snap)
            .unwrap();
        Database::from_xml_str(SHOP)
            .unwrap()
            .save_snapshot(&shop_snap)
            .unwrap();

        let mut manifest = Manifest::new();
        manifest
            .push(ManifestEntry::describe("bib", &bib_snap, 1).unwrap())
            .unwrap();
        manifest
            .push(ManifestEntry::describe("shop", &shop_snap, 1).unwrap())
            .unwrap();
        manifest.default = 1;
        let mpath = dir.join("forest.ncqm");
        manifest.save(&mpath).unwrap();

        let catalog = Catalog::open_manifest(&mpath).unwrap();
        assert_eq!(catalog.names(), vec!["bib", "shop"]);
        assert_eq!(catalog.default_name(), Some("shop"));
        let forest = ForestBackend::new(catalog).unwrap();
        // Default routing follows the manifest's default index.
        assert_eq!(
            forest
                .meet_terms_answers(&["Bit", "1999"], &MeetOptions::default())
                .tags(),
            vec!["item"]
        );

        // A modified snapshot file fails the manifest checksum, typed.
        let mut rotted = std::fs::read(&bib_snap).unwrap();
        let last = rotted.len() - 1;
        rotted[last] ^= 0x01;
        std::fs::write(&bib_snap, &rotted).unwrap();
        assert!(matches!(
            Catalog::open_manifest(&mpath),
            Err(CatalogError::ChecksumMismatch { name }) if name == "bib"
        ));

        // A dangling snapshot path is a typed io failure.
        std::fs::remove_file(&bib_snap).unwrap();
        assert!(matches!(
            Catalog::open_manifest(&mpath),
            Err(CatalogError::Corpus { name, error: SnapshotError::Io(_) }) if name == "bib"
        ));

        for p in [&shop_snap, &mpath] {
            std::fs::remove_file(p).ok();
        }
    }
}
