//! Meets over IDREF-broken tree structures — the paper's future work.
//!
//! > "XML documents may also contain references (IDs and IDREFs) that
//! > potentially break the tree structure … If we interpret the meet
//! > operator as some variant of nearest neighbor search, we might find
//! > generalizations on graph structures that prove useful in certain
//! > application domains. However, the fact that we then have to take
//! > care of circular structures may add significant complexity."
//! > (§3.2, and again in the conclusion as future research)
//!
//! This module implements that generalization. A [`RefGraph`] overlays
//! reference edges (e.g. DBLP's `crossref` → `key`) on the tree; the
//! **graph meet** of two nodes is the midpoint node of a shortest path
//! between them in the undirected union of tree and reference edges,
//! found by bidirectional BFS — cycles are handled by visited sets,
//! exactly the complexity the paper anticipated.
//!
//! On reference-free documents the graph meet degenerates to the tree
//! meet's shortest path: the distance equals [`crate::distance()`], and the
//! midpoint lies on the ancestor path through the LCA.

use ncq_store::{MonetDb, Oid, PathStep};
use std::collections::{HashMap, VecDeque};
use std::sync::OnceLock;

/// Undirected adjacency in compressed-sparse-row layout: neighbor runs
/// are contiguous slices, so the BFS inner loop does no hashing.
#[derive(Debug, Clone, Default)]
struct Csr {
    /// `offsets[o] .. offsets[o + 1]` indexes `neighbors` for node `o`;
    /// nodes beyond the highest referenced oid have no entries.
    offsets: Vec<u32>,
    neighbors: Vec<u32>,
}

impl Csr {
    fn build(pairs: &[(u32, u32)]) -> Csr {
        let max_node = pairs
            .iter()
            .map(|&(a, b)| a.max(b) as usize + 1)
            .max()
            .unwrap_or(0);
        let mut counts = vec![0u32; max_node + 1];
        for &(a, b) in pairs {
            counts[a as usize + 1] += 1;
            counts[b as usize + 1] += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let offsets = counts;
        let mut fill = offsets.clone();
        let mut neighbors = vec![0u32; pairs.len() * 2];
        for &(a, b) in pairs {
            neighbors[fill[a as usize] as usize] = b;
            fill[a as usize] += 1;
            neighbors[fill[b as usize] as usize] = a;
            fill[b as usize] += 1;
        }
        Csr { offsets, neighbors }
    }

    fn neighbors_of(&self, o: usize) -> &[u32] {
        if o + 1 >= self.offsets.len() {
            return &[];
        }
        &self.neighbors[self.offsets[o] as usize..self.offsets[o + 1] as usize]
    }
}

/// Reference edges overlaid on the document tree.
///
/// Edges are staged as pairs and compiled into a dense CSR adjacency on
/// first traversal (cached; [`RefGraph::add_edge`] invalidates), so the
/// bidirectional-BFS inner loop reads contiguous slices instead of
/// probing a hash map per node.
#[derive(Debug, Clone, Default)]
pub struct RefGraph {
    /// Directed staging for provenance; traversal is undirected.
    pairs: Vec<(u32, u32)>,
    csr: OnceLock<Csr>,
}

impl RefGraph {
    /// An empty overlay (graph meet == tree shortest path).
    pub fn new() -> RefGraph {
        RefGraph::default()
    }

    /// Add one reference edge.
    pub fn add_edge(&mut self, from: Oid, to: Oid) {
        self.pairs.push((from.index() as u32, to.index() as u32));
        self.csr = OnceLock::new();
    }

    /// Number of reference edges.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the overlay has no edges.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Build from key/reference conventions: every element owning an
    /// attribute named `key_attr` is a target; every element whose child
    /// element named `ref_elem` carries matching text references it.
    /// This is exactly DBLP's `key` / `crossref` convention.
    pub fn from_key_references(db: &MonetDb, key_attr: &str, ref_elem: &str) -> RefGraph {
        let summary = db.summary();
        let symbols = db.symbols();
        // Collect targets: key value → element oid.
        let mut targets: HashMap<&str, Oid> = HashMap::new();
        for path in summary.iter() {
            if let PathStep::Attribute(sym) = summary.step(path) {
                if symbols.resolve(sym) == key_attr {
                    for (owner, value) in db.strings_of(path) {
                        targets.insert(value, *owner);
                    }
                }
            }
        }
        // Collect references: cdata under a `ref_elem` element.
        let mut graph = RefGraph::new();
        for path in summary.iter() {
            if !matches!(summary.step(path), PathStep::Cdata) {
                continue;
            }
            let Some(parent_path) = summary.parent(path) else {
                continue;
            };
            let is_ref = matches!(
                summary.step(parent_path),
                PathStep::Element(sym) if symbols.resolve(sym) == ref_elem
            );
            if !is_ref {
                continue;
            }
            for (cdata_oid, value) in db.strings_of(path) {
                if let Some(&target) = targets.get(&**value) {
                    // Reference edge between the *record* owning the
                    // crossref (the ref element's parent) and the target.
                    let ref_node = db.parent(*cdata_oid).expect("cdata has a parent");
                    let source = db.parent(ref_node).unwrap_or(ref_node);
                    graph.add_edge(source, target);
                }
            }
        }
        graph
    }

    fn refs_of(&self, o: Oid) -> &[u32] {
        self.csr
            .get_or_init(|| Csr::build(&self.pairs))
            .neighbors_of(o.index())
    }
}

/// Result of a graph meet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphMeet {
    /// The midpoint node of a shortest path (the "nearest concept" in
    /// the graph sense).
    pub meet: Oid,
    /// Shortest-path length between the inputs (tree + reference edges).
    pub distance: usize,
    /// Edges from `o1` to the meet.
    pub d1: usize,
    /// Edges from `o2` to the meet.
    pub d2: usize,
}

/// Neighbors of `o` in the undirected union of tree and reference edges.
fn neighbors(db: &MonetDb, graph: &RefGraph, o: Oid, out: &mut Vec<Oid>) {
    out.clear();
    if let Some(p) = db.parent(o) {
        out.push(p);
    }
    let path = db.sigma(o);
    for &child_path in db.summary().children(path) {
        // Children of o: scan the child path's edge relation slice owned
        // by o. Edge relations are sorted by parent (document order), so
        // binary search for the run.
        let edges = db.edges_of(child_path);
        let start = edges.partition_point(|&(p, _)| p < o);
        for &(p, c) in &edges[start..] {
            if p != o {
                break;
            }
            out.push(c);
        }
    }
    out.extend(
        graph
            .refs_of(o)
            .iter()
            .map(|&r| Oid::from_index(r as usize)),
    );
}

/// The graph meet: midpoint of a shortest path in the tree+reference
/// graph, via bidirectional BFS. Returns `None` only if the graph is
/// disconnected between the nodes — impossible when both belong to one
/// document (the tree connects them), so `None` never occurs for oids of
/// the same `db`.
pub fn graph_meet(db: &MonetDb, graph: &RefGraph, o1: Oid, o2: Oid) -> Option<GraphMeet> {
    if o1 == o2 {
        return Some(GraphMeet {
            meet: o1,
            distance: 0,
            d1: 0,
            d2: 0,
        });
    }
    // Bidirectional BFS. Distance maps stay sparse: the search visits
    // far fewer nodes than the document holds, and a dense per-call
    // array would cost O(n) zero-fill on every query. (The adjacency —
    // the actual inner-loop hot path — is hash-free CSR.)
    let mut dist1: HashMap<Oid, u32> = HashMap::from([(o1, 0)]);
    let mut dist2: HashMap<Oid, u32> = HashMap::from([(o2, 0)]);
    let mut q1: VecDeque<Oid> = VecDeque::from([o1]);
    let mut q2: VecDeque<Oid> = VecDeque::from([o2]);
    let mut best: Option<(usize, Oid)> = None;
    let mut scratch = Vec::new();

    while !q1.is_empty() || !q2.is_empty() {
        // Expand the smaller frontier.
        let expand_first = match (q1.front(), q2.front()) {
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some(_), Some(_)) => q1.len() <= q2.len(),
            (None, None) => break,
        };
        let (qa, da, db_) = if expand_first {
            (&mut q1, &mut dist1, &mut dist2)
        } else {
            (&mut q2, &mut dist2, &mut dist1)
        };
        let layer = qa.len();
        for _ in 0..layer {
            let cur = qa.pop_front().expect("layer size checked");
            let d_cur = da[&cur] as usize;
            // Prune: cannot improve on the best meeting point.
            if let Some((b, _)) = best {
                if d_cur + 1 >= b {
                    continue;
                }
            }
            neighbors(db, graph, cur, &mut scratch);
            for &nb in &scratch {
                if da.contains_key(&nb) {
                    continue;
                }
                da.insert(nb, (d_cur + 1) as u32);
                if let Some(&other) = db_.get(&nb) {
                    let total = d_cur + 1 + other as usize;
                    if best.is_none_or(|(b, _)| total < b) {
                        best = Some((total, nb));
                    }
                }
                qa.push_back(nb);
            }
        }
        if let Some((b, _)) = best {
            // Both frontiers have advanced past b/2 → cannot improve.
            let min_d1 = q1.front().map(|o| dist1[o] as usize).unwrap_or(usize::MAX);
            let min_d2 = q2.front().map(|o| dist2[o] as usize).unwrap_or(usize::MAX);
            if min_d1.saturating_add(min_d2).saturating_add(2) > b {
                break;
            }
        }
    }

    best.map(|(total, node)| GraphMeet {
        meet: node,
        distance: total,
        d1: dist1[&node] as usize,
        d2: total - dist1[&node] as usize,
    })
}

/// Shortest-path distance in the tree+reference graph.
pub fn graph_distance(db: &MonetDb, graph: &RefGraph, o1: Oid, o2: Oid) -> usize {
    graph_meet(db, graph, o1, o2)
        .expect("nodes of one document are connected")
        .distance
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::distance;
    use crate::meet2::meet2;
    use ncq_xml::parse;

    fn db_with_refs() -> (MonetDb, RefGraph) {
        // Two records cross-referencing a proceedings entry, DBLP style.
        let doc = parse(
            r#"<dblp>
                 <proceedings key="conf/icde99"><title>ICDE 99</title></proceedings>
                 <inproceedings key="conf/icde99/p1">
                   <title>Paper One</title><crossref>conf/icde99</crossref>
                 </inproceedings>
                 <inproceedings key="conf/icde99/p2">
                   <title>Paper Two</title><crossref>conf/icde99</crossref>
                 </inproceedings>
               </dblp>"#,
        )
        .unwrap();
        let db = MonetDb::from_document(&doc);
        let graph = RefGraph::from_key_references(&db, "key", "crossref");
        (db, graph)
    }

    fn by_text(db: &MonetDb, s: &str) -> Oid {
        db.string_paths()
            .flat_map(|p| db.strings_of(p))
            .find(|(_, t)| &**t == s)
            .map(|(o, _)| *o)
            .unwrap()
    }

    #[test]
    fn crossrefs_are_discovered() {
        let (_, graph) = db_with_refs();
        assert_eq!(graph.len(), 2);
        assert!(!graph.is_empty());
    }

    #[test]
    fn graph_meet_without_refs_matches_tree_distance() {
        let doc = parse("<r><a><b>x</b></a><c>y</c></r>").unwrap();
        let db = MonetDb::from_document(&doc);
        let empty = RefGraph::new();
        for a in db.iter_oids() {
            for b in db.iter_oids() {
                let gm = graph_meet(&db, &empty, a, b).unwrap();
                assert_eq!(gm.distance, distance(&db, a, b), "{a:?},{b:?}");
                assert_eq!(gm.d1 + gm.d2, gm.distance);
            }
        }
    }

    #[test]
    fn references_create_shortcuts() {
        let (db, graph) = db_with_refs();
        let p1 = by_text(&db, "Paper One");
        let p2 = by_text(&db, "Paper Two");
        // Tree route: title/cdata ↑2 to record, ↑1 root, ↓1, ↓2 = 6.
        let tree_d = distance(&db, p1, p2);
        assert_eq!(tree_d, 6);
        // Graph route via the shared crossref target: cdata ↑2, ref-edge
        // to proceedings, ref-edge back to the other record, ↓2 = 6 too —
        // no shortcut between the papers…
        assert_eq!(graph_distance(&db, &graph, p1, p2), 6);
        // …but the proceedings title is 5 hops from a paper title via the
        // crossref edge (cdata ↑2, ref-edge, ↓2) instead of 6 through the
        // tree root.
        let proc_title = by_text(&db, "ICDE 99");
        assert_eq!(distance(&db, p1, proc_title), 6);
        assert_eq!(graph_distance(&db, &graph, p1, proc_title), 5);
    }

    #[test]
    fn graph_meet_midpoint_is_on_a_shortest_path() {
        let (db, graph) = db_with_refs();
        let p1 = by_text(&db, "Paper One");
        let p2 = by_text(&db, "Paper Two");
        let gm = graph_meet(&db, &graph, p1, p2).unwrap();
        assert_eq!(gm.d1 + gm.d2, gm.distance);
        // The midpoint is balanced to within one edge.
        assert!(gm.d1.abs_diff(gm.d2) <= 1);
    }

    #[test]
    fn cycles_terminate() {
        // a ↔ b reference edge creates a cycle with the tree path.
        let doc =
            parse(r#"<r><a key="ka"><ref>kb</ref></a><b key="kb"><ref>ka</ref></b></r>"#).unwrap();
        let db = MonetDb::from_document(&doc);
        let graph = RefGraph::from_key_references(&db, "key", "ref");
        assert_eq!(graph.len(), 2);
        let a = db.iter_oids().find(|&o| db.label(o) == "a").unwrap();
        let b = db.iter_oids().find(|&o| db.label(o) == "b").unwrap();
        // Direct reference edge beats the tree route through r.
        assert_eq!(graph_distance(&db, &graph, a, b), 1);
        // Self distance is zero even with cycles.
        assert_eq!(graph_distance(&db, &graph, a, a), 0);
    }

    #[test]
    fn identical_nodes_meet_at_themselves() {
        let (db, graph) = db_with_refs();
        let o = by_text(&db, "Paper One");
        let gm = graph_meet(&db, &graph, o, o).unwrap();
        assert_eq!(gm.meet, o);
        assert_eq!(gm.distance, 0);
    }

    #[test]
    fn tree_meet_lies_on_graph_shortest_path_when_no_refs_help() {
        let doc = parse("<r><x><y>p</y></x><z>q</z></r>").unwrap();
        let db = MonetDb::from_document(&doc);
        let graph = RefGraph::new();
        let p = by_text(&db, "p");
        let q = by_text(&db, "q");
        let gm = graph_meet(&db, &graph, p, q).unwrap();
        let tm = meet2(&db, p, q);
        assert_eq!(gm.distance, tm.distance);
        // The graph midpoint is an ancestor of one of the endpoints on
        // the path through the LCA.
        assert!(db.is_ancestor_or_self(tm.meet, gm.meet) || gm.meet == tm.meet);
    }
}
