//! Set-at-a-time meet — the paper's Figure 4.
//!
//! `meet_s(O₁, O₂)` generalizes `meet₂` to two *homogeneous* sets of OIDs
//! (every member of a set shares one path, i.e. comes from one relation —
//! the natural shape of full-text results). Evaluation is relational:
//! repeated *parent joins* lift whole frontiers, the σ prefix order steers
//! which frontier is lifted, and whenever the frontiers intersect, the
//! intersection is output as the set of **minimal meets** and removed from
//! both frontiers. Removing found meets is what "avoids a combinatoric
//! explosion of the result size" while keeping the operator independent of
//! input order.

use ncq_store::{MonetDb, Oid, PathId};
use std::fmt;

/// Errors raised by the set-at-a-time operators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MeetError {
    /// An input set mixed OIDs of different paths.
    HeterogeneousInput {
        /// Path of the first element.
        expected: PathId,
        /// Offending path.
        found: PathId,
    },
    /// An input set was empty — a meet needs a witness from each side.
    /// Raised by the facade and the indexed paths so callers can tell
    /// "the query can never match" apart from "the sets met nowhere";
    /// the paper-faithful [`meet_sets`] lift keeps its Fig. 4 behaviour
    /// of returning no meets.
    EmptyInput,
}

impl fmt::Display for MeetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeetError::HeterogeneousInput { expected, found } => write!(
                f,
                "meet_sets requires homogeneous input sets (found paths {expected:?} and {found:?}); use meet_multi for mixed input"
            ),
            MeetError::EmptyInput => write!(
                f,
                "meet_sets requires two non-empty input sets (a meet needs a witness from each side)"
            ),
        }
    }
}

impl std::error::Error for MeetError {}

/// Result of [`meet_sets`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SetMeets {
    /// Minimal meets in the order they were found (deepest first), each
    /// carrying the number of parent-join rounds that had been executed
    /// when it surfaced (a distance proxy used for ranking).
    pub meets: Vec<(Oid, usize)>,
    /// Total parent-join rounds executed.
    pub join_rounds: usize,
    /// Total per-element parent look-ups across all rounds.
    pub lookups: usize,
}

impl SetMeets {
    /// Just the meet OIDs.
    pub fn oids(&self) -> Vec<Oid> {
        self.meets.iter().map(|&(o, _)| o).collect()
    }
}

fn check_homogeneous(db: &MonetDb, set: &[Oid]) -> Result<Option<PathId>, MeetError> {
    let Some(&first) = set.first() else {
        return Ok(None);
    };
    let expected = db.sigma(first);
    for &o in &set[1..] {
        let found = db.sigma(o);
        if found != expected {
            return Err(MeetError::HeterogeneousInput { expected, found });
        }
    }
    Ok(Some(expected))
}

/// Below this combined size the frontier algebra stays on the scalar
/// reference even in vector mode: frontiers shrink fast as they climb,
/// and on runs of a few dozen oids the lane setup costs more than it
/// saves. The output is identical either way (same reference kernel).
const VECTOR_MIN: usize = 64;

/// Sorted-set intersection; inputs must be sorted and deduplicated.
/// Frontiers are sorted `Oid` runs, i.e. raw `u32` lanes — the kernel
/// dispatches vector or scalar per `ncq_simd::mode()`.
fn intersect(a: &[Oid], b: &[Oid]) -> Vec<Oid> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    if a.len() + b.len() < VECTOR_MIN {
        ncq_simd::scalar::intersect_u32_into(Oid::raw_slice(a), Oid::raw_slice(b), &mut out);
    } else {
        ncq_simd::intersect_u32_into(Oid::raw_slice(a), Oid::raw_slice(b), &mut out);
    }
    Oid::wrap_raw_vec(out)
}

/// Remove (sorted) `remove` from (sorted) `set`.
fn difference(set: &mut Vec<Oid>, remove: &[Oid]) {
    if remove.is_empty() {
        return;
    }
    let mut out = Vec::with_capacity(set.len());
    if set.len() + remove.len() < VECTOR_MIN {
        ncq_simd::scalar::difference_u32_into(
            Oid::raw_slice(set),
            Oid::raw_slice(remove),
            &mut out,
        );
    } else {
        ncq_simd::difference_u32_into(Oid::raw_slice(set), Oid::raw_slice(remove), &mut out);
    }
    *set = Oid::wrap_raw_vec(out);
}

/// Lift a frontier one level: map every OID to its parent, dedup.
/// Returns the number of look-ups performed.
fn lift(db: &MonetDb, set: &mut Vec<Oid>) -> usize {
    let lookups = set.len();
    for o in set.iter_mut() {
        if let Some(p) = db.parent(*o) {
            *o = p;
        }
    }
    set.sort_unstable();
    set.dedup();
    lookups
}

/// The paper's Figure 4: meets of two homogeneous OID sets.
///
/// Returns the minimal meets. Errors if either input set mixes paths.
pub fn meet_sets(db: &MonetDb, set1: &[Oid], set2: &[Oid]) -> Result<SetMeets, MeetError> {
    let p1 = check_homogeneous(db, set1)?;
    let p2 = check_homogeneous(db, set2)?;
    let mut result = SetMeets::default();
    let (Some(mut p1), Some(mut p2)) = (p1, p2) else {
        return Ok(result); // one side empty → no meets
    };

    let mut o1: Vec<Oid> = set1.to_vec();
    let mut o2: Vec<Oid> = set2.to_vec();
    o1.sort_unstable();
    o1.dedup();
    o2.sort_unstable();
    o2.dedup();

    let summary = db.summary();
    loop {
        if o1.is_empty() || o2.is_empty() {
            return Ok(result);
        }
        // D := O1 ∩ O2 — can only be non-empty when the frontiers reached
        // the same path, but the check is cheap and mirrors Fig. 4.
        let d = intersect(&o1, &o2);
        if !d.is_empty() {
            let round = result.join_rounds;
            result.meets.extend(d.iter().map(|&o| (o, round)));
            difference(&mut o1, &d);
            difference(&mut o2, &d);
            if o1.is_empty() || o2.is_empty() {
                return Ok(result);
            }
        }
        // Steering: lift the frontier with the strictly longer path; on
        // incomparable/equal paths lift both (paper's default case).
        if summary.lt(p1, p2) {
            result.lookups += lift(db, &mut o1);
            p1 = summary.parent(p1).expect("deeper path has a parent");
        } else if summary.lt(p2, p1) {
            result.lookups += lift(db, &mut o2);
            p2 = summary.parent(p2).expect("deeper path has a parent");
        } else if p1 == p2 && summary.depth(p1) == 0 {
            // Both frontiers sit at the root path and did not intersect —
            // impossible (the root is unique), but guard against looping.
            return Ok(result);
        } else {
            result.lookups += lift(db, &mut o1);
            result.lookups += lift(db, &mut o2);
            p1 = summary.parent(p1).expect("non-root path has a parent");
            p2 = summary.parent(p2).expect("non-root path has a parent");
        }
        result.join_rounds += 1;
    }
}

/// Indexed plane-sweep evaluation of the Figure 4 operator.
///
/// Semantics are identical to [`meet_sets`] (same minimal meets, same
/// per-meet round), but instead of lifting whole frontiers level by level
/// — O(hits × depth) parent look-ups — the two sorted hit lists are merged
/// in document order and swept by the shared engine in
/// [`crate::sweep`]: candidates are adjacent-pair LCAs (O(1) via
/// [`MonetDb::meet_index`]), processed deepest first; accepting a meet
/// consumes the contiguous run of survivors inside its subtree, which
/// creates exactly one new adjacency. O(hits log hits) total.
///
/// Bookkeeping differences (documented, not semantic): `lookups` counts
/// RMQ LCA probes instead of parent look-ups, and `join_rounds` is the
/// largest round any meet surfaced in (the lift rounds are modelled, not
/// executed).
pub fn meet_sets_sweep(db: &MonetDb, set1: &[Oid], set2: &[Oid]) -> Result<SetMeets, MeetError> {
    let p1 = check_homogeneous(db, set1)?;
    let p2 = check_homogeneous(db, set2)?;
    let (Some(p1), Some(p2)) = (p1, p2) else {
        return Err(MeetError::EmptyInput);
    };

    let (o1, o2) = sorted_sides(set1, set2);
    // Document-order merge, remembering which side each element came from.
    let mut items: Vec<(Oid, u8)> = Vec::with_capacity(o1.len() + o2.len());
    items.extend(o1.into_iter().map(|o| (o, 0u8)));
    items.extend(o2.into_iter().map(|o| (o, 1u8)));
    items.sort_unstable();
    Ok(sweep_sets_items(db, p1, p2, &items))
}

/// Copy both inputs, sort and deduplicate each side.
fn sorted_sides(set1: &[Oid], set2: &[Oid]) -> (Vec<Oid>, Vec<Oid>) {
    let mut o1: Vec<Oid> = set1.to_vec();
    let mut o2: Vec<Oid> = set2.to_vec();
    o1.sort_unstable();
    o1.dedup();
    o2.sort_unstable();
    o2.dedup();
    (o1, o2)
}

/// The shared sweep body behind [`meet_sets_sweep`] and
/// [`meet_sets_sweep_merged`]: run the plane-sweep engine over a
/// document-order `(oid, side)` item list and model the lift rounds per
/// meet. Any change to the bookkeeping here changes both entry points
/// together — the equivalence property tests pin them to each other.
fn sweep_sets_items(db: &MonetDb, p1: PathId, p2: PathId, items: &[(Oid, u8)]) -> SetMeets {
    let summary = db.summary();
    let (d1, d2) = (summary.depth(p1), summary.depth(p2));
    // Rounds the lift-based evaluation would need to reach depth `d`:
    // |d1 − d2| steering rounds, then lockstep from min(d1, d2) down.
    let round_at = |meet_depth: usize| d1.abs_diff(d2) + (d1.min(d2) - meet_depth);
    let oids: Vec<Oid> = items.iter().map(|&(o, _)| o).collect();

    let mut result = SetMeets::default();
    let index = db.meet_index();
    let mut meets: Vec<(Oid, usize)> = Vec::new();
    result.lookups = crate::sweep::plane_sweep(
        index,
        &oids,
        // A meet needs one element of each input set.
        |li, ri| items[li].1 != items[ri].1,
        |m, _run| {
            meets.push((m, round_at(index.depth(m))));
            crate::sweep::Verdict::Accept
        },
    );
    result.meets = meets;
    result.join_rounds = result.meets.iter().map(|&(_, r)| r).max().unwrap_or(0);
    result
}

// ----- planner-tier executors -----
//
// The [`crate::planner::MeetPlanner`] does more than choose between the
// two evaluations above: like a relational optimizer handing "interesting
// orders" to its operators, it establishes the inputs' physical
// properties once (homogeneous, sorted, deduplicated, depths known) and
// dispatches to executors that exploit them. Both return exactly the
// (meet, round) multiset of their paper-faithful counterparts — the
// property tests pin it — but shed the per-round / global sorts.

/// Lift one sorted homogeneous frontier: parents of same-path nodes are
/// monotone in document order (same-depth subtree intervals are disjoint
/// and ordered), so mapping to parents preserves sortedness and dedup is
/// a linear adjacent-compare instead of a sort. Returns the look-ups.
fn lift_ordered(db: &MonetDb, set: &mut Vec<Oid>) -> usize {
    let lookups = set.len();
    for o in set.iter_mut() {
        if let Some(p) = db.parent(*o) {
            *o = p;
        }
    }
    debug_assert!(set.windows(2).all(|w| w[0] <= w[1]));
    set.dedup();
    lookups
}

/// The planner's lift executor: semantics of [`meet_sets`] (same meets,
/// rounds and look-up counts), with each round O(frontier) instead of
/// O(frontier log frontier). Errors on empty input like the other
/// planner-tier paths.
pub fn meet_sets_lift_ordered(
    db: &MonetDb,
    set1: &[Oid],
    set2: &[Oid],
) -> Result<SetMeets, MeetError> {
    let p1 = check_homogeneous(db, set1)?;
    let p2 = check_homogeneous(db, set2)?;
    let mut result = SetMeets::default();
    let (Some(mut p1), Some(mut p2)) = (p1, p2) else {
        return Err(MeetError::EmptyInput);
    };

    let (mut o1, mut o2) = sorted_sides(set1, set2);
    let summary = db.summary();
    loop {
        if o1.is_empty() || o2.is_empty() {
            return Ok(result);
        }
        // D := O1 ∩ O2 can only be non-empty when both frontiers sit on
        // one path (an oid has one σ) — the planner executor skips the
        // scan entirely on the steering rounds the baseline pays it.
        if p1 == p2 {
            let d = intersect(&o1, &o2);
            if !d.is_empty() {
                let round = result.join_rounds;
                result.meets.extend(d.iter().map(|&o| (o, round)));
                difference(&mut o1, &d);
                difference(&mut o2, &d);
                if o1.is_empty() || o2.is_empty() {
                    return Ok(result);
                }
            }
        }
        if summary.lt(p1, p2) {
            result.lookups += lift_ordered(db, &mut o1);
            p1 = summary.parent(p1).expect("deeper path has a parent");
        } else if summary.lt(p2, p1) {
            result.lookups += lift_ordered(db, &mut o2);
            p2 = summary.parent(p2).expect("deeper path has a parent");
        } else if p1 == p2 && summary.depth(p1) == 0 {
            return Ok(result);
        } else {
            result.lookups += lift_ordered(db, &mut o1);
            result.lookups += lift_ordered(db, &mut o2);
            p1 = summary.parent(p1).expect("non-root path has a parent");
            p2 = summary.parent(p2).expect("non-root path has a parent");
        }
        result.join_rounds += 1;
    }
}

/// The planner's sweep executor: semantics of [`meet_sets_sweep`] (same
/// meets, rounds and probe counts), with the document-order item list
/// built by a linear merge of the two sorted sides instead of a global
/// O(n log n) re-sort.
pub fn meet_sets_sweep_merged(
    db: &MonetDb,
    set1: &[Oid],
    set2: &[Oid],
) -> Result<SetMeets, MeetError> {
    let p1 = check_homogeneous(db, set1)?;
    let p2 = check_homogeneous(db, set2)?;
    let (Some(p1), Some(p2)) = (p1, p2) else {
        return Err(MeetError::EmptyInput);
    };

    let (o1, o2) = sorted_sides(set1, set2);
    // Linear merge, ties pulling side 0 first (matching the tuple order
    // the sorting evaluation produces for an oid present in both sides).
    let mut items: Vec<(Oid, u8)> = Vec::with_capacity(o1.len() + o2.len());
    let (mut i, mut j) = (0, 0);
    while i < o1.len() || j < o2.len() {
        let take_left = match (o1.get(i), o2.get(j)) {
            (Some(a), Some(b)) => a <= b,
            (Some(_), None) => true,
            _ => false,
        };
        if take_left {
            items.push((o1[i], 0));
            i += 1;
        } else {
            items.push((o2[j], 1));
            j += 1;
        }
    }
    Ok(sweep_sets_items(db, p1, p2, &items))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meet2::meet2;
    use ncq_store::MonetDb;
    use ncq_xml::parse;

    const FIGURE1: &str = r#"
<bibliography>
  <institute>
    <article key="BB99">
      <author><firstname>Ben</firstname><lastname>Bit</lastname></author>
      <title>How to Hack</title>
      <year>1999</year>
    </article>
    <article key="BK99">
      <author>Bob Byte</author>
      <title>Hacking &amp; RSI</title>
      <year>1999</year>
    </article>
  </institute>
</bibliography>"#;

    fn db() -> MonetDb {
        MonetDb::from_document(&parse(FIGURE1).unwrap())
    }

    fn cdata_all(db: &MonetDb, s: &str) -> Vec<Oid> {
        db.string_paths()
            .flat_map(|p| db.strings_of(p))
            .filter(|(_, t)| &**t == s)
            .map(|(o, _)| *o)
            .collect()
    }

    fn cdata_containing(db: &MonetDb, s: &str) -> Vec<Oid> {
        db.string_paths()
            .flat_map(|p| db.strings_of(p))
            .filter(|(_, t)| t.contains(s))
            .map(|(o, _)| *o)
            .collect()
    }

    #[test]
    fn paper_case_bit_1999_yields_only_the_article() {
        // §3.2 / Listing-2: hits for "Bit" = {o(Bit)}, hits for "1999" =
        // two year cdatas. The minimal meet is the first article alone —
        // the second "1999" finds no partner.
        let db = db();
        let bits = cdata_containing(&db, "Bit");
        let years = cdata_all(&db, "1999");
        assert_eq!(bits.len(), 1);
        assert_eq!(years.len(), 2);
        let result = meet_sets(&db, &bits, &years).unwrap();
        assert_eq!(result.meets.len(), 1);
        assert_eq!(db.tag(result.meets[0].0), Some("article"));
    }

    #[test]
    fn identical_singletons_meet_at_themselves() {
        // The "Bob" / "Byte" case: same association in both sets.
        let db = db();
        let bob = cdata_containing(&db, "Bob");
        let byte = cdata_containing(&db, "Byte");
        assert_eq!(bob, byte);
        let result = meet_sets(&db, &bob, &byte).unwrap();
        assert_eq!(result.meets.len(), 1);
        assert_eq!(result.meets[0].0, bob[0]);
        assert_eq!(result.meets[0].1, 0); // found before any join round
        assert_eq!(db.label(result.meets[0].0), "cdata");
    }

    #[test]
    fn singletons_agree_with_meet2() {
        let db = db();
        let oids: Vec<Oid> = db.iter_oids().collect();
        for &a in &oids {
            for &b in &oids {
                let pair = meet2(&db, a, b);
                let set = meet_sets(&db, &[a], &[b]).unwrap();
                assert_eq!(set.meets.len(), 1, "{a:?} {b:?}");
                assert_eq!(set.meets[0].0, pair.meet, "{a:?} {b:?}");
            }
        }
    }

    #[test]
    fn empty_inputs_produce_no_meets() {
        let db = db();
        let some = cdata_all(&db, "1999");
        assert!(meet_sets(&db, &[], &some).unwrap().meets.is_empty());
        assert!(meet_sets(&db, &some, &[]).unwrap().meets.is_empty());
        assert!(meet_sets(&db, &[], &[]).unwrap().meets.is_empty());
    }

    #[test]
    fn heterogeneous_input_is_rejected() {
        let db = db();
        let mut mixed = cdata_all(&db, "1999");
        mixed.extend(cdata_containing(&db, "Bit"));
        let err = meet_sets(&db, &mixed, &[db.root()]).unwrap_err();
        assert!(matches!(err, MeetError::HeterogeneousInput { .. }));
        assert!(err.to_string().contains("homogeneous"));
    }

    #[test]
    fn result_is_input_order_invariant() {
        let db = db();
        let years = cdata_all(&db, "1999");
        let titles = cdata_containing(&db, "Hack");
        let fwd = meet_sets(&db, &years, &titles).unwrap();
        let mut years_rev = years.clone();
        years_rev.reverse();
        let mut titles_rev = titles.clone();
        titles_rev.reverse();
        let rev = meet_sets(&db, &years_rev, &titles_rev).unwrap();
        let mut a = fwd.oids();
        let mut b = rev.oids();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn swap_of_arguments_gives_same_meets() {
        let db = db();
        let years = cdata_all(&db, "1999");
        let titles = cdata_containing(&db, "Hack");
        let mut ab = meet_sets(&db, &years, &titles).unwrap().oids();
        let mut ba = meet_sets(&db, &titles, &years).unwrap().oids();
        ab.sort_unstable();
        ba.sort_unstable();
        assert_eq!(ab, ba);
    }

    #[test]
    fn two_parallel_pairs_give_two_minimal_meets() {
        // years × titles: each article pairs its own year with its own
        // title; both articles surface, nothing above them.
        let db = db();
        let years = cdata_all(&db, "1999");
        let titles = cdata_containing(&db, "Hack");
        assert_eq!(years.len(), 2);
        assert_eq!(titles.len(), 2);
        let result = meet_sets(&db, &years, &titles).unwrap();
        assert_eq!(result.meets.len(), 2);
        for &(m, _) in &result.meets {
            assert_eq!(db.tag(m), Some("article"));
        }
    }

    #[test]
    fn consumed_witnesses_do_not_meet_again() {
        // "Ben" (one hit) against both years: only the first article can
        // form a minimal meet; the leftover year climbs alone to the root
        // and the institute/bibliography never enter the answer.
        let db = db();
        let ben = cdata_containing(&db, "Ben");
        let years = cdata_all(&db, "1999");
        let result = meet_sets(&db, &ben, &years).unwrap();
        assert_eq!(result.meets.len(), 1);
        assert_eq!(db.tag(result.meets[0].0), Some("article"));
    }

    #[test]
    fn meets_against_root_set_is_root() {
        let db = db();
        let ben = cdata_containing(&db, "Ben");
        let result = meet_sets(&db, &ben, &[db.root()]).unwrap();
        assert_eq!(result.oids(), vec![db.root()]);
    }

    #[test]
    fn sweep_agrees_with_lift_on_all_homogeneous_pairs() {
        // Every pair of homogeneous sets constructible from the Figure 1
        // relations: lift and sweep must return identical (meet, round)
        // multisets.
        let db = db();
        let mut by_path: std::collections::BTreeMap<_, Vec<Oid>> = Default::default();
        for o in db.iter_oids() {
            by_path.entry(db.sigma(o)).or_default().push(o);
        }
        let groups: Vec<Vec<Oid>> = by_path.into_values().collect();
        for s1 in &groups {
            for s2 in &groups {
                let lift = meet_sets(&db, s1, s2).unwrap();
                let sweep = meet_sets_sweep(&db, s1, s2).unwrap();
                let mut a = lift.meets.clone();
                let mut b = sweep.meets.clone();
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "sets {s1:?} vs {s2:?}");
            }
        }
    }

    #[test]
    fn sweep_singletons_agree_with_meet2() {
        let db = db();
        let oids: Vec<Oid> = db.iter_oids().collect();
        for &a in &oids {
            for &b in &oids {
                let pair = meet2(&db, a, b);
                let set = meet_sets_sweep(&db, &[a], &[b]).unwrap();
                assert_eq!(set.meets.len(), 1, "{a:?} {b:?}");
                assert_eq!(set.meets[0].0, pair.meet, "{a:?} {b:?}");
            }
        }
    }

    #[test]
    fn sweep_handles_empty_and_heterogeneous_inputs() {
        let db = db();
        let some = cdata_all(&db, "1999");
        // Empty input is a typed error on the indexed path (the lift
        // keeps the paper's empty-result behaviour, pinned above).
        assert_eq!(meet_sets_sweep(&db, &[], &some), Err(MeetError::EmptyInput));
        assert_eq!(meet_sets_sweep(&db, &some, &[]), Err(MeetError::EmptyInput));
        assert_eq!(meet_sets_sweep(&db, &[], &[]), Err(MeetError::EmptyInput));
        assert!(MeetError::EmptyInput.to_string().contains("non-empty"));
        let mut mixed = some.clone();
        mixed.extend(cdata_containing(&db, "Bit"));
        assert!(matches!(
            meet_sets_sweep(&db, &mixed, &[db.root()]),
            Err(MeetError::HeterogeneousInput { .. })
        ));
    }

    #[test]
    fn sweep_consumes_leftovers_into_shallower_meets() {
        // The case that forces the sweep's re-adjacency step: the deepest
        // cross pair meets first and is consumed; the remaining outer
        // elements (not adjacent in the original merge) must still meet.
        let doc = parse("<r><c><a>s</a></c><c><a>s</a><b>t</b></c><c><b>t</b></c></r>").unwrap();
        let db = MonetDb::from_document(&doc);
        let s: Vec<Oid> = cdata_all(&db, "s");
        let t: Vec<Oid> = cdata_all(&db, "t");
        assert_eq!((s.len(), t.len()), (2, 2));
        let lift = meet_sets(&db, &s, &t).unwrap();
        let sweep = meet_sets_sweep(&db, &s, &t).unwrap();
        let mut a = lift.meets.clone();
        let mut b = sweep.meets.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        // The middle <c> meets first and is consumed; the leftover outer
        // pair — never adjacent in the original merge — meets at the root.
        assert_eq!(sweep.meets.len(), 2);
        assert_eq!(db.tag(sweep.meets[0].0), Some("c"));
        assert_eq!(db.tag(sweep.meets[1].0), Some("r"));
    }

    #[test]
    fn planner_tier_executors_match_their_baselines() {
        // Every homogeneous pair constructible from Figure 1: the
        // ordered lift must equal the sorting lift exactly — meets,
        // rounds AND look-up counts — and likewise the merged sweep
        // against the sorting sweep.
        let db = db();
        let mut by_path: std::collections::BTreeMap<_, Vec<Oid>> = Default::default();
        for o in db.iter_oids() {
            by_path.entry(db.sigma(o)).or_default().push(o);
        }
        let groups: Vec<Vec<Oid>> = by_path.into_values().collect();
        let sorted = |r: &SetMeets| {
            let mut m = r.meets.clone();
            m.sort_unstable();
            m
        };
        for s1 in &groups {
            for s2 in &groups {
                let lift = meet_sets(&db, s1, s2).unwrap();
                let lift_ordered = meet_sets_lift_ordered(&db, s1, s2).unwrap();
                assert_eq!(sorted(&lift), sorted(&lift_ordered), "{s1:?} vs {s2:?}");
                assert_eq!(lift.join_rounds, lift_ordered.join_rounds);
                assert_eq!(lift.lookups, lift_ordered.lookups);
                let sweep = meet_sets_sweep(&db, s1, s2).unwrap();
                let merged = meet_sets_sweep_merged(&db, s1, s2).unwrap();
                assert_eq!(sorted(&sweep), sorted(&merged), "{s1:?} vs {s2:?}");
                assert_eq!(sweep.join_rounds, merged.join_rounds);
                assert_eq!(sweep.lookups, merged.lookups);
            }
        }
    }

    #[test]
    fn planner_tier_executors_error_on_empty_input() {
        let db = db();
        let some = cdata_all(&db, "1999");
        for f in [meet_sets_lift_ordered, meet_sets_sweep_merged] {
            assert_eq!(f(&db, &[], &some), Err(MeetError::EmptyInput));
            assert_eq!(f(&db, &some, &[]), Err(MeetError::EmptyInput));
        }
    }

    #[test]
    fn merged_sweep_handles_shared_oids_and_readjacency() {
        // The re-adjacency document of the sweep test, plus inputs that
        // share an oid across both sides (merge tie-breaking).
        let doc = parse("<r><c><a>s</a></c><c><a>s</a><b>t</b></c><c><b>t</b></c></r>").unwrap();
        let db = MonetDb::from_document(&doc);
        let s: Vec<Oid> = cdata_all(&db, "s");
        let t: Vec<Oid> = cdata_all(&db, "t");
        let sweep = meet_sets_sweep(&db, &s, &t).unwrap();
        let merged = meet_sets_sweep_merged(&db, &s, &t).unwrap();
        assert_eq!(sweep, merged);
        let shared = meet_sets_sweep_merged(&db, &s, &s).unwrap();
        let baseline = meet_sets_sweep(&db, &s, &s).unwrap();
        assert_eq!(shared, baseline);
    }

    #[test]
    fn join_rounds_are_counted() {
        let db = db();
        let ben = cdata_containing(&db, "Ben");
        let bit = cdata_containing(&db, "Bit");
        let result = meet_sets(&db, &ben, &bit).unwrap();
        // firstname/cdata and lastname/cdata sit at equal depth: two
        // lockstep rounds lift both to author where they intersect.
        assert_eq!(result.meets.len(), 1);
        assert_eq!(db.tag(result.meets[0].0), Some("author"));
        assert_eq!(result.join_rounds, 2);
        assert_eq!(result.lookups, 4);
    }
}
