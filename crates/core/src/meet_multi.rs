//! Generalized meet over arbitrary grouped input — the paper's Figure 5.
//!
//! Full-text results "may be distributed over a large number of
//! relations". The generalized algorithm takes the hit groups `R₁ … Rₙ`
//! and **rolls up the tree-shaped schema from the bottom**, "iteratively
//! contracting the offspring of nodes whose only offspring are leaves,
//! until we reach the root or the empty set. This way, all nodes that are
//! meets of other nodes are minimal by construction; they are output and
//! not considered anymore, thus avoiding a combinatorial explosion of the
//! result set and dependence on the input order."
//!
//! Concretely: every hit starts as a *token* on its owner node. Paths are
//! processed in order of decreasing depth; tokens on a node are counted,
//! and a node on which **two or more input nodes converge** is a meet
//! (paper §3.2: "we now call a node meet if it is the lowest common
//! ancestor of at least two other nodes" — where a hit node reached by
//! another hit counts as its own ancestor, covering the "Bob Byte" case).
//! Meets are emitted, their tokens consumed; single tokens climb to the
//! parent path.
//!
//! The §4 extensions hook in here:
//!
//! * `meet_Π` — a [`PathFilter`] suppresses meets whose result type is
//!   unwanted (their witnesses are consumed, matching "we discard o");
//! * `meet^δ` — a maximum distance: a meet is only valid if its two
//!   closest witnesses lie within `δ` edges of each other; tokens whose
//!   climb alone exceeds `δ` are pruned.

use crate::filter::PathFilter;
use crate::planner::MeetStrategy;
use ncq_fulltext::HitSet;
use ncq_store::{MonetDb, Oid, PathId};
use std::borrow::Borrow;
use std::collections::HashMap;

/// Tuning and restriction knobs for [`meet_multi`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MeetOptions {
    /// Result-type restriction (`meet_Π`).
    pub filter: PathFilter,
    /// Maximum distance between the two closest witnesses (`meet^δ`).
    pub max_distance: Option<usize>,
    /// Cap on stored witnesses per meet (the count is always exact;
    /// only the sample is bounded). Default 8.
    pub witness_cap: usize,
    /// Evaluation strategy. Consumed by the planner-routed facade
    /// entry points ([`crate::Database::meet_hits`] and friends); the
    /// raw operators in this module *are* the strategies and ignore it.
    pub strategy: MeetStrategy,
    /// Top-k bound (the dialect's `limit k`). Answers are ranked by
    /// distance, so once `k` meets are held and the k-th best distance
    /// is strictly better than anything evaluation could still produce,
    /// both the roll-up and the indexed sweep stop early. The ranked
    /// facades ([`crate::Database::meet_hits`] and every
    /// [`crate::MeetBackend`]) truncate to exactly `k`; the first `k`
    /// answers are byte-identical to the unbounded evaluation's prefix.
    /// The raw operators here stop early but return their (unranked)
    /// superset untruncated.
    pub limit: Option<usize>,
}

impl MeetOptions {
    /// The effective witness-sample bound: [`MeetOptions::witness_cap`]
    /// with `0` meaning the default of 8. Public so alternative
    /// executors (the sharded scatter/gather) apply the exact same
    /// bound — witness samples are part of the byte-identical-answers
    /// contract.
    pub fn cap(&self) -> usize {
        if self.witness_cap == 0 {
            8
        } else {
            self.witness_cap
        }
    }
}

/// One witness of a meet: an original full-text hit that converged there.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeetWitness {
    /// The hit's owner oid (cdata node or attribute-carrying element).
    pub origin: Oid,
    /// Index of the hit group (position in the `inputs` slice).
    pub input: usize,
    /// Edges climbed from the origin to the meet.
    pub climb: usize,
}

/// A nearest concept found by [`meet_multi`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Meet {
    /// The meet node.
    pub node: Oid,
    /// `σ(node)` — the result type the user did not have to specify.
    pub path: PathId,
    /// Distance between the two closest witnesses through this node
    /// (the ranking heuristic of §4).
    pub distance: usize,
    /// Total number of witnesses that converged here.
    pub witness_count: usize,
    /// Sample of witnesses (bounded by [`MeetOptions::witness_cap`]).
    pub witnesses: Vec<MeetWitness>,
}

/// Bounded max-heap of the `k` smallest emitted distances: its top is
/// the current k-th best distance, the early-exit threshold for
/// [`MeetOptions::limit`]. Requires `k ≥ 1`.
struct TopK {
    k: usize,
    heap: std::collections::BinaryHeap<usize>,
}

impl TopK {
    fn new(k: usize) -> TopK {
        TopK {
            k,
            heap: std::collections::BinaryHeap::with_capacity(k + 1),
        }
    }

    fn push(&mut self, distance: usize) {
        self.heap.push(distance);
        if self.heap.len() > self.k {
            self.heap.pop();
        }
    }

    /// The k-th best distance so far — `None` until `k` meets are held.
    fn kth(&self) -> Option<usize> {
        (self.heap.len() >= self.k).then(|| *self.heap.peek().expect("k >= 1"))
    }
}

/// A token: the state of hits climbing the tree during the roll-up.
#[derive(Debug, Clone)]
struct Token {
    count: usize,
    /// Two smallest climbs — enough to compute the meet distance.
    min_climb: usize,
    second_climb: usize,
    witnesses: Vec<MeetWitness>,
}

impl Token {
    fn new(w: MeetWitness) -> Token {
        Token {
            count: 1,
            min_climb: w.climb,
            second_climb: usize::MAX,
            witnesses: vec![w],
        }
    }

    fn absorb(&mut self, other: Token, cap: usize) {
        self.count += other.count;
        // Merge the two smallest climbs of both sides.
        for c in [other.min_climb, other.second_climb] {
            if c < self.min_climb {
                self.second_climb = self.min_climb;
                self.min_climb = c;
            } else if c < self.second_climb {
                self.second_climb = c;
            }
        }
        for w in other.witnesses {
            if self.witnesses.len() >= cap {
                break;
            }
            self.witnesses.push(w);
        }
    }
}

/// The paper's Figure 5 with the §4 restrictions.
///
/// `inputs` are hit groups (e.g. one [`HitSet`] per full-text term),
/// accepted through any [`Borrow`]-able holder (`HitSet`, `&HitSet`,
/// `Arc<HitSet>` — the server's shared term cache) so callers never
/// deep-copy hit lists just to group them. The result is the set of
/// minimal meets, deepest first; each meet's witnesses tell which hits
/// it explains.
pub fn meet_multi<H: Borrow<HitSet>>(
    db: &MonetDb,
    inputs: &[H],
    options: &MeetOptions,
) -> Vec<Meet> {
    let summary = db.summary();
    let cap = options.cap();
    if options.limit == Some(0) {
        return Vec::new();
    }
    let mut best = options.limit.map(TopK::new);

    // tokens[path] : oid → token. Only paths that can carry tokens are
    // materialized.
    let mut tokens: HashMap<PathId, HashMap<Oid, Token>> = HashMap::new();
    let mut max_depth = 0usize;
    for (input_idx, hits) in inputs.iter().enumerate() {
        for (path, oid) in hits.borrow().iter() {
            // Attribute hits are owned by the element carrying the
            // attribute: their token starts on the element, i.e. on the
            // attribute path's parent.
            let node_path = match summary.step(path) {
                ncq_store::PathStep::Attribute(_) => {
                    summary.parent(path).expect("attribute paths have parents")
                }
                _ => path,
            };
            max_depth = max_depth.max(summary.depth(node_path));
            let w = MeetWitness {
                origin: oid,
                input: input_idx,
                climb: 0,
            };
            tokens
                .entry(node_path)
                .or_default()
                .entry(oid)
                .and_modify(|t| t.absorb(Token::new(w), cap))
                .or_insert_with(|| Token::new(w));
        }
    }

    // Paths ordered by decreasing depth: children are always contracted
    // before their parents (the bottom-up roll-up).
    let mut paths: Vec<PathId> = summary.iter().collect();
    paths.sort_by_key(|&p| std::cmp::Reverse(summary.depth(p)));

    let mut meets: Vec<Meet> = Vec::new();
    for path in paths {
        let Some(node_tokens) = tokens.remove(&path) else {
            continue;
        };
        let parent_path = summary.parent(path);
        // Document order, not hash order: token absorption order decides
        // the witness sample, which must be deterministic (the golden
        // suite and the server's response-equality guarantee pin it).
        let mut node_tokens: Vec<(Oid, Token)> = node_tokens.into_iter().collect();
        node_tokens.sort_unstable_by_key(|&(o, _)| o);
        for (oid, token) in node_tokens {
            if token.count >= 2 {
                let distance = token.min_climb.saturating_add(token.second_climb);
                let within = options.max_distance.is_none_or(|d| distance <= d);
                if within {
                    // A (possibly suppressed) meet: witnesses are consumed
                    // either way — "they are output and not considered
                    // anymore" / "we discard o".
                    if options.filter.accepts(path) {
                        if let Some(best) = best.as_mut() {
                            best.push(distance);
                        }
                        meets.push(Meet {
                            node: oid,
                            path,
                            distance,
                            witness_count: token.count,
                            witnesses: token.witnesses,
                        });
                    }
                    continue;
                }
                // Too far apart: not a meet. The merged token keeps
                // climbing — a fresh, closer witness higher up may still
                // pair with its closest member.
            }
            // Climb to the parent path (single token, or a failed meet^δ
            // candidate). Tokens beyond δ keep climbing: they can no
            // longer *form* a meet, but they still count as witnesses of
            // a meet formed by closer hits higher up — pruning them here
            // would change witness counts (and diverge from the indexed
            // plane sweep, which sees every unconsumed hit in a subtree).
            let Some(parent_path) = parent_path else {
                continue; // lone token at the root: dies
            };
            let climbed = Token {
                count: token.count,
                min_climb: token.min_climb + 1,
                second_climb: token.second_climb.saturating_add(1),
                witnesses: token
                    .witnesses
                    .into_iter()
                    .map(|w| MeetWitness {
                        climb: w.climb + 1,
                        ..w
                    })
                    .collect(),
            };
            let parent_oid = db.parent(oid).expect("non-root nodes have parents");
            tokens
                .entry(parent_path)
                .or_default()
                .entry(parent_oid)
                .and_modify(|t| t.absorb(climbed.clone(), cap))
                .or_insert(climbed);
        }

        // Top-k early exit: climbs only ever grow, so the two smallest
        // climbs over every live token floor the distance of any meet
        // the roll-up could still form. Once the k-th best emitted
        // distance is *strictly* below that floor, nothing ahead can
        // enter the ranked top k (ties could still win the
        // witness-count/document-order tie-breaks, so ties keep going).
        if let Some(kth) = best.as_ref().and_then(TopK::kth) {
            let (mut c1, mut c2) = (usize::MAX, usize::MAX);
            for token in tokens.values().flat_map(HashMap::values) {
                for c in [token.min_climb, token.second_climb] {
                    if c < c1 {
                        c2 = c1;
                        c1 = c;
                    } else if c < c2 {
                        c2 = c;
                    }
                }
            }
            // c2 == MAX means at most one witness is left anywhere: no
            // further meet is possible either way.
            if kth < c1.saturating_add(c2) {
                break;
            }
        }
    }

    // Deterministic order: deepest meets first, then document order.
    meets.sort_by_key(|m| (std::cmp::Reverse(summary.depth(m.path)), m.node));
    meets
}

/// Indexed plane-sweep evaluation of the generalized meet.
///
/// Produces exactly the meets of [`meet_multi`] (same nodes, distances,
/// witness counts and witness climbs) without any token climbing: all
/// hits are merged in document order; candidate meets are the LCAs of
/// adjacent hits (O(1) via [`MonetDb::meet_index`]), processed deepest
/// first from a heap. Because preorder intervals are contiguous, the
/// unconsumed hits of a subtree form a contiguous run in the merged list:
/// accepting a meet consumes that run and creates exactly one new
/// adjacency. A candidate whose two closest hits violate `meet^δ` is
/// skipped — its hits stay alive for shallower candidates, mirroring the
/// roll-up's merged tokens climbing on.
///
/// Cost: O(hits log hits) for sort + heap, with O(1) work per LCA probe —
/// replacing the roll-up's O(hits × depth) parent climbing.
pub fn meet_multi_indexed<H: Borrow<HitSet>>(
    db: &MonetDb,
    inputs: &[H],
    options: &MeetOptions,
) -> Vec<Meet> {
    // Merge all hits in document order, keeping input provenance and
    // multiplicity (two attribute hits owned by one element are two
    // witnesses, exactly as in the roll-up).
    let mut items: Vec<(Oid, u32)> = inputs
        .iter()
        .enumerate()
        .flat_map(|(i, hits)| hits.borrow().iter().map(move |(_, o)| (o, i as u32)))
        .collect();
    items.sort_unstable();
    meet_multi_items(db, &items, options)
}

/// [`meet_multi_indexed`] over pre-merged items: `(oid, input index)`
/// pairs already sorted by `(oid, input)`. This is the shared core of
/// the per-query sweep and the batch executor
/// ([`crate::batch`]), which builds each query's item list by merging
/// per-hit-set sorted runs decoded once for a whole batch — both paths
/// run the exact same code on the exact same item order, so batched and
/// serial answers are byte-identical by construction.
pub fn meet_multi_items(db: &MonetDb, items: &[(Oid, u32)], options: &MeetOptions) -> Vec<Meet> {
    let summary = db.summary();
    let cap = options.cap();
    let index = db.meet_index();
    if options.limit == Some(0) {
        return Vec::new();
    }

    let oids: Vec<Oid> = items.iter().map(|&(o, _)| o).collect();
    let meets: std::cell::RefCell<Vec<Meet>> = std::cell::RefCell::new(Vec::new());
    let best: std::cell::RefCell<Option<TopK>> =
        std::cell::RefCell::new(options.limit.map(TopK::new));

    let on_candidate = |m: Oid, run: &[usize]| {
        // Distance between the two closest witnesses through m.
        let m_depth = index.depth(m);
        let (mut min_climb, mut second_climb) = (usize::MAX, usize::MAX);
        for &i in run {
            let climb = index.depth(items[i].0) - m_depth;
            if climb < min_climb {
                second_climb = min_climb;
                min_climb = climb;
            } else if climb < second_climb {
                second_climb = climb;
            }
        }
        let distance = min_climb.saturating_add(second_climb);
        if options.max_distance.is_some_and(|d| distance > d) {
            // Too far apart: hits stay alive for higher meets.
            return crate::sweep::Verdict::Reject;
        }
        // Consume the run; a suppressed result type still consumes
        // its witnesses ("they are output and not considered
        // anymore").
        if options.filter.accepts(db.sigma(m)) {
            if let Some(best) = best.borrow_mut().as_mut() {
                best.push(distance);
            }
            let witnesses = run
                .iter()
                .take(cap)
                .map(|&i| MeetWitness {
                    origin: items[i].0,
                    input: items[i].1 as usize,
                    climb: index.depth(items[i].0) - m_depth,
                })
                .collect();
            meets.borrow_mut().push(Meet {
                node: m,
                path: db.sigma(m),
                distance,
                witness_count: run.len(),
                witnesses,
            });
        }
        crate::sweep::Verdict::Accept
    };

    match options.limit {
        // Unbounded sweeps skip the early-exit bookkeeping entirely.
        None => {
            crate::sweep::plane_sweep(index, &oids, |_, _| true, on_candidate);
        }
        Some(_) => {
            crate::sweep::plane_sweep_bounded(
                index,
                &oids,
                |_, _| true,
                on_candidate,
                |floor| {
                    best.borrow()
                        .as_ref()
                        .and_then(TopK::kth)
                        .is_some_and(|kth| kth < floor)
                },
            );
        }
    }

    let mut meets = meets.into_inner();
    // Deterministic order: deepest meets first, then document order.
    meets.sort_by_key(|m| (std::cmp::Reverse(summary.depth(m.path)), m.node));
    meets
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncq_fulltext::{search, InvertedIndex};
    use ncq_store::MonetDb;
    use ncq_xml::parse;

    const FIGURE1: &str = r#"
<bibliography>
  <institute>
    <article key="BB99">
      <author><firstname>Ben</firstname><lastname>Bit</lastname></author>
      <title>How to Hack</title>
      <year>1999</year>
    </article>
    <article key="BK99">
      <author>Bob Byte</author>
      <title>Hacking &amp; RSI</title>
      <year>1999</year>
    </article>
  </institute>
</bibliography>"#;

    fn setup() -> (MonetDb, InvertedIndex) {
        let db = MonetDb::from_document(&parse(FIGURE1).unwrap());
        let idx = InvertedIndex::build(&db);
        (db, idx)
    }

    fn hits(db: &MonetDb, idx: &InvertedIndex, term: &str) -> HitSet {
        search::term_hits(db, idx, term)
    }

    #[test]
    fn listing2_bit_and_1999_yields_only_article() {
        let (db, idx) = setup();
        let inputs = vec![hits(&db, &idx, "Bit"), hits(&db, &idx, "1999")];
        let meets = meet_multi(&db, &inputs, &MeetOptions::default());
        assert_eq!(meets.len(), 1);
        assert_eq!(db.tag(meets[0].node), Some("article"));
        // Distance: lastname/cdata → article (3 up), year/cdata → article
        // (2 up) = 5 edges.
        assert_eq!(meets[0].distance, 5);
        assert_eq!(meets[0].witness_count, 2);
    }

    #[test]
    fn ben_and_bit_meet_at_author() {
        let (db, idx) = setup();
        let inputs = vec![hits(&db, &idx, "Ben"), hits(&db, &idx, "Bit")];
        let meets = meet_multi(&db, &inputs, &MeetOptions::default());
        assert_eq!(meets.len(), 1);
        assert_eq!(db.tag(meets[0].node), Some("author"));
        assert_eq!(meets[0].distance, 4);
    }

    #[test]
    fn bob_and_byte_meet_at_the_cdata_node() {
        let (db, idx) = setup();
        let inputs = vec![hits(&db, &idx, "Bob"), hits(&db, &idx, "Byte")];
        let meets = meet_multi(&db, &inputs, &MeetOptions::default());
        assert_eq!(meets.len(), 1);
        assert_eq!(db.label(meets[0].node), "cdata");
        assert_eq!(meets[0].distance, 0);
    }

    #[test]
    fn attribute_hits_start_on_their_element() {
        let (db, idx) = setup();
        // "BB99" is the key attribute of article 1; "Ben" is inside it.
        let inputs = vec![hits(&db, &idx, "BB99"), hits(&db, &idx, "Ben")];
        let meets = meet_multi(&db, &inputs, &MeetOptions::default());
        assert_eq!(meets.len(), 1);
        assert_eq!(db.tag(meets[0].node), Some("article"));
        // key@article climbs 0, Ben cdata climbs 3.
        assert_eq!(meets[0].distance, 3);
    }

    #[test]
    fn single_input_group_meets_within_itself() {
        let (db, idx) = setup();
        // "Hack" as a word hits only "How to Hack"; "1999" hits two years.
        // One group with both years: they meet at the institute.
        let inputs = vec![hits(&db, &idx, "1999")];
        let meets = meet_multi(&db, &inputs, &MeetOptions::default());
        assert_eq!(meets.len(), 1);
        assert_eq!(db.tag(meets[0].node), Some("institute"));
    }

    #[test]
    fn exclude_root_suppresses_root_meets() {
        let (db, idx) = setup();
        // "Ben" (article 1) and "RSI" (article 2) meet at the institute…
        let inputs = vec![hits(&db, &idx, "Ben"), hits(&db, &idx, "RSI")];
        let meets = meet_multi(&db, &inputs, &MeetOptions::default());
        assert_eq!(meets.len(), 1);
        assert_eq!(db.tag(meets[0].node), Some("institute"));

        // …excluding the institute path consumes them silently; nothing
        // bubbles to the root.
        let inst_path = meets[0].path;
        let opts = MeetOptions {
            filter: PathFilter::excluding([inst_path]),
            ..MeetOptions::default()
        };
        let meets = meet_multi(&db, &inputs, &opts);
        assert!(meets.is_empty());
    }

    #[test]
    fn allow_filter_keeps_only_wanted_types() {
        let (db, idx) = setup();
        let inputs = vec![hits(&db, &idx, "Bit"), hits(&db, &idx, "1999")];
        let article_path = db
            .summary()
            .lookup_in(&["bibliography", "institute", "article"], db.symbols())
            .unwrap();
        let opts = MeetOptions {
            filter: PathFilter::allowing([article_path]),
            ..MeetOptions::default()
        };
        let meets = meet_multi(&db, &inputs, &opts);
        assert_eq!(meets.len(), 1);
        assert_eq!(meets[0].path, article_path);
    }

    #[test]
    fn max_distance_blocks_far_meets() {
        let (db, idx) = setup();
        let inputs = vec![hits(&db, &idx, "Bit"), hits(&db, &idx, "1999")];
        // The article meet needs distance 5.
        for (delta, expect) in [(4usize, 0usize), (5, 1), (20, 1)] {
            let opts = MeetOptions {
                max_distance: Some(delta),
                ..MeetOptions::default()
            };
            let found = meet_multi(&db, &inputs, &opts);
            assert_eq!(found.len(), expect, "δ={delta}");
        }
    }

    #[test]
    fn zero_distance_still_finds_same_node_meets() {
        let (db, idx) = setup();
        let inputs = vec![hits(&db, &idx, "Bob"), hits(&db, &idx, "Byte")];
        let opts = MeetOptions {
            max_distance: Some(0),
            ..MeetOptions::default()
        };
        let meets = meet_multi(&db, &inputs, &opts);
        assert_eq!(meets.len(), 1);
        assert_eq!(meets[0].distance, 0);
    }

    #[test]
    fn empty_inputs_give_no_meets() {
        let (db, _) = setup();
        assert!(meet_multi::<HitSet>(&db, &[], &MeetOptions::default()).is_empty());
        let empty = HitSet::new();
        assert!(meet_multi(&db, &[empty], &MeetOptions::default()).is_empty());
    }

    #[test]
    fn lone_hit_never_meets() {
        let (db, idx) = setup();
        let inputs = vec![hits(&db, &idx, "Ben")];
        assert!(meet_multi(&db, &inputs, &MeetOptions::default()).is_empty());
    }

    #[test]
    fn three_terms_meet_pairwise_minimally() {
        let (db, idx) = setup();
        // Ben+Bit meet at author (distance 4); the year's hits meet that
        // pair's leftovers? No — author consumed Ben and Bit, the two
        // 1999 hits meet each other at the institute.
        let inputs = vec![
            hits(&db, &idx, "Ben"),
            hits(&db, &idx, "Bit"),
            hits(&db, &idx, "1999"),
        ];
        let meets = meet_multi(&db, &inputs, &MeetOptions::default());
        let tags: Vec<_> = meets.iter().map(|m| db.tag(m.node).unwrap()).collect();
        assert_eq!(tags, vec!["author", "institute"]);
    }

    #[test]
    fn witness_counts_are_exact_even_when_capped() {
        let (db, idx) = setup();
        let inputs = vec![hits(&db, &idx, "1999"), hits(&db, &idx, "Hacking")];
        let opts = MeetOptions {
            witness_cap: 1,
            ..MeetOptions::default()
        };
        let meets = meet_multi(&db, &inputs, &opts);
        for m in &meets {
            assert!(m.witnesses.len() <= 1);
            assert!(m.witness_count >= m.witnesses.len());
        }
    }

    #[test]
    fn results_are_deterministic_and_deepest_first() {
        let (db, idx) = setup();
        let inputs = vec![
            hits(&db, &idx, "Bob"),
            hits(&db, &idx, "Byte"),
            hits(&db, &idx, "Ben"),
            hits(&db, &idx, "Bit"),
        ];
        let meets = meet_multi(&db, &inputs, &MeetOptions::default());
        assert_eq!(meets.len(), 2);
        let depths: Vec<usize> = meets.iter().map(|m| db.summary().depth(m.path)).collect();
        assert!(depths[0] >= depths[1]);
        // Shuffling the input groups does not change the answer set.
        let inputs_rev: Vec<HitSet> = inputs.iter().rev().cloned().collect();
        let meets_rev = meet_multi(&db, &inputs_rev, &MeetOptions::default());
        let a: Vec<Oid> = meets.iter().map(|m| m.node).collect();
        let b: Vec<Oid> = meets_rev.iter().map(|m| m.node).collect();
        assert_eq!(a, b);
    }
}
