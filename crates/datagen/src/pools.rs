//! Vocabulary pools shared by the generators.

/// Author first names.
pub const FIRST_NAMES: &[&str] = &[
    "Albrecht", "Martin", "Menzo", "Peter", "Maria", "Serge", "Dana", "Jennifer", "Victor",
    "Alfred", "Jeffrey", "Rakesh", "Hector", "Jim", "Michael", "David", "Susan", "Patricia",
    "Laura", "Christos", "Mary", "Hans", "Gerhard", "Sophie", "Erik", "Anna", "Paul", "Rosa",
    "Timos", "Yannis", "Elena", "Carlo", "Divesh", "Limsoon", "Ben", "Bob", "Grace", "Alan",
    "Edgar", "Barbara",
];

/// Author last names.
pub const LAST_NAMES: &[&str] = &[
    "Schmidt",
    "Kersten",
    "Windhouwer",
    "Boncz",
    "Abiteboul",
    "Florescu",
    "Widom",
    "Vianu",
    "Aho",
    "Ullman",
    "Agrawal",
    "Garcia-Molina",
    "Gray",
    "Stonebraker",
    "DeWitt",
    "Sagiv",
    "Faloutsos",
    "Chen",
    "Kossmann",
    "Weikum",
    "Cluet",
    "Meijer",
    "Larson",
    "Moerkotte",
    "Sellis",
    "Ioannidis",
    "Ceri",
    "Bonifati",
    "Srivastava",
    "Wong",
    "Bit",
    "Byte",
    "Hopcroft",
    "Codd",
    "Bernstein",
    "Lindsay",
    "Haas",
    "Mohan",
    "Lehman",
    "Naughton",
];

/// Title vocabulary (database flavored, like DBLP titles).
pub const TITLE_WORDS: &[&str] = &[
    "efficient",
    "scalable",
    "adaptive",
    "parallel",
    "distributed",
    "incremental",
    "optimal",
    "approximate",
    "semantic",
    "relational",
    "semistructured",
    "temporal",
    "spatial",
    "object",
    "oriented",
    "query",
    "queries",
    "processing",
    "optimization",
    "evaluation",
    "indexing",
    "storage",
    "retrieval",
    "mining",
    "warehousing",
    "integration",
    "replication",
    "recovery",
    "transactions",
    "concurrency",
    "views",
    "schemas",
    "documents",
    "databases",
    "systems",
    "algorithms",
    "structures",
    "joins",
    "aggregation",
    "caching",
    "clustering",
    "partitioning",
    "benchmarking",
    "performance",
    "cost",
    "models",
    "languages",
    "wrappers",
    "mediators",
    "streams",
];

/// Journal names for article records.
pub const JOURNALS: &[&str] = &[
    "VLDB Journal",
    "TODS",
    "SIGMOD Record",
    "Information Systems",
    "TKDE",
    "Data Engineering Bulletin",
];

/// Feature-detector names for the multimedia corpus.
pub const DETECTORS: &[&str] = &[
    "color",
    "texture",
    "shape",
    "edges",
    "histogram",
    "contour",
    "luminance",
    "saturation",
    "wavelet",
    "gradient",
    "moments",
    "regions",
];

/// Media keywords for the multimedia corpus.
pub const MEDIA_WORDS: &[&str] = &[
    "landscape",
    "portrait",
    "indoor",
    "outdoor",
    "sunset",
    "forest",
    "water",
    "urban",
    "face",
    "animal",
    "vehicle",
    "building",
    "sky",
    "mountain",
    "beach",
    "night",
    "snow",
    "flower",
    "crowd",
    "texture",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_are_nonempty_and_distinct() {
        for pool in [
            FIRST_NAMES,
            LAST_NAMES,
            TITLE_WORDS,
            JOURNALS,
            DETECTORS,
            MEDIA_WORDS,
        ] {
            assert!(!pool.is_empty());
            let set: std::collections::HashSet<&&str> = pool.iter().collect();
            assert_eq!(set.len(), pool.len(), "duplicate entries in pool");
        }
    }

    #[test]
    fn year_like_tokens_do_not_appear_in_pools() {
        // The Fig. 7 query counts on year tokens being unique to <year>
        // elements; no pool word may look like a year.
        for pool in [FIRST_NAMES, LAST_NAMES, TITLE_WORDS, JOURNALS] {
            for w in pool {
                assert!(w.parse::<u32>().is_err(), "{w} parses as a number");
            }
        }
    }
}
