//! # ncq-datagen — deterministic synthetic corpora
//!
//! The paper evaluates on two datasets we cannot redistribute:
//!
//! 1. a ~200 MB XML file of multimedia-item descriptions produced by
//!    feature detectors (Schmidt et al., *Feature Grammars*, 1999), and
//! 2. the DBLP bibliography, snapshot ca. 2000.
//!
//! Per the substitution policy in `DESIGN.md`, this crate generates the
//! closest synthetic equivalents. Both generators are **deterministic**
//! (seeded [`rand::rngs::StdRng`]) so experiments are reproducible, and
//! both expose the structural knobs the paper's figures depend on:
//!
//! * [`multimedia`] — deep feature-description documents with *probe
//!   term pairs planted at exact tree distances* 0..=20 (Figure 6 sweeps
//!   the distance between full-text hits);
//! * [`dblp`] — a DBLP-like bibliography with conference series (ICDE has
//!   **no 1985 edition**, reproducing the flat step in Figure 7), years
//!   1984–1999, and a configurable number of "ICDE in the title"
//!   false-positive records (the case study reports exactly two);
//! * [`figure1`] — the paper's running-example document, verbatim.

pub mod dblp;
pub mod figure1;
pub mod multimedia;
pub mod pools;

pub use dblp::{DblpConfig, DblpCorpus};
pub use figure1::{figure1_document, FIGURE1_XML};
pub use multimedia::{MultimediaConfig, MultimediaCorpus};
