//! The paper's Figure 1 running example, verbatim.

use ncq_xml::{parse, Document};

/// The example bibliography of the paper's Figure 1 as XML text: two
/// articles in one institute's bibliography, with `key` attributes,
/// structured and unstructured author names, titles and years.
pub const FIGURE1_XML: &str = r#"<bibliography>
  <institute>
    <article key="BB99">
      <author><firstname>Ben</firstname><lastname>Bit</lastname></author>
      <title>How to Hack</title>
      <year>1999</year>
    </article>
    <article key="BK99">
      <author>Bob Byte</author>
      <title>Hacking &amp; RSI</title>
      <year>1999</year>
    </article>
  </institute>
</bibliography>"#;

/// Parse [`FIGURE1_XML`] into a document.
pub fn figure1_document() -> Document {
    parse(FIGURE1_XML).expect("the Figure 1 example is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_has_19_objects() {
        // The paper's drawing numbers the nodes o1..o19 (root o1 in the
        // figure; we count the same 19 element+cdata objects).
        assert_eq!(figure1_document().len(), 19);
    }

    #[test]
    fn figure1_contains_the_paper_strings() {
        let doc = figure1_document();
        let all = doc.deep_text(doc.root());
        for s in [
            "Ben",
            "Bit",
            "Bob Byte",
            "How to Hack",
            "Hacking & RSI",
            "1999",
        ] {
            assert!(all.contains(s));
        }
    }
}
