//! Synthetic multimedia feature descriptions (substitute for the paper's
//! 200 MB feature-detector output).
//!
//! Figure 6 measures the *meet* cost as a function of the tree distance
//! between two full-text hits (0–20 edges). The only structural property
//! that matters is therefore that we can plant pairs of unique marker
//! terms at **exact** tree distances — which this generator guarantees —
//! inside a realistically deep, noisy feature-description document.
//!
//! Probe construction for a pair at distance `d` under an anchor element:
//!
//! * `d == 0` — one cdata node contains both markers ("Bob Byte" case);
//! * `d == 1` — marker A in an *attribute* of element `X` (owner = `X`),
//!   marker B in a cdata child of `X`;
//! * `d >= 2` — two element chains of lengths `⌊(d−2)/2⌋` and `⌈(d−2)/2⌉`
//!   hang under the anchor; the cdata leaves at their ends are exactly
//!   `d` edges apart, and their meet is the anchor.

use crate::pools;
use ncq_xml::{Document, NodeId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration for [`MultimediaCorpus::generate`].
#[derive(Debug, Clone)]
pub struct MultimediaConfig {
    /// PRNG seed.
    pub seed: u64,
    /// Probe pairs are planted for every distance `0..=max_distance`.
    pub max_distance: usize,
    /// Probe pairs per distance.
    pub probes_per_distance: usize,
    /// Background media items (noise the full-text search must wade
    /// through, mimicking the paper's 200 MB of detector output).
    pub noise_items: usize,
}

impl Default for MultimediaConfig {
    fn default() -> MultimediaConfig {
        MultimediaConfig {
            seed: 0xFEED,
            max_distance: 20,
            probes_per_distance: 4,
            noise_items: 500,
        }
    }
}

/// A generated multimedia corpus.
#[derive(Debug, Clone)]
pub struct MultimediaCorpus {
    /// The feature-description document.
    pub document: Document,
    /// Config used (probe terms are derived from it).
    pub config: MultimediaConfig,
}

impl MultimediaCorpus {
    /// Generate a corpus.
    pub fn generate(config: &MultimediaConfig) -> MultimediaCorpus {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut doc = Document::new("media");
        let root = doc.root();

        // Interleave noise items and probes deterministically.
        for i in 0..config.noise_items {
            add_noise_item(&mut doc, &mut rng, i);
        }
        for d in 0..=config.max_distance {
            for k in 0..config.probes_per_distance {
                let item = doc.add_element(root, "item");
                doc.set_attribute(item, "id", format!("probe-{d}-{k}"));
                plant_probe(&mut doc, item, d, k);
            }
        }

        MultimediaCorpus {
            document: doc,
            config: config.clone(),
        }
    }

    /// The two marker terms of probe `k` at distance `d`. Searching for
    /// them full-text yields exactly `probes_per_distance`-many hits per
    /// side when `k` is ignored, or one hit each with these exact terms.
    pub fn marker_terms(d: usize, k: usize) -> (String, String) {
        (format!("probeq{d:02}x{k}a"), format!("probeq{d:02}x{k}b"))
    }
}

/// Plant one probe pair at exact distance `d` under `item`.
fn plant_probe(doc: &mut Document, item: NodeId, d: usize, k: usize) {
    let (ma, mb) = MultimediaCorpus::marker_terms(d, k);
    match d {
        0 => {
            let f = doc.add_element(item, "annotation");
            doc.add_text(f, format!("{ma} {mb}"));
        }
        1 => {
            let f = doc.add_element(item, "feature");
            doc.set_attribute(f, "detector", ma);
            doc.add_text(f, mb);
        }
        _ => {
            let anchor = doc.add_element(item, "feature");
            let left_len = (d - 2) / 2;
            let right_len = (d - 2) - left_len;
            let mut left = anchor;
            for i in 0..left_len {
                left = doc.add_element(left, if i % 2 == 0 { "region" } else { "segment" });
            }
            let mut right = anchor;
            for i in 0..right_len {
                right = doc.add_element(right, if i % 2 == 0 { "property" } else { "value" });
            }
            doc.add_text(left, ma);
            if left == right {
                // d == 2: both markers are cdata children of the anchor.
                // Separate them with an empty element so the two text
                // nodes stay distinct through serialize → re-parse
                // (adjacent text nodes would merge); the marker distance
                // through the anchor is unchanged.
                doc.add_element(right, "sep");
            }
            doc.add_text(right, mb);
        }
    }
}

/// One background media item: nested detector output with random words.
fn add_noise_item(doc: &mut Document, rng: &mut StdRng, idx: usize) {
    let root = doc.root();
    let item = doc.add_element(root, "item");
    doc.set_attribute(item, "id", format!("media-{idx}"));
    let img = doc.add_element(item, "image");
    let src = doc.add_element(img, "source");
    doc.add_text(src, format!("http://example.org/m/{idx}.jpg"));
    let n_regions = 1 + rng.random_range(0..3);
    for _ in 0..n_regions {
        let region = doc.add_element(img, "region");
        let n_features = 1 + rng.random_range(0..4);
        for _ in 0..n_features {
            let det = pools::DETECTORS[rng.random_range(0..pools::DETECTORS.len())];
            let f = doc.add_element(region, det);
            let n_vals = 1 + rng.random_range(0..3);
            for _ in 0..n_vals {
                let v = doc.add_element(f, "value");
                doc.add_text(
                    v,
                    format!("{:.4}", rng.random_range(0..10_000) as f64 / 10_000.0),
                );
            }
        }
        let kw = doc.add_element(region, "keywords");
        let n_words = 1 + rng.random_range(0..4);
        let words: Vec<&str> = (0..n_words)
            .map(|_| pools::MEDIA_WORDS[rng.random_range(0..pools::MEDIA_WORDS.len())])
            .collect();
        doc.add_text(kw, words.join(" "));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> MultimediaCorpus {
        MultimediaCorpus::generate(&MultimediaConfig {
            noise_items: 50,
            probes_per_distance: 2,
            max_distance: 12,
            ..MultimediaConfig::default()
        })
    }

    /// Find the node owning marker `m` (the cdata node, or the element for
    /// attribute markers) and return it.
    fn marker_owner(doc: &Document, m: &str) -> NodeId {
        for n in doc.iter_depth_first() {
            if doc.text(n).is_some_and(|t| t.contains(m)) {
                return n;
            }
            if doc.attributes(n).iter().any(|a| a.value.contains(m)) {
                return n;
            }
        }
        panic!("marker {m} not found");
    }

    fn tree_distance(doc: &Document, a: NodeId, b: NodeId) -> usize {
        let anc_a: Vec<NodeId> = doc.ancestors(a).collect();
        for (climb_b, anc) in doc.ancestors(b).enumerate() {
            if let Some(pos) = anc_a.iter().position(|&x| x == anc) {
                return pos + climb_b;
            }
        }
        unreachable!()
    }

    #[test]
    fn generation_is_deterministic() {
        let a = corpus();
        let b = corpus();
        assert!(a.document.structural_eq(&b.document));
    }

    #[test]
    fn probe_markers_sit_at_exact_distances() {
        let c = corpus();
        let doc = &c.document;
        for d in 0..=c.config.max_distance {
            for k in 0..c.config.probes_per_distance {
                let (ma, mb) = MultimediaCorpus::marker_terms(d, k);
                let na = marker_owner(doc, &ma);
                let nb = marker_owner(doc, &mb);
                assert_eq!(
                    tree_distance(doc, na, nb),
                    d,
                    "probe d={d} k={k} has wrong distance"
                );
            }
        }
    }

    #[test]
    fn markers_are_unique() {
        let c = corpus();
        let doc = &c.document;
        let (ma, _) = MultimediaCorpus::marker_terms(3, 0);
        let count = doc
            .iter_depth_first()
            .filter(|&n| doc.text(n).is_some_and(|t| t.contains(&ma)))
            .count();
        assert_eq!(count, 1);
    }

    #[test]
    fn noise_items_have_feature_structure() {
        let c = corpus();
        let doc = &c.document;
        let some_region = doc.find_element(doc.root(), "region").unwrap();
        assert!(!doc.children(some_region).is_empty());
        // Noise must contain at least one known detector element.
        assert!(pools::DETECTORS
            .iter()
            .any(|d| doc.find_element(doc.root(), d).is_some()));
    }

    #[test]
    fn document_grows_with_noise() {
        let small = MultimediaCorpus::generate(&MultimediaConfig {
            noise_items: 10,
            ..MultimediaConfig::default()
        });
        let big = MultimediaCorpus::generate(&MultimediaConfig {
            noise_items: 200,
            ..MultimediaConfig::default()
        });
        assert!(big.document.len() > small.document.len() * 4);
    }
}
