//! Synthetic DBLP-like bibliography (substitute for the real DBLP).
//!
//! Shape mirrors the DBLP XML of ca. 2000: a flat `<dblp>` root with
//! `<inproceedings>` and `<article>` records carrying `author`, `title`,
//! `pages`, `year`, and `booktitle`/`journal` children plus a `key`
//! attribute; one `<proceedings>` record per conference edition.
//!
//! Everything Figure 7 depends on is a config knob:
//!
//! * conference series with editions per year — **ICDE skips 1985**
//!   (the paper: "note that there was no ICDE in 1985, hence the small
//!   step at about 1100 on the x-axis");
//! * publications per edition (controls hit-set and output cardinality);
//! * the number of records whose *title* mentions a conference name —
//!   those become the case study's false positives (the paper saw two).

use crate::pools;
use ncq_xml::Document;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration for [`DblpCorpus::generate`].
#[derive(Debug, Clone)]
pub struct DblpConfig {
    /// PRNG seed; equal seeds give byte-identical corpora.
    pub seed: u64,
    /// First conference year (inclusive).
    pub start_year: u16,
    /// Last conference year (inclusive).
    pub end_year: u16,
    /// Conference series, e.g. `["ICDE", "VLDB", "SIGMOD"]`.
    pub conferences: Vec<String>,
    /// `(series, year)` editions that did not take place.
    pub skipped_editions: Vec<(String, u16)>,
    /// Papers per conference edition.
    pub papers_per_edition: usize,
    /// Journal articles per year (spread over [`pools::JOURNALS`]).
    pub journal_articles_per_year: usize,
    /// Records whose title contains a conference name (false positives
    /// for the case-study query; the paper observed two).
    pub title_mentions: usize,
}

impl Default for DblpConfig {
    fn default() -> DblpConfig {
        DblpConfig {
            seed: 0x1CDE,
            start_year: 1984,
            end_year: 1999,
            conferences: vec!["ICDE".into(), "VLDB".into(), "SIGMOD".into(), "EDBT".into()],
            skipped_editions: vec![("ICDE".into(), 1985)],
            papers_per_edition: 20,
            journal_articles_per_year: 10,
            title_mentions: 2,
        }
    }
}

impl DblpConfig {
    /// Scale the default configuration to roughly `records` publication
    /// records (inproceedings + articles), keeping proportions.
    pub fn scaled(records: usize) -> DblpConfig {
        let mut cfg = DblpConfig::default();
        let years = (cfg.end_year - cfg.start_year + 1) as usize;
        let editions = cfg.conferences.len() * years - cfg.skipped_editions.len();
        // Keep the 8:1 inproceedings:articles ratio of the default.
        let per_edition = (records * 8 / 9).div_ceil(editions).max(1);
        cfg.papers_per_edition = per_edition;
        cfg.journal_articles_per_year = (records / 9 / years).max(1);
        cfg
    }

    fn has_edition(&self, conf: &str, year: u16) -> bool {
        !self
            .skipped_editions
            .iter()
            .any(|(c, y)| c == conf && *y == year)
    }
}

/// A generated corpus: the document plus bookkeeping the experiments use.
#[derive(Debug, Clone)]
pub struct DblpCorpus {
    /// The bibliography document.
    pub document: Document,
    /// Publications (inproceedings) per `(conference, year)` edition.
    pub editions: Vec<(String, u16, usize)>,
    /// Total inproceedings records.
    pub inproceedings: usize,
    /// Total journal article records.
    pub articles: usize,
}

impl DblpCorpus {
    /// Generate the corpus for `config`.
    pub fn generate(config: &DblpConfig) -> DblpCorpus {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut doc = Document::new("dblp");
        let root = doc.root();
        let mut editions = Vec::new();
        let mut inproceedings = 0usize;
        let mut articles = 0usize;
        // Plant title mentions in journal articles of mid-range years:
        // genuine false positives for "conference AND year" queries, and
        // far from the 1985 step so Fig. 7's flat segment stays clean.
        let span = (config.end_year - config.start_year) as usize + 1;
        let mention_years: Vec<u16> = (0..config.title_mentions)
            .map(|i| config.start_year + ((i + 1) * span / (config.title_mentions + 1)) as u16)
            .collect();

        for year in config.start_year..=config.end_year {
            for conf in &config.conferences {
                if !config.has_edition(conf, year) {
                    continue;
                }
                // One proceedings record per edition. Like real DBLP keys
                // ("conf/icde/ICDE99"), the year is fused into one token so
                // that word searches for "1999" or "ICDE" do not hit keys.
                let proc_node = doc.add_element(root, "proceedings");
                let key = format!("conf/{}{}", conf.to_lowercase(), year % 100);
                doc.set_attribute(proc_node, "key", key);
                // The year is deliberately *not* part of the title text:
                // the proceedings' year lives in its <year> element, so a
                // "conference AND year" meet lands on the proceedings
                // element (a legitimate answer), not on the title cdata.
                let t = doc.add_element(proc_node, "title");
                doc.add_text(t, format!("Proceedings of the {conf} Conference"));
                let y = doc.add_element(proc_node, "year");
                doc.add_text(y, year.to_string());
                let pub_node = doc.add_element(proc_node, "publisher");
                doc.add_text(pub_node, "IEEE Computer Society");

                for i in 0..config.papers_per_edition {
                    add_inproceedings(&mut doc, &mut rng, conf, year, i);
                    inproceedings += 1;
                }
                editions.push((conf.clone(), year, config.papers_per_edition));
            }
            let mentions_this_year = mention_years.iter().filter(|&&y| y == year).count();
            for j in 0..config.journal_articles_per_year {
                let mention = if j < mentions_this_year {
                    // Mention a conference by name inside the title.
                    Some(config.conferences[0].as_str())
                } else {
                    None
                };
                add_article(&mut doc, &mut rng, year, j, mention);
                articles += 1;
            }
        }

        DblpCorpus {
            document: doc,
            editions,
            inproceedings,
            articles,
        }
    }

    /// Total publication records (inproceedings + articles).
    pub fn records(&self) -> usize {
        self.inproceedings + self.articles
    }
}

fn random_author(rng: &mut StdRng) -> String {
    let first = pools::FIRST_NAMES[rng.random_range(0..pools::FIRST_NAMES.len())];
    let last = pools::LAST_NAMES[rng.random_range(0..pools::LAST_NAMES.len())];
    format!("{first} {last}")
}

fn random_title(rng: &mut StdRng, mention: Option<&str>) -> String {
    let words = 4 + rng.random_range(0..5);
    let mut title = String::new();
    for i in 0..words {
        let w = pools::TITLE_WORDS[rng.random_range(0..pools::TITLE_WORDS.len())];
        if i == 0 {
            // Capitalize the first word.
            let mut cs = w.chars();
            if let Some(c) = cs.next() {
                title.extend(c.to_uppercase());
                title.push_str(cs.as_str());
            }
        } else {
            title.push(' ');
            title.push_str(w);
        }
    }
    if let Some(conf) = mention {
        title.push_str(&format!(" for {conf} workloads"));
    }
    title
}

fn add_record_body(
    doc: &mut Document,
    rng: &mut StdRng,
    node: ncq_xml::NodeId,
    year: u16,
    mention: Option<&str>,
) {
    let n_authors = 1 + rng.random_range(0..3);
    for _ in 0..n_authors {
        let a = doc.add_element(node, "author");
        let name = random_author(rng);
        doc.add_text(a, name);
    }
    let t = doc.add_element(node, "title");
    let title = random_title(rng, mention);
    doc.add_text(t, title);
    let start = rng.random_range(1..800);
    let p = doc.add_element(node, "pages");
    doc.add_text(p, format!("{start}-{}", start + rng.random_range(5..25)));
    let y = doc.add_element(node, "year");
    doc.add_text(y, year.to_string());
}

fn add_inproceedings(doc: &mut Document, rng: &mut StdRng, conf: &str, year: u16, idx: usize) {
    let root = doc.root();
    let node = doc.add_element(root, "inproceedings");
    let key = format!("conf/{}{}/p{}", conf.to_lowercase(), year % 100, idx);
    doc.set_attribute(node, "key", key);
    add_record_body(doc, rng, node, year, None);
    let bt = doc.add_element(node, "booktitle");
    doc.add_text(bt, conf);
    // DBLP-style crossref to the edition's proceedings record; consumed
    // by ncq-core's RefGraph (the paper's IDREF future work).
    let cr = doc.add_element(node, "crossref");
    doc.add_text(cr, format!("conf/{}{}", conf.to_lowercase(), year % 100));
}

fn add_article(doc: &mut Document, rng: &mut StdRng, year: u16, idx: usize, mention: Option<&str>) {
    let root = doc.root();
    let node = doc.add_element(root, "article");
    let journal = pools::JOURNALS[rng.random_range(0..pools::JOURNALS.len())];
    let key = format!(
        "journals/{}{}/a{}",
        journal.split_whitespace().next().unwrap().to_lowercase(),
        year % 100,
        idx
    );
    doc.set_attribute(node, "key", key);
    add_record_body(doc, rng, node, year, mention);
    let j = doc.add_element(node, "journal");
    doc.add_text(j, journal);
    let v = doc.add_element(node, "volume");
    doc.add_text(v, (1 + (year - 1980)).to_string());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = DblpConfig::default();
        let a = DblpCorpus::generate(&cfg);
        let b = DblpCorpus::generate(&cfg);
        assert!(a.document.structural_eq(&b.document));
        assert_eq!(a.records(), b.records());
    }

    #[test]
    fn different_seeds_differ() {
        let a = DblpCorpus::generate(&DblpConfig::default());
        let b = DblpCorpus::generate(&DblpConfig {
            seed: 99,
            ..DblpConfig::default()
        });
        assert!(!a.document.structural_eq(&b.document));
    }

    #[test]
    fn icde_1985_is_skipped() {
        let corpus = DblpCorpus::generate(&DblpConfig::default());
        assert!(!corpus
            .editions
            .iter()
            .any(|(c, y, _)| c == "ICDE" && *y == 1985));
        // But 1984 and 1986 exist.
        for y in [1984u16, 1986] {
            assert!(corpus
                .editions
                .iter()
                .any(|(c, yy, _)| c == "ICDE" && *yy == y));
        }
    }

    #[test]
    fn record_counts_match_config() {
        let cfg = DblpConfig::default();
        let corpus = DblpCorpus::generate(&cfg);
        let years = (cfg.end_year - cfg.start_year + 1) as usize;
        let editions = cfg.conferences.len() * years - 1; // ICDE'85 skipped
        assert_eq!(corpus.inproceedings, editions * cfg.papers_per_edition);
        assert_eq!(corpus.articles, years * cfg.journal_articles_per_year);
        assert_eq!(corpus.editions.len(), editions);
    }

    #[test]
    fn records_have_the_dblp_shape() {
        let corpus = DblpCorpus::generate(&DblpConfig {
            papers_per_edition: 2,
            journal_articles_per_year: 1,
            ..DblpConfig::default()
        });
        let doc = &corpus.document;
        let root = doc.root();
        let mut seen_inproc = false;
        let mut seen_article = false;
        for &rec in doc.children(root) {
            match doc.tag_name(rec).unwrap() {
                "inproceedings" => {
                    seen_inproc = true;
                    assert!(doc.attribute(rec, "key").is_some());
                    let tags: Vec<&str> = doc
                        .children(rec)
                        .iter()
                        .filter_map(|&c| doc.tag_name(c))
                        .collect();
                    for required in ["author", "title", "pages", "year", "booktitle"] {
                        assert!(tags.contains(&required), "missing {required}");
                    }
                }
                "article" => {
                    seen_article = true;
                    let tags: Vec<&str> = doc
                        .children(rec)
                        .iter()
                        .filter_map(|&c| doc.tag_name(c))
                        .collect();
                    for required in ["author", "title", "year", "journal", "volume"] {
                        assert!(tags.contains(&required), "missing {required}");
                    }
                }
                "proceedings" => {}
                other => panic!("unexpected record type {other}"),
            }
        }
        assert!(seen_inproc && seen_article);
    }

    #[test]
    fn title_mentions_are_planted() {
        let corpus = DblpCorpus::generate(&DblpConfig::default());
        let doc = &corpus.document;
        let mut mentions = 0;
        for &rec in doc.children(doc.root()) {
            if doc.tag_name(rec) == Some("article") {
                for &c in doc.children(rec) {
                    if doc.tag_name(c) == Some("title") && doc.deep_text(c).contains("ICDE") {
                        mentions += 1;
                    }
                }
            }
        }
        assert_eq!(mentions, 2);
    }

    #[test]
    fn scaled_hits_requested_magnitude() {
        for target in [100usize, 1000, 5000] {
            let cfg = DblpConfig::scaled(target);
            let corpus = DblpCorpus::generate(&cfg);
            let n = corpus.records();
            assert!(
                n >= target / 2 && n <= target * 2,
                "target {target}, got {n}"
            );
        }
    }

    #[test]
    fn years_cover_the_configured_range() {
        let corpus = DblpCorpus::generate(&DblpConfig::default());
        let doc = &corpus.document;
        let text = doc.deep_text(doc.root());
        for y in 1984..=1999 {
            assert!(text.contains(&y.to_string()), "missing year {y}");
        }
    }
}
