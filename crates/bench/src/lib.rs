//! # ncq-bench — experiment harness
//!
//! Regenerates every result of the paper's evaluation:
//!
//! | Experiment | Paper artifact | Module |
//! |---|---|---|
//! | Listing-1 / Listing-2 | the two `<answer>` listings | [`experiments::listings`] |
//! | §3.1 worked examples  | meet examples on Figure 1 | [`experiments::listings`] |
//! | Figure 6 | meet vs. full-text across hit distance | [`experiments::fig6`] |
//! | Figure 7 | DBLP case study: meet time vs. output cardinality | [`experiments::fig7`] |
//! | Ablations | σ-steering, set scaling, §4 restrictions | [`experiments::ablations`] |
//!
//! The `repro` binary drives all of them and writes text tables plus JSON
//! series; the Criterion benches under `benches/` measure the same code
//! paths with statistical rigor.

pub mod experiments;
pub mod json;
pub mod measure;

pub use experiments::{ablations, fig6, fig7, listings, pr1, pr2};
