//! Tiny wall-clock measurement helpers (medians over repeated runs).
//!
//! The Criterion benches are the statistically careful measurements; these
//! helpers exist so the `repro` binary can print paper-style tables in
//! seconds instead of minutes.

use std::time::{Duration, Instant};

/// Run `f` once and return its result with the elapsed time.
pub fn time_once<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed())
}

/// Run `f` `runs` times; return the last result and the median duration.
pub fn time_median<R>(runs: usize, mut f: impl FnMut() -> R) -> (R, Duration) {
    assert!(runs > 0);
    let mut durations = Vec::with_capacity(runs);
    let mut result = None;
    for _ in 0..runs {
        let (r, d) = time_once(&mut f);
        durations.push(d);
        result = Some(r);
    }
    durations.sort_unstable();
    (result.expect("runs > 0"), durations[durations.len() / 2])
}

/// Microseconds as f64, for table printing.
pub fn micros(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

/// Milliseconds as f64, for table printing.
pub fn millis(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_once_measures_something() {
        let (value, d) = time_once(|| (0..10_000).sum::<u64>());
        assert_eq!(value, 49_995_000);
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn time_median_returns_a_result_and_positive_time() {
        let (v, d) = time_median(5, || 42);
        assert_eq!(v, 42);
        assert!(d.as_nanos() < Duration::from_secs(1).as_nanos());
    }

    #[test]
    fn unit_conversions() {
        let d = Duration::from_millis(1500);
        assert!((millis(d) - 1500.0).abs() < 1e-9);
        assert!((micros(d) - 1_500_000.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic]
    fn zero_runs_panics() {
        let _ = time_median(0, || ());
    }
}
