//! PR 1 perf snapshot: the structural meet index against the paper's
//! walk/lift evaluation strategies.
//!
//! Three comparisons, emitted as `BENCH_pr1.json` by
//! `repro --exp pr1` to seed the perf trajectory:
//!
//! * **meet2** — naive two-ancestor-list LCA vs σ-steered walk vs
//!   Euler-tour index, on deep two-chain documents where the probe pair
//!   is `2·depth + 2` edges apart (the steered walk pays the full
//!   distance; the index answers in O(1));
//! * **meet_sets** — Fig. 4 frontier lifting vs the document-order plane
//!   sweep on the DBLP case-study hit sets;
//! * **meet_multi** — Fig. 5 token roll-up vs the indexed plane sweep on
//!   the same workload.
//!
//! Every row records an `agree` flag asserting the compared
//! implementations returned identical answers on that workload.

use crate::experiments::corpora;
use ncq_core::{
    meet2, meet2_indexed, meet2_naive, meet_multi, meet_multi_indexed, meet_sets, meet_sets_sweep,
    Database, MeetOptions,
};
use ncq_fulltext::HitSet;
use ncq_store::Oid;
use ncq_xml::Document;
use std::time::Instant;

/// Median µs per call over `runs` samples of `iters` batched calls.
fn median_us<R>(runs: usize, iters: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut samples = Vec::with_capacity(runs);
    for _ in 0..runs {
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        samples.push(start.elapsed().as_secs_f64() * 1e6 / iters as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

/// One probe pair of [`deep_pair_corpus`]: leaves `2·depth + 2` edges
/// apart with the meet at the root. Unlike the steering ablation's
/// bottom fork (constant distance 4), this shape scales the *distance*
/// with the depth, which is what separates O(distance) walks from the
/// O(1) index.
pub fn deep_pair_db(depth: usize) -> (Database, Oid, Oid) {
    let (db, pairs) = deep_pair_corpus(depth);
    let &(a, b) = pairs.first().expect("corpus plants at least one pair");
    (db, a, b)
}

/// A ~4M-node corpus of "comb" chains: every chain node carries ~64 leaf
/// children before the next chain step, so consecutive ancestors are far
/// apart in OID space and every parent hop is a fresh cache line —
/// DFS-contiguous bare chains would let the prefetcher hide the walk,
/// which no production document does. The node count is chosen to push
/// the store's per-oid arrays well past L2, as a production corpus
/// would. Returns probe pairs spanning distinct combs (distance
/// `2·depth + 2`, meet at the root); cycling through them keeps
/// measurements out of the walk's own cache shadow.
pub fn deep_pair_corpus(depth: usize) -> (Database, Vec<(Oid, Oid)>) {
    const PAD: usize = 64;
    let chains = (4_194_304 / ((depth + 1) * (PAD + 1))).max(2);
    let mut doc = Document::new("root");
    let mut leaves = Vec::with_capacity(chains);
    for c in 0..chains {
        let mut cur = doc.root();
        for i in 0..depth {
            cur = doc.add_element(cur, "e");
            // Irregular padding: a constant stride between consecutive
            // ancestors would let the hardware prefetcher stream the
            // parent walk, which real document shapes do not allow.
            let pad = PAD / 2 + (c.wrapping_mul(31) + i.wrapping_mul(17)) % PAD;
            for _ in 0..pad {
                doc.add_element(cur, "pad");
            }
        }
        leaves.push(doc.add_text(cur, format!("probe-{c}")));
    }
    let db = Database::from_document(&doc);
    let half = chains / 2;
    let pairs = (0..half)
        .map(|i| {
            (
                db.store().oid_of(leaves[i]),
                db.store().oid_of(leaves[i + half]),
            )
        })
        .collect();
    (db, pairs)
}

/// `pairs` records, each forking *at the top* into two `depth`-long
/// chains ending in `<a>s</a>` / `<b>t</b>`: two large homogeneous hit
/// sets whose minimal meets (the record heads) are `2·depth + 2` edges
/// from their witnesses. Frontier lifting pays `O(hits log hits)` per
/// level for `depth` levels before any meet surfaces; the plane sweep
/// pays one sorted pass with O(1) LCA probes.
pub(crate) fn deep_sets_db(depth: usize, pairs: usize) -> (Database, Vec<Oid>, Vec<Oid>) {
    let mut doc = Document::new("root");
    for _ in 0..pairs {
        let head = doc.add_element(doc.root(), "h");
        let mut cur = head;
        for _ in 0..depth {
            cur = doc.add_element(cur, "x");
        }
        let a = doc.add_element(cur, "a");
        doc.add_text(a, "s");
        let mut cur = head;
        for _ in 0..depth {
            cur = doc.add_element(cur, "y");
        }
        let b = doc.add_element(cur, "b");
        doc.add_text(b, "t");
    }
    let db = Database::from_document(&doc);
    let s = largest_group(&db.search_word("s"));
    let t = largest_group(&db.search_word("t"));
    (db, s, t)
}

/// One pairwise-meet row.
#[derive(Debug, Clone)]
pub struct Pr1MeetRow {
    /// Chain depth (probe distance = `2·depth + 2`).
    pub depth: usize,
    /// Distance between the probes.
    pub distance: usize,
    /// Naive two-ancestor-list LCA, µs.
    pub naive_us: f64,
    /// σ-steered walk (Fig. 3), µs.
    pub steered_us: f64,
    /// Euler-tour index, µs.
    pub indexed_us: f64,
    /// `steered_us / indexed_us`.
    pub indexed_speedup_vs_steered: f64,
    /// All three implementations returned the same meet and distance.
    pub agree: bool,
}

/// One set-meet row (Fig. 4 lift vs plane sweep).
#[derive(Debug, Clone)]
pub struct Pr1SetsRow {
    /// Workload label.
    pub workload: String,
    /// Total input OIDs.
    pub input_hits: usize,
    /// Minimal meets found.
    pub meets: usize,
    /// Frontier lifting, µs.
    pub lift_us: f64,
    /// Document-order plane sweep, µs.
    pub sweep_us: f64,
    /// `lift_us / sweep_us`.
    pub sweep_speedup: f64,
    /// Both evaluations returned the same (meet, round) multiset.
    pub agree: bool,
}

/// One generalized-meet row (Fig. 5 roll-up vs indexed sweep).
#[derive(Debug, Clone)]
pub struct Pr1MultiRow {
    /// Workload label.
    pub workload: String,
    /// Total input hits.
    pub input_hits: usize,
    /// Meets found.
    pub meets: usize,
    /// Token roll-up, µs.
    pub rollup_us: f64,
    /// Indexed plane sweep, µs.
    pub indexed_us: f64,
    /// `rollup_us / indexed_us`.
    pub indexed_speedup: f64,
    /// Both evaluations returned identical meets.
    pub agree: bool,
}

/// The full PR 1 snapshot.
#[derive(Debug, Clone)]
pub struct Pr1Result {
    /// Pairwise meet comparison across depths.
    pub meet2: Vec<Pr1MeetRow>,
    /// Set meet comparison.
    pub meet_sets: Vec<Pr1SetsRow>,
    /// Generalized meet comparison.
    pub meet_multi: Vec<Pr1MultiRow>,
}

crate::impl_to_json_struct!(Pr1MeetRow {
    depth,
    distance,
    naive_us,
    steered_us,
    indexed_us,
    indexed_speedup_vs_steered,
    agree,
});
crate::impl_to_json_struct!(Pr1SetsRow {
    workload,
    input_hits,
    meets,
    lift_us,
    sweep_us,
    sweep_speedup,
    agree,
});
crate::impl_to_json_struct!(Pr1MultiRow {
    workload,
    input_hits,
    meets,
    rollup_us,
    indexed_us,
    indexed_speedup,
    agree,
});
crate::impl_to_json_struct!(Pr1Result {
    meet2,
    meet_sets,
    meet_multi,
});

/// The largest homogeneous group of a hit set (one relation's OIDs).
fn largest_group(hits: &HitSet) -> Vec<Oid> {
    hits.groups()
        .iter()
        .max_by_key(|(_, v)| v.len())
        .map(|(_, v)| v.clone())
        .unwrap_or_default()
}

fn meet2_rows(depths: &[usize], runs: usize, iters: usize) -> Vec<Pr1MeetRow> {
    depths
        .iter()
        .map(|&depth| {
            let (db, pairs) = deep_pair_corpus(depth);
            let store = db.store();
            store.meet_index(); // build outside the timed region
            let agree = pairs.iter().all(|&(a, b)| {
                let n = meet2_naive(store, a, b);
                let s = meet2(store, a, b);
                let i = meet2_indexed(store, a, b);
                n.meet == s.meet
                    && s.meet == i.meet
                    && n.distance == s.distance
                    && s.distance == i.distance
            });
            let distance = meet2(store, pairs[0].0, pairs[0].1).distance;
            // Cycle through distinct probe pairs so repeated iterations
            // do not replay one cache-resident ancestor chain.
            let mut cycle = {
                let mut k = 0usize;
                move || {
                    let p = pairs[k % pairs.len()];
                    k += 1;
                    p
                }
            };
            let naive_us = median_us(runs, iters, || {
                let (a, b) = cycle();
                meet2_naive(store, a, b)
            });
            let steered_us = median_us(runs, iters, || {
                let (a, b) = cycle();
                meet2(store, a, b)
            });
            let indexed_us = median_us(runs, iters, || {
                let (a, b) = cycle();
                meet2_indexed(store, a, b)
            });
            Pr1MeetRow {
                depth,
                distance,
                naive_us,
                steered_us,
                indexed_us,
                indexed_speedup_vs_steered: steered_us / indexed_us,
                agree,
            }
        })
        .collect()
}

fn sets_row(name: &str, db: &Database, s1: &[Oid], s2: &[Oid], runs: usize) -> Pr1SetsRow {
    let store = db.store();
    store.meet_index();
    let lift = meet_sets(store, s1, s2).expect("homogeneous");
    let sweep = meet_sets_sweep(store, s1, s2).expect("homogeneous");
    let sorted = |r: &ncq_core::SetMeets| {
        let mut m = r.meets.clone();
        m.sort_unstable();
        m
    };
    let agree = sorted(&lift) == sorted(&sweep);
    let lift_us = median_us(runs, 1, || meet_sets(store, s1, s2));
    let sweep_us = median_us(runs, 1, || meet_sets_sweep(store, s1, s2));
    Pr1SetsRow {
        workload: name.to_string(),
        input_hits: s1.len() + s2.len(),
        meets: lift.meets.len(),
        lift_us,
        sweep_us,
        sweep_speedup: lift_us / sweep_us,
        agree,
    }
}

fn multi_row(name: &str, db: &Database, inputs: &[HitSet], runs: usize) -> Pr1MultiRow {
    let store = db.store();
    store.meet_index();
    let options = MeetOptions::default();
    let rollup = meet_multi(store, inputs, &options);
    let indexed = meet_multi_indexed(store, inputs, &options);
    let key = |ms: &[ncq_core::Meet]| {
        ms.iter()
            .map(|m| (m.node, m.distance, m.witness_count))
            .collect::<Vec<_>>()
    };
    let agree = key(&rollup) == key(&indexed);
    let rollup_us = median_us(runs, 1, || meet_multi(store, inputs, &options));
    let indexed_us = median_us(runs, 1, || meet_multi_indexed(store, inputs, &options));
    Pr1MultiRow {
        workload: name.to_string(),
        input_hits: inputs.iter().map(HitSet::len).sum(),
        meets: rollup.len(),
        rollup_us,
        indexed_us,
        indexed_speedup: rollup_us / indexed_us,
        agree,
    }
}

/// Run the snapshot. `quick` shrinks depths and repetitions for tests.
pub fn run(quick: bool) -> Pr1Result {
    let (depths, runs, iters): (&[usize], usize, usize) = if quick {
        (&[16, 64], 3, 200)
    } else {
        (&[16, 64, 256, 1024], 9, 2000)
    };
    let meet2 = meet2_rows(depths, runs, iters);

    let (db, _) = if quick {
        corpora::dblp_small()
    } else {
        corpora::dblp_case_study()
    };
    let icde = db.search_word("ICDE");
    let mut years = HitSet::new();
    for y in 1984u16..=1999 {
        years.union(&db.search_word(&y.to_string()));
    }
    let set_runs = if quick { 3 } else { 9 };
    let booktitles = largest_group(&icde);
    let year_cdatas = largest_group(&years);
    let (sets_depth, sets_pairs) = if quick { (8, 50) } else { (32, 2000) };
    let (deep_db, deep_s, deep_t) = deep_sets_db(sets_depth, sets_pairs);
    let mut meet_sets = vec![
        sets_row(
            "dblp icde-booktitles × year-cdatas (flat)",
            &db,
            &booktitles,
            &year_cdatas,
            set_runs,
        ),
        sets_row(
            &format!("deep forks (depth {sets_depth}, {sets_pairs} pairs)"),
            &deep_db,
            &deep_s,
            &deep_t,
            set_runs,
        ),
    ];
    if !quick {
        let (deeper_db, deeper_s, deeper_t) = deep_sets_db(96, 2000);
        meet_sets.push(sets_row(
            "deep forks (depth 96, 2000 pairs)",
            &deeper_db,
            &deeper_s,
            &deeper_t,
            set_runs,
        ));
    }

    let inputs = [icde.clone(), years.clone()];
    let deep_inputs = [deep_db.search_word("s"), deep_db.search_word("t")];
    let meet_multi = vec![
        multi_row(
            "dblp icde × years[1984..=1999] (flat)",
            &db,
            &inputs,
            set_runs,
        ),
        multi_row(
            &format!("deep forks (depth {sets_depth}, {sets_pairs} pairs)"),
            &deep_db,
            &deep_inputs,
            set_runs,
        ),
    ];

    Pr1Result {
        meet2,
        meet_sets,
        meet_multi,
    }
}

/// Text table for stdout.
pub fn table(r: &Pr1Result) -> String {
    let mut out = String::from(
        "# PR 1 — O(1) structural meet index vs walk/lift baselines\n\
         ## meet2 (distance = 2*depth + 2)\n\
         # depth  distance  naive_us  steered_us  indexed_us  speedup  agree\n",
    );
    for r in &r.meet2 {
        out.push_str(&format!(
            "{:>7}  {:>8}  {:>8.3}  {:>10.3}  {:>10.3}  {:>6.1}x  {}\n",
            r.depth,
            r.distance,
            r.naive_us,
            r.steered_us,
            r.indexed_us,
            r.indexed_speedup_vs_steered,
            r.agree
        ));
    }
    out.push_str("## meet_sets (Fig. 4 lift vs plane sweep)\n");
    for r in &r.meet_sets {
        out.push_str(&format!(
            "{}: hits={} meets={} lift={:.1}us sweep={:.1}us ({:.1}x) agree={}\n",
            r.workload, r.input_hits, r.meets, r.lift_us, r.sweep_us, r.sweep_speedup, r.agree
        ));
    }
    out.push_str("## meet_multi (Fig. 5 roll-up vs indexed sweep)\n");
    for r in &r.meet_multi {
        out.push_str(&format!(
            "{}: hits={} meets={} rollup={:.1}us indexed={:.1}us ({:.1}x) agree={}\n",
            r.workload,
            r.input_hits,
            r.meets,
            r.rollup_us,
            r.indexed_us,
            r.indexed_speedup,
            r.agree
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_snapshot_agrees_everywhere() {
        let r = run(true);
        assert_eq!(r.meet2.len(), 2);
        for row in &r.meet2 {
            assert!(row.agree, "meet2 implementations disagree at {}", row.depth);
            assert_eq!(row.distance, 2 * row.depth + 2);
        }
        for row in &r.meet_sets {
            assert!(row.agree, "meet_sets lift vs sweep disagree");
            assert!(row.meets > 0);
        }
        for row in &r.meet_multi {
            assert!(row.agree, "meet_multi roll-up vs sweep disagree");
            assert!(row.meets > 0);
        }
        assert!(table(&r).contains("PR 1"));
    }
}
