//! The experiment implementations, one module per paper artifact.

pub mod ablations;
pub mod extensions;
pub mod fig6;
pub mod fig7;
pub mod listings;
pub mod pr1;
pub mod pr10;
pub mod pr2;
pub mod pr3;
pub mod pr4;
pub mod pr5;
pub mod pr6;
pub mod pr7;
pub mod pr8;
pub mod pr9;

/// Shared corpus builders at the scales used by `repro` and the benches.
pub mod corpora {
    use ncq_core::Database;
    use ncq_datagen::{DblpConfig, DblpCorpus, MultimediaConfig, MultimediaCorpus};

    /// The Figure 1 example database.
    pub fn figure1() -> Database {
        Database::from_xml_str(ncq_datagen::FIGURE1_XML).expect("figure 1 parses")
    }

    /// The DBLP substitute at the paper's case-study scale (~1200 ICDE
    /// papers over 1984–1999).
    pub fn dblp_case_study() -> (Database, DblpCorpus) {
        let corpus = DblpCorpus::generate(&DblpConfig {
            papers_per_edition: 75,
            journal_articles_per_year: 12,
            ..DblpConfig::default()
        });
        (Database::from_document(&corpus.document), corpus)
    }

    /// A smaller DBLP for quick runs and tests.
    pub fn dblp_small() -> (Database, DblpCorpus) {
        let corpus = DblpCorpus::generate(&DblpConfig {
            papers_per_edition: 8,
            journal_articles_per_year: 3,
            ..DblpConfig::default()
        });
        (Database::from_document(&corpus.document), corpus)
    }

    /// The multimedia substitute used by Figure 6.
    pub fn multimedia(noise_items: usize) -> (Database, MultimediaCorpus) {
        let corpus = MultimediaCorpus::generate(&MultimediaConfig {
            noise_items,
            ..MultimediaConfig::default()
        });
        (Database::from_document(&corpus.document), corpus)
    }
}
