//! Extension experiments: the paper's future-work features, measured.
//!
//! * **IDREF graph meets** (§3.2 / conclusion): crossref edges on the
//!   DBLP substitute shorten record↔proceedings routes; we quantify the
//!   shortcut rate and the BFS cost.
//! * **Thesaurus broadening** (§4): synonym expansion grows hit sets and
//!   thereby answers.

use crate::measure::{micros, time_median};
use ncq_core::{distance, graph_distance, Database, MeetOptions, RefGraph};
use ncq_fulltext::Thesaurus;

/// Result of the graph-meet extension experiment.
#[derive(Debug, Clone)]
pub struct GraphResult {
    /// Reference edges discovered (crossref → key).
    pub reference_edges: usize,
    /// Probed node pairs.
    pub pairs: usize,
    /// Pairs where the reference edges shortened the route.
    pub shortcuts: usize,
    /// Mean tree distance over the probed pairs.
    pub mean_tree_distance: f64,
    /// Mean graph distance over the probed pairs.
    pub mean_graph_distance: f64,
    /// Median graph-meet time, µs.
    pub graph_meet_us: f64,
}

/// Probe record→proceedings routes on a DBLP database with crossrefs.
pub fn graph_meets(db: &Database, runs: usize) -> GraphResult {
    let store = db.store();
    let graph = RefGraph::from_key_references(store, "key", "crossref");

    // Pairs: each ICDE booktitle hit vs the proceedings title of its
    // edition — connected via crossref in 3 hops, via the tree in many.
    let icde = db.search_word("ICDE");
    let proceedings = db.search_word("Proceedings");
    let targets: Vec<_> = proceedings.iter().map(|(_, o)| o).take(16).collect();
    let sources: Vec<_> = icde.iter().map(|(_, o)| o).take(64).collect();

    let mut pairs = 0usize;
    let mut shortcuts = 0usize;
    let mut tree_sum = 0usize;
    let mut graph_sum = 0usize;
    for &s in &sources {
        for &t in targets.iter().take(4) {
            let td = distance(store, s, t);
            let gd = graph_distance(store, &graph, s, t);
            assert!(gd <= td, "reference edges may only shorten routes");
            pairs += 1;
            tree_sum += td;
            graph_sum += gd;
            if gd < td {
                shortcuts += 1;
            }
        }
    }
    let (_, d) = time_median(runs, || {
        graph_distance(store, &graph, sources[0], targets[0])
    });

    GraphResult {
        reference_edges: graph.len(),
        pairs,
        shortcuts,
        mean_tree_distance: tree_sum as f64 / pairs as f64,
        mean_graph_distance: graph_sum as f64 / pairs as f64,
        graph_meet_us: micros(d),
    }
}

/// Result of the thesaurus experiment.
#[derive(Debug, Clone)]
pub struct ThesaurusResult {
    /// The narrow term.
    pub term: String,
    /// Hits without broadening.
    pub narrow_hits: usize,
    /// Hits with broadening.
    pub broad_hits: usize,
    /// Answers without broadening.
    pub narrow_answers: usize,
    /// Answers with broadening.
    pub broad_answers: usize,
}

/// Broaden a conference search with a synonym group ("ICDE" ∪ "EDBT" as a
/// stand-in for e.g. "data engineering venues").
pub fn thesaurus_broadening(db: &Database, year: u16) -> ThesaurusResult {
    let mut thesaurus = Thesaurus::new();
    thesaurus.add_synonyms(&["ICDE", "EDBT"]);

    let narrow = db.search_word("ICDE");
    let broad = db.search_expanded("ICDE", &thesaurus);
    let years = db.search_word(&year.to_string());

    let narrow_answers = db
        .meet_hits(&[narrow.clone(), years.clone()], &MeetOptions::default())
        .len();
    let broad_answers = db
        .meet_terms_expanded(
            &["ICDE", &year.to_string()],
            &thesaurus,
            &MeetOptions::default(),
        )
        .expect("meet runs")
        .len();

    ThesaurusResult {
        term: "ICDE".into(),
        narrow_hits: narrow.len(),
        broad_hits: broad.len(),
        narrow_answers,
        broad_answers,
    }
}

/// Text table for both extension experiments.
pub fn table(g: &GraphResult, t: &ThesaurusResult) -> String {
    format!(
        "# Extensions — paper future work\n\
         ## IDREF graph meets (crossref overlay)\n\
         reference edges:     {}\n\
         probed pairs:        {}\n\
         shortcut pairs:      {}\n\
         mean tree distance:  {:.2}\n\
         mean graph distance: {:.2}\n\
         graph meet time:     {:.2} us\n\
         ## Thesaurus broadening\n\
         term:            {}\n\
         hits narrow/broad:    {} / {}\n\
         answers narrow/broad: {} / {}\n",
        g.reference_edges,
        g.pairs,
        g.shortcuts,
        g.mean_tree_distance,
        g.mean_graph_distance,
        g.graph_meet_us,
        t.term,
        t.narrow_hits,
        t.broad_hits,
        t.narrow_answers,
        t.broad_answers,
    )
}

crate::impl_to_json_struct!(GraphResult {
    reference_edges,
    pairs,
    shortcuts,
    mean_tree_distance,
    mean_graph_distance,
    graph_meet_us,
});
crate::impl_to_json_struct!(ThesaurusResult {
    term,
    narrow_hits,
    broad_hits,
    narrow_answers,
    broad_answers,
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::corpora;

    #[test]
    fn graph_extension_finds_shortcuts() {
        let (db, corpus) = corpora::dblp_small();
        let r = graph_meets(&db, 3);
        // One crossref per inproceedings.
        assert_eq!(r.reference_edges, corpus.inproceedings);
        assert!(r.pairs > 0);
        assert!(r.shortcuts > 0, "crossrefs must shorten some routes");
        assert!(r.mean_graph_distance <= r.mean_tree_distance);
    }

    #[test]
    fn thesaurus_broadening_grows_hits_and_answers() {
        let (db, _) = corpora::dblp_small();
        let r = thesaurus_broadening(&db, 1999);
        assert!(r.broad_hits > r.narrow_hits);
        assert!(r.broad_answers >= r.narrow_answers);
        let g = graph_meets(&db, 1);
        assert!(table(&g, &r).contains("Extensions"));
    }
}
