//! PR 5 perf snapshot: the forest catalog — manifest cold start vs N
//! separate opens, and the per-corpus routing overhead at 1 corpus.
//!
//! One table, emitted as `BENCH_pr5.json` by `repro --exp pr5`:
//!
//! * **cold start** — a 3-corpus manifest (dblp + multimedia + deep
//!   forks) opened through `Catalog::open_manifest` (checksum-verified
//!   per entry) vs the same three snapshots opened as separate
//!   `Database`s. The manifest adds one small file read and three
//!   whole-file checksums; the ratio records what that costs.
//! * **routing overhead** — `meet_terms` through a 1-corpus
//!   `ForestBackend` vs the direct `Database`. The forest's trait
//!   surface is a default-corpus passthrough, so the acceptance gate
//!   is ≥ 0.95× (the routed path may cost at most ~5%).
//!
//! Every row asserts byte-identical answers between the routed and
//! direct engines before timing.

use ncq_core::{Catalog, Database, ForestBackend, MeetBackend, MeetOptions};
use ncq_datagen::{DblpConfig, DblpCorpus, MultimediaConfig, MultimediaCorpus};
use ncq_store::manifest::{Manifest, ManifestEntry};
use std::sync::Arc;
use std::time::Instant;

/// Cold-start comparison for the whole 3-corpus forest.
#[derive(Debug, Clone)]
pub struct Pr5Cold {
    /// Total objects across the three corpora.
    pub nodes: usize,
    /// Manifest file + three snapshot files, bytes.
    pub manifest_bytes: usize,
    /// `Catalog::open_manifest` wall time, ms (min over rounds).
    pub manifest_open_ms: f64,
    /// Three separate `Database::open_snapshot` calls, ms (min).
    pub separate_opens_ms: f64,
    /// `separate / manifest` — ≥ 1.0 means the manifest costs nothing
    /// beyond the opens it performs.
    pub ratio: f64,
    /// Every corpus answered its probe byte-identically through the
    /// catalog.
    pub agree: bool,
}

/// Routing overhead for one corpus.
#[derive(Debug, Clone)]
pub struct Pr5Routing {
    /// Corpus label.
    pub corpus: String,
    /// Probe `meet_terms` ops/s on the direct `Database`.
    pub direct_ops_per_s: f64,
    /// The same probes through a 1-corpus `ForestBackend`.
    pub forest_ops_per_s: f64,
    /// `forest / direct` — the acceptance gate is ≥ 0.95.
    pub ratio: f64,
    /// Routed and direct answers were byte-identical.
    pub agree: bool,
}

/// The full PR 5 snapshot.
#[derive(Debug, Clone)]
pub struct Pr5Result {
    /// The manifest-vs-separate cold start.
    pub cold: Pr5Cold,
    /// Per-corpus routing overhead rows.
    pub routing: Vec<Pr5Routing>,
}

crate::impl_to_json_struct!(Pr5Cold {
    nodes,
    manifest_bytes,
    manifest_open_ms,
    separate_opens_ms,
    ratio,
    agree,
});
crate::impl_to_json_struct!(Pr5Routing {
    corpus,
    direct_ops_per_s,
    forest_ops_per_s,
    ratio,
    agree,
});
crate::impl_to_json_struct!(Pr5Result { cold, routing });

fn deep_xml(depth: usize, pairs: usize) -> String {
    let mut xml = String::with_capacity(pairs * depth * 8);
    xml.push_str("<root>");
    for _ in 0..pairs {
        xml.push_str("<h>");
        for _ in 0..depth {
            xml.push_str("<x>");
        }
        xml.push_str("<a>s</a>");
        for _ in 0..depth {
            xml.push_str("</x>");
        }
        for _ in 0..depth {
            xml.push_str("<y>");
        }
        xml.push_str("<b>t</b>");
        for _ in 0..depth {
            xml.push_str("</y>");
        }
        xml.push_str("</h>");
    }
    xml.push_str("</root>");
    xml
}

fn corpora(quick: bool) -> Vec<(&'static str, Database, [&'static str; 2])> {
    let dblp = DblpCorpus::generate(&DblpConfig {
        papers_per_edition: if quick { 8 } else { 50 },
        journal_articles_per_year: if quick { 3 } else { 10 },
        ..DblpConfig::default()
    });
    let multimedia = MultimediaCorpus::generate(&MultimediaConfig {
        noise_items: if quick { 100 } else { 1_000 },
        ..MultimediaConfig::default()
    });
    let deep = deep_xml(64, if quick { 100 } else { 800 });
    vec![
        (
            "dblp",
            Database::from_document(&dblp.document),
            ["1999", "1995"],
        ),
        (
            "multimedia",
            Database::from_document(&multimedia.document),
            ["1999", "1995"],
        ),
        ("deep", Database::from_xml_str(&deep).unwrap(), ["s", "t"]),
    ]
}

fn time_ms(mut f: impl FnMut()) -> f64 {
    let t = Instant::now();
    f();
    t.elapsed().as_secs_f64() * 1e3
}

fn floor(v: impl IntoIterator<Item = f64>) -> f64 {
    v.into_iter().fold(f64::INFINITY, f64::min)
}

/// Probe `meet_terms` ops/s over a fixed iteration budget.
fn ops_per_s(iters: usize, mut f: impl FnMut()) -> f64 {
    let t = Instant::now();
    for _ in 0..iters {
        f();
    }
    iters as f64 / t.elapsed().as_secs_f64()
}

/// Run the snapshot. `quick` shrinks corpora and repetitions for CI.
pub fn run(quick: bool) -> Pr5Result {
    let dir = std::env::temp_dir().join("ncq-bench-pr5");
    std::fs::create_dir_all(&dir).expect("create bench scratch dir");
    let rounds = if quick { 3 } else { 5 };
    let all = corpora(quick);

    // Save every corpus and describe it in a manifest.
    let mut manifest = Manifest::new();
    let mut snapshot_paths = Vec::new();
    let mut total_nodes = 0usize;
    let mut manifest_bytes = 0usize;
    for (name, db, _) in &all {
        db.store().meet_index();
        let path = dir.join(format!("{name}.ncq"));
        db.save_snapshot(&path).expect("save corpus snapshot");
        manifest_bytes += std::fs::metadata(&path).expect("snapshot metadata").len() as usize;
        manifest
            .push(ManifestEntry::describe(*name, &path, 1).expect("describe corpus"))
            .expect("push corpus");
        total_nodes += db.store().node_count();
        snapshot_paths.push(path);
    }
    let mpath = dir.join("forest.ncqm");
    manifest.save(&mpath).expect("save manifest");
    manifest_bytes += std::fs::metadata(&mpath).expect("manifest metadata").len() as usize;

    // Correctness gate: every corpus probed through the catalog answers
    // byte-identically to its direct engine.
    let catalog = Catalog::open_manifest(&mpath).expect("open manifest");
    let opts = MeetOptions::default();
    let agree = all.iter().all(|(name, db, terms)| {
        catalog
            .get(name)
            .expect("corpus in catalog")
            .meet_terms_answers(&terms[..], &opts)
            .to_detailed_xml()
            == db.meet_terms(&terms[..]).unwrap().to_detailed_xml()
    });
    drop(catalog);

    // Interleaved cold starts.
    let mut manifest_samples = Vec::with_capacity(rounds);
    let mut separate_samples = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let mut opened_catalog = None;
        manifest_samples.push(time_ms(|| {
            opened_catalog = Some(Catalog::open_manifest(&mpath).expect("open manifest"));
        }));
        let mut opened_dbs = Vec::new();
        separate_samples.push(time_ms(|| {
            for path in &snapshot_paths {
                opened_dbs.push(Database::open_snapshot(path).expect("open snapshot"));
            }
        }));
        drop(opened_catalog);
        drop(opened_dbs);
    }
    let manifest_open_ms = floor(manifest_samples);
    let separate_opens_ms = floor(separate_samples);
    let cold = Pr5Cold {
        nodes: total_nodes,
        manifest_bytes,
        manifest_open_ms,
        separate_opens_ms,
        ratio: separate_opens_ms / manifest_open_ms,
        agree,
    };

    // Routing overhead: a 1-corpus forest vs the direct database.
    let iters = if quick { 200 } else { 1_000 };
    let mut routing = Vec::new();
    for (name, db, terms) in &all {
        let direct = Arc::new(db.clone());
        let mut catalog = Catalog::new();
        catalog
            .add(*name, Arc::clone(&direct) as Arc<dyn MeetBackend>)
            .expect("one-corpus catalog");
        let forest = ForestBackend::new(catalog).expect("non-empty catalog");
        let agree = forest
            .meet_terms_answers(&terms[..], &opts)
            .to_detailed_xml()
            == direct.meet_terms(&terms[..]).unwrap().to_detailed_xml();
        // Warm both sides, then measure; min-noise single pass each.
        for _ in 0..iters / 10 {
            let _ = direct.meet_terms(&terms[..]).unwrap();
            let _ = forest.meet_terms_answers(&terms[..], &opts);
        }
        let direct_ops = ops_per_s(iters, || {
            let _ = direct.meet_terms(&terms[..]).unwrap();
        });
        let forest_ops = ops_per_s(iters, || {
            let _ = forest.meet_terms_answers(&terms[..], &opts);
        });
        routing.push(Pr5Routing {
            corpus: name.to_string(),
            direct_ops_per_s: direct_ops,
            forest_ops_per_s: forest_ops,
            ratio: forest_ops / direct_ops,
            agree,
        });
    }

    for p in snapshot_paths.iter().chain(std::iter::once(&mpath)) {
        std::fs::remove_file(p).ok();
    }
    Pr5Result { cold, routing }
}

/// Text table for stdout.
pub fn table(r: &Pr5Result) -> String {
    let mut out =
        String::from("# PR 5 — forest catalog (manifest cold start + per-corpus routing)\n");
    out.push_str(&format!(
        "cold start: nodes={} bytes={} manifest_open={:.1}ms separate_opens={:.1}ms \
         ({:.2}x) agree={}\n",
        r.cold.nodes,
        r.cold.manifest_bytes,
        r.cold.manifest_open_ms,
        r.cold.separate_opens_ms,
        r.cold.ratio,
        r.cold.agree
    ));
    out.push_str("## routing overhead at 1 corpus (gate: forest/direct >= 0.95)\n");
    for row in &r.routing {
        out.push_str(&format!(
            "{}: direct={:.0} ops/s forest={:.0} ops/s ratio={:.3} agree={}\n",
            row.corpus, row.direct_ops_per_s, row.forest_ops_per_s, row.ratio, row.agree
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_snapshot_has_sane_shape_and_meets_the_gate() {
        let r = run(true);
        assert!(r.cold.agree, "catalog answers diverged");
        assert!(r.cold.manifest_open_ms > 0.0 && r.cold.separate_opens_ms > 0.0);
        assert!(r.cold.nodes > 0 && r.cold.manifest_bytes > 0);
        assert_eq!(r.routing.len(), 3);
        for row in &r.routing {
            assert!(row.agree, "{}: routed answers diverged", row.corpus);
            // The acceptance gate with slack for CI noise at quick
            // scale: the passthrough must never cost a double-digit
            // share of a meet.
            assert!(
                row.ratio >= 0.90,
                "{}: routing overhead ratio {:.3} below the floor",
                row.corpus,
                row.ratio
            );
        }
        let text = table(&r);
        assert!(text.contains("routing overhead"));
    }
}
