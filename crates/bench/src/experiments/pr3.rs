//! PR 3 perf snapshot: sharded scatter/gather meets vs the single
//! database.
//!
//! One table, emitted as `BENCH_pr3.json` by `repro --exp pr3`: for
//! each workload (deep fork corpus, flat DBLP) and each operator
//! (`meet_sets`, `meet_multi`), the single-`Database` evaluation is
//! timed against [`ShardedDb`] at K ∈ {1, 2, 4, 8}. K = 1 measures the
//! facade overhead (the sharded layer delegates to the identical
//! planner executors — the headline is ≥ ~1.0×, no regression); K ≥ 2
//! measures the scatter/gather parallel speedup.
//!
//! Interleaved measurement: each timing round samples the single and
//! the sharded evaluation back-to-back, so drift hits both alike.
//! Every row asserts answer equality before timing.

use crate::experiments::corpora;
use crate::experiments::pr1::deep_sets_db;
use ncq_core::{Database, MeetOptions};
use ncq_fulltext::HitSet;
use ncq_shard::ShardedDb;
use ncq_store::Oid;
use std::time::Instant;

/// One workload × operator × K row.
#[derive(Debug, Clone)]
pub struct Pr3Row {
    /// Workload label.
    pub workload: String,
    /// Operator (`meet_sets` / `meet_multi`).
    pub op: String,
    /// Requested shard count.
    pub k: usize,
    /// Shards actually built (≤ k).
    pub shards: usize,
    /// Replicated spine nodes.
    pub spine: usize,
    /// Total input hits.
    pub hits: usize,
    /// Single-database evaluation, µs (median).
    pub single_us: f64,
    /// Sharded evaluation, µs (median).
    pub sharded_us: f64,
    /// `single_us / sharded_us` — > 1 means the scatter won.
    pub speedup: f64,
    /// Sharded and single answers were identical.
    pub agree: bool,
}

/// The full PR 3 snapshot.
#[derive(Debug, Clone)]
pub struct Pr3Result {
    /// All rows, grouped by workload then operator then K.
    pub rows: Vec<Pr3Row>,
}

crate::impl_to_json_struct!(Pr3Row {
    workload,
    op,
    k,
    shards,
    spine,
    hits,
    single_us,
    sharded_us,
    speedup,
    agree,
});
crate::impl_to_json_struct!(Pr3Result { rows });

/// The cost floor: the minimum over interleaved samples. For identical
/// code paths (the K = 1 facade delegation) the floors coincide almost
/// exactly, making the "no regression" row robust against scheduler
/// noise that a median still admits.
fn floor(v: Vec<f64>) -> f64 {
    v.into_iter().fold(f64::INFINITY, f64::min)
}

/// Time `single()` vs `sharded()` interleaved; callers pre-check
/// agreement.
fn race(rounds: usize, mut single: impl FnMut(), mut sharded: impl FnMut()) -> (f64, f64) {
    // Warm caches and the allocator on both sides before sampling.
    for _ in 0..3 {
        single();
        sharded();
    }
    let mut single_samples = Vec::with_capacity(rounds);
    let mut sharded_samples = Vec::with_capacity(rounds);
    for round in 0..rounds {
        // Alternate which side runs first so cache shadows average out.
        for slot in 0..2 {
            let run_single = (round + slot) % 2 == 0;
            let t = Instant::now();
            if run_single {
                single();
            } else {
                sharded();
            }
            let us = t.elapsed().as_secs_f64() * 1e6;
            if run_single {
                single_samples.push(us);
            } else {
                sharded_samples.push(us);
            }
        }
    }
    (floor(single_samples), floor(sharded_samples))
}

#[allow(clippy::too_many_arguments)]
fn sets_row(
    workload: &str,
    db: &Database,
    sharded: &ShardedDb,
    k: usize,
    s1: &[Oid],
    s2: &[Oid],
    rounds: usize,
) -> Pr3Row {
    let a = db.meet_oid_sets(s1, s2).expect("homogeneous inputs");
    let b = sharded.meet_oid_sets(s1, s2).expect("homogeneous inputs");
    let agree = a.meets == b.meets && a.join_rounds == b.join_rounds;
    let (single_us, sharded_us) = race(
        rounds,
        || {
            std::hint::black_box(db.meet_oid_sets(s1, s2)).ok();
        },
        || {
            std::hint::black_box(sharded.meet_oid_sets(s1, s2)).ok();
        },
    );
    Pr3Row {
        workload: workload.to_string(),
        op: "meet_sets".to_string(),
        k,
        shards: sharded.shard_count(),
        spine: sharded.partition().spine_len(),
        hits: s1.len() + s2.len(),
        single_us,
        sharded_us,
        speedup: single_us / sharded_us,
        agree,
    }
}

fn multi_row(
    workload: &str,
    db: &Database,
    sharded: &ShardedDb,
    k: usize,
    inputs: &[HitSet],
    rounds: usize,
) -> Pr3Row {
    let options = MeetOptions::default();
    let agree = db.meet_hits(inputs, &options) == sharded.meet_hits(inputs, &options);
    let (single_us, sharded_us) = race(
        rounds,
        || {
            std::hint::black_box(db.meet_hits(inputs, &options));
        },
        || {
            std::hint::black_box(sharded.meet_hits(inputs, &options));
        },
    );
    Pr3Row {
        workload: workload.to_string(),
        op: "meet_multi".to_string(),
        k,
        shards: sharded.shard_count(),
        spine: sharded.partition().spine_len(),
        hits: inputs.iter().map(HitSet::len).sum(),
        single_us,
        sharded_us,
        speedup: single_us / sharded_us,
        agree,
    }
}

/// Run the snapshot. `quick` shrinks corpora and repetitions for CI.
pub fn run(quick: bool) -> Pr3Result {
    let rounds = if quick { 15 } else { 41 };
    let ks = [1usize, 2, 4, 8];
    let mut rows = Vec::new();

    // Deep corpus: long chains, sweep-tier meets — the scatter's home
    // turf (per-shard plane sweeps run fully parallel).
    let (deep_depth, deep_pairs) = if quick { (96, 300) } else { (96, 3000) };
    let (deep_db, deep_s, deep_t) = deep_sets_db(deep_depth, deep_pairs);
    // Share the database by Arc: both engines probe one copy of the
    // store and index, so K = 1 measures the facade alone.
    let deep_db = std::sync::Arc::new(deep_db);
    let deep_inputs = vec![
        HitSet::from_pairs(deep_s.iter().map(|&o| (deep_db.store().sigma(o), o))),
        HitSet::from_pairs(deep_t.iter().map(|&o| (deep_db.store().sigma(o), o))),
    ];
    let deep_label = format!("deep forks (depth {deep_depth}, {deep_pairs} pairs)");
    for k in ks {
        let sharded = ShardedDb::new(std::sync::Arc::clone(&deep_db), k);
        rows.push(sets_row(
            &deep_label,
            &deep_db,
            &sharded,
            k,
            &deep_s,
            &deep_t,
            rounds,
        ));
        rows.push(multi_row(
            &deep_label,
            &deep_db,
            &sharded,
            k,
            &deep_inputs,
            rounds,
        ));
    }

    // Flat corpus: the DBLP case study. The planner keeps meet_sets on
    // the lift tier here (served from the spine replica — the row pins
    // "no regression"); meet_multi exceeds the roll-up cap and
    // scatters.
    let (flat_db, _) = if quick {
        corpora::dblp_small()
    } else {
        corpora::dblp_case_study()
    };
    let flat_db = std::sync::Arc::new(flat_db);
    let icde = flat_db.search_word("ICDE");
    let mut years = HitSet::new();
    for y in 1984u16..=1999 {
        years.union(&flat_db.search_word(&y.to_string()));
    }
    let largest = |h: &HitSet| -> Vec<Oid> {
        h.groups()
            .iter()
            .max_by_key(|(_, v)| v.len())
            .map(|(_, v)| v.clone())
            .unwrap_or_default()
    };
    let booktitles = largest(&icde);
    let year_cdatas = largest(&years);
    let flat_inputs = vec![icde, years];
    for k in ks {
        let sharded = ShardedDb::new(std::sync::Arc::clone(&flat_db), k);
        rows.push(sets_row(
            "dblp icde-booktitles × year-cdatas (flat)",
            &flat_db,
            &sharded,
            k,
            &booktitles,
            &year_cdatas,
            rounds,
        ));
        rows.push(multi_row(
            "dblp meet(ICDE-hits, year-hits) (flat)",
            &flat_db,
            &sharded,
            k,
            &flat_inputs,
            rounds,
        ));
    }

    Pr3Result { rows }
}

/// Text table for stdout.
pub fn table(r: &Pr3Result) -> String {
    let mut out = String::from(
        "# PR 3 — preorder-interval sharded execution (scatter/gather meets)\n\
         ## sharded vs single (speedup = single/sharded; K=1 pins the facade overhead)\n",
    );
    for row in &r.rows {
        out.push_str(&format!(
            "{} [{}] K={}: shards={} spine={} hits={} single={:.1}us sharded={:.1}us \
             ({:.2}x) agree={}\n",
            row.workload,
            row.op,
            row.k,
            row.shards,
            row.spine,
            row.hits,
            row.single_us,
            row.sharded_us,
            row.speedup,
            row.agree
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_snapshot_has_sane_shape() {
        let r = run(true);
        // 2 workloads × 2 ops × 4 K values.
        assert_eq!(r.rows.len(), 16);
        for row in &r.rows {
            assert!(
                row.agree,
                "{} [{}] K={}: answers diverged",
                row.workload, row.op, row.k
            );
            assert!(row.single_us > 0.0 && row.sharded_us > 0.0);
            assert!(row.shards >= 1 && row.shards <= row.k);
            if row.k == 1 {
                assert_eq!(row.shards, 1);
                assert_eq!(row.spine, 0);
            }
        }
        let text = table(&r);
        assert!(text.contains("meet_sets"));
        assert!(text.contains("K=8"));
    }
}
