//! PR 8 telemetry snapshot: what observability costs, and what a
//! trace shows when a replica dies.
//!
//! Two tables, emitted as `BENCH_pr8.json` by `repro --exp pr8`:
//!
//! * **instrumentation overhead** — the PR 7 hot paths (batch-64
//!   shared sweep, top-k lift at k = 10) timed with telemetry fully on
//!   (master switch enabled *and* an active trace on the thread, so
//!   every span/annotation/histogram on the path records) against the
//!   same evaluation with the master switch off. Gate: the on/off
//!   ratio stays ≤ 1.05 on both rows, and the answers are
//!   byte-identical either way — instrumentation must never steer
//!   evaluation.
//! * **chaos failover trace** — one coordinator-side traced meet
//!   through a refusing chaos proxy with a healthy peer behind it.
//!   The row counts what the sealed trace recorded: per-replica
//!   `remote_attempt` spans (failed and successful), `failover`
//!   events, and the replica-side span trees sealed under the same
//!   propagated trace id.

use crate::experiments::corpora;
use ncq_core::remote::{RemoteBackend, RemoteConfig};
use ncq_core::{BatchQuery, Database, MeetBackend, MeetOptions, MeetStrategy};
use ncq_fulltext::HitSet;
use ncq_server::{ChaosProxy, ChaosSchedule, EngineConfig, Fault, RemoteEngine};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One hot-path row of the instrumentation-overhead table.
#[derive(Debug, Clone)]
pub struct Pr8Overhead {
    /// `batch64_sweep` or `topk10_lift`.
    pub scenario: String,
    /// Telemetry off (master switch disabled), ms (min over rounds).
    pub off_ms: f64,
    /// Telemetry on (switch enabled, trace active), ms (min over rounds).
    pub on_ms: f64,
    /// `on / off` — the gate is ≤ 1.05.
    pub ratio: f64,
    /// Answers byte-identical with telemetry on and off.
    pub agree: bool,
}

/// What the chaos failover run's coordinator trace recorded.
#[derive(Debug, Clone)]
pub struct Pr8Trace {
    /// `remote_attempt` spans in the coordinator's sealed trace.
    pub attempts: usize,
    /// Attempts whose outcome annotation is an error (the refused
    /// replica).
    pub failed_attempts: usize,
    /// Attempts that answered.
    pub ok_attempts: usize,
    /// `failover` events in the trace.
    pub failovers: usize,
    /// Replica-side span trees sealed under the coordinator's trace id
    /// (the engines run in-process here, sharing the trace ring).
    pub engine_traces: usize,
}

/// The full PR 8 snapshot.
#[derive(Debug, Clone)]
pub struct Pr8Result {
    /// Nodes in the batch corpus.
    pub nodes: usize,
    /// Nodes in the deep-fork top-k corpus.
    pub topk_nodes: usize,
    /// Overhead rows, one per hot path.
    pub rows: Vec<Pr8Overhead>,
    /// The chaos failover trace row.
    pub trace: Pr8Trace,
}

crate::impl_to_json_struct!(Pr8Overhead {
    scenario,
    off_ms,
    on_ms,
    ratio,
    agree,
});
crate::impl_to_json_struct!(Pr8Trace {
    attempts,
    failed_attempts,
    ok_attempts,
    failovers,
    engine_traces,
});
crate::impl_to_json_struct!(Pr8Result {
    nodes,
    topk_nodes,
    rows,
    trace,
});

fn time_ms(mut f: impl FnMut()) -> f64 {
    let t = Instant::now();
    f();
    t.elapsed().as_secs_f64() * 1e3
}

fn floor(v: impl IntoIterator<Item = f64>) -> f64 {
    v.into_iter().fold(f64::INFINITY, f64::min)
}

/// The deep-fork top-k corpus (same construction as the PR 7 top-k
/// table): `good` heads meet deep, `bad` heads only at the fork head.
fn topk_xml(depth: usize, good: usize, bad: usize) -> String {
    let mut xml = String::with_capacity((good + bad) * depth * 8);
    xml.push_str("<root>");
    for _ in 0..good {
        xml.push_str("<h>");
        for _ in 0..depth {
            xml.push_str("<x>");
        }
        xml.push_str("<p><a>s</a><b>t</b></p>");
        for _ in 0..depth {
            xml.push_str("</x>");
        }
        xml.push_str("</h>");
    }
    for _ in 0..bad {
        xml.push_str("<h>");
        for _ in 0..depth {
            xml.push_str("<x>");
        }
        xml.push_str("<a>s</a>");
        for _ in 0..depth {
            xml.push_str("</x>");
        }
        for _ in 0..depth {
            xml.push_str("<y>");
        }
        xml.push_str("<b>t</b>");
        for _ in 0..depth {
            xml.push_str("</y>");
        }
        xml.push_str("</h>");
    }
    xml.push_str("</root>");
    xml
}

/// Time `work` with the master switch off, then with it on under an
/// active per-round trace, and compare the answers each side produced.
fn overhead_row<T: PartialEq>(
    scenario: &str,
    rounds: usize,
    mut work: impl FnMut() -> T,
) -> Pr8Overhead {
    let obs = ncq_obs::obs();

    obs.set_enabled(false);
    let off_answer = work();
    // Warm, then min over rounds.
    work();
    let off_ms = floor((0..rounds).map(|_| {
        time_ms(|| {
            std::hint::black_box(work());
        })
    }));

    obs.set_enabled(true);
    let on_answer = work();
    let on_ms = floor((0..rounds).map(|_| {
        time_ms(|| {
            // The realistic on-path: a live trace on the thread, every
            // span and histogram recording, the sealed tree pushed
            // into the ring — exactly what a served request pays.
            obs.begin_trace(obs.next_trace_id());
            std::hint::black_box(work());
            obs.finish_trace();
        })
    }));

    Pr8Overhead {
        scenario: scenario.to_owned(),
        off_ms,
        on_ms,
        ratio: on_ms / off_ms,
        agree: off_answer == on_answer,
    }
}

/// One traced meet through a refusing replica with a healthy peer:
/// returns what the coordinator's sealed trace (and the shared ring)
/// recorded.
fn chaos_trace_row() -> Pr8Trace {
    let xml = r#"<bib><article key="BB99"><author>Ben Bit</author>
        <year>1999</year></article></bib>"#;
    let db = Arc::new(Database::from_xml_str(xml).expect("chaos corpus"));
    let sick = RemoteEngine::bind(
        "127.0.0.1:0",
        Arc::clone(&db) as Arc<dyn MeetBackend>,
        EngineConfig::default(),
    )
    .expect("sick engine");
    let healthy = RemoteEngine::bind(
        "127.0.0.1:0",
        Arc::clone(&db) as Arc<dyn MeetBackend>,
        EngineConfig::default(),
    )
    .expect("healthy engine");
    let proxy = ChaosProxy::bind(sick.local_addr(), ChaosSchedule::always(Fault::Refuse))
        .expect("chaos proxy");
    let remote = RemoteBackend::new(
        (*db).clone(),
        &[
            proxy.local_addr().to_string(),
            healthy.local_addr().to_string(),
        ],
        RemoteConfig {
            connect_timeout: Duration::from_millis(300),
            read_timeout: Duration::from_millis(500),
            write_timeout: Duration::from_millis(500),
            retry_rounds: 2,
            backoff_base: Duration::from_millis(2),
            backoff_max: Duration::from_millis(20),
            ..RemoteConfig::default()
        },
    )
    .expect("remote backend");

    let obs = ncq_obs::obs();
    obs.set_enabled(true);
    let id = obs.next_trace_id();
    obs.begin_trace(id);
    remote
        .try_meet_terms_answers(&["Bit", "1999"], &MeetOptions::default())
        .expect("meet through the healthy peer");
    let sealed = obs.finish_trace().expect("coordinator trace");

    let attempts = sealed.spans_named("remote_attempt");
    let outcome_of = |span: &&ncq_obs::SpanRec| -> String {
        span.attrs
            .iter()
            .find(|(k, _)| *k == "outcome")
            .map(|(_, v)| v.clone())
            .unwrap_or_default()
    };
    let failed = attempts
        .iter()
        .filter(|s| outcome_of(s).starts_with("error"))
        .count();
    let ok = attempts.iter().filter(|s| outcome_of(s) == "ok").count();
    let engine_traces = obs
        .recent_traces(256)
        .into_iter()
        .filter(|t| t.id == id && !t.spans_named("engine_eval").is_empty())
        .count();
    let row = Pr8Trace {
        attempts: attempts.len(),
        failed_attempts: failed,
        ok_attempts: ok,
        failovers: sealed.spans_named("failover").len(),
        engine_traces,
    };
    proxy.shutdown();
    sick.shutdown();
    healthy.shutdown();
    row
}

/// Run the snapshot. `quick` shrinks corpora and repetitions for CI.
pub fn run(quick: bool) -> Pr8Result {
    let rounds = if quick { 5 } else { 9 };
    let was_enabled = ncq_obs::obs().enabled();

    // ----- batch-64 shared sweep -----
    let (db, _) = if quick {
        corpora::dblp_small()
    } else {
        corpora::dblp_case_study()
    };
    db.store().meet_index();
    let mut terms: Vec<String> = (1984u16..2000).map(|y| y.to_string()).collect();
    terms.push("ICDE".to_owned());
    let hits: Vec<HitSet> = terms.iter().map(|t| db.search(t)).collect();
    let icde = hits.last().expect("ICDE hits");
    let pool: Vec<(&HitSet, &HitSet)> = hits[..16].iter().map(|h| (h, icde)).collect();
    let options = MeetOptions::default();
    let queries: Vec<BatchQuery<'_>> = (0..64)
        .map(|i| {
            let (a, b) = pool[i % pool.len()];
            BatchQuery::new(vec![a, b], options.clone())
        })
        .collect();
    let batch_row = overhead_row("batch64_sweep", rounds, || db.meet_hits_batch(&queries));

    // ----- top-k lift at k = 10 -----
    let (depth, good, bad) = if quick { (24, 12, 150) } else { (64, 16, 800) };
    let deep = Database::from_xml_str(&topk_xml(depth, good, bad)).expect("top-k corpus");
    deep.store().meet_index();
    let s = deep.search("s");
    let t = deep.search("t");
    let inputs = [&s, &t];
    let lift_opts = MeetOptions {
        strategy: MeetStrategy::Lift,
        limit: Some(10),
        ..MeetOptions::default()
    };
    let topk_row = overhead_row("topk10_lift", rounds, || {
        deep.meet_hits(&inputs, &lift_opts)
    });

    // ----- chaos failover trace -----
    let trace = chaos_trace_row();

    ncq_obs::obs().set_enabled(was_enabled);
    Pr8Result {
        nodes: db.store().node_count(),
        topk_nodes: deep.store().node_count(),
        rows: vec![batch_row, topk_row],
        trace,
    }
}

/// Text table for stdout.
pub fn table(r: &Pr8Result) -> String {
    let mut out = String::from("# PR 8 — telemetry overhead and failover tracing\n");
    out.push_str(&format!(
        "## instrumentation overhead on {} / {} nodes (gate: <=1.05x on both rows)\n",
        r.nodes, r.topk_nodes
    ));
    for row in &r.rows {
        out.push_str(&format!(
            "{:<14} off={:.2}ms on={:.2}ms ratio={:.3}x agree={}\n",
            row.scenario, row.off_ms, row.on_ms, row.ratio, row.agree
        ));
    }
    out.push_str("## chaos failover trace (refusing replica + healthy peer)\n");
    out.push_str(&format!(
        "attempts={} failed={} ok={} failovers={} engine_traces={}\n",
        r.trace.attempts,
        r.trace.failed_attempts,
        r.trace.ok_attempts,
        r.trace.failovers,
        r.trace.engine_traces
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_snapshot_meets_the_overhead_gate_and_traces_the_failover() {
        let r = run(true);
        assert!(r.nodes > 0 && r.topk_nodes > 0);

        assert_eq!(r.rows.len(), 2);
        for row in &r.rows {
            assert!(row.agree, "{}: telemetry steered the answers", row.scenario);
            assert!(row.off_ms > 0.0 && row.on_ms > 0.0);
            // The acceptance gate is ≤ 1.05; quick CI runs time in the
            // sub-millisecond range where scheduler noise dominates, so
            // the test asserts a loosened bound and `repro --exp pr8`
            // pins the real one.
            assert!(
                row.ratio <= 1.5,
                "{} on/off ratio {:.3} is far past the 1.05 gate",
                row.scenario,
                row.ratio
            );
        }

        // The chaos row: the refused attempt, the failover, the answer,
        // and the replica-side trees stitched under the same id.
        assert!(r.trace.attempts >= 2, "{:?}", r.trace);
        assert!(r.trace.failed_attempts >= 1, "{:?}", r.trace);
        assert!(r.trace.ok_attempts >= 1, "{:?}", r.trace);
        assert!(r.trace.failovers >= 1, "{:?}", r.trace);
        assert!(r.trace.engine_traces >= 1, "{:?}", r.trace);
    }
}
