//! PR 6 perf snapshot: distributed serving — the remote engine's
//! loopback overhead vs the in-process backend, and the cost of the
//! failover path when a replica dies mid-stream.
//!
//! Two tables, emitted as `BENCH_pr6.json` by `repro --exp pr6`:
//!
//! * **loopback overhead** — `meet_terms` through a [`RemoteBackend`]
//!   talking to a [`RemoteEngine`] on 127.0.0.1 vs the direct
//!   `Database`. The remote path pays framing, checksumming and two
//!   kernel round trips per meet; the ratio records what that costs.
//!   There is no gate on the ratio (a loopback hop *should* lose to a
//!   function call) — the gate is byte-identical answers.
//! * **failover latency** — a two-replica router warmed up healthy,
//!   then one replica is shut down. Three numbers: the healthy per-op
//!   floor, the first op after the kill (pays detection: one failed
//!   exchange plus the retry to the survivor) and the steady state
//!   afterwards (routing around the down replica). The acceptance
//!   gate is bounded detection — the first post-kill op must finish
//!   inside the router's timeout budget, and answers stay
//!   byte-identical throughout.

use ncq_core::{Database, MeetBackend, MeetOptions, RemoteBackend, RemoteConfig};
use ncq_datagen::{DblpConfig, DblpCorpus, MultimediaConfig, MultimediaCorpus};
use ncq_server::{EngineConfig, RemoteEngine};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Loopback overhead for one corpus.
#[derive(Debug, Clone)]
pub struct Pr6Loopback {
    /// Corpus label.
    pub corpus: String,
    /// Probe `meet_terms` ops/s on the direct `Database`.
    pub direct_ops_per_s: f64,
    /// The same probes through a loopback `RemoteBackend`.
    pub remote_ops_per_s: f64,
    /// `remote / direct` — recorded, not gated.
    pub ratio: f64,
    /// Remote and direct answers were byte-identical.
    pub agree: bool,
}

/// Failover-path latency with a two-replica router.
#[derive(Debug, Clone)]
pub struct Pr6Failover {
    /// Timed probes per phase.
    pub probes: usize,
    /// Per-op floor with both replicas healthy, ms.
    pub healthy_ms: f64,
    /// The first op after one replica is killed, ms (pays detection).
    pub failover_first_ms: f64,
    /// Per-op floor once the dead replica is routed around, ms.
    pub failover_steady_ms: f64,
    /// Router retries observed across the run.
    pub retries: u64,
    /// Router failovers observed across the run.
    pub failovers: u64,
    /// Replicas the router demoted to down.
    pub replicas_down: u64,
    /// Every answer before and after the kill was byte-identical.
    pub agree: bool,
}

/// The full PR 6 snapshot.
#[derive(Debug, Clone)]
pub struct Pr6Result {
    /// Per-corpus loopback overhead rows.
    pub loopback: Vec<Pr6Loopback>,
    /// The kill-a-replica latency profile.
    pub failover: Pr6Failover,
}

crate::impl_to_json_struct!(Pr6Loopback {
    corpus,
    direct_ops_per_s,
    remote_ops_per_s,
    ratio,
    agree,
});
crate::impl_to_json_struct!(Pr6Failover {
    probes,
    healthy_ms,
    failover_first_ms,
    failover_steady_ms,
    retries,
    failovers,
    replicas_down,
    agree,
});
crate::impl_to_json_struct!(Pr6Result { loopback, failover });

fn corpora(quick: bool) -> Vec<(&'static str, Database, [&'static str; 2])> {
    let dblp = DblpCorpus::generate(&DblpConfig {
        papers_per_edition: if quick { 8 } else { 50 },
        journal_articles_per_year: if quick { 3 } else { 10 },
        ..DblpConfig::default()
    });
    let multimedia = MultimediaCorpus::generate(&MultimediaConfig {
        noise_items: if quick { 100 } else { 1_000 },
        ..MultimediaConfig::default()
    });
    vec![
        (
            "dblp",
            Database::from_document(&dblp.document),
            ["1999", "1995"],
        ),
        (
            "multimedia",
            Database::from_document(&multimedia.document),
            ["1999", "1995"],
        ),
    ]
}

/// Router tuning for the snapshot: tight enough that the failover
/// numbers describe the router, not five-second default timeouts.
fn router_config() -> RemoteConfig {
    RemoteConfig {
        connect_timeout: Duration::from_millis(300),
        read_timeout: Duration::from_millis(2_000),
        write_timeout: Duration::from_millis(2_000),
        retry_rounds: 2,
        backoff_base: Duration::from_millis(2),
        backoff_max: Duration::from_millis(20),
        down_probe_after: Duration::from_secs(30),
        ..RemoteConfig::default()
    }
}

/// The worst case one op may take under [`router_config`]: every
/// replica exhausts connect+read+write in all retry rounds plus the
/// capped backoffs. The failover gate asserts against this, not
/// against a wall-clock guess.
#[cfg(test)]
fn timeout_budget_ms() -> f64 {
    let c = router_config();
    let per_attempt = c.connect_timeout + c.read_timeout + c.write_timeout;
    let attempts = 2 * (1 + c.retry_rounds) * 2; // replicas × rounds × passes
    let backoff = c.backoff_max * c.retry_rounds as u32;
    (per_attempt * attempts as u32 + backoff).as_secs_f64() * 1e3
}

fn ops_per_s(iters: usize, mut f: impl FnMut()) -> f64 {
    let t = Instant::now();
    for _ in 0..iters {
        f();
    }
    iters as f64 / t.elapsed().as_secs_f64()
}

fn min_op_ms(probes: usize, mut f: impl FnMut()) -> f64 {
    let mut floor = f64::INFINITY;
    for _ in 0..probes {
        let t = Instant::now();
        f();
        floor = floor.min(t.elapsed().as_secs_f64() * 1e3);
    }
    floor
}

fn engine(db: &Arc<Database>) -> RemoteEngine {
    RemoteEngine::bind(
        "127.0.0.1:0",
        Arc::clone(db) as Arc<dyn MeetBackend>,
        EngineConfig::default(),
    )
    .expect("bind loopback engine")
}

/// Run the snapshot. `quick` shrinks corpora and repetitions for CI.
pub fn run(quick: bool) -> Pr6Result {
    let iters = if quick { 60 } else { 400 };
    let probes = if quick { 20 } else { 100 };
    let opts = MeetOptions::default();

    // Loopback overhead, one row per corpus.
    let mut loopback = Vec::new();
    for (name, db, terms) in corpora(quick) {
        let db = Arc::new(db);
        let replica = engine(&db);
        let remote = RemoteBackend::new(
            (*db).clone(),
            &[replica.local_addr().to_string()],
            router_config(),
        )
        .expect("one-replica router");

        let agree = remote
            .try_meet_terms_answers(&terms[..], &opts)
            .expect("loopback meet")
            .to_detailed_xml()
            == db.meet_terms(&terms[..]).unwrap().to_detailed_xml();
        // Warm both sides (index build, connection pool), then measure.
        for _ in 0..iters / 10 {
            let _ = db.meet_terms(&terms[..]).unwrap();
            let _ = remote.try_meet_terms_answers(&terms[..], &opts).unwrap();
        }
        let direct_ops = ops_per_s(iters, || {
            let _ = db.meet_terms(&terms[..]).unwrap();
        });
        let remote_ops = ops_per_s(iters, || {
            let _ = remote.try_meet_terms_answers(&terms[..], &opts).unwrap();
        });
        loopback.push(Pr6Loopback {
            corpus: name.to_string(),
            direct_ops_per_s: direct_ops,
            remote_ops_per_s: remote_ops,
            ratio: remote_ops / direct_ops,
            agree,
        });
        replica.shutdown();
    }

    // Failover latency: two replicas, kill the first mid-stream.
    let (_, db, terms) = corpora(quick).swap_remove(0);
    let db = Arc::new(db);
    let doomed = engine(&db);
    let survivor = engine(&db);
    let remote = RemoteBackend::new(
        (*db).clone(),
        &[
            doomed.local_addr().to_string(),
            survivor.local_addr().to_string(),
        ],
        router_config(),
    )
    .expect("two-replica router");
    let expected = db.meet_terms(&terms[..]).unwrap().to_detailed_xml();
    let mut agree = true;
    let mut probe = |remote: &RemoteBackend| {
        let answers = remote
            .try_meet_terms_answers(&terms[..], &opts)
            .expect("a live replica remains");
        agree &= answers.to_detailed_xml() == expected;
    };

    for _ in 0..probes / 4 {
        probe(&remote); // warm pool + both replicas' indexes
    }
    let healthy_ms = min_op_ms(probes, || probe(&remote));

    doomed.shutdown();
    let t = Instant::now();
    probe(&remote);
    let failover_first_ms = t.elapsed().as_secs_f64() * 1e3;
    let failover_steady_ms = min_op_ms(probes, || probe(&remote));

    let stats = remote.robustness_stats();
    survivor.shutdown();

    Pr6Result {
        loopback,
        failover: Pr6Failover {
            probes,
            healthy_ms,
            failover_first_ms,
            failover_steady_ms,
            retries: stats.retries,
            failovers: stats.failovers,
            replicas_down: stats.replicas_down,
            agree,
        },
    }
}

/// Text table for stdout.
pub fn table(r: &Pr6Result) -> String {
    let mut out = String::from("# PR 6 — distributed serving (loopback overhead + failover)\n");
    out.push_str("## loopback remote engine vs in-process (gate: byte-identical answers)\n");
    for row in &r.loopback {
        out.push_str(&format!(
            "{}: direct={:.0} ops/s remote={:.0} ops/s ratio={:.3} agree={}\n",
            row.corpus, row.direct_ops_per_s, row.remote_ops_per_s, row.ratio, row.agree
        ));
    }
    let f = &r.failover;
    out.push_str("## kill-one-of-two-replicas latency profile\n");
    out.push_str(&format!(
        "healthy={:.3}ms first_after_kill={:.1}ms steady={:.3}ms \
         (retries={} failovers={} replicas_down={}) agree={}\n",
        f.healthy_ms,
        f.failover_first_ms,
        f.failover_steady_ms,
        f.retries,
        f.failovers,
        f.replicas_down,
        f.agree
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_snapshot_has_sane_shape_and_bounded_failover() {
        let r = run(true);
        assert_eq!(r.loopback.len(), 2);
        for row in &r.loopback {
            assert!(row.agree, "{}: remote answers diverged", row.corpus);
            assert!(row.direct_ops_per_s > 0.0 && row.remote_ops_per_s > 0.0);
        }
        let f = &r.failover;
        assert!(f.agree, "answers diverged across the kill");
        assert!(f.failovers >= 1, "the kill must register as a failover");
        assert!(f.replicas_down >= 1, "the dead replica must be demoted");
        // The acceptance gate: detection is bounded by the router's own
        // timeout budget, never an open-ended hang. (No ratio gates —
        // wall-clock ratios are too noisy for CI.)
        assert!(
            f.failover_first_ms < timeout_budget_ms(),
            "first post-kill op took {:.0}ms, budget {:.0}ms",
            f.failover_first_ms,
            timeout_budget_ms()
        );
        assert!(f.healthy_ms.is_finite() && f.failover_steady_ms.is_finite());
        let text = table(&r);
        assert!(text.contains("failover"));
    }
}
