//! PR 10 perf snapshot: zero-copy mmap cold start.
//!
//! One table, emitted as `BENCH_pr10.json` by `repro --exp pr10`: for
//! each corpus (DBLP substitute, multimedia substitute, deep fork
//! forest) at two scales, three cold starts of the same instance are
//! timed through the filesystem:
//!
//! * `parse_build`: read the XML file, parse, Monet transform, build
//!   every index and statistic — the no-snapshot baseline;
//! * `v1_load`: `Database::open_snapshot` on a layout-version-1 file
//!   (the materializing path: every section is copied to the heap and
//!   checksum-verified before the first answer);
//! * `map_open`: `Database::open_snapshot` on the current v3 file —
//!   mmap, header/table checksum, decode the small verified-at-decode
//!   sections, and point the big arrays at the map.
//!
//! Both snapshot loads go through the *same* entry point; the version
//! dispatcher picks the path, which is exactly what production sees.
//! Every row asserts that all three engines answer a probe meet
//! byte-identically before timing, and that saving the v3 file twice is
//! byte-deterministic (the CI `snapshot-compat` contract).
//!
//! The acceptance row is the large deep fork forest: structure-heavy,
//! so the materializing v1 load has the most bytes to copy while the
//! mapped open's decode cost stays proportional to the tiny
//! dictionary-like sections.

use ncq_core::Database;
use ncq_datagen::{DblpConfig, DblpCorpus, MultimediaConfig, MultimediaCorpus};
use ncq_xml::{write_document, WriteOptions};
use std::path::Path;
use std::time::Instant;

/// One corpus × scale row.
#[derive(Debug, Clone)]
pub struct Pr10Row {
    /// Corpus label.
    pub corpus: String,
    /// Objects in the instance.
    pub nodes: usize,
    /// v3 snapshot file size, bytes.
    pub snapshot_bytes: usize,
    /// Whether the v3 open served from a real memory map (false under
    /// `NCQ_NO_MMAP` or on non-unix hosts).
    pub mapped: bool,
    /// Full parse + build cold start, µs (min over rounds).
    pub parse_build_us: f64,
    /// v1 materializing load, µs (min over rounds).
    pub v1_load_us: f64,
    /// v3 mapped open, µs (min over rounds).
    pub map_open_us: f64,
    /// `v1_load_us / map_open_us` — the tentpole ratio.
    pub speedup_vs_v1: f64,
    /// `parse_build_us / map_open_us`.
    pub speedup_vs_build: f64,
    /// All three engines answered a probe meet byte-identically.
    pub agree: bool,
    /// Two v3 saves produced byte-identical files.
    pub deterministic: bool,
}

/// The full PR 10 snapshot.
#[derive(Debug, Clone)]
pub struct Pr10Result {
    /// All rows, grouped by corpus then scale.
    pub rows: Vec<Pr10Row>,
}

crate::impl_to_json_struct!(Pr10Row {
    corpus,
    nodes,
    snapshot_bytes,
    mapped,
    parse_build_us,
    v1_load_us,
    map_open_us,
    speedup_vs_v1,
    speedup_vs_build,
    agree,
    deterministic,
});
crate::impl_to_json_struct!(Pr10Result { rows });

/// The deep fork forest of the PR 1/PR 3/PR 4 snapshots, as XML text.
fn deep_xml(depth: usize, pairs: usize) -> String {
    let mut xml = String::with_capacity(pairs * depth * 8);
    xml.push_str("<root>");
    for _ in 0..pairs {
        xml.push_str("<h>");
        for _ in 0..depth {
            xml.push_str("<x>");
        }
        xml.push_str("<a>s</a>");
        for _ in 0..depth {
            xml.push_str("</x>");
        }
        for _ in 0..depth {
            xml.push_str("<y>");
        }
        xml.push_str("<b>t</b>");
        for _ in 0..depth {
            xml.push_str("</y>");
        }
        xml.push_str("</h>");
    }
    xml.push_str("</root>");
    xml
}

/// The complete cold start the snapshot replaces: parse, transform,
/// build the inverted index, the meet index and both cached statistics.
fn build_cold(xml: &str) -> Database {
    let db = Database::from_xml_str(xml).expect("benchmark corpus parses");
    db.store().meet_index();
    db.store().depth_stats();
    db.store().partition_stats();
    db
}

/// Probe terms per corpus (datagen text pools / deep forest leaves).
fn probe_terms(corpus: &str) -> [&'static str; 2] {
    if corpus.starts_with("deep") {
        ["s", "t"]
    } else {
        ["1999", "1995"]
    }
}

fn time_us(mut f: impl FnMut()) -> f64 {
    let t = Instant::now();
    f();
    t.elapsed().as_secs_f64() * 1e6
}

fn floor(v: impl IntoIterator<Item = f64>) -> f64 {
    v.into_iter().fold(f64::INFINITY, f64::min)
}

fn row(label: &str, xml: String, dir: &Path, rounds: usize) -> Pr10Row {
    let base = dir.join(label.replace([' ', '(', ')', ','], "_"));
    let xml_path = base.with_extension("xml");
    let v1_path = base.with_extension("v1.ncq");
    let v3_path = base.with_extension("ncq");
    let v3_path2 = base.with_extension("ncq2");
    std::fs::write(&xml_path, &xml).expect("write corpus xml");

    // Reference build; both snapshot generations serialize it.
    let reference = build_cold(&xml);
    std::fs::write(&v1_path, reference.encode_snapshot().to_bytes()).expect("save v1 snapshot");
    reference.save_snapshot(&v3_path).expect("save v3 snapshot");
    reference
        .save_snapshot(&v3_path2)
        .expect("save v3 snapshot");
    let bytes_a = std::fs::read(&v3_path).expect("read snapshot");
    let bytes_b = std::fs::read(&v3_path2).expect("read snapshot");
    let deterministic = bytes_a == bytes_b;

    // Correctness gate before timing: built, v1-loaded and v3-mapped
    // engines answer a probe meet byte-identically.
    let from_v1 = Database::open_snapshot(&v1_path).expect("load v1 snapshot");
    let mapped_db = Database::open_snapshot(&v3_path).expect("map v3 snapshot");
    let [t1, t2] = probe_terms(label);
    let expected = reference.meet_terms(&[t1, t2]).unwrap().to_detailed_xml();
    let agree = expected == from_v1.meet_terms(&[t1, t2]).unwrap().to_detailed_xml()
        && expected == mapped_db.meet_terms(&[t1, t2]).unwrap().to_detailed_xml();

    // Interleaved cold starts; engines stay alive until the end of the
    // round so allocator reuse doesn't lopsidedly favour one side.
    let mut parse_samples = Vec::with_capacity(rounds);
    let mut v1_samples = Vec::with_capacity(rounds);
    let mut map_samples = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let mut built = None;
        parse_samples.push(time_us(|| {
            let text = std::fs::read_to_string(&xml_path).expect("read corpus xml");
            built = Some(build_cold(&text));
        }));
        let mut v1 = None;
        v1_samples.push(time_us(|| {
            v1 = Some(Database::open_snapshot(&v1_path).expect("load v1 snapshot"));
        }));
        let mut v3 = None;
        map_samples.push(time_us(|| {
            v3 = Some(Database::open_snapshot(&v3_path).expect("map v3 snapshot"));
        }));
        drop(built);
        drop(v1);
        drop(v3);
    }
    let parse_build_us = floor(parse_samples);
    let v1_load_us = floor(v1_samples);
    let map_open_us = floor(map_samples);

    for p in [&xml_path, &v1_path, &v3_path, &v3_path2] {
        std::fs::remove_file(p).ok();
    }
    Pr10Row {
        corpus: label.to_string(),
        nodes: reference.store().node_count(),
        snapshot_bytes: bytes_a.len(),
        mapped: !ncq_store::mmap_disabled(),
        parse_build_us,
        v1_load_us,
        map_open_us,
        speedup_vs_v1: v1_load_us / map_open_us,
        speedup_vs_build: parse_build_us / map_open_us,
        agree,
        deterministic,
    }
}

fn dblp_xml(papers_per_edition: usize, journal_articles_per_year: usize) -> String {
    let corpus = DblpCorpus::generate(&DblpConfig {
        papers_per_edition,
        journal_articles_per_year,
        ..DblpConfig::default()
    });
    write_document(&corpus.document, WriteOptions::default())
}

fn multimedia_xml(noise_items: usize) -> String {
    let corpus = MultimediaCorpus::generate(&MultimediaConfig {
        noise_items,
        ..MultimediaConfig::default()
    });
    write_document(&corpus.document, WriteOptions::default())
}

/// Run the snapshot. `quick` shrinks corpora and repetitions for CI.
pub fn run(quick: bool) -> Pr10Result {
    let dir = std::env::temp_dir().join("ncq-bench-pr10");
    std::fs::create_dir_all(&dir).expect("create bench scratch dir");
    let rounds = if quick { 3 } else { 7 };
    let mut rows = Vec::new();

    // DBLP substitute (flat, string-heavy: symbols and postings
    // dominate, so this is the *worst* case for the mapped open — most
    // of the file is verified-at-decode sections).
    rows.push(row("dblp (small)", dblp_xml(8, 3), &dir, rounds));
    if !quick {
        rows.push(row("dblp (case-study)", dblp_xml(75, 12), &dir, rounds));
    }

    // Multimedia substitute (Figure 6's corpus shape).
    rows.push(row("multimedia (small)", multimedia_xml(100), &dir, rounds));
    if !quick {
        rows.push(row(
            "multimedia (large)",
            multimedia_xml(2_000),
            &dir,
            rounds,
        ));
    }

    // Deep fork forest (structure-heavy: the big columns and the meet
    // index are lazily-verified mapped arrays, so the v3 open touches
    // almost none of the file — the acceptance row).
    let (small_pairs, large_pairs) = (300, 3_000);
    rows.push(row(
        &format!("deep forks (depth 96, {small_pairs} pairs)"),
        deep_xml(96, small_pairs),
        &dir,
        rounds,
    ));
    if !quick {
        rows.push(row(
            &format!("deep forks (depth 96, {large_pairs} pairs)"),
            deep_xml(96, large_pairs),
            &dir,
            rounds,
        ));
    }

    Pr10Result { rows }
}

/// Text table for stdout.
pub fn table(r: &Pr10Result) -> String {
    let mut out = String::from(
        "# PR 10 — zero-copy mmap snapshots (cold start: v3 map vs v1 load vs parse+build)\n\
         ## speedup_vs_v1 = v1_load / map_open; both loads use Database::open_snapshot\n",
    );
    for row in &r.rows {
        out.push_str(&format!(
            "{}: nodes={} snap={}B mapped={} parse_build={:.0}us v1_load={:.0}us \
             map_open={:.0}us (vs_v1 {:.1}x, vs_build {:.1}x) agree={} deterministic={}\n",
            row.corpus,
            row.nodes,
            row.snapshot_bytes,
            row.mapped,
            row.parse_build_us,
            row.v1_load_us,
            row.map_open_us,
            row.speedup_vs_v1,
            row.speedup_vs_build,
            row.agree,
            row.deterministic
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_snapshot_has_sane_shape() {
        let r = run(true);
        assert_eq!(r.rows.len(), 3);
        for row in &r.rows {
            assert!(row.agree, "{}: loaded answers diverged", row.corpus);
            assert!(
                row.deterministic,
                "{}: v3 bytes nondeterministic",
                row.corpus
            );
            assert!(row.parse_build_us > 0.0 && row.v1_load_us > 0.0 && row.map_open_us > 0.0);
            assert!(row.nodes > 0 && row.snapshot_bytes > 0);
        }
        let text = table(&r);
        assert!(text.contains("deep forks"));
        assert!(text.contains("dblp"));
    }
}
