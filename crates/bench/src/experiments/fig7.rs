//! Figure 7: the DBLP case study.
//!
//! > "We now want to list all publications in the ICDE proceedings of a
//! > certain year. To achieve this, we do a full-text search for the
//! > strings 'ICDE' and the year and calculate the meets … with the
//! > document root excluded from the set of possible results. To
//! > demonstrate that the algorithm scales we iteratively extend the
//! > search interval from 1999 back to 1984 (note that there was no ICDE
//! > in 1985, hence the small step at about 1100 on the x-axis) … for a
//! > result set of 1000 publications the computation takes about three
//! > seconds (the time the full-text search takes is not included)."
//!
//! Claims to reproduce: the meet time is **linear in the output
//! cardinality**; the answers are almost exclusively the ICDE
//! publications of the interval (two false positives); the 1985 gap shows
//! as a flat step.

use crate::measure::{millis, time_median};
use ncq_core::{Database, MeetOptions, PathFilter};
use ncq_fulltext::HitSet;

/// Configuration for the Figure 7 sweep.
#[derive(Debug, Clone)]
pub struct Fig7Config {
    /// The fixed upper end of the year interval (the paper: 1999).
    pub end_year: u16,
    /// The lowest interval start (the paper: 1984).
    pub start_year: u16,
    /// Wall-clock repetitions per measurement (median taken).
    pub runs: usize,
}

impl Default for Fig7Config {
    fn default() -> Fig7Config {
        Fig7Config {
            end_year: 1999,
            start_year: 1984,
            runs: 3,
        }
    }
}

/// One point of the Figure 7 series.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// Interval start (sweeps 1999 → 1984).
    pub year_from: u16,
    /// Total input associations fed to the meet.
    pub input_cardinality: usize,
    /// Output cardinality (number of meets) — the paper's x-axis.
    pub output_cardinality: usize,
    /// Elapsed meet time, ms (full-text excluded, as in the paper).
    pub meet_ms: f64,
    /// Results that are *not* ICDE inproceedings/proceedings records.
    pub false_positives: usize,
}

/// The full Figure 7 result.
#[derive(Debug, Clone)]
pub struct Fig7Result {
    /// One row per interval start, 1999 first.
    pub rows: Vec<Fig7Row>,
    /// Objects in the corpus.
    pub corpus_objects: usize,
}

/// Run the case study on a prepared DBLP database.
pub fn run(db: &Database, config: &Fig7Config) -> Fig7Result {
    let icde_hits = db.search_word("ICDE");
    let options = MeetOptions {
        filter: PathFilter::exclude_root(db.store()),
        ..MeetOptions::default()
    };

    // Identify the paths of legitimate answers: inproceedings records
    // (booktitle ICDE + year meet there) and proceedings records.
    let store = db.store();
    let legit: Vec<_> = ["inproceedings", "proceedings"]
        .iter()
        .filter_map(|tag| store.summary().lookup_in(&["dblp", tag], store.symbols()))
        .collect();

    let mut rows = Vec::new();
    let mut year_hits = HitSet::new();
    for year_from in (config.start_year..=config.end_year).rev() {
        // Extend the year interval downward, reusing previous hits.
        year_hits.union(&db.search_word(&year_from.to_string()));
        let inputs = [icde_hits.clone(), year_hits.clone()];

        let (meets, d) = time_median(config.runs, || db.meet_hits(&inputs, &options));

        let false_positives = meets.iter().filter(|m| !legit.contains(&m.path)).count();
        rows.push(Fig7Row {
            year_from,
            input_cardinality: inputs[0].len() + inputs[1].len(),
            output_cardinality: meets.len(),
            meet_ms: millis(d),
            false_positives,
        });
    }

    Fig7Result {
        rows,
        corpus_objects: db.store().node_count(),
    }
}

/// Text table in the shape of the paper's plot data.
pub fn table(result: &Fig7Result) -> String {
    let mut out = String::from(
        "# Figure 7 — DBLP case study: meet after full-text search\n\
         # year_from  inputs  output_cardinality  meet_ms  false_positives\n",
    );
    for r in &result.rows {
        out.push_str(&format!(
            "{:>11}  {:>6}  {:>18}  {:>7.3}  {:>15}\n",
            r.year_from, r.input_cardinality, r.output_cardinality, r.meet_ms, r.false_positives
        ));
    }
    out
}

crate::impl_to_json_struct!(Fig7Row {
    year_from,
    input_cardinality,
    output_cardinality,
    meet_ms,
    false_positives,
});
crate::impl_to_json_struct!(Fig7Result {
    rows,
    corpus_objects
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::corpora;

    #[test]
    fn fig7_case_study_shape_holds() {
        let (db, corpus) = corpora::dblp_small();
        let result = run(&db, &Fig7Config::default());
        assert_eq!(result.rows.len(), 16);

        // Cardinality grows monotonically as the interval extends…
        for w in result.rows.windows(2) {
            assert!(w[1].output_cardinality >= w[0].output_cardinality);
        }
        // …with a flat step at the 1985 extension (no ICDE 1985: only the
        // interval [1985, 1999] adds nothing over [1986, 1999]).
        let by_year = |y: u16| {
            result
                .rows
                .iter()
                .find(|r| r.year_from == y)
                .unwrap()
                .output_cardinality
        };
        assert_eq!(by_year(1985), by_year(1986), "1985 must be a flat step");
        assert!(by_year(1984) > by_year(1985));
        assert!(
            by_year(1999)
                >= corpus
                    .editions
                    .iter()
                    .filter(|e| e.0 == "ICDE" && e.1 == 1999)
                    .map(|e| e.2)
                    .sum::<usize>()
        );

        // The full sweep sees exactly the two planted false positives.
        assert_eq!(result.rows.last().unwrap().false_positives, 2);

        // Output ≈ ICDE pubs of the interval (+proceedings, +2 fp).
        let icde_pubs: usize = corpus
            .editions
            .iter()
            .filter(|e| e.0 == "ICDE")
            .map(|e| e.2 + 1) // papers + the proceedings record
            .sum();
        let full = result.rows.last().unwrap().output_cardinality;
        assert_eq!(full, icde_pubs + 2);

        let t = table(&result);
        assert!(t.contains("Figure 7"));
    }
}
