//! PR 4 perf snapshot: cold start from a persistent snapshot vs the
//! parse → transform → index build pipeline.
//!
//! One table, emitted as `BENCH_pr4.json` by `repro --exp pr4`: for
//! each corpus (DBLP substitute, multimedia substitute, deep fork
//! forest) at several scales, the **full** cold start is timed both
//! ways through the filesystem:
//!
//! * `parse_build`: read the XML file, parse, Monet transform, build
//!   the inverted index, the Euler-tour meet index and the planner /
//!   partitioner statistics — everything a process needs before it can
//!   serve its first indexed meet;
//! * `snapshot_load`: `Database::open_snapshot` on the versioned
//!   binary snapshot of the same instance (checksum verification
//!   included).
//!
//! Every row asserts answer equality between the built and the loaded
//! engine before timing, and checks that saving twice produces
//! byte-identical files (the determinism contract the CI
//! `snapshot-compat` job enforces with `cmp`).

use ncq_core::Database;
use ncq_datagen::{DblpConfig, DblpCorpus, MultimediaConfig, MultimediaCorpus};
use ncq_xml::{write_document, WriteOptions};
use std::path::Path;
use std::time::Instant;

/// One corpus × scale row.
#[derive(Debug, Clone)]
pub struct Pr4Row {
    /// Corpus label.
    pub corpus: String,
    /// Objects in the instance.
    pub nodes: usize,
    /// Serialized XML size, bytes.
    pub xml_bytes: usize,
    /// Snapshot file size, bytes.
    pub snapshot_bytes: usize,
    /// Full parse + build cold start, ms (min over rounds).
    pub parse_build_ms: f64,
    /// Snapshot load cold start, ms (min over rounds).
    pub snapshot_load_ms: f64,
    /// `parse_build_ms / snapshot_load_ms`.
    pub speedup: f64,
    /// The loaded engine answered a probe meet identically.
    pub agree: bool,
    /// Two saves produced byte-identical snapshots.
    pub deterministic: bool,
}

/// The full PR 4 snapshot.
#[derive(Debug, Clone)]
pub struct Pr4Result {
    /// All rows, grouped by corpus then scale.
    pub rows: Vec<Pr4Row>,
}

crate::impl_to_json_struct!(Pr4Row {
    corpus,
    nodes,
    xml_bytes,
    snapshot_bytes,
    parse_build_ms,
    snapshot_load_ms,
    speedup,
    agree,
    deterministic,
});
crate::impl_to_json_struct!(Pr4Result { rows });

/// The deep fork forest of the PR 1/PR 3 snapshots, as XML text:
/// `pairs` records, each a `<h>` head with two depth-`depth` chains
/// ending in text leaves — the corpus whose meet index build is most
/// expensive relative to its size.
fn deep_xml(depth: usize, pairs: usize) -> String {
    let mut xml = String::with_capacity(pairs * depth * 8);
    xml.push_str("<root>");
    for _ in 0..pairs {
        xml.push_str("<h>");
        for _ in 0..depth {
            xml.push_str("<x>");
        }
        xml.push_str("<a>s</a>");
        for _ in 0..depth {
            xml.push_str("</x>");
        }
        for _ in 0..depth {
            xml.push_str("<y>");
        }
        xml.push_str("<b>t</b>");
        for _ in 0..depth {
            xml.push_str("</y>");
        }
        xml.push_str("</h>");
    }
    xml.push_str("</root>");
    xml
}

/// The complete cold start the snapshot replaces: parse the XML text,
/// run the Monet transform, build the inverted index, the meet index
/// and both cached statistics.
fn build_cold(xml: &str) -> Database {
    let db = Database::from_xml_str(xml).expect("benchmark corpus parses");
    db.store().meet_index();
    db.store().depth_stats();
    db.store().partition_stats();
    db
}

/// Probe terms per corpus: two terms that hit every corpus in this
/// file (datagen text pools and the deep forest leaves).
fn probe_terms(corpus: &str) -> [&'static str; 2] {
    if corpus.starts_with("deep") {
        ["s", "t"]
    } else {
        ["1999", "1995"]
    }
}

fn time_ms(mut f: impl FnMut()) -> f64 {
    let t = Instant::now();
    f();
    t.elapsed().as_secs_f64() * 1e3
}

fn floor(v: impl IntoIterator<Item = f64>) -> f64 {
    v.into_iter().fold(f64::INFINITY, f64::min)
}

fn row(label: &str, xml: String, dir: &Path, rounds: usize) -> Pr4Row {
    let xml_path = dir.join(format!("{}.xml", label.replace([' ', '(', ')', ','], "_")));
    let snap_path = xml_path.with_extension("ncq");
    let snap_path2 = xml_path.with_extension("ncq2");
    std::fs::write(&xml_path, &xml).expect("write corpus xml");

    // Reference build; its snapshot is what cold loads read back.
    let reference = build_cold(&xml);
    reference.save_snapshot(&snap_path).expect("save snapshot");
    reference.save_snapshot(&snap_path2).expect("save snapshot");
    let bytes_a = std::fs::read(&snap_path).expect("read snapshot");
    let bytes_b = std::fs::read(&snap_path2).expect("read snapshot");
    let deterministic = bytes_a == bytes_b;

    // Correctness gate before timing: the loaded engine answers a
    // probe meet byte-identically.
    let loaded = Database::open_snapshot(&snap_path).expect("load snapshot");
    let [t1, t2] = probe_terms(label);
    let agree = reference.meet_terms(&[t1, t2]).unwrap().to_detailed_xml()
        == loaded.meet_terms(&[t1, t2]).unwrap().to_detailed_xml();

    // Interleaved cold starts; keep the engines alive until after the
    // round so allocator reuse doesn't lopsidedly favour either side.
    let mut parse_samples = Vec::with_capacity(rounds);
    let mut load_samples = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let mut built = None;
        parse_samples.push(time_ms(|| {
            let text = std::fs::read_to_string(&xml_path).expect("read corpus xml");
            built = Some(build_cold(&text));
        }));
        let mut opened = None;
        load_samples.push(time_ms(|| {
            opened = Some(Database::open_snapshot(&snap_path).expect("load snapshot"));
        }));
        drop(built);
        drop(opened);
    }
    let parse_build_ms = floor(parse_samples);
    let snapshot_load_ms = floor(load_samples);

    for p in [&xml_path, &snap_path, &snap_path2] {
        std::fs::remove_file(p).ok();
    }
    Pr4Row {
        corpus: label.to_string(),
        nodes: reference.store().node_count(),
        xml_bytes: xml.len(),
        snapshot_bytes: bytes_a.len(),
        parse_build_ms,
        snapshot_load_ms,
        speedup: parse_build_ms / snapshot_load_ms,
        agree,
        deterministic,
    }
}

fn dblp_xml(papers_per_edition: usize, journal_articles_per_year: usize) -> String {
    let corpus = DblpCorpus::generate(&DblpConfig {
        papers_per_edition,
        journal_articles_per_year,
        ..DblpConfig::default()
    });
    write_document(&corpus.document, WriteOptions::default())
}

fn multimedia_xml(noise_items: usize) -> String {
    let corpus = MultimediaCorpus::generate(&MultimediaConfig {
        noise_items,
        ..MultimediaConfig::default()
    });
    write_document(&corpus.document, WriteOptions::default())
}

/// Run the snapshot. `quick` shrinks corpora and repetitions for CI.
pub fn run(quick: bool) -> Pr4Result {
    let dir = std::env::temp_dir().join("ncq-bench-pr4");
    std::fs::create_dir_all(&dir).expect("create bench scratch dir");
    let rounds = if quick { 3 } else { 5 };
    let mut rows = Vec::new();

    // DBLP substitute (flat, string-heavy).
    rows.push(row("dblp (small)", dblp_xml(8, 3), &dir, rounds));
    if !quick {
        rows.push(row("dblp (case-study)", dblp_xml(75, 12), &dir, rounds));
    }

    // Multimedia substitute (Figure 6's corpus shape).
    rows.push(row("multimedia (small)", multimedia_xml(100), &dir, rounds));
    if !quick {
        rows.push(row(
            "multimedia (large)",
            multimedia_xml(2_000),
            &dir,
            rounds,
        ));
    }

    // Deep fork forest (structure-heavy; the meet index build is the
    // dominant preprocess here — the acceptance row).
    let (small_pairs, large_pairs) = (300, 3_000);
    rows.push(row(
        &format!("deep forks (depth 96, {small_pairs} pairs)"),
        deep_xml(96, small_pairs),
        &dir,
        rounds,
    ));
    if !quick {
        rows.push(row(
            &format!("deep forks (depth 96, {large_pairs} pairs)"),
            deep_xml(96, large_pairs),
            &dir,
            rounds,
        ));
    }

    Pr4Result { rows }
}

/// Text table for stdout.
pub fn table(r: &Pr4Result) -> String {
    let mut out = String::from(
        "# PR 4 — persistent snapshots (cold start: parse+build vs snapshot load)\n\
         ## speedup = parse_build / snapshot_load; both sides read from the filesystem\n",
    );
    for row in &r.rows {
        out.push_str(&format!(
            "{}: nodes={} xml={}B snap={}B parse_build={:.1}ms load={:.1}ms \
             ({:.1}x) agree={} deterministic={}\n",
            row.corpus,
            row.nodes,
            row.xml_bytes,
            row.snapshot_bytes,
            row.parse_build_ms,
            row.snapshot_load_ms,
            row.speedup,
            row.agree,
            row.deterministic
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_snapshot_has_sane_shape() {
        let r = run(true);
        assert_eq!(r.rows.len(), 3);
        for row in &r.rows {
            assert!(row.agree, "{}: loaded answers diverged", row.corpus);
            assert!(row.deterministic, "{}: bytes nondeterministic", row.corpus);
            assert!(row.parse_build_ms > 0.0 && row.snapshot_load_ms > 0.0);
            assert!(row.nodes > 0 && row.snapshot_bytes > 0);
        }
        let text = table(&r);
        assert!(text.contains("deep forks"));
        assert!(text.contains("dblp"));
    }

    #[test]
    fn deep_xml_parses_to_the_expected_shape() {
        let db = Database::from_xml_str(&deep_xml(4, 3)).unwrap();
        // 1 root + 3 × (1 head + 2×(4 chain + 1 leaf + 1 cdata)).
        assert_eq!(db.store().node_count(), 1 + 3 * (1 + 2 * 6));
        assert_eq!(db.search("s").len(), 3);
    }

    // Keep the corpora helpers honest (they feed `repro --exp pr4`).
    #[test]
    fn corpus_builders_emit_parseable_xml() {
        for xml in [dblp_xml(2, 1), multimedia_xml(5)] {
            assert!(Database::from_xml_str(&xml).is_ok());
        }
    }
}
