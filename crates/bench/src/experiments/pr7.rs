//! PR 7 perf snapshot: the bounded, batched, cached hot path.
//!
//! Three tables, emitted as `BENCH_pr7.json` by `repro --exp pr7`:
//!
//! * **batched vs serial** — the shared-evaluation batch executor
//!   (`Database::meet_hits_batch`) against one-at-a-time `meet_hits`
//!   over the same query list, at batch sizes 1 / 8 / 64. Queries draw
//!   term pairs from a small pool, as a server batch window does:
//!   popular hit sets recur across the batch (shared sorted-run
//!   decodes) and whole queries repeat (duplicate dedup). Gates:
//!   ≥ 1.2× at batch 64, and the degenerate batch of 1 — which
//!   delegates straight to the serial path — ≥ 0.95×.
//! * **top-k vs full** — `MeetOptions::limit` against unbounded
//!   evaluation on a deep-fork corpus where a few *good* pairs meet
//!   deep (distance 4) and many *bad* pairs only meet at their fork
//!   head (distance 2·depth+2). The early exits stop the roll-up after
//!   a couple of climb levels and the sweep before the far candidates;
//!   the gate is that top-k beats full at k = 10. k = 100 exceeds the
//!   good answers, so it degrades toward full cost by design.
//! * **semantic cache hit latency** — a repeated `MEET` through a
//!   server with the generation-tagged result cache vs the same server
//!   with the cache disabled (capacity 0). Hits skip term decode and
//!   evaluation entirely; the row records what that saves end to end.
//!
//! Every row asserts byte-identical answers between the fast and the
//! reference path before timing.

use crate::experiments::corpora;
use ncq_core::{BatchQuery, Database, MeetOptions, MeetStrategy};
use ncq_fulltext::HitSet;
use ncq_server::{Request, Response, Server, ServerConfig};
use std::sync::Arc;
use std::time::Instant;

/// One batch-size row of the batched-vs-serial table.
#[derive(Debug, Clone)]
pub struct Pr7Batch {
    /// Queries per batch.
    pub batch: usize,
    /// Distinct queries in the batch (the rest are duplicates).
    pub distinct: usize,
    /// One-at-a-time evaluation of the whole batch, ms (min over rounds).
    pub serial_ms: f64,
    /// `meet_hits_batch` over the same queries, ms (min over rounds).
    pub batched_ms: f64,
    /// `serial / batched` — ≥ 1.2 at batch 64, ≥ 0.95 at batch 1.
    pub ratio: f64,
    /// Batched answers were byte-identical to serial answers.
    pub agree: bool,
}

/// One (strategy, k) row of the top-k table.
#[derive(Debug, Clone)]
pub struct Pr7TopK {
    /// `lift` or `sweep` (pinned, so both operators' exits are read).
    pub strategy: String,
    /// The `limit k` bound.
    pub k: usize,
    /// Unbounded evaluation, ms (min over rounds).
    pub full_ms: f64,
    /// `limit k` evaluation, ms (min over rounds).
    pub bounded_ms: f64,
    /// `full / bounded` — the gate is > 1.0 at k = 10.
    pub ratio: f64,
    /// The bounded answers equal the unbounded ranking's first k.
    pub agree: bool,
}

/// The semantic-cache hit latency row.
#[derive(Debug, Clone)]
pub struct Pr7SemCache {
    /// Timed requests per server.
    pub queries: usize,
    /// Mean request latency with the cache disabled, µs.
    pub uncached_us: f64,
    /// Mean request latency against a warmed cache, µs.
    pub hit_us: f64,
    /// `uncached / hit` — what skipping evaluation saves end to end.
    pub ratio: f64,
    /// Semantic hits counted by the warmed server.
    pub sem_hits: usize,
    /// Cached and uncached answers were byte-identical.
    pub agree: bool,
}

/// The full PR 7 snapshot.
#[derive(Debug, Clone)]
pub struct Pr7Result {
    /// Nodes in the batch/sem-cache corpus.
    pub nodes: usize,
    /// Nodes in the deep-fork top-k corpus.
    pub topk_nodes: usize,
    /// Batched vs serial rows, one per batch size.
    pub batch: Vec<Pr7Batch>,
    /// Top-k vs full rows, one per (strategy, k).
    pub topk: Vec<Pr7TopK>,
    /// The semantic-cache hit latency row.
    pub sem: Pr7SemCache,
}

crate::impl_to_json_struct!(Pr7Batch {
    batch,
    distinct,
    serial_ms,
    batched_ms,
    ratio,
    agree,
});
crate::impl_to_json_struct!(Pr7TopK {
    strategy,
    k,
    full_ms,
    bounded_ms,
    ratio,
    agree,
});
crate::impl_to_json_struct!(Pr7SemCache {
    queries,
    uncached_us,
    hit_us,
    ratio,
    sem_hits,
    agree,
});
crate::impl_to_json_struct!(Pr7Result {
    nodes,
    topk_nodes,
    batch,
    topk,
    sem,
});

fn time_ms(mut f: impl FnMut()) -> f64 {
    let t = Instant::now();
    f();
    t.elapsed().as_secs_f64() * 1e3
}

fn floor(v: impl IntoIterator<Item = f64>) -> f64 {
    v.into_iter().fold(f64::INFINITY, f64::min)
}

/// The deep-fork top-k corpus: `good` heads hide an adjacent `s`/`t`
/// pair at the bottom of a depth-`depth` chain (meet at the pair
/// element, distance 4, deepest in the tree); `bad` heads put `s` and
/// `t` at the bottoms of two separate depth-`depth` chains (meet at the
/// head, distance 2·(depth+1), after a long climb). Good heads come
/// first in document order.
fn topk_xml(depth: usize, good: usize, bad: usize) -> String {
    let mut xml = String::with_capacity((good + bad) * depth * 8);
    xml.push_str("<root>");
    for _ in 0..good {
        xml.push_str("<h>");
        for _ in 0..depth {
            xml.push_str("<x>");
        }
        xml.push_str("<p><a>s</a><b>t</b></p>");
        for _ in 0..depth {
            xml.push_str("</x>");
        }
        xml.push_str("</h>");
    }
    for _ in 0..bad {
        xml.push_str("<h>");
        for _ in 0..depth {
            xml.push_str("<x>");
        }
        xml.push_str("<a>s</a>");
        for _ in 0..depth {
            xml.push_str("</x>");
        }
        for _ in 0..depth {
            xml.push_str("<y>");
        }
        xml.push_str("<b>t</b>");
        for _ in 0..depth {
            xml.push_str("</y>");
        }
        xml.push_str("</h>");
    }
    xml.push_str("</root>");
    xml
}

/// Batched vs serial at one batch size over a pool of term-pair
/// queries with recurring hit sets.
fn batch_row(db: &Database, pool: &[(&HitSet, &HitSet)], batch: usize, rounds: usize) -> Pr7Batch {
    let options = MeetOptions::default();
    let queries: Vec<BatchQuery<'_>> = (0..batch)
        .map(|i| {
            let (a, b) = pool[i % pool.len()];
            BatchQuery::new(vec![a, b], options.clone())
        })
        .collect();
    let distinct = batch.min(pool.len());

    let serial_once = || {
        for q in &queries {
            std::hint::black_box(db.meet_hits(&q.inputs, &q.options));
        }
    };
    let batched_once = || {
        std::hint::black_box(db.meet_hits_batch(&queries));
    };
    let agree = db
        .meet_hits_batch(&queries)
        .iter()
        .zip(&queries)
        .all(|(got, q)| *got == db.meet_hits(&q.inputs, &q.options));

    // Warm, then min over interleaved rounds.
    serial_once();
    batched_once();
    let mut serial_samples = Vec::with_capacity(rounds);
    let mut batched_samples = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        serial_samples.push(time_ms(serial_once));
        batched_samples.push(time_ms(batched_once));
    }
    let serial_ms = floor(serial_samples);
    let batched_ms = floor(batched_samples);
    Pr7Batch {
        batch,
        distinct,
        serial_ms,
        batched_ms,
        ratio: serial_ms / batched_ms,
        agree,
    }
}

/// Run the snapshot. `quick` shrinks corpora and repetitions for CI.
pub fn run(quick: bool) -> Pr7Result {
    let rounds = if quick { 5 } else { 9 };

    // ----- batched vs serial -----
    let (db, _) = if quick {
        corpora::dblp_small()
    } else {
        corpora::dblp_case_study()
    };
    db.store().meet_index();
    let mut terms: Vec<String> = (1984u16..2000).map(|y| y.to_string()).collect();
    terms.push("ICDE".to_owned());
    let hits: Vec<HitSet> = terms.iter().map(|t| db.search(t)).collect();
    let icde = hits.last().expect("ICDE hits");
    // 16 distinct year × ICDE pairs; batch 64 repeats each 4 times,
    // exactly like a busy window over a popular query mix.
    let pool: Vec<(&HitSet, &HitSet)> = hits[..16].iter().map(|h| (h, icde)).collect();
    let batch_rows: Vec<Pr7Batch> = [1usize, 8, 64]
        .into_iter()
        .map(|b| batch_row(&db, &pool, b, rounds))
        .collect();

    // ----- top-k vs full -----
    let (depth, good, bad) = if quick { (24, 12, 150) } else { (64, 16, 800) };
    let deep = Database::from_xml_str(&topk_xml(depth, good, bad)).expect("top-k corpus");
    deep.store().meet_index();
    let s = deep.search("s");
    let t = deep.search("t");
    let inputs = [&s, &t];
    let mut topk_rows = Vec::new();
    for (label, strategy) in [("lift", MeetStrategy::Lift), ("sweep", MeetStrategy::Sweep)] {
        let full_opts = MeetOptions {
            strategy,
            ..MeetOptions::default()
        };
        let full = deep.meet_hits(&inputs, &full_opts);
        let full_ms = floor((0..rounds).map(|_| {
            time_ms(|| {
                std::hint::black_box(deep.meet_hits(&inputs, &full_opts));
            })
        }));
        for k in [1usize, 10, 100] {
            let opts = MeetOptions {
                strategy,
                limit: Some(k),
                ..MeetOptions::default()
            };
            let bounded = deep.meet_hits(&inputs, &opts);
            let agree = bounded == full[..k.min(full.len())];
            let bounded_ms = floor((0..rounds).map(|_| {
                time_ms(|| {
                    std::hint::black_box(deep.meet_hits(&inputs, &opts));
                })
            }));
            topk_rows.push(Pr7TopK {
                strategy: label.to_owned(),
                k,
                full_ms,
                bounded_ms,
                ratio: full_ms / bounded_ms,
                agree,
            });
        }
    }

    // ----- semantic cache hit latency -----
    let queries = if quick { 200 } else { 1_000 };
    let probe = Request::meet_terms(["1999", "ICDE"]);
    let answer = |server: &Server, n: usize| -> (String, f64) {
        let client = server.client();
        // Warm (first request is the miss that populates the cache).
        let mut last = match client.request(probe.clone()).unwrap() {
            Response::Answers(a) => a.to_detailed_xml(),
            other => panic!("unexpected {other:?}"),
        };
        let t = Instant::now();
        for _ in 0..n {
            match client.request(probe.clone()).unwrap() {
                Response::Answers(a) => last = a.to_detailed_xml(),
                other => panic!("unexpected {other:?}"),
            }
        }
        (last, t.elapsed().as_secs_f64() * 1e6 / n as f64)
    };
    let uncached_server = Server::start(
        Arc::new(db.clone()),
        ServerConfig {
            workers: 1,
            sem_cache_capacity: 0,
            ..ServerConfig::default()
        },
    );
    let (uncached_xml, uncached_us) = answer(&uncached_server, queries);
    uncached_server.shutdown();
    let cached_server = Server::start(
        Arc::new(db.clone()),
        ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        },
    );
    let (hit_xml, hit_us) = answer(&cached_server, queries);
    let stats = cached_server.shutdown();
    let sem = Pr7SemCache {
        queries,
        uncached_us,
        hit_us,
        ratio: uncached_us / hit_us,
        sem_hits: stats.sem_hits,
        agree: uncached_xml == hit_xml,
    };

    Pr7Result {
        nodes: db.store().node_count(),
        topk_nodes: deep.store().node_count(),
        batch: batch_rows,
        topk: topk_rows,
        sem,
    }
}

/// Text table for stdout.
pub fn table(r: &Pr7Result) -> String {
    let mut out = String::from("# PR 7 — batched sweeps, top-k early exit, semantic cache\n");
    out.push_str(&format!(
        "## batched vs serial on {} nodes (gates: >=1.2x at 64, >=0.95x at 1)\n",
        r.nodes
    ));
    for row in &r.batch {
        out.push_str(&format!(
            "batch={:<3} distinct={:<2} serial={:.2}ms batched={:.2}ms ratio={:.2}x agree={}\n",
            row.batch, row.distinct, row.serial_ms, row.batched_ms, row.ratio, row.agree
        ));
    }
    out.push_str(&format!(
        "## top-k vs full on {} deep-fork nodes (gate: >1.0x at k=10)\n",
        r.topk_nodes
    ));
    for row in &r.topk {
        out.push_str(&format!(
            "{:<5} k={:<3} full={:.2}ms bounded={:.2}ms ratio={:.2}x agree={}\n",
            row.strategy, row.k, row.full_ms, row.bounded_ms, row.ratio, row.agree
        ));
    }
    out.push_str("## semantic cache hit latency (informational)\n");
    out.push_str(&format!(
        "queries={} uncached={:.1}us hit={:.1}us ratio={:.2}x sem_hits={} agree={}\n",
        r.sem.queries, r.sem.uncached_us, r.sem.hit_us, r.sem.ratio, r.sem.sem_hits, r.sem.agree
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_snapshot_has_sane_shape_and_meets_the_gates() {
        let r = run(true);
        assert!(r.nodes > 0 && r.topk_nodes > 0);

        assert_eq!(r.batch.len(), 3);
        for row in &r.batch {
            assert!(row.agree, "batch={}: batched answers diverged", row.batch);
            assert!(row.serial_ms > 0.0 && row.batched_ms > 0.0);
        }
        // Gate (with slack for CI noise at quick scale, as in the
        // earlier prN suites): ≥ 1.2× at batch 64, and the degenerate
        // batch of 1 must not regress below ≥ 0.95× (slack: 0.90).
        let at = |b: usize| r.batch.iter().find(|row| row.batch == b).unwrap();
        assert!(
            at(64).ratio >= 1.2,
            "batch 64 ratio {:.2} below the 1.2x gate",
            at(64).ratio
        );
        assert!(
            at(1).ratio >= 0.90,
            "batch 1 ratio {:.2} regressed past the floor",
            at(1).ratio
        );

        assert_eq!(r.topk.len(), 6);
        for row in &r.topk {
            assert!(
                row.agree,
                "{} k={}: bounded answers are not the ranked prefix",
                row.strategy, row.k
            );
        }
        // Gate: top-k beats full at k = 10 (the early exits must pay
        // for their own bookkeeping) on both operators.
        for strategy in ["lift", "sweep"] {
            let row = r
                .topk
                .iter()
                .find(|row| row.strategy == strategy && row.k == 10)
                .unwrap();
            assert!(
                row.ratio > 1.0,
                "{strategy} k=10 ratio {:.2} does not beat full evaluation",
                row.ratio
            );
        }

        assert!(r.sem.agree, "cached answers diverged from uncached");
        assert_eq!(r.sem.sem_hits, r.sem.queries, "warmed pass must all hit");
        assert!(
            r.sem.ratio > 0.5,
            "sem-cache hit latency ratio {:.2} looks broken",
            r.sem.ratio
        );
    }
}
