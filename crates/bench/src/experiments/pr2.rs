//! PR 2 perf snapshot: the depth-aware meet planner and the batched
//! query server.
//!
//! Two tables, emitted as `BENCH_pr2.json` by `repro --exp pr2`:
//!
//! * **planner** — per workload (flat DBLP-like vs deep fork corpora),
//!   the fixed Fig. 4 frontier lift, the fixed plane sweep, and the
//!   planner-routed facade call side by side. The headline column is
//!   `planner_speedup_vs_best_fixed` = best-fixed-median /
//!   planner-median: ≥ ~1.0 everywhere means the planner closed the
//!   `BENCH_pr1.json` flat-row regression (sweep-only was 0.4× there)
//!   without giving back the deep-corpus win.
//! * **server** — throughput of `ncq-server` under concurrent clients,
//!   batched vs unbatched admission, with the term-cache hit rate that
//!   batching exists to exploit.
//!
//! Interleaved measurement: each timing round samples lift, sweep and
//! planner back-to-back, so drift hits all three alike.

use crate::experiments::corpora;
use crate::experiments::pr1::deep_sets_db;
use ncq_core::{meet_sets, meet_sets_sweep, Database, SetMeets};
use ncq_fulltext::HitSet;
use ncq_server::{Request, Server, ServerConfig};
use ncq_store::Oid;
use std::sync::Arc;
use std::time::Instant;

/// One planner workload row.
#[derive(Debug, Clone)]
pub struct Pr2PlannerRow {
    /// Workload label.
    pub workload: String,
    /// Total input OIDs.
    pub input_hits: usize,
    /// Depth of the inputs = the planner's lift-round estimate.
    pub est_rounds: usize,
    /// The planner's lift-round budget for this cardinality.
    pub round_budget: usize,
    /// Strategy the planner chose (`lift` / `sweep`).
    pub chosen: String,
    /// Minimal meets found.
    pub meets: usize,
    /// Fixed frontier lift, µs (median).
    pub lift_us: f64,
    /// Fixed plane sweep, µs (median).
    pub sweep_us: f64,
    /// Planner-routed facade call, µs (median, includes planning).
    pub planner_us: f64,
    /// `min(lift_us, sweep_us) / planner_us` — ≥ ~1.0 means the planner
    /// matches the best fixed strategy.
    pub planner_speedup_vs_best_fixed: f64,
    /// All three evaluations returned the same (meet, round) multiset.
    pub agree: bool,
}

/// One server throughput row.
#[derive(Debug, Clone)]
pub struct Pr2ServerRow {
    /// Workload label.
    pub workload: String,
    /// Worker threads.
    pub workers: usize,
    /// Concurrent client threads.
    pub clients: usize,
    /// Batch size cap (1 = batching off).
    pub batch_max: usize,
    /// Requests served.
    pub queries: usize,
    /// Wall-clock milliseconds for the whole run.
    pub wall_ms: f64,
    /// Queries per second.
    pub qps: f64,
    /// Share of term look-ups answered from worker caches.
    pub term_cache_hit_rate: f64,
    /// Largest batch a worker actually formed.
    pub max_batch: usize,
}

/// The full PR 2 snapshot.
#[derive(Debug, Clone)]
pub struct Pr2Result {
    /// Planner vs fixed strategies.
    pub planner: Vec<Pr2PlannerRow>,
    /// Server throughput.
    pub server: Vec<Pr2ServerRow>,
}

crate::impl_to_json_struct!(Pr2PlannerRow {
    workload,
    input_hits,
    est_rounds,
    round_budget,
    chosen,
    meets,
    lift_us,
    sweep_us,
    planner_us,
    planner_speedup_vs_best_fixed,
    agree,
});
crate::impl_to_json_struct!(Pr2ServerRow {
    workload,
    workers,
    clients,
    batch_max,
    queries,
    wall_ms,
    qps,
    term_cache_hit_rate,
    max_batch,
});
crate::impl_to_json_struct!(Pr2Result { planner, server });

fn sorted_meets(r: &SetMeets) -> Vec<(Oid, usize)> {
    let mut m = r.meets.clone();
    m.sort_unstable();
    m
}

/// Measure one workload with interleaved sampling: every round times
/// lift, sweep and the planner-routed call back-to-back.
fn planner_row(name: &str, db: &Database, s1: &[Oid], s2: &[Oid], rounds: usize) -> Pr2PlannerRow {
    let store = db.store();
    store.meet_index(); // build outside every timed region
    let plan = db.plan_oid_sets(s1, s2).expect("non-empty inputs");
    let lift_ref = meet_sets(store, s1, s2).expect("homogeneous");
    let sweep_ref = meet_sets_sweep(store, s1, s2).expect("homogeneous");
    let auto_ref = db.meet_oid_sets(s1, s2).expect("homogeneous");
    let agree = sorted_meets(&lift_ref) == sorted_meets(&sweep_ref)
        && sorted_meets(&sweep_ref) == sorted_meets(&auto_ref);

    let mut lift_samples = Vec::with_capacity(rounds);
    let mut sweep_samples = Vec::with_capacity(rounds);
    let mut planner_samples = Vec::with_capacity(rounds);
    for round in 0..rounds {
        // Rotate the execution order each round: each variant inherits
        // every possible cache shadow equally often, so none is
        // systematically measured right after the most polluting one.
        for slot in 0..3 {
            let which = (round + slot) % 3;
            let t = Instant::now();
            match which {
                0 => {
                    std::hint::black_box(meet_sets(store, s1, s2)).ok();
                }
                1 => {
                    std::hint::black_box(meet_sets_sweep(store, s1, s2)).ok();
                }
                _ => {
                    std::hint::black_box(db.meet_oid_sets(s1, s2)).ok();
                }
            }
            let us = t.elapsed().as_secs_f64() * 1e6;
            match which {
                0 => lift_samples.push(us),
                1 => sweep_samples.push(us),
                _ => planner_samples.push(us),
            }
        }
    }
    let median = |mut v: Vec<f64>| -> f64 {
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        v[v.len() / 2]
    };
    let (lift_us, sweep_us, planner_us) = (
        median(lift_samples),
        median(sweep_samples),
        median(planner_samples),
    );
    Pr2PlannerRow {
        workload: name.to_string(),
        input_hits: s1.len() + s2.len(),
        est_rounds: plan.est_rounds,
        round_budget: plan.round_budget,
        chosen: plan.strategy.name().to_string(),
        meets: lift_ref.meets.len(),
        lift_us,
        sweep_us,
        planner_us,
        planner_speedup_vs_best_fixed: lift_us.min(sweep_us) / planner_us,
        agree,
    }
}

/// Fire `per_client` MeetTerms queries from `clients` threads and
/// measure wall-clock throughput.
fn server_row(
    name: &str,
    db: &Arc<Database>,
    terms: &[(String, String)],
    workers: usize,
    clients: usize,
    batch_max: usize,
    per_client: usize,
) -> Pr2ServerRow {
    let server = Server::start(
        Arc::clone(db),
        ServerConfig {
            workers,
            batch_max,
            queue_capacity: 256,
            // This experiment measures term-decode sharing inside a
            // batch; the semantic cache would answer the repeats
            // before they reach the term cache at all.
            sem_cache_capacity: 0,
            ..ServerConfig::default()
        },
    );
    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let client = server.client();
            let terms = terms.to_vec();
            std::thread::spawn(move || {
                for i in 0..per_client {
                    let (a, b) = &terms[(c + i) % terms.len()];
                    let request = Request::meet_terms([a.clone(), b.clone()]);
                    client.request(request).expect("served");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    let wall = start.elapsed();
    let stats = server.shutdown();
    let queries = clients * per_client;
    let lookups = stats.term_decodes + stats.term_cache_hits;
    Pr2ServerRow {
        workload: name.to_string(),
        workers,
        clients,
        batch_max,
        queries,
        wall_ms: wall.as_secs_f64() * 1e3,
        qps: queries as f64 / wall.as_secs_f64(),
        term_cache_hit_rate: if lookups == 0 {
            0.0
        } else {
            stats.term_cache_hits as f64 / lookups as f64
        },
        max_batch: stats.max_batch,
    }
}

/// Run the snapshot. `quick` shrinks corpora and repetitions for CI.
pub fn run(quick: bool) -> Pr2Result {
    let rounds = if quick { 9 } else { 61 };

    // Flat workload: the DBLP case study hit sets of BENCH_pr1's
    // regression row.
    let (flat_db, _) = if quick {
        corpora::dblp_small()
    } else {
        corpora::dblp_case_study()
    };
    let icde = flat_db.search_word("ICDE");
    let mut years = HitSet::new();
    for y in 1984u16..=1999 {
        years.union(&flat_db.search_word(&y.to_string()));
    }
    let largest = |h: &HitSet| -> Vec<Oid> {
        h.groups()
            .iter()
            .max_by_key(|(_, v)| v.len())
            .map(|(_, v)| v.clone())
            .unwrap_or_default()
    };
    let booktitles = largest(&icde);
    let year_cdatas = largest(&years);

    let (deep_depth, deep_pairs) = if quick { (96, 200) } else { (96, 2000) };
    let (deep_db, deep_s, deep_t) = deep_sets_db(deep_depth, deep_pairs);
    let (deeper_db, deeper_s, deeper_t) = if quick {
        deep_sets_db(256, 80)
    } else {
        deep_sets_db(256, 1000)
    };

    let planner = vec![
        planner_row(
            "dblp icde-booktitles × year-cdatas (flat)",
            &flat_db,
            &booktitles,
            &year_cdatas,
            rounds,
        ),
        planner_row(
            &format!("deep forks (depth {deep_depth}, {deep_pairs} pairs)"),
            &deep_db,
            &deep_s,
            &deep_t,
            rounds,
        ),
        planner_row(
            "deep forks (depth 256)",
            &deeper_db,
            &deeper_s,
            &deeper_t,
            rounds,
        ),
    ];

    // Server throughput over the flat corpus: mixed year terms repeat
    // across clients, which is what the batch term cache exploits.
    let server_db = Arc::new(flat_db);
    let term_pairs: Vec<(String, String)> = (1990u16..=1997)
        .map(|y| ("ICDE".to_string(), y.to_string()))
        .collect();
    let per_client = if quick { 40 } else { 200 };
    let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
    let server = vec![
        server_row(
            "dblp meet(ICDE, year) unbatched",
            &server_db,
            &term_pairs,
            workers,
            8,
            1,
            per_client,
        ),
        server_row(
            "dblp meet(ICDE, year) batched",
            &server_db,
            &term_pairs,
            workers,
            8,
            32,
            per_client,
        ),
        server_row(
            "dblp meet(ICDE, year) single client",
            &server_db,
            &term_pairs,
            workers,
            1,
            32,
            per_client,
        ),
    ];

    Pr2Result { planner, server }
}

/// Text table for stdout.
pub fn table(r: &Pr2Result) -> String {
    let mut out = String::from(
        "# PR 2 — depth-aware planner + batched query server\n\
         ## planner (fixed lift vs fixed sweep vs planner-routed)\n",
    );
    for row in &r.planner {
        out.push_str(&format!(
            "{}: hits={} depth={} budget={} chose={} meets={} lift={:.1}us sweep={:.1}us \
             planner={:.1}us ({:.2}x best fixed) agree={}\n",
            row.workload,
            row.input_hits,
            row.est_rounds,
            row.round_budget,
            row.chosen,
            row.meets,
            row.lift_us,
            row.sweep_us,
            row.planner_us,
            row.planner_speedup_vs_best_fixed,
            row.agree
        ));
    }
    out.push_str("## server throughput (MeetTerms workload)\n");
    for row in &r.server {
        out.push_str(&format!(
            "{}: workers={} clients={} batch_max={} queries={} wall={:.1}ms qps={:.0} \
             cache-hit={:.0}% max-batch={}\n",
            row.workload,
            row.workers,
            row.clients,
            row.batch_max,
            row.queries,
            row.wall_ms,
            row.qps,
            100.0 * row.term_cache_hit_rate,
            row.max_batch
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_snapshot_has_sane_shape() {
        let r = run(true);
        assert_eq!(r.planner.len(), 3);
        for row in &r.planner {
            assert!(row.agree, "{}: strategies disagree", row.workload);
            assert!(row.meets > 0);
            assert!(row.planner_us > 0.0);
        }
        // The flat row lifts, the depth-256 row sweeps.
        assert_eq!(r.planner[0].chosen, "lift");
        assert_eq!(r.planner[2].chosen, "sweep");
        assert_eq!(r.server.len(), 3);
        for row in &r.server {
            assert_eq!(row.queries, row.clients * 40);
            assert!(row.qps > 0.0);
        }
        // Batched admission shares decodes: near-perfect hit rate after
        // the first decode of each term.
        assert!(r.server[1].term_cache_hit_rate > 0.5);
        assert!(table(&r).contains("PR 2"));
    }
}
