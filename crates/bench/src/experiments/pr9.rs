//! PR 9 perf snapshot: SIMD kernels vs their scalar references.
//!
//! One table, emitted as `BENCH_pr9.json` by `repro --exp pr9`: every
//! row times the same operation twice — once with the dispatch mode
//! forced to `Scalar`, once forced to the best vector ISA the host
//! offers — and asserts the answers are **byte-identical** before
//! reporting `scalar / vector`.
//!
//! Rows split in two kinds:
//!
//! * **intersect-bound** (`intersect2_deep`, `intersect3_deep`) —
//!   posting-list intersections over a deep-fork corpus whose leaves
//!   carry terms at pseudo-random densities (`beta`/`delta` ~half,
//!   `gamma` ~third), producing the unpredictable hit/miss lane
//!   patterns where branchy scalar merges hurt most. The gate is
//!   ≥ 1.3× on at least one of these.
//! * **parity** (`meet_sets_deep`, `batch_merge`, `sharded_gather`) —
//!   whole-operator paths that *contain* vectorized kernels (frontier
//!   algebra, `merge_tagged`, the gather's interval probes) but are
//!   dominated by other work. The gate is only that vectorization
//!   never costs: no row below 0.95× (CI slack 0.80 at quick scale).
//!
//! On a host with no vector ISA (`mode = scalar`) the rows still run
//! and the equality checks still bite; the perf gates are skipped.

use crate::experiments::corpora;
use ncq_core::{meet_sets, BatchQuery, Database, MeetBackend, MeetOptions};
use ncq_fulltext::{intersect, intersect_all, HitSet, Posting};
use ncq_shard::ShardedDb;
use ncq_simd::Mode;
use ncq_store::Oid;
use std::time::Instant;

/// One scalar-vs-vector row.
#[derive(Debug, Clone)]
pub struct Pr9Row {
    /// Row name (`intersect2_deep`, `batch_merge`, …).
    pub row: String,
    /// Whether this row is intersection-dominated (the ≥ 1.3× gate
    /// applies to at least one such row).
    pub intersect_bound: bool,
    /// Forced-scalar time, ms (min over rounds).
    pub scalar_ms: f64,
    /// Forced-vector time, ms (min over rounds).
    pub vector_ms: f64,
    /// `scalar / vector`.
    pub ratio: f64,
    /// Vector output was byte-identical to scalar output.
    pub agree: bool,
}

/// The full PR 9 snapshot.
#[derive(Debug, Clone)]
pub struct Pr9Result {
    /// The vector mode the rows ran under (`avx2`, `sse2`, or
    /// `scalar` when the host has none — perf gates skip then).
    pub mode: String,
    /// Nodes in the deep-fork corpus.
    pub nodes: usize,
    /// Scalar-vs-vector rows.
    pub rows: Vec<Pr9Row>,
}

crate::impl_to_json_struct!(Pr9Row {
    row,
    intersect_bound,
    scalar_ms,
    vector_ms,
    ratio,
    agree,
});
crate::impl_to_json_struct!(Pr9Result { mode, nodes, rows });

fn time_ms(mut f: impl FnMut()) -> f64 {
    let t = Instant::now();
    f();
    t.elapsed().as_secs_f64() * 1e3
}

fn floor(v: impl IntoIterator<Item = f64>) -> f64 {
    v.into_iter().fold(f64::INFINITY, f64::min)
}

/// The best vector mode this host can execute (probed through the
/// override, which caps at the detected ISA).
fn best_vector_mode() -> Mode {
    let best = ncq_simd::set_mode_override(Some(Mode::Avx2));
    ncq_simd::set_mode_override(None);
    best
}

/// Time `f` under forced scalar and forced vector dispatch, asserting
/// equal output. `f` must be deterministic.
fn ab_row<T: PartialEq>(
    row: &str,
    intersect_bound: bool,
    rounds: usize,
    vector: Mode,
    mut f: impl FnMut() -> T,
) -> Pr9Row {
    // One warm-up per leg; the warm-up output is also the equality
    // check between the modes.
    let mut warm = |mode: Mode| -> T {
        ncq_simd::set_mode_override(Some(mode));
        f()
    };
    let scalar_out = warm(Mode::Scalar);
    let vector_out = warm(vector);
    // Interleave the legs round by round so clock-frequency drift and
    // background noise hit both modes equally, then take each leg's
    // floor.
    let mut scalar_samples = Vec::with_capacity(rounds);
    let mut vector_samples = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        ncq_simd::set_mode_override(Some(Mode::Scalar));
        scalar_samples.push(time_ms(|| {
            std::hint::black_box(f());
        }));
        ncq_simd::set_mode_override(Some(vector));
        vector_samples.push(time_ms(|| {
            std::hint::black_box(f());
        }));
    }
    ncq_simd::set_mode_override(None);
    let scalar_ms = floor(scalar_samples);
    let vector_ms = floor(vector_samples);
    Pr9Row {
        row: row.to_owned(),
        intersect_bound,
        scalar_ms,
        vector_ms,
        ratio: scalar_ms / vector_ms,
        agree: vector_out == scalar_out,
    }
}

/// splitmix64 finalizer: stateless pseudo-randomness for term
/// placement. Term membership must *not* follow a short periodic
/// pattern (`i % 2` etc.) — the branch predictor learns those, making
/// the scalar merge artificially cheap and the comparison meaningless
/// for real posting lists.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The deep-fork corpus: `forks` chains of `depth` `<x>` nodes, each
/// ending in `leaves` `<p>` text leaves. Every leaf contains `alpha`,
/// a pseudo-random ~half contain `beta`, a pseudo-random ~third
/// `gamma`, plus a rotating filler word — so the term posting lists
/// are long, same-path, and interleave unpredictably, the mixed
/// match/skip pattern that stresses an intersection most.
fn deep_xml(forks: usize, depth: usize, leaves: usize) -> String {
    let mut xml = String::with_capacity(forks * (depth * 8 + leaves * 32));
    xml.push_str("<root>");
    let mut i = 0u64;
    for _ in 0..forks {
        for _ in 0..depth {
            xml.push_str("<x>");
        }
        for _ in 0..leaves {
            xml.push_str("<p>alpha");
            if mix(i) & 1 == 0 {
                xml.push_str(" beta");
            }
            if mix(i ^ 0xbeef).is_multiple_of(3) {
                xml.push_str(" gamma");
            }
            if mix(i ^ 0xd00d) & 1 == 0 {
                xml.push_str(" delta");
            }
            xml.push_str(&format!(" w{}</p>", i % 17));
            i += 1;
        }
        for _ in 0..depth {
            xml.push_str("</x>");
        }
    }
    xml.push_str("</root>");
    xml
}

/// Flatten a hit set to its sorted posting list (hit sets group by
/// path; the deep corpus keeps every leaf on one path, so this is one
/// long strictly increasing owner run).
fn postings(hits: &HitSet) -> Vec<Posting> {
    let mut out: Vec<Posting> = hits
        .iter()
        .map(|(path, owner)| Posting { path, owner })
        .collect();
    out.sort_unstable();
    out
}

/// The largest single-path owner group of a hit set, for the
/// homogeneous-set meet row.
fn largest_group(hits: &HitSet) -> Vec<Oid> {
    hits.groups()
        .values()
        .max_by_key(|oids| oids.len())
        .cloned()
        .unwrap_or_default()
}

/// Run the snapshot. `quick` shrinks corpora and repetitions for CI.
pub fn run(quick: bool) -> Pr9Result {
    let rounds = if quick { 5 } else { 9 };
    let vector = best_vector_mode();

    let (forks, depth, leaves) = if quick { (12, 10, 400) } else { (48, 14, 640) };
    let deep = Database::from_xml_str(&deep_xml(forks, depth, leaves)).expect("deep corpus");
    deep.store().meet_index();
    let alpha = deep.search("alpha");
    let beta = deep.search("beta");
    let gamma = deep.search("gamma");
    let delta = deep.search("delta");
    let (pb, pg, pd) = (postings(&beta), postings(&gamma), postings(&delta));

    let mut rows = Vec::new();

    // Posting intersections, repeated enough times per sample that a
    // round is well above timer resolution.
    let reps = if quick { 150 } else { 60 };
    // Two independent ~half-density terms: the canonical two-term
    // conjunction, with membership the branch predictor cannot learn.
    rows.push(ab_row("intersect2_deep", true, rounds, vector, || {
        let mut last = Vec::new();
        for _ in 0..reps {
            last = intersect(std::hint::black_box(&pb), std::hint::black_box(&pd));
        }
        last
    }));
    rows.push(ab_row("intersect3_deep", true, rounds, vector, || {
        let mut last = Vec::new();
        for _ in 0..reps {
            last = intersect_all(std::hint::black_box(&[
                pb.as_slice(),
                pg.as_slice(),
                pd.as_slice(),
            ]));
        }
        last
    }));

    // Homogeneous-set meet: frontier intersection/difference plus the
    // dominant parent-lift walk — a parity row.
    let (set_a, set_b) = (largest_group(&alpha), largest_group(&beta));
    rows.push(ab_row("meet_sets_deep", false, rounds, vector, || {
        meet_sets(deep.store(), &set_a, &set_b).expect("homogeneous sets")
    }));

    // Batched sweeps over DBLP: merge_tagged's pairwise merges ride
    // the vector path, the sweep itself dominates — a parity row.
    let (dblp, _) = if quick {
        corpora::dblp_small()
    } else {
        corpora::dblp_case_study()
    };
    dblp.store().meet_index();
    let mut terms: Vec<String> = (1984u16..2000).map(|y| y.to_string()).collect();
    terms.push("ICDE".to_owned());
    let hits: Vec<HitSet> = terms.iter().map(|t| dblp.search(t)).collect();
    let icde = hits.last().expect("ICDE hits");
    let options = MeetOptions::default();
    let queries: Vec<BatchQuery<'_>> = (0..64)
        .map(|i| BatchQuery::new(vec![&hits[i % 16], icde], options.clone()))
        .collect();
    rows.push(ab_row("batch_merge", false, rounds, vector, || {
        dblp.meet_hits_batch(&queries)
    }));

    // Sharded scatter/gather on the deep corpus: the gather's spine
    // walk probes survivors through the interval kernel — a parity row.
    let sharded = ShardedDb::new(deep.clone(), 4);
    let inputs = [&alpha, &beta];
    rows.push(ab_row("sharded_gather", false, rounds, vector, || {
        sharded.meet_hit_groups(&inputs, &options)
    }));

    Pr9Result {
        mode: vector.name().to_owned(),
        nodes: deep.store().node_count(),
        rows,
    }
}

/// Text table for stdout.
pub fn table(r: &Pr9Result) -> String {
    let mut out = format!(
        "# PR 9 — SIMD kernels vs scalar (mode={}, {} deep-corpus nodes)\n\
         ## gates: >=1.3x on an intersect-bound row, no row below 0.95x\n",
        r.mode, r.nodes
    );
    for row in &r.rows {
        out.push_str(&format!(
            "{:<16} kind={:<15} scalar={:.2}ms vector={:.2}ms ratio={:.2}x agree={}\n",
            row.row,
            if row.intersect_bound {
                "intersect-bound"
            } else {
                "parity"
            },
            row.scalar_ms,
            row.vector_ms,
            row.ratio,
            row.agree
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_snapshot_has_sane_shape_and_meets_the_gates() {
        let r = run(true);
        assert!(r.nodes > 0);
        assert_eq!(r.rows.len(), 5);
        for row in &r.rows {
            assert!(row.agree, "{}: vector output diverged from scalar", row.row);
            assert!(row.scalar_ms > 0.0 && row.vector_ms > 0.0);
        }
        // Perf gates only run where a vector ISA exists and the build
        // is optimized (debug intrinsics are outlined function calls,
        // so ratios are meaningless there) — the equality checks above
        // always bite.
        if r.mode == "scalar" || cfg!(debug_assertions) {
            return;
        }
        // Gate (with slack for CI noise at quick scale, as in the
        // earlier prN suites): ≥ 1.3× on an intersect-bound row
        // (slack: 1.1), and no row regresses past 0.95× (slack: 0.80).
        let best_intersect = r
            .rows
            .iter()
            .filter(|row| row.intersect_bound)
            .map(|row| row.ratio)
            .fold(0.0, f64::max);
        assert!(
            best_intersect >= 1.1,
            "best intersect-bound ratio {best_intersect:.2} below the gate"
        );
        for row in &r.rows {
            assert!(
                row.ratio >= 0.80,
                "{} ratio {:.2} regressed past the floor",
                row.row,
                row.ratio
            );
        }
    }
}
