//! Listing-1, Listing-2 and the §3.1 worked examples on the Figure 1
//! database — the paper's qualitative results, regenerated exactly.

use ncq_core::Database;
use ncq_query::{run_query, QueryOutput};

/// Reproduction of the two answer listings.
#[derive(Debug, Clone)]
pub struct ListingsResult {
    /// Tags returned by the baseline query (paper §1): the desired answer
    /// plus ancestor-implied rows.
    pub baseline_tags: Vec<String>,
    /// Tags returned by the meet reformulation (paper §3.2).
    pub meet_tags: Vec<String>,
    /// The baseline answer rendered in the paper's `<answer>` markup.
    pub baseline_xml: String,
    /// The meet answer rendered in the paper's `<answer>` markup.
    pub meet_xml: String,
}

/// The paper's baseline query (Listing-1).
pub const LISTING1_QUERY: &str = "select $T \
    from %/$T as t1, %/$T as t2 \
    where t1 contains 'Bit' and t2 contains '1999'";

/// The paper's meet query (Listing-2).
pub const LISTING2_QUERY: &str = "select meet(t1, t2) \
    from bibliography/% as t1, bibliography/% as t2 \
    where t1 contains 'Bit' and t2 contains '1999'";

/// Run both listings against the Figure 1 database.
pub fn run(db: &Database) -> ListingsResult {
    let QueryOutput::Rows(rows) = run_query(db, LISTING1_QUERY).expect("listing 1 runs") else {
        panic!("listing 1 is a projection");
    };
    let QueryOutput::Answers(answers) = run_query(db, LISTING2_QUERY).expect("listing 2 runs")
    else {
        panic!("listing 2 is a meet");
    };
    ListingsResult {
        baseline_tags: rows.rows.iter().map(|r| r.values[0].clone()).collect(),
        meet_tags: answers.tags().iter().map(|t| t.to_string()).collect(),
        baseline_xml: rows.to_answer_xml(),
        meet_xml: answers.to_answer_xml(),
    }
}

/// One §3.1 worked example.
#[derive(Debug, Clone)]
pub struct Sec31Example {
    /// The two search terms.
    pub terms: [String; 2],
    /// Tag of the nearest concept the paper reports.
    pub expected_tag: String,
    /// Tag we computed.
    pub actual_tag: String,
    /// Distance between the hits.
    pub distance: usize,
}

/// The worked examples of §3.1: ("Ben","Bit") → author, ("Bob","Byte") →
/// the cdata node itself, ("Bit","1999") → article.
pub fn sec31(db: &Database) -> Vec<Sec31Example> {
    [
        ("Ben", "Bit", "author"),
        ("Bob", "Byte", "cdata"),
        ("Bit", "1999", "article"),
    ]
    .into_iter()
    .map(|(a, b, expected)| {
        let answers = db.meet_terms(&[a, b]).expect("meet runs");
        let first = answers.results.first().expect("each example has an answer");
        Sec31Example {
            terms: [a.to_owned(), b.to_owned()],
            expected_tag: expected.to_owned(),
            actual_tag: first.tag.clone(),
            distance: first.distance,
        }
    })
    .collect()
}

crate::impl_to_json_struct!(ListingsResult {
    baseline_tags,
    meet_tags,
    baseline_xml,
    meet_xml,
});
crate::impl_to_json_struct!(Sec31Example {
    terms,
    expected_tag,
    actual_tag,
    distance,
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::corpora;

    #[test]
    fn listings_reproduce_the_paper() {
        let db = corpora::figure1();
        let r = run(&db);
        // Baseline: 4 rows — article (twice: one per 1999-article pairing),
        // institute, bibliography. The meet answer: exactly one article.
        assert_eq!(r.baseline_tags.len(), 4);
        assert!(r.baseline_tags.contains(&"article".to_string()));
        assert!(r.baseline_tags.contains(&"institute".to_string()));
        assert!(r.baseline_tags.contains(&"bibliography".to_string()));
        assert_eq!(r.meet_tags, vec!["article"]);
        assert!(r.meet_xml.contains("<result> article </result>"));
    }

    #[test]
    fn sec31_examples_match_the_paper() {
        let db = corpora::figure1();
        for ex in sec31(&db) {
            assert_eq!(
                ex.actual_tag, ex.expected_tag,
                "terms {:?} gave {}",
                ex.terms, ex.actual_tag
            );
        }
    }
}
