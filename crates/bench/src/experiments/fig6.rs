//! Figure 6: "Combining meet and fulltext search (normalized)".
//!
//! The paper plots elapsed time against the distance (0–20 edges) between
//! two full-text hits, with two series: "fulltext only" (flat, ≈1207 ms on
//! their hardware) and "fulltext and meet" (the same plus the meet, ≈2 ms
//! at distance two, growing mildly with distance). The claims to
//! reproduce: **the full-text search dominates; the meet is marginal and
//! scales well with distance.**
//!
//! We plant probe term pairs at exact distances in the multimedia corpus
//! (see `ncq-datagen`), run the substring-scan full-text search (the
//! analogue of Monet's string scan), and compute the meet of the two hit
//! sets.

use crate::measure::{micros, millis, time_median};
use ncq_core::{Database, MeetOptions};
use ncq_datagen::MultimediaCorpus;

/// Configuration for the Figure 6 run.
#[derive(Debug, Clone)]
pub struct Fig6Config {
    /// Distances to sweep (the paper: 0..=20).
    pub max_distance: usize,
    /// Probes averaged per distance.
    pub probes_per_distance: usize,
    /// Wall-clock repetitions per measurement (median taken).
    pub runs: usize,
}

impl Default for Fig6Config {
    fn default() -> Fig6Config {
        Fig6Config {
            max_distance: 20,
            probes_per_distance: 4,
            runs: 5,
        }
    }
}

/// One row of the Figure 6 series.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// Hit distance in edges.
    pub distance: usize,
    /// Full-text (substring scan) time for both terms, ms.
    pub fulltext_ms: f64,
    /// Full-text plus meet, ms.
    pub fulltext_and_meet_ms: f64,
    /// The meet alone, µs.
    pub meet_us: f64,
    /// Meet via the pairwise Fig. 3 algorithm alone, µs.
    pub meet2_us: f64,
}

/// The full Figure 6 result.
#[derive(Debug, Clone)]
pub struct Fig6Result {
    /// One row per distance.
    pub rows: Vec<Fig6Row>,
    /// Objects in the corpus.
    pub corpus_objects: usize,
}

/// Run the experiment on a prepared multimedia database.
pub fn run(db: &Database, corpus: &MultimediaCorpus, config: &Fig6Config) -> Fig6Result {
    let mut rows = Vec::new();
    let max_d = config.max_distance.min(corpus.config.max_distance);
    let probes = config
        .probes_per_distance
        .min(corpus.config.probes_per_distance);

    for d in 0..=max_d {
        let mut ft = 0.0;
        let mut ft_meet = 0.0;
        let mut meet = 0.0;
        let mut meet2 = 0.0;
        for k in 0..probes {
            let (term_a, term_b) = MultimediaCorpus::marker_terms(d, k);

            // Full-text only: two substring scans (the Monet-analogue
            // string scan the paper's 1207 ms corresponds to).
            let (hits, d_ft) = time_median(config.runs, || {
                (db.search_contains(&term_a), db.search_contains(&term_b))
            });

            // The meet on the hit groups (generalized algorithm).
            let inputs = [hits.0.clone(), hits.1.clone()];
            let (meets, d_meet) = time_median(config.runs, || {
                db.meet_hits(&inputs, &MeetOptions::default())
            });
            assert_eq!(meets.len(), 1, "probe d={d} k={k} must have one meet");
            assert_eq!(meets[0].distance, d, "probe d={d} k={k} distance");

            // The pairwise algorithm on the two single hits.
            let o1 = hits.0.iter().next().expect("term A hits").1;
            let o2 = hits.1.iter().next().expect("term B hits").1;
            let (_, d_meet2) = time_median(config.runs, || db.meet_pair(o1, o2));

            ft += millis(d_ft);
            ft_meet += millis(d_ft + d_meet);
            meet += micros(d_meet);
            meet2 += micros(d_meet2);
        }
        let n = probes as f64;
        rows.push(Fig6Row {
            distance: d,
            fulltext_ms: ft / n,
            fulltext_and_meet_ms: ft_meet / n,
            meet_us: meet / n,
            meet2_us: meet2 / n,
        });
    }

    Fig6Result {
        rows,
        corpus_objects: db.store().node_count(),
    }
}

/// Text table in the shape of the paper's plot data.
pub fn table(result: &Fig6Result) -> String {
    let mut out = String::from(
        "# Figure 6 — combining meet and fulltext search\n\
         # distance  fulltext_ms  fulltext+meet_ms  meet_us  meet2_us\n",
    );
    for r in &result.rows {
        out.push_str(&format!(
            "{:>10}  {:>11.3}  {:>16.3}  {:>7.2}  {:>8.2}\n",
            r.distance, r.fulltext_ms, r.fulltext_and_meet_ms, r.meet_us, r.meet2_us
        ));
    }
    out
}

crate::impl_to_json_struct!(Fig6Row {
    distance,
    fulltext_ms,
    fulltext_and_meet_ms,
    meet_us,
    meet2_us,
});
crate::impl_to_json_struct!(Fig6Result {
    rows,
    corpus_objects
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::corpora;

    #[test]
    fn fig6_shape_holds_at_small_scale() {
        let (db, corpus) = corpora::multimedia(60);
        let result = run(
            &db,
            &corpus,
            &Fig6Config {
                max_distance: 8,
                probes_per_distance: 2,
                runs: 3,
            },
        );
        assert_eq!(result.rows.len(), 9);
        for r in &result.rows {
            // Full-text dominates: the meet adds comparatively little.
            assert!(r.fulltext_and_meet_ms >= r.fulltext_ms);
            let meet_ms = r.meet_us / 1000.0;
            assert!(
                meet_ms <= r.fulltext_ms,
                "meet ({meet_ms} ms) must not dominate fulltext ({} ms) at d={}",
                r.fulltext_ms,
                r.distance
            );
        }
        let t = table(&result);
        assert!(t.contains("Figure 6"));
        assert!(t.lines().count() >= 11);
    }
}
