//! Ablations of the design choices the paper calls out.
//!
//! * **A — σ-steering** (§3.2, Fig. 3): the steered pairwise meet performs
//!   exactly `d` parent look-ups; the naive two-ancestor-list LCA performs
//!   `depth(o₁) + d`. On deep documents the gap is the paper's
//!   "superfluous look-ups are avoided".
//! * **B — set scaling** (§5): `meet` input-size scaling should be linear
//!   in the number of hits.
//! * **C — §4 restrictions**: `meet_Π` and `meet^δ` prune work; distance
//!   bounding may *reduce* cost (tokens die early), and filters must not
//!   add more than array-lookup overhead.

use crate::measure::{micros, time_median};
use ncq_core::{meet2, meet2_indexed, meet2_naive, Database, MeetOptions, PathFilter};
use ncq_fulltext::HitSet;
use ncq_store::Oid;
use ncq_xml::Document;

// ----- Ablation A: steering -----

/// One row of the steering ablation.
#[derive(Debug, Clone)]
pub struct SteeringRow {
    /// Depth at which the probe pair sits.
    pub depth: usize,
    /// Distance between the probes.
    pub distance: usize,
    /// Look-ups by the steered algorithm (== distance).
    pub steered_lookups: usize,
    /// Look-ups by the naive baseline (== depth + distance side effects).
    pub naive_lookups: usize,
    /// Steered time, µs.
    pub steered_us: f64,
    /// Naive time, µs.
    pub naive_us: f64,
    /// Indexed (Euler-tour LCA) time, µs — O(1), no parent walk.
    pub indexed_us: f64,
}

/// A deep chain document: `root/e/e/…/e` with a small fork of two leaves
/// at the bottom — the worst case for the naive baseline.
pub fn deep_chain_db(depth: usize) -> (Database, Oid, Oid) {
    let mut doc = Document::new("root");
    let mut cur = doc.root();
    for _ in 0..depth {
        cur = doc.add_element(cur, "e");
    }
    let left = doc.add_element(cur, "left");
    let l = doc.add_text(left, "probe-left");
    let right = doc.add_element(cur, "right");
    let r = doc.add_text(right, "probe-right");
    let db = Database::from_document(&doc);
    let (lo, ro) = (db.store().oid_of(l), db.store().oid_of(r));
    (db, lo, ro)
}

/// Run the steering ablation over several depths.
pub fn steering(depths: &[usize], runs: usize) -> Vec<SteeringRow> {
    depths
        .iter()
        .map(|&depth| {
            let (db, a, b) = deep_chain_db(depth);
            db.store().meet_index(); // build outside the timed region
            let (m_s, d_s) = time_median(runs, || meet2(db.store(), a, b));
            let (m_n, d_n) = time_median(runs, || meet2_naive(db.store(), a, b));
            let (m_i, d_i) = time_median(runs, || meet2_indexed(db.store(), a, b));
            assert_eq!(m_s.meet, m_n.meet);
            assert_eq!(m_s.meet, m_i.meet);
            assert_eq!(m_s.distance, m_i.distance);
            SteeringRow {
                depth,
                distance: m_s.distance,
                steered_lookups: m_s.lookups,
                naive_lookups: m_n.lookups,
                steered_us: micros(d_s),
                naive_us: micros(d_n),
                indexed_us: micros(d_i),
            }
        })
        .collect()
}

// ----- Ablation B: scaling -----

/// One row of the input-scaling ablation.
#[derive(Debug, Clone)]
pub struct ScalingRow {
    /// Number of input associations.
    pub input_hits: usize,
    /// Number of meets produced.
    pub meets: usize,
    /// Meet time, µs.
    pub meet_us: f64,
}

/// Scale the generalized meet over growing prefixes of a hit set.
pub fn scaling(
    db: &Database,
    hits_a: &HitSet,
    hits_b: &HitSet,
    steps: usize,
    runs: usize,
) -> Vec<ScalingRow> {
    let all_a: Vec<_> = hits_a.iter().collect();
    let all_b: Vec<_> = hits_b.iter().collect();
    let mut rows = Vec::new();
    for s in 1..=steps {
        let take_a = all_a.len() * s / steps;
        let take_b = all_b.len() * s / steps;
        let ha = HitSet::from_pairs(all_a.iter().copied().take(take_a));
        let hb = HitSet::from_pairs(all_b.iter().copied().take(take_b));
        let inputs = [ha, hb];
        let (meets, d) = time_median(runs, || db.meet_hits(&inputs, &MeetOptions::default()));
        rows.push(ScalingRow {
            input_hits: take_a + take_b,
            meets: meets.len(),
            meet_us: micros(d),
        });
    }
    rows
}

// ----- Ablation C: restrictions -----

/// One row of the restrictions ablation.
#[derive(Debug, Clone)]
pub struct RestrictionRow {
    /// Which variant ran.
    pub variant: String,
    /// Number of meets reported.
    pub meets: usize,
    /// Time, µs.
    pub meet_us: f64,
}

/// Compare unrestricted, root-excluded, allow-listed and distance-bounded
/// meets on the same inputs.
pub fn restrictions(db: &Database, inputs: &[HitSet], runs: usize) -> Vec<RestrictionRow> {
    let variants: Vec<(String, MeetOptions)> = vec![
        ("unrestricted".into(), MeetOptions::default()),
        (
            "exclude-root".into(),
            MeetOptions {
                filter: PathFilter::exclude_root(db.store()),
                ..MeetOptions::default()
            },
        ),
        (
            "within-4".into(),
            MeetOptions {
                max_distance: Some(4),
                ..MeetOptions::default()
            },
        ),
        (
            "within-4-exclude-root".into(),
            MeetOptions {
                filter: PathFilter::exclude_root(db.store()),
                max_distance: Some(4),
                ..MeetOptions::default()
            },
        ),
    ];
    variants
        .into_iter()
        .map(|(name, opts)| {
            let (meets, d) = time_median(runs, || db.meet_hits(inputs, &opts));
            RestrictionRow {
                variant: name,
                meets: meets.len(),
                meet_us: micros(d),
            }
        })
        .collect()
}

/// Text table for the steering ablation.
pub fn steering_table(rows: &[SteeringRow]) -> String {
    let mut out = String::from(
        "# Ablation A — sigma-steered meet2 vs naive LCA vs Euler-tour index\n\
         # depth  distance  steered_lookups  naive_lookups  steered_us  naive_us  indexed_us\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:>7}  {:>8}  {:>15}  {:>13}  {:>10.2}  {:>8.2}  {:>10.2}\n",
            r.depth,
            r.distance,
            r.steered_lookups,
            r.naive_lookups,
            r.steered_us,
            r.naive_us,
            r.indexed_us
        ));
    }
    out
}

/// Text table for the scaling ablation.
pub fn scaling_table(rows: &[ScalingRow]) -> String {
    let mut out = String::from(
        "# Ablation B — generalized meet input scaling\n# input_hits  meets  meet_us\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:>12}  {:>5}  {:>8.2}\n",
            r.input_hits, r.meets, r.meet_us
        ));
    }
    out
}

/// Text table for the restrictions ablation.
pub fn restrictions_table(rows: &[RestrictionRow]) -> String {
    let mut out = String::from("# Ablation C — §4 restrictions\n# variant  meets  meet_us\n");
    for r in rows {
        out.push_str(&format!(
            "{:>22}  {:>5}  {:>8.2}\n",
            r.variant, r.meets, r.meet_us
        ));
    }
    out
}

crate::impl_to_json_struct!(SteeringRow {
    depth,
    distance,
    steered_lookups,
    naive_lookups,
    steered_us,
    naive_us,
    indexed_us,
});
crate::impl_to_json_struct!(ScalingRow {
    input_hits,
    meets,
    meet_us
});
crate::impl_to_json_struct!(RestrictionRow {
    variant,
    meets,
    meet_us
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::corpora;

    #[test]
    fn steering_saves_lookups_on_deep_chains() {
        let rows = steering(&[4, 32, 128], 3);
        for r in &rows {
            assert_eq!(r.distance, 4); // leaf→fork is always 2+2
            assert_eq!(r.steered_lookups, 4);
            // Naive pays the whole depth.
            assert!(r.naive_lookups >= r.depth);
            assert!(r.naive_lookups > r.steered_lookups);
        }
        // Deeper chains cost the naive algorithm more look-ups.
        assert!(rows[2].naive_lookups > rows[0].naive_lookups);
    }

    #[test]
    fn scaling_rows_grow_in_input_and_meets() {
        let (db, _) = corpora::dblp_small();
        let a = db.search_word("ICDE");
        let b = db.search_word("1999");
        let rows = scaling(&db, &a, &b, 4, 3);
        assert_eq!(rows.len(), 4);
        for w in rows.windows(2) {
            assert!(w[1].input_hits >= w[0].input_hits);
        }
        assert!(rows.last().unwrap().meets >= 1);
    }

    #[test]
    fn restrictions_only_remove_answers() {
        let (db, _) = corpora::dblp_small();
        let inputs = vec![db.search_word("ICDE"), db.search_word("1999")];
        let rows = restrictions(&db, &inputs, 3);
        assert_eq!(rows.len(), 4);
        let unrestricted = rows[0].meets;
        for r in &rows[1..] {
            assert!(r.meets <= unrestricted, "{} grew", r.variant);
        }
        // Tables render.
        assert!(steering_table(&steering(&[4], 1)).contains("Ablation A"));
        assert!(scaling_table(&rows_to_scaling()).contains("Ablation B"));
        assert!(restrictions_table(&rows).contains("Ablation C"));
    }

    fn rows_to_scaling() -> Vec<ScalingRow> {
        vec![ScalingRow {
            input_hits: 1,
            meets: 0,
            meet_us: 1.0,
        }]
    }
}
