//! Minimal JSON serialization for experiment results.
//!
//! The build environment has no crates.io access, so instead of serde the
//! experiment row structs implement [`ToJson`] (via the
//! [`impl_to_json_struct!`](crate::impl_to_json_struct) macro) and the
//! `repro` binary renders [`Json`] trees directly. Output is
//! pretty-printed, two-space indented, keys in declaration order —
//! stable enough to diff across runs.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integral number.
    Int(i64),
    /// Floating-point number (non-finite values render as `null`).
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Pretty-print with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    let _ = write!(out, "{f}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into a [`Json`] tree.
pub trait ToJson {
    /// Convert to a JSON value.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_string())
    }
}

macro_rules! impl_to_json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i64)
            }
        }
    )*};
}

impl_to_json_int!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

/// Derive-free `ToJson` for a struct: keys are the field names, in the
/// order given.
#[macro_export]
macro_rules! impl_to_json_struct {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::Obj(vec![
                    $( (stringify!($field).to_string(), $crate::json::ToJson::to_json(&self.$field)) ),+
                ])
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars_and_escapes() {
        assert_eq!(Json::Int(3).render(), "3\n");
        assert_eq!(Json::Float(1.5).render(), "1.5\n");
        assert_eq!(Json::Bool(true).render(), "true\n");
        assert_eq!(Json::Str("a\"b\n".into()).render(), "\"a\\\"b\\n\"\n");
        assert_eq!(Json::Float(f64::NAN).render(), "null\n");
    }

    #[test]
    fn renders_nested_structures() {
        let v = Json::Obj(vec![
            ("xs".into(), Json::Arr(vec![Json::Int(1), Json::Int(2)])),
            ("empty".into(), Json::Arr(vec![])),
        ]);
        let s = v.render();
        assert!(s.contains("\"xs\": [\n    1,\n    2\n  ]"));
        assert!(s.contains("\"empty\": []"));
    }

    #[test]
    fn struct_macro_serializes_fields_in_order() {
        struct Row {
            a: usize,
            b: f64,
            name: String,
        }
        impl_to_json_struct!(Row { a, b, name });
        let row = Row {
            a: 7,
            b: 0.5,
            name: "x".into(),
        };
        let json = row.to_json().render();
        let pos = |needle: &str| json.find(needle).unwrap();
        assert!(pos("\"a\"") < pos("\"b\""));
        assert!(pos("\"b\"") < pos("\"name\""));
        assert!(json.contains("\"name\": \"x\""));
    }
}
