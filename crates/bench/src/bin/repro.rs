//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro [--exp all|listing1|listing2|sec31|fig6|fig7|ablations]
//!       [--scale small|paper] [--out DIR]
//! ```
//!
//! Prints paper-style tables to stdout and, when `--out` is given, writes
//! the raw series as JSON (one file per experiment) for EXPERIMENTS.md.

use ncq_bench::experiments::{
    ablations, corpora, extensions, fig6, fig7, listings, pr1, pr10, pr2, pr3, pr4, pr5, pr6, pr7,
    pr8, pr9,
};
use ncq_bench::json::ToJson;
use std::io::Write as _;
use std::path::PathBuf;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Scale {
    Small,
    Paper,
}

struct Args {
    exp: String,
    scale: Scale,
    out: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut exp = "all".to_owned();
    let mut scale = Scale::Paper;
    let mut out = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--exp" => exp = it.next().ok_or("--exp needs a value")?,
            "--scale" => {
                scale = match it.next().as_deref() {
                    Some("small") => Scale::Small,
                    Some("paper") => Scale::Paper,
                    other => return Err(format!("unknown scale {other:?}")),
                }
            }
            "--out" => out = Some(PathBuf::from(it.next().ok_or("--out needs a value")?)),
            "--help" | "-h" => {
                println!(
                    "usage: repro [--exp all|fig1|fig2|listing1|listing2|sec31|fig6|fig7|\
                     ablations|extensions|pr1|pr2|pr3|pr4|pr5|pr6|pr7|pr8|pr9|pr10] \
                     [--scale small|paper] \
                     [--out DIR]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(Args { exp, scale, out })
}

fn write_json(out: &Option<PathBuf>, name: &str, value: &impl ToJson) {
    if let Some(dir) = out {
        std::fs::create_dir_all(dir).expect("create output dir");
        let path = dir.join(format!("{name}.json"));
        let mut f = std::io::BufWriter::new(std::fs::File::create(&path).expect("create file"));
        f.write_all(value.to_json().render().as_bytes())
            .expect("serialize");
        f.flush().expect("flush");
        eprintln!("wrote {}", path.display());
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let want = |name: &str| args.exp == "all" || args.exp == name;

    if want("fig1") || want("fig2") {
        let db = corpora::figure1();
        if want("fig1") {
            println!("== Figure 1 — syntax tree of the example document ==");
            println!("{}", db.store().dump_tree());
        }
        if want("fig2") {
            println!("== Figure 2 — Monet transform of the example document ==");
            println!("{}", db.store().dump_relations());
        }
    }

    if want("listing1") || want("listing2") {
        let db = corpora::figure1();
        let r = listings::run(&db);
        println!("== Listing 1 — baseline query (ancestor-implied answers) ==");
        println!("{}\n", r.baseline_xml);
        println!("== Listing 2 — meet query (nearest concept only) ==");
        println!("{}\n", r.meet_xml);
        write_json(&args.out, "listings", &r);
    }

    if want("sec31") {
        let db = corpora::figure1();
        let examples = listings::sec31(&db);
        println!("== §3.1 worked examples ==");
        for e in &examples {
            println!(
                "meet({:?}, {:?}) = <{}> (expected <{}>, distance {})",
                e.terms[0], e.terms[1], e.actual_tag, e.expected_tag, e.distance
            );
        }
        println!();
        write_json(&args.out, "sec31", &examples);
    }

    if want("fig6") {
        let noise = match args.scale {
            Scale::Small => 100,
            Scale::Paper => 2_000,
        };
        let (db, corpus) = corpora::multimedia(noise);
        let cfg = fig6::Fig6Config::default();
        let result = fig6::run(&db, &corpus, &cfg);
        println!("{}", fig6::table(&result));
        write_json(&args.out, "fig6", &result);
    }

    if want("fig7") {
        let (db, _corpus) = match args.scale {
            Scale::Small => corpora::dblp_small(),
            Scale::Paper => corpora::dblp_case_study(),
        };
        let result = fig7::run(&db, &fig7::Fig7Config::default());
        println!("{}", fig7::table(&result));
        write_json(&args.out, "fig7", &result);
    }

    if want("ablations") {
        let rows = ablations::steering(&[8, 32, 128, 512], 5);
        println!("{}", ablations::steering_table(&rows));
        write_json(&args.out, "ablation_steering", &rows);

        let (db, _) = match args.scale {
            Scale::Small => corpora::dblp_small(),
            Scale::Paper => corpora::dblp_case_study(),
        };
        let a = db.search_word("ICDE");
        let mut b = ncq_fulltext::HitSet::new();
        for y in 1984u16..=1999 {
            b.union(&db.search_word(&y.to_string()));
        }
        let rows = ablations::scaling(&db, &a, &b, 8, 5);
        println!("{}", ablations::scaling_table(&rows));
        write_json(&args.out, "ablation_scaling", &rows);

        let inputs = vec![a, b];
        let rows = ablations::restrictions(&db, &inputs, 5);
        println!("{}", ablations::restrictions_table(&rows));
        write_json(&args.out, "ablation_restrictions", &rows);
    }

    // The PR 1 perf snapshot runs only when explicitly requested: it
    // builds multi-million-node corpora and writes BENCH_pr1.json (the
    // cross-PR perf trajectory record), neither of which a bare `repro`
    // run should trigger as a side effect.
    if args.exp == "pr1" {
        let result = pr1::run(args.scale == Scale::Small);
        println!("{}", pr1::table(&result));
        let dir = args.out.clone().unwrap_or_else(|| PathBuf::from("."));
        let target = Some(dir);
        write_json(&target, "BENCH_pr1", &result);
    }

    // PR 2 perf snapshot: the depth-aware planner vs fixed strategies
    // and ncq-server throughput. Explicit-only, like pr1: it spins up
    // worker pools and writes BENCH_pr2.json (the cross-PR trajectory
    // record).
    if args.exp == "pr2" {
        let result = pr2::run(args.scale == Scale::Small);
        println!("{}", pr2::table(&result));
        let dir = args.out.clone().unwrap_or_else(|| PathBuf::from("."));
        let target = Some(dir);
        write_json(&target, "BENCH_pr2", &result);
    }

    // PR 3 perf snapshot: sharded scatter/gather meets vs the single
    // database at K ∈ {1,2,4,8}. Explicit-only, like pr1/pr2: it builds
    // large corpora and writes BENCH_pr3.json (the cross-PR trajectory
    // record).
    if args.exp == "pr3" {
        let result = pr3::run(args.scale == Scale::Small);
        println!("{}", pr3::table(&result));
        let dir = args.out.clone().unwrap_or_else(|| PathBuf::from("."));
        let target = Some(dir);
        write_json(&target, "BENCH_pr3", &result);
    }

    // PR 4 perf snapshot: snapshot cold start vs parse+build. Explicit-
    // only, like pr1/pr2/pr3: it serializes multi-megabyte corpora and
    // writes BENCH_pr4.json (the cross-PR trajectory record).
    if args.exp == "pr4" {
        let result = pr4::run(args.scale == Scale::Small);
        println!("{}", pr4::table(&result));
        let dir = args.out.clone().unwrap_or_else(|| PathBuf::from("."));
        let target = Some(dir);
        write_json(&target, "BENCH_pr4", &result);
    }

    // PR 5 perf snapshot: the forest catalog — manifest cold start vs
    // separate opens and the 1-corpus routing overhead gate. Explicit-
    // only, like the other prN experiments: it builds large corpora and
    // writes BENCH_pr5.json (the cross-PR trajectory record).
    if args.exp == "pr5" {
        let result = pr5::run(args.scale == Scale::Small);
        println!("{}", pr5::table(&result));
        let dir = args.out.clone().unwrap_or_else(|| PathBuf::from("."));
        let target = Some(dir);
        write_json(&target, "BENCH_pr5", &result);
    }

    // PR 6 perf snapshot: distributed serving — loopback remote-engine
    // overhead vs in-process and the kill-a-replica failover profile.
    // Explicit-only, like the other prN experiments: it binds loopback
    // listeners and writes BENCH_pr6.json (the cross-PR trajectory
    // record).
    if args.exp == "pr6" {
        let result = pr6::run(args.scale == Scale::Small);
        println!("{}", pr6::table(&result));
        let dir = args.out.clone().unwrap_or_else(|| PathBuf::from("."));
        let target = Some(dir);
        write_json(&target, "BENCH_pr6", &result);
    }

    // PR 7 perf snapshot: shared-evaluation batch sweeps vs serial,
    // top-k early exit vs full evaluation, and the semantic result
    // cache's hit latency. Explicit-only, like the other prN
    // experiments: it spins up servers and writes BENCH_pr7.json (the
    // cross-PR trajectory record).
    if args.exp == "pr7" {
        let result = pr7::run(args.scale == Scale::Small);
        println!("{}", pr7::table(&result));
        let dir = args.out.clone().unwrap_or_else(|| PathBuf::from("."));
        let target = Some(dir);
        write_json(&target, "BENCH_pr7", &result);
    }

    // PR 8 telemetry snapshot: instrumentation overhead on the PR 7
    // hot paths (metrics on vs off) and the chaos failover trace.
    // Explicit-only, like the other prN experiments: it toggles the
    // process-global telemetry switch, binds loopback listeners, and
    // writes BENCH_pr8.json (the cross-PR trajectory record).
    if args.exp == "pr8" {
        let result = pr8::run(args.scale == Scale::Small);
        println!("{}", pr8::table(&result));
        let dir = args.out.clone().unwrap_or_else(|| PathBuf::from("."));
        let target = Some(dir);
        write_json(&target, "BENCH_pr8", &result);
    }

    // PR 9 SIMD snapshot: each row times the same operation under
    // forced-scalar and forced-vector dispatch and checks the outputs
    // are identical. Explicit-only: it flips the process-global SIMD
    // mode override and writes BENCH_pr9.json.
    if args.exp == "pr9" {
        let result = pr9::run(args.scale == Scale::Small);
        println!("{}", pr9::table(&result));
        let dir = args.out.clone().unwrap_or_else(|| PathBuf::from("."));
        let target = Some(dir);
        write_json(&target, "BENCH_pr9", &result);
    }

    // PR 10 zero-copy snapshot: v3 mapped open vs the materializing v1
    // load vs parse+build, same entry point, answers checked identical.
    // Explicit-only: it serializes large corpora twice per row and
    // writes BENCH_pr10.json.
    if args.exp == "pr10" {
        let result = pr10::run(args.scale == Scale::Small);
        println!("{}", pr10::table(&result));
        let dir = args.out.clone().unwrap_or_else(|| PathBuf::from("."));
        let target = Some(dir);
        write_json(&target, "BENCH_pr10", &result);
    }

    if want("extensions") {
        let (db, _) = match args.scale {
            Scale::Small => corpora::dblp_small(),
            Scale::Paper => corpora::dblp_case_study(),
        };
        let g = extensions::graph_meets(&db, 5);
        let t = extensions::thesaurus_broadening(&db, 1999);
        println!("{}", extensions::table(&g, &t));
        write_json(&args.out, "extension_graph", &g);
        write_json(&args.out, "extension_thesaurus", &t);
    }
}
