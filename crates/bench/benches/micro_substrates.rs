//! Substrate micro-benchmarks: parse, Monet bulk load, index build, and
//! full-text lookups — the costs surrounding the meet operator.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ncq_bench::experiments::corpora;
use ncq_datagen::{DblpConfig, DblpCorpus};
use ncq_fulltext::InvertedIndex;
use ncq_store::MonetDb;
use ncq_xml::{parse, write_document, WriteOptions};
use std::hint::black_box;
use std::time::Duration;

fn substrates(c: &mut Criterion) {
    let corpus = DblpCorpus::generate(&DblpConfig {
        papers_per_edition: 20,
        journal_articles_per_year: 5,
        ..DblpConfig::default()
    });
    let xml = write_document(&corpus.document, WriteOptions::default());
    let doc = corpus.document.clone();
    let store = MonetDb::from_document(&doc);

    let mut group = c.benchmark_group("micro_substrates");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));

    group.throughput(Throughput::Bytes(xml.len() as u64));
    group.bench_function("xml_parse", |b| b.iter(|| parse(black_box(&xml)).unwrap()));
    group.throughput(Throughput::Elements(doc.len() as u64));
    group.bench_function("monet_bulk_load", |b| {
        b.iter(|| MonetDb::from_document(black_box(&doc)))
    });
    group.bench_function("index_build", |b| {
        b.iter(|| InvertedIndex::build(black_box(&store)))
    });
    group.bench_function("meet_index_build", |b| {
        b.iter(|| ncq_store::MeetIndex::build(black_box(&store)))
    });
    group.finish();

    let (db, _) = corpora::dblp_case_study();
    let mut lookups = c.benchmark_group("micro_fulltext");
    lookups
        .sample_size(30)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    lookups.bench_function("word_hit", |b| b.iter(|| db.search_word(black_box("ICDE"))));
    lookups.bench_function("word_miss", |b| {
        b.iter(|| db.search_word(black_box("nonexistent")))
    });
    lookups.bench_function("substring_scan", |b| {
        b.iter(|| db.search_contains(black_box("ICDE")))
    });
    lookups.finish();
}

criterion_group!(benches, substrates);
criterion_main!(benches);
