//! Figure 7 bench: meet time after full-text search on the DBLP
//! substitute, parameterized by the year-interval start (i.e. by output
//! cardinality).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ncq_bench::experiments::corpora;
use ncq_core::{MeetOptions, PathFilter};
use ncq_fulltext::HitSet;
use std::hint::black_box;
use std::time::Duration;

fn fig7(c: &mut Criterion) {
    let (db, _corpus) = corpora::dblp_case_study();
    let icde = db.search_word("ICDE");
    let options = MeetOptions {
        filter: PathFilter::exclude_root(db.store()),
        ..MeetOptions::default()
    };

    let mut group = c.benchmark_group("fig7");
    group
        .sample_size(15)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    for year_from in [1999u16, 1996, 1992, 1988, 1984] {
        let mut years = HitSet::new();
        for y in year_from..=1999 {
            years.union(&db.search_word(&y.to_string()));
        }
        let inputs = [icde.clone(), years];
        let cardinality = db.meet_hits(&inputs, &options).len();
        group.throughput(Throughput::Elements(cardinality as u64));
        group.bench_with_input(
            BenchmarkId::new(format!("meet_card_{cardinality}"), year_from),
            &year_from,
            |b, _| b.iter(|| db.meet_hits(black_box(&inputs), &options)),
        );
    }
    group.finish();
}

criterion_group!(benches, fig7);
criterion_main!(benches);
