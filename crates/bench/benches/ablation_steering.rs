//! Ablation A bench: σ-steered `meet₂` (Fig. 3) against the naive
//! two-ancestor-list LCA and the Euler-tour index, across document depth.
//! The steered version's cost depends only on the hit distance; the naive
//! baseline pays for the full depth; the index answers in O(1). The
//! `deep_pair` shapes scale the *distance* with the depth, separating
//! O(distance) walks from the O(1) index.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ncq_bench::experiments::ablations::deep_chain_db;
use ncq_bench::experiments::pr1::deep_pair_db;
use ncq_core::{meet2, meet2_indexed, meet2_naive};
use std::hint::black_box;
use std::time::Duration;

fn steering(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_steering");
    group
        .sample_size(30)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));

    for depth in [8usize, 64, 512] {
        let (db, a, b) = deep_chain_db(depth);
        db.store().meet_index(); // build outside the timed region
        group.bench_with_input(BenchmarkId::new("steered", depth), &depth, |bch, _| {
            bch.iter(|| meet2(db.store(), black_box(a), black_box(b)))
        });
        group.bench_with_input(BenchmarkId::new("naive", depth), &depth, |bch, _| {
            bch.iter(|| meet2_naive(db.store(), black_box(a), black_box(b)))
        });
        group.bench_with_input(BenchmarkId::new("indexed", depth), &depth, |bch, _| {
            bch.iter(|| meet2_indexed(db.store(), black_box(a), black_box(b)))
        });
    }
    // Distance-scaling shape: probes 2·depth + 2 edges apart.
    for depth in [16usize, 256, 1024] {
        let (db, a, b) = deep_pair_db(depth);
        db.store().meet_index();
        group.bench_with_input(
            BenchmarkId::new("deep_pair_steered", depth),
            &depth,
            |bch, _| bch.iter(|| meet2(db.store(), black_box(a), black_box(b))),
        );
        group.bench_with_input(
            BenchmarkId::new("deep_pair_indexed", depth),
            &depth,
            |bch, _| bch.iter(|| meet2_indexed(db.store(), black_box(a), black_box(b))),
        );
    }
    group.finish();
}

criterion_group!(benches, steering);
criterion_main!(benches);
