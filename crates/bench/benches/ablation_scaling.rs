//! Ablation B bench: input-set scaling of the set meet (Fig. 4) and the
//! generalized meet (Fig. 5). The paper's §5 claim: "the set-oriented
//! version of the operator scales well, i.e., linear, with respect to the
//! cardinality of the input sets."

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ncq_bench::experiments::corpora;
use ncq_core::{meet_sets, meet_sets_sweep, MeetOptions};
use ncq_fulltext::HitSet;
use ncq_store::Oid;
use std::hint::black_box;
use std::time::Duration;

fn scaling(c: &mut Criterion) {
    let (db, _corpus) = corpora::dblp_case_study();
    // Homogeneous sets for Fig. 4: booktitle cdatas vs year cdatas.
    let icde = db.search_word("ICDE");
    let mut years = HitSet::new();
    for y in 1984u16..=1999 {
        years.union(&db.search_word(&y.to_string()));
    }

    let booktitles: Vec<Oid> = icde
        .groups()
        .iter()
        .max_by_key(|(_, v)| v.len())
        .map(|(_, v)| v.clone())
        .unwrap();
    let year_cdatas: Vec<Oid> = years
        .groups()
        .iter()
        .max_by_key(|(_, v)| v.len())
        .map(|(_, v)| v.clone())
        .unwrap();

    let mut group = c.benchmark_group("ablation_scaling");
    group
        .sample_size(15)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));

    for frac in [4usize, 2, 1] {
        let s1 = &booktitles[..booktitles.len() / frac];
        let s2 = &year_cdatas[..year_cdatas.len() / frac];
        let n = (s1.len() + s2.len()) as u64;
        group.throughput(Throughput::Elements(n));
        group.bench_with_input(BenchmarkId::new("meet_sets_fig4", n), &frac, |b, _| {
            b.iter(|| meet_sets(db.store(), black_box(s1), black_box(s2)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("meet_sets_sweep", n), &frac, |b, _| {
            b.iter(|| meet_sets_sweep(db.store(), black_box(s1), black_box(s2)).unwrap())
        });

        let inputs = [
            HitSet::from_pairs(s1.iter().map(|&o| (db.store().sigma(o), o))),
            HitSet::from_pairs(s2.iter().map(|&o| (db.store().sigma(o), o))),
        ];
        group.bench_with_input(BenchmarkId::new("meet_multi_fig5", n), &frac, |b, _| {
            b.iter(|| db.meet_hits(black_box(&inputs), &MeetOptions::default()))
        });
    }
    group.finish();
}

criterion_group!(benches, scaling);
criterion_main!(benches);
