//! Extension bench: graph meets over the crossref overlay (the paper's
//! IDREF future work) vs plain tree meets on the same node pairs.

use criterion::{criterion_group, criterion_main, Criterion};
use ncq_bench::experiments::corpora;
use ncq_core::{distance, graph_distance, RefGraph};
use std::hint::black_box;
use std::time::Duration;

fn graph(c: &mut Criterion) {
    let (db, _corpus) = corpora::dblp_small();
    let store = db.store();
    let overlay = RefGraph::from_key_references(store, "key", "crossref");
    // A booktitle hit (inproceedings record) vs a proceedings title hit —
    // distinct nodes whose graph route uses the crossref edge.
    let s = db
        .search_word("ICDE")
        .iter()
        .find(|(p, _)| store.relation_name(*p).contains("booktitle"))
        .unwrap()
        .1;
    let t = db
        .search_word("Proceedings")
        .iter()
        .find(|(p, _)| store.relation_name(*p).contains("proceedings/title"))
        .unwrap()
        .1;
    assert_ne!(s, t);

    let mut group = c.benchmark_group("extension_graph");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    group.bench_function("tree_meet", |b| {
        b.iter(|| distance(store, black_box(s), black_box(t)))
    });
    group.bench_function("graph_meet_bfs", |b| {
        b.iter(|| graph_distance(store, &overlay, black_box(s), black_box(t)))
    });
    group.bench_function("overlay_build", |b| {
        b.iter(|| RefGraph::from_key_references(store, "key", "crossref"))
    });
    group.finish();
}

criterion_group!(benches, graph);
criterion_main!(benches);
