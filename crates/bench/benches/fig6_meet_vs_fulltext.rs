//! Figure 6 bench: full-text only vs full-text + meet vs meet alone,
//! parameterized by the tree distance between the two hits.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ncq_bench::experiments::corpora;
use ncq_core::MeetOptions;
use ncq_datagen::MultimediaCorpus;
use std::hint::black_box;
use std::time::Duration;

fn fig6(c: &mut Criterion) {
    let (db, _corpus) = corpora::multimedia(500);
    let mut group = c.benchmark_group("fig6");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    for d in [0usize, 2, 5, 10, 15, 20] {
        let (term_a, term_b) = MultimediaCorpus::marker_terms(d, 0);

        group.bench_with_input(BenchmarkId::new("fulltext_only", d), &d, |b, _| {
            b.iter(|| {
                (
                    db.search_contains(black_box(&term_a)),
                    db.search_contains(black_box(&term_b)),
                )
            })
        });

        group.bench_with_input(BenchmarkId::new("fulltext_and_meet", d), &d, |b, _| {
            b.iter(|| {
                let ha = db.search_contains(black_box(&term_a));
                let hb = db.search_contains(black_box(&term_b));
                db.meet_hits(&[ha, hb], &MeetOptions::default())
            })
        });

        let ha = db.search_contains(&term_a);
        let hb = db.search_contains(&term_b);
        let inputs = [ha.clone(), hb.clone()];
        group.bench_with_input(BenchmarkId::new("meet_only", d), &d, |b, _| {
            b.iter(|| db.meet_hits(black_box(&inputs), &MeetOptions::default()))
        });

        let o1 = ha.iter().next().unwrap().1;
        let o2 = hb.iter().next().unwrap().1;
        group.bench_with_input(BenchmarkId::new("meet2_only", d), &d, |b, _| {
            b.iter(|| db.meet_pair(black_box(o1), black_box(o2)))
        });
    }
    group.finish();
}

criterion_group!(benches, fig6);
criterion_main!(benches);
