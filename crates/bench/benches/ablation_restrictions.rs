//! Ablation C bench: cost of the §4 restrictions (`meet_Π`, `meet^δ`) on
//! the case-study workload.

use criterion::{criterion_group, criterion_main, Criterion};
use ncq_bench::experiments::corpora;
use ncq_core::{MeetOptions, PathFilter};
use ncq_fulltext::HitSet;
use std::hint::black_box;
use std::time::Duration;

fn restrictions(c: &mut Criterion) {
    let (db, _corpus) = corpora::dblp_case_study();
    let icde = db.search_word("ICDE");
    let mut years = HitSet::new();
    for y in 1984u16..=1999 {
        years.union(&db.search_word(&y.to_string()));
    }
    let inputs = [icde, years];

    let variants: Vec<(&str, MeetOptions)> = vec![
        ("unrestricted", MeetOptions::default()),
        (
            "exclude_root",
            MeetOptions {
                filter: PathFilter::exclude_root(db.store()),
                ..MeetOptions::default()
            },
        ),
        (
            "within_4",
            MeetOptions {
                max_distance: Some(4),
                ..MeetOptions::default()
            },
        ),
        (
            "within_2",
            MeetOptions {
                max_distance: Some(2),
                ..MeetOptions::default()
            },
        ),
    ];

    let mut group = c.benchmark_group("ablation_restrictions");
    group
        .sample_size(15)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    for (name, opts) in variants {
        group.bench_function(name, |b| b.iter(|| db.meet_hits(black_box(&inputs), &opts)));
    }
    group.finish();
}

criterion_group!(benches, restrictions);
criterion_main!(benches);
