//! # ncq-query — the paper's SQL-with-paths dialect
//!
//! Schmidt, Kersten & Windhouwer (ICDE 2001) frame their examples in "a
//! variant of SQL enriched with paths and path variables", for lack of a
//! standard XML query language in 2001. This crate implements that
//! dialect, including the **meet aggregate** the paper adds to it.
//!
//! ## The two queries of the paper
//!
//! The **baseline** (introduction) binds a shared *tag variable* `$T` and
//! suffers from ancestor-implied answers:
//!
//! ```text
//! select $T
//! from %/$T as t1, %/$T as t2
//! where t1 contains 'Bit' and t2 contains '1999'
//! ```
//!
//! The **meet reformulation** (§3.2) replaces the projection by the meet
//! aggregate and returns just the nearest concept:
//!
//! ```text
//! select meet(t1, t2)
//! from bibliography/% as t1, bibliography/% as t2
//! where t1 contains 'Bit' and t2 contains '1999'
//! ```
//!
//! ## Grammar (case-insensitive keywords)
//!
//! ```text
//! query      := SELECT select FROM bindings [WHERE cond (AND cond)*]
//! select     := MEET '(' var (',' var)* ')' modifier*
//!             | item (',' item)*
//! item       := var | '$'NAME                       -- tuple or tag variable
//! modifier   := WITHIN NUMBER                       -- meet^δ  (§4)
//!             | EXCLUDING pathexpr                  -- meet_Π  (§4)
//!             | ONLY pathexpr                       -- allow-list variant
//! bindings   := pathexpr ['as'] var (',' pathexpr ['as'] var)*
//! pathexpr   := step ('/' step)*
//! step       := NAME | '*' | '%' | '@'NAME | 'cdata' | '$'NAME
//! cond       := var CONTAINS STRING
//! ```
//!
//! `*` matches exactly one element step, `%` any (possibly empty)
//! sequence of element steps, `$X` captures a tag and unifies across
//! repeated uses — the paper's path variables.
//!
//! ## Semantics
//!
//! * `v contains 's'` binds `v` to nodes matching its path expression
//!   whose **offspring** contains `s` as character data (or attribute
//!   value) — the paper's reading.
//! * A **projection** query enumerates all variable-binding combinations
//!   (with tag variables unified) — deliberately reproducing the
//!   ancestor-implied, potentially exploding answer the paper criticises.
//!   A configurable row limit keeps that explosion observable but safe.
//! * A **meet** query aggregates: each variable's binding set is reduced
//!   to its *minimal* elements — exactly the string associations the
//!   full-text search returns (every ancestor is implied by them) — and
//!   the generalized meet (Fig. 5) is applied to those hit groups.
//!
//! ```
//! use ncq_core::Database;
//! use ncq_query::{run_query, QueryOutput};
//!
//! let db = Database::from_xml_str(ncq_datagen::FIGURE1_XML).unwrap();
//! let out = run_query(&db, "select meet(t1, t2) \
//!     from bibliography/% as t1, bibliography/% as t2 \
//!     where t1 contains 'Bit' and t2 contains '1999'").unwrap();
//! match out {
//!     QueryOutput::Answers(a) => assert_eq!(a.tags(), vec!["article"]),
//!     _ => unreachable!(),
//! }
//! ```

pub mod ast;
pub mod error;
pub mod eval;
pub mod lexer;
pub mod parser;
pub mod pathexpr;

pub use ast::{Query, SelectClause};
pub use error::QueryError;
pub use eval::{
    run_query, run_query_opts, run_query_with, QueryConfig, QueryOptions, QueryOutput, Row, RowSet,
};
pub use parser::parse_query;
