//! Query evaluation.
//!
//! Two evaluation modes, mirroring the paper's narrative:
//!
//! * **Projection** — enumerate all binding combinations; reproduces the
//!   baseline behaviour the paper criticises (ancestor-implied answers,
//!   potential combinatorial explosion, bounded here by
//!   [`QueryConfig::max_rows`]).
//! * **Meet aggregation** — each variable's binding set is reduced to its
//!   minimal elements (exactly the string associations of the full-text
//!   search; all ancestors are implied by them), and the generalized meet
//!   of the paper's Figure 5 combines them, honouring `within`
//!   (`meet^δ`), `excluding` and `only` (`meet_Π`).

use crate::ast::{Query, SelectClause, SelectItem};
use crate::error::QueryError;
use crate::parser::parse_query;
use crate::pathexpr::{match_paths, matched_path_ids, PathMatch};
use ncq_core::{AnswerSet, MeetBackend, MeetOptions, MeetStrategy, PathFilter};
use ncq_fulltext::HitSet;
use ncq_store::{Oid, PathId};

#[cfg(test)]
use ncq_core::Database;

/// Evaluation limits.
#[derive(Debug, Clone, Copy)]
pub struct QueryConfig {
    /// Maximum number of projection rows before
    /// [`QueryError::RowLimitExceeded`].
    pub max_rows: usize,
}

impl Default for QueryConfig {
    fn default() -> QueryConfig {
        QueryConfig { max_rows: 10_000 }
    }
}

/// Full evaluation options: limits plus planner overrides.
///
/// The meet planner normally decides per query between the Fig. 4/5
/// lift/roll-up and the indexed plane sweep; `strategy` forces either
/// side — the planner regression tests and `ncq-server` config knobs
/// thread through here.
#[derive(Debug, Clone, Default)]
pub struct QueryOptions {
    /// Evaluation limits.
    pub config: QueryConfig,
    /// Meet evaluation strategy ([`MeetStrategy::Auto`] plans).
    pub strategy: MeetStrategy,
    /// Corpus to evaluate against when the query text names none —
    /// the server's `USE` verb threads the session corpus through
    /// here. An explicit `from corpus(name)` in the query wins.
    pub default_corpus: Option<String>,
}

/// One projection row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Row {
    /// Projected values (tag names), one per select item.
    pub values: Vec<String>,
    /// The bound node per `from` variable (in `from` order).
    pub nodes: Vec<Oid>,
}

/// A projection result.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RowSet {
    /// Column headers (select-item names).
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Row>,
}

impl RowSet {
    /// Render rows in the paper's `<answer>` markup (one `<result>` per
    /// row, first projected value).
    pub fn to_answer_xml(&self) -> String {
        let mut out = String::from("<answer>\n");
        for row in &self.rows {
            out.push_str(&format!("  <result> {} </result>\n", row.values.join(", ")));
        }
        out.push_str("</answer>");
        out
    }
}

/// Output of [`run_query`]: rows for projections, ranked answers for meet
/// aggregates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryOutput {
    /// Projection result.
    Rows(RowSet),
    /// Meet-aggregation result.
    Answers(AnswerSet),
}

/// Parse and evaluate with default limits.
///
/// Generic over the execution backend: the single-process
/// [`ncq_core::Database`] and the sharded facade both serve the same
/// dialect with identical answers (the golden suite pins it).
pub fn run_query<B: MeetBackend + ?Sized>(db: &B, src: &str) -> Result<QueryOutput, QueryError> {
    run_query_opts(db, src, &QueryOptions::default())
}

/// Parse and evaluate with explicit limits (planner left on Auto).
pub fn run_query_with<B: MeetBackend + ?Sized>(
    db: &B,
    src: &str,
    config: &QueryConfig,
) -> Result<QueryOutput, QueryError> {
    run_query_opts(
        db,
        src,
        &QueryOptions {
            config: *config,
            ..QueryOptions::default()
        },
    )
}

/// Parse and evaluate with full [`QueryOptions`] (limits + planner
/// overrides).
pub fn run_query_opts<B: MeetBackend + ?Sized>(
    db: &B,
    src: &str,
    options: &QueryOptions,
) -> Result<QueryOutput, QueryError> {
    let query = {
        let _parse = ncq_obs::trace::span("parse");
        parse_query(src)?
    };
    let _eval = ncq_obs::trace::span("eval");
    evaluate(db, &query, options)
}

/// Evaluate a parsed query, resolving its corpus first: an explicit
/// `from corpus(name)` wins over [`QueryOptions::default_corpus`];
/// with neither, the backend itself evaluates (which for a forest
/// backend is its catalog's default corpus). A name the backend cannot
/// resolve is a typed [`QueryError::UnknownCorpus`].
pub fn evaluate<B: MeetBackend + ?Sized>(
    db: &B,
    query: &Query,
    opts: &QueryOptions,
) -> Result<QueryOutput, QueryError> {
    match query.corpus.as_deref().or(opts.default_corpus.as_deref()) {
        Some(name) => {
            let target = db.corpus(name).ok_or_else(|| QueryError::UnknownCorpus {
                name: name.to_owned(),
            })?;
            evaluate_resolved(&*target, query, opts)
        }
        None => evaluate_resolved(db, query, opts),
    }
}

/// Evaluate against an already-resolved backend.
fn evaluate_resolved<B: MeetBackend + ?Sized>(
    db: &B,
    query: &Query,
    opts: &QueryOptions,
) -> Result<QueryOutput, QueryError> {
    let config = &opts.config;
    match &query.select {
        SelectClause::Meet { vars, modifiers } => {
            let inputs: Vec<HitSet> = vars
                .iter()
                .map(|v| hit_group(db, query, v))
                .collect::<Result<_, _>>()?;
            let mut options = MeetOptions {
                max_distance: modifiers.within,
                strategy: opts.strategy,
                limit: query.limit,
                ..MeetOptions::default()
            };
            if !modifiers.only.is_empty() {
                let mut allowed: Vec<PathId> = Vec::new();
                for pat in &modifiers.only {
                    allowed.extend(matched_path_ids(db.store(), pat));
                }
                options.filter = PathFilter::allowing(allowed);
            } else if !modifiers.excluding.is_empty() {
                let mut excluded: Vec<PathId> = Vec::new();
                for pat in &modifiers.excluding {
                    excluded.extend(matched_path_ids(db.store(), pat));
                }
                options.filter = PathFilter::excluding(excluded);
            }
            let input_refs: Vec<&HitSet> = inputs.iter().collect();
            let meets = db.try_meet_hit_groups(&input_refs, &options)?;
            Ok(QueryOutput::Answers(AnswerSet::from_meets(
                db.store(),
                meets,
            )))
        }
        SelectClause::Projection(items) => projection(db, query, items, config),
    }
}

/// The hit group of a meet variable: string associations (or bare nodes
/// when the variable has no `contains` predicate) under the variable's
/// matched paths, containing *all* of its needles.
fn hit_group<B: MeetBackend + ?Sized>(
    db: &B,
    query: &Query,
    var: &str,
) -> Result<HitSet, QueryError> {
    let binding = query
        .binding_for(var)
        .ok_or_else(|| QueryError::UnboundVariable {
            name: var.to_owned(),
        })?;
    let store = db.store();
    let matched = matched_path_ids(store, &binding.path);
    let needles = query.needles_for(var);

    if needles.is_empty() {
        // No predicate: the variable contributes the matched nodes
        // themselves (elements of matched element paths), read straight
        // from the meet index's document-order posting lists.
        let index = store.meet_index();
        return Ok(HitSet::from_pairs(matched.iter().flat_map(|&p| {
            index.oids_of_path(p).iter().map(move |&o| (p, o))
        })));
    }

    let mut result: Option<HitSet> = None;
    for needle in needles {
        let mut hits = db.try_search(needle)?;
        hits.retain(|path, _| matched.iter().any(|&mp| store.summary().le(path, mp)));
        result = Some(match result {
            None => hits,
            Some(prev) => {
                // Association-level conjunction.
                let mut both = HitSet::new();
                for (p, o) in prev.iter() {
                    if hits.contains(p, o) {
                        both.insert(p, o);
                    }
                }
                both
            }
        });
    }
    Ok(result.unwrap_or_default())
}

/// Captured tag-variable assignments of one match.
type TagAssignment = Vec<(String, ncq_xml::Symbol)>;
/// One projection binding: a node with its tag captures.
type BoundNode = (Oid, TagAssignment);

/// A variable's projection bindings: `(node, tag-assignments)` for nodes
/// matching the path pattern whose subtree contains all needles.
fn projection_bindings<B: MeetBackend + ?Sized>(
    db: &B,
    query: &Query,
    var: &str,
) -> Result<Vec<BoundNode>, QueryError> {
    let binding = query
        .binding_for(var)
        .ok_or_else(|| QueryError::UnboundVariable {
            name: var.to_owned(),
        })?;
    let store = db.store();
    let index = store.meet_index();
    let matches: Vec<PathMatch> = match_paths(store, &binding.path);
    let needles = query.needles_for(var);

    // "Whose offspring contains the needle" is a subtree-interval test:
    // collect each needle's hit owners in document order once, then probe
    // candidates with an O(log hits) emptiness check on their preorder
    // interval — no ancestor-closure materialization.
    let mut needle_owners: Vec<Vec<Oid>> = Vec::with_capacity(needles.len());
    for needle in &needles {
        let mut owners: Vec<Oid> = db.try_search(needle)?.iter().map(|(_, o)| o).collect();
        owners.sort_unstable();
        owners.dedup();
        needle_owners.push(owners);
    }

    let mut out = Vec::new();
    for m in &matches {
        for &o in index.oids_of_path(m.path) {
            if needle_owners
                .iter()
                .all(|owners| index.subtree_contains_any(o, owners))
            {
                out.push((o, m.tags.clone()));
            }
        }
    }
    // Document order, stable w.r.t. alternative tag assignments.
    out.sort_by_key(|(o, _)| *o);
    Ok(out)
}

fn projection<B: MeetBackend + ?Sized>(
    db: &B,
    query: &Query,
    items: &[SelectItem],
    config: &QueryConfig,
) -> Result<QueryOutput, QueryError> {
    let store = db.store();
    let var_names: Vec<&str> = query.from.iter().map(|b| b.var.as_str()).collect();
    let mut bindings = Vec::with_capacity(var_names.len());
    for v in &var_names {
        bindings.push(projection_bindings(db, query, v)?);
    }

    let columns: Vec<String> = items
        .iter()
        .map(|i| match i {
            SelectItem::Var(v) => v.clone(),
            SelectItem::TagVar(t) => format!("${t}"),
        })
        .collect();

    // Nested-loop join over the binding lists, unifying shared tag vars.
    // `limit N` stops the enumeration at N distinct rows — the join is
    // abandoned, not run to completion and truncated.
    let limit = query.limit.unwrap_or(usize::MAX);
    let mut rows: Vec<Row> = Vec::new();
    let mut stack: Vec<(usize, Vec<BoundNode>)> = vec![(0, Vec::new())];
    // Depth-first enumeration without recursion.
    while let Some((level, chosen)) = stack.pop() {
        if rows.len() >= limit {
            break;
        }
        if level == bindings.len() {
            // Emit a row.
            let mut values = Vec::with_capacity(items.len());
            for item in items {
                match item {
                    SelectItem::Var(v) => {
                        let idx = var_names.iter().position(|n| n == v).expect("validated");
                        values.push(store.label(chosen[idx].0));
                    }
                    SelectItem::TagVar(t) => {
                        let sym = chosen
                            .iter()
                            .flat_map(|(_, tags)| tags.iter())
                            .find(|(name, _)| name == t)
                            .map(|(_, sym)| *sym)
                            .expect("validated tag var");
                        values.push(store.symbols().resolve(sym).to_owned());
                    }
                }
            }
            let nodes = chosen.iter().map(|(o, _)| *o).collect();
            let row = Row { values, nodes };
            if !rows.contains(&row) {
                rows.push(row);
                if rows.len() > config.max_rows {
                    return Err(QueryError::RowLimitExceeded {
                        limit: config.max_rows,
                    });
                }
            }
            continue;
        }
        // Push candidates in reverse so document order pops first.
        for cand in bindings[level].iter().rev() {
            // Unify tag variables with choices made so far.
            let ok = cand.1.iter().all(|(name, sym)| {
                chosen
                    .iter()
                    .flat_map(|(_, tags)| tags.iter())
                    .all(|(n2, s2)| n2 != name || s2 == sym)
            });
            if ok {
                let mut next = chosen.clone();
                next.push(cand.clone());
                stack.push((level + 1, next));
            }
        }
    }

    Ok(QueryOutput::Rows(RowSet { columns, rows }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncq_datagen::FIGURE1_XML;

    fn db() -> Database {
        Database::from_xml_str(FIGURE1_XML).unwrap()
    }

    // ----- the paper's two listings -----

    #[test]
    fn listing1_baseline_returns_ancestor_implied_answers() {
        let db = db();
        let out = run_query(
            &db,
            "select $T \
             from %/$T as t1, %/$T as t2 \
             where t1 contains 'Bit' and t2 contains '1999'",
        )
        .unwrap();
        let QueryOutput::Rows(rows) = out else {
            panic!("expected rows")
        };
        // Tag-unified pairs: article (t1=article1 × t2∈{article1,article2}),
        // institute×institute, bibliography×bibliography.
        let mut tags: Vec<&str> = rows.rows.iter().map(|r| r.values[0].as_str()).collect();
        tags.sort_unstable();
        assert_eq!(
            tags,
            vec!["article", "article", "bibliography", "institute"]
        );
        // 4 rows — exactly the over-broad answer of the paper's listing
        // (the desired `article` plus ancestor-implied rows).
        assert_eq!(rows.rows.len(), 4);
    }

    #[test]
    fn listing2_meet_returns_exactly_the_article() {
        let db = db();
        let out = run_query(
            &db,
            "select meet(t1, t2) \
             from bibliography/% as t1, bibliography/% as t2 \
             where t1 contains 'Bit' and t2 contains '1999'",
        )
        .unwrap();
        let QueryOutput::Answers(answers) = out else {
            panic!("expected answers")
        };
        assert_eq!(answers.tags(), vec!["article"]);
    }

    // ----- semantics details -----

    #[test]
    fn projection_without_conditions_lists_matched_nodes() {
        let db = db();
        let out = run_query(&db, "select t from bibliography/institute/article as t").unwrap();
        let QueryOutput::Rows(rows) = out else {
            panic!()
        };
        assert_eq!(rows.rows.len(), 2);
        assert!(rows.rows.iter().all(|r| r.values[0] == "article"));
    }

    #[test]
    fn meet_modifier_within_blocks_far_meets() {
        let db = db();
        let q = "select meet(t1, t2) within 4 \
                 from bibliography/% as t1, bibliography/% as t2 \
                 where t1 contains 'Bit' and t2 contains '1999'";
        let QueryOutput::Answers(a) = run_query(&db, q).unwrap() else {
            panic!()
        };
        assert!(a.is_empty()); // needs distance 5
        let q5 = q.replace("within 4", "within 5");
        let QueryOutput::Answers(a) = run_query(&db, &q5).unwrap() else {
            panic!()
        };
        assert_eq!(a.tags(), vec!["article"]);
    }

    #[test]
    fn meet_modifier_excluding_suppresses_types() {
        let db = db();
        // Ben × RSI meet at institute; excluding it empties the answer.
        let q = "select meet(t1, t2) excluding bibliography/institute \
                 from bibliography/% as t1, bibliography/% as t2 \
                 where t1 contains 'Ben' and t2 contains 'RSI'";
        let QueryOutput::Answers(a) = run_query(&db, q).unwrap() else {
            panic!()
        };
        assert!(a.is_empty());
    }

    #[test]
    fn meet_modifier_only_keeps_wanted_types() {
        let db = db();
        let q = "select meet(t1, t2) only bibliography/institute/article \
                 from bibliography/% as t1, bibliography/% as t2 \
                 where t1 contains 'Bit' and t2 contains '1999'";
        let QueryOutput::Answers(a) = run_query(&db, q).unwrap() else {
            panic!()
        };
        assert_eq!(a.tags(), vec!["article"]);
    }

    #[test]
    fn meet_variable_without_condition_contributes_nodes() {
        let db = db();
        // t2 binds all year elements; t1 the Bit hit. They meet at the
        // first article.
        let q = "select meet(t1, t2) \
                 from bibliography/% as t1, bibliography/%/year as t2 \
                 where t1 contains 'Bit'";
        let QueryOutput::Answers(a) = run_query(&db, q).unwrap() else {
            panic!()
        };
        assert_eq!(a.tags(), vec!["article"]);
    }

    #[test]
    fn path_scope_restricts_hits() {
        let db = db();
        // Restrict t1 to titles: 'Bit' occurs only under author, so t1
        // contributes no hits — no article can be a meet. The two '1999'
        // hits of t2 still meet each other (Fig. 5 semantics: any two
        // input nodes) at the institute.
        let q = "select meet(t1, t2) \
                 from bibliography/%/title as t1, bibliography/% as t2 \
                 where t1 contains 'Bit' and t2 contains '1999'";
        let QueryOutput::Answers(a) = run_query(&db, q).unwrap() else {
            panic!()
        };
        assert_eq!(a.tags(), vec!["institute"]);
    }

    #[test]
    fn conjunctive_conditions_on_one_variable() {
        let db = db();
        // Only "Bob Byte" contains both.
        let q = "select meet(t1, t2) \
                 from bibliography/% as t1, bibliography/% as t2 \
                 where t1 contains 'Bob' and t1 contains 'Byte' and t2 contains '1999'";
        let QueryOutput::Answers(a) = run_query(&db, q).unwrap() else {
            panic!()
        };
        assert_eq!(a.tags(), vec!["article"]);
    }

    #[test]
    fn forced_strategies_agree_with_the_planner() {
        let db = db();
        let q = "select meet(t1, t2) \
                 from bibliography/% as t1, bibliography/% as t2 \
                 where t1 contains 'Bit' and t2 contains '1999'";
        let run = |strategy| {
            let QueryOutput::Answers(a) = run_query_opts(
                &db,
                q,
                &QueryOptions {
                    strategy,
                    ..QueryOptions::default()
                },
            )
            .unwrap() else {
                panic!("meet query")
            };
            a
        };
        let auto = run(MeetStrategy::Auto);
        let lift = run(MeetStrategy::Lift);
        let sweep = run(MeetStrategy::Sweep);
        assert_eq!(auto.tags(), vec!["article"]);
        for other in [&lift, &sweep] {
            assert_eq!(auto.tags(), other.tags());
            assert_eq!(auto.results[0].oid, other.results[0].oid);
            assert_eq!(auto.results[0].distance, other.results[0].distance);
            assert_eq!(
                auto.results[0].witness_count,
                other.results[0].witness_count
            );
        }
    }

    #[test]
    fn corpus_routing_resolves_against_a_forest() {
        use ncq_core::{Catalog, ForestBackend};
        use std::sync::Arc;
        let mut catalog = Catalog::new();
        catalog
            .add("paper", Arc::new(db()) as Arc<dyn MeetBackend>)
            .unwrap();
        catalog
            .add(
                "shop",
                Arc::new(
                    Database::from_xml_str(
                        "<shop><item><label>Bit driver</label><price>1999</price></item></shop>",
                    )
                    .unwrap(),
                ) as Arc<dyn MeetBackend>,
            )
            .unwrap();
        let forest = ForestBackend::new(catalog).unwrap();

        // Explicit corpus routes to the named engine, byte-identically
        // to a direct run on it.
        let q = "select meet(t1, t2) from corpus(shop), shop/% as t1, shop/% as t2 \
                 where t1 contains 'Bit' and t2 contains '1999'";
        let QueryOutput::Answers(a) = run_query(&forest, q).unwrap() else {
            panic!()
        };
        assert_eq!(a.tags(), vec!["item"]);

        // No corpus → the catalog default (the paper corpus).
        let q2 = "select meet(t1, t2) from bibliography/% as t1, bibliography/% as t2 \
                  where t1 contains 'Bit' and t2 contains '1999'";
        let QueryOutput::Answers(a) = run_query(&forest, q2).unwrap() else {
            panic!()
        };
        assert_eq!(a.tags(), vec!["article"]);

        // The session default (QueryOptions) routes unqualified text…
        let opts = QueryOptions {
            default_corpus: Some("shop".into()),
            ..QueryOptions::default()
        };
        let q3 = "select meet(t1, t2) from shop/% as t1, shop/% as t2 \
                  where t1 contains 'Bit' and t2 contains '1999'";
        let QueryOutput::Answers(a) = run_query_opts(&forest, q3, &opts).unwrap() else {
            panic!()
        };
        assert_eq!(a.tags(), vec!["item"]);
        // …but an explicit corpus in the text wins over it.
        let QueryOutput::Answers(a) = run_query_opts(
            &forest,
            q2,
            &QueryOptions {
                default_corpus: Some("paper".into()),
                ..QueryOptions::default()
            },
        )
        .unwrap() else {
            panic!()
        };
        assert_eq!(a.tags(), vec!["article"]);

        // Unknown corpus is typed — on the forest and on a plain
        // Database (which serves no corpora at all).
        let bad = "select t from corpus(absent), x as t";
        assert!(matches!(
            run_query(&forest, bad),
            Err(QueryError::UnknownCorpus { name }) if name == "absent"
        ));
        assert!(matches!(
            run_query(&db(), "select t from corpus(paper), x as t"),
            Err(QueryError::UnknownCorpus { .. })
        ));
    }

    #[test]
    fn limit_bounds_meet_answers_to_the_ranked_prefix() {
        let db = db();
        // t2 is unconditioned, so the '1999' hits meet every element —
        // six distance-ranked answers unbounded.
        let q = "select meet(t1, t2) \
                 from bibliography/% as t1, bibliography/% as t2 \
                 where t1 contains '1999'";
        let QueryOutput::Answers(full) = run_query(&db, q).unwrap() else {
            panic!()
        };
        assert!(full.results.len() >= 2);
        for k in 1..=full.results.len() {
            let QueryOutput::Answers(bounded) = run_query(&db, &format!("{q} limit {k}")).unwrap()
            else {
                panic!()
            };
            assert_eq!(bounded.results, full.results[..k], "k = {k}");
        }
        // A limit beyond the answer count changes nothing.
        let QueryOutput::Answers(big) = run_query(&db, &format!("{q} limit 100")).unwrap() else {
            panic!()
        };
        assert_eq!(big.results, full.results);
    }

    #[test]
    fn limit_stops_projection_enumeration_early() {
        let db = db();
        let q = "select t1, t2 from bibliography/% as t1, bibliography/% as t2";
        let QueryOutput::Rows(full) = run_query(&db, q).unwrap() else {
            panic!()
        };
        let QueryOutput::Rows(three) = run_query(&db, &format!("{q} limit 3")).unwrap() else {
            panic!()
        };
        assert_eq!(three.rows, full.rows[..3]);
        // The enumeration is abandoned at the limit, so a query whose
        // full join would blow max_rows succeeds when limited below it.
        let out = run_query_with(&db, &format!("{q} limit 5"), &QueryConfig { max_rows: 10 });
        let QueryOutput::Rows(five) = out.unwrap() else {
            panic!()
        };
        assert_eq!(five.rows, full.rows[..5]);
    }

    #[test]
    fn row_limit_guards_the_explosion() {
        let db = db();
        let q = "select t1, t2 \
                 from bibliography/% as t1, bibliography/% as t2";
        let err = run_query_with(&db, q, &QueryConfig { max_rows: 10 }).unwrap_err();
        assert!(matches!(err, QueryError::RowLimitExceeded { limit: 10 }));
    }

    #[test]
    fn attribute_hits_respect_scope() {
        let db = db();
        let q = "select meet(t1, t2) \
                 from bibliography/%/@key as t1, bibliography/% as t2 \
                 where t1 contains 'BB99' and t2 contains 'Ben'";
        let QueryOutput::Answers(a) = run_query(&db, q).unwrap() else {
            panic!()
        };
        assert_eq!(a.tags(), vec!["article"]);
    }

    #[test]
    fn rows_render_as_answer_xml() {
        let db = db();
        let QueryOutput::Rows(rows) =
            run_query(&db, "select t from bibliography/institute as t").unwrap()
        else {
            panic!()
        };
        let xml = rows.to_answer_xml();
        assert!(xml.contains("<result> institute </result>"));
    }
}
