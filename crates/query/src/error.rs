//! Query-language errors.

use std::fmt;

/// Anything that can go wrong between query text and answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// Tokenizer rejected a character.
    Lex {
        /// Byte offset of the offending character.
        offset: usize,
        /// The character.
        found: char,
    },
    /// Parser found an unexpected token.
    Parse {
        /// Byte offset where parsing failed.
        offset: usize,
        /// What was found (token text or `end of input`).
        found: String,
        /// What the parser expected.
        expected: String,
    },
    /// A variable in `select`/`where` is not bound in `from`.
    UnboundVariable {
        /// The variable name.
        name: String,
    },
    /// The same tuple variable was bound twice.
    DuplicateVariable {
        /// The variable name.
        name: String,
    },
    /// A meet aggregate needs at least two variables.
    MeetNeedsTwoVariables,
    /// Projection result exceeded the configured row limit — the
    /// "combinatorial explosion" the paper warns about.
    RowLimitExceeded {
        /// The configured limit.
        limit: usize,
    },
    /// A `within`/`excluding`/`only` modifier on a projection query.
    ModifierWithoutMeet,
    /// `limit 0` — a query that can never return anything is almost
    /// certainly a mistake, so it is rejected up front.
    InvalidLimit,
    /// A numeric literal too large for the host (`within`/`limit`
    /// arguments are `usize`).
    NumberOverflow {
        /// Byte offset of the literal.
        offset: usize,
    },
    /// The query addressed a corpus the backend does not serve (or the
    /// backend serves no named corpora at all).
    UnknownCorpus {
        /// The requested corpus name.
        name: String,
    },
    /// The execution backend failed — a remote replica set became
    /// unavailable mid-query. The query itself is fine; re-issuing it
    /// once a replica recovers is safe.
    Backend {
        /// The backend's typed failure, rendered.
        detail: String,
    },
}

impl From<ncq_core::BackendError> for QueryError {
    fn from(e: ncq_core::BackendError) -> QueryError {
        QueryError::Backend {
            detail: e.to_string(),
        }
    }
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Lex { offset, found } => {
                write!(f, "unexpected character {found:?} at byte {offset}")
            }
            QueryError::Parse {
                offset,
                found,
                expected,
            } => write!(f, "expected {expected}, found {found} at byte {offset}"),
            QueryError::UnboundVariable { name } => {
                write!(f, "variable {name:?} is not bound in the from clause")
            }
            QueryError::DuplicateVariable { name } => {
                write!(f, "variable {name:?} is bound more than once")
            }
            QueryError::MeetNeedsTwoVariables => {
                write!(f, "meet(...) needs at least two variables")
            }
            QueryError::RowLimitExceeded { limit } => write!(
                f,
                "projection exceeded {limit} rows (combinatorial explosion); refine the query or use meet()"
            ),
            QueryError::ModifierWithoutMeet => {
                write!(f, "within/excluding/only modifiers require a meet(...) select")
            }
            QueryError::InvalidLimit => {
                write!(f, "limit must be at least 1 (limit 0 can never return an answer)")
            }
            QueryError::NumberOverflow { offset } => {
                write!(f, "numeric literal at byte {offset} is too large")
            }
            QueryError::UnknownCorpus { name } => {
                write!(f, "unknown corpus {name:?} (this backend serves no corpus of that name)")
            }
            QueryError::Backend { detail } => {
                write!(f, "backend failed: {detail}")
            }
        }
    }
}

impl std::error::Error for QueryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let cases: Vec<(QueryError, &str)> = vec![
            (
                QueryError::UnboundVariable { name: "t9".into() },
                "not bound",
            ),
            (QueryError::MeetNeedsTwoVariables, "at least two"),
            (QueryError::RowLimitExceeded { limit: 7 }, "explosion"),
            (QueryError::ModifierWithoutMeet, "meet"),
            (
                QueryError::UnknownCorpus {
                    name: "dblp".into(),
                },
                "unknown corpus",
            ),
            (
                QueryError::Backend {
                    detail: "replica set down".into(),
                },
                "backend failed",
            ),
        ];
        for (e, needle) in cases {
            assert!(e.to_string().contains(needle), "{e}");
        }
    }
}
