//! Tokenizer for the query dialect.

use crate::error::QueryError;

/// A token with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Classification and payload.
    pub kind: TokenKind,
    /// Byte offset in the source.
    pub offset: usize,
}

/// Token kinds. Keywords are recognized case-insensitively and carried as
/// [`TokenKind::Word`]s; the parser decides which words are keywords so
/// that tag names like `meet` remain usable in paths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Bare word: keyword, variable or tag name.
    Word(String),
    /// `$name` — tag variable.
    TagVar(String),
    /// `@name` — attribute step.
    AttrName(String),
    /// `'...'` or `"..."` string literal.
    Str(String),
    /// Integer literal.
    Number(usize),
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `,`.
    Comma,
    /// `/`.
    Slash,
    /// `*`.
    Star,
    /// `%`.
    Percent,
}

/// Tokenize the whole query.
pub fn lex(src: &str) -> Result<Vec<Token>, QueryError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        let offset = i;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                i += 1;
            }
            b'(' => {
                out.push(Token {
                    kind: TokenKind::LParen,
                    offset,
                });
                i += 1;
            }
            b')' => {
                out.push(Token {
                    kind: TokenKind::RParen,
                    offset,
                });
                i += 1;
            }
            b',' => {
                out.push(Token {
                    kind: TokenKind::Comma,
                    offset,
                });
                i += 1;
            }
            b'/' => {
                out.push(Token {
                    kind: TokenKind::Slash,
                    offset,
                });
                i += 1;
            }
            b'*' => {
                out.push(Token {
                    kind: TokenKind::Star,
                    offset,
                });
                i += 1;
            }
            b'%' => {
                out.push(Token {
                    kind: TokenKind::Percent,
                    offset,
                });
                i += 1;
            }
            b'$' | b'@' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && is_word_byte(bytes[j]) {
                    j += 1;
                }
                if j == start {
                    return Err(QueryError::Lex {
                        offset,
                        found: b as char,
                    });
                }
                let name = src[start..j].to_owned();
                out.push(Token {
                    kind: if b == b'$' {
                        TokenKind::TagVar(name)
                    } else {
                        TokenKind::AttrName(name)
                    },
                    offset,
                });
                i = j;
            }
            b'\'' | b'"' => {
                let quote = b;
                let mut j = i + 1;
                while j < bytes.len() && bytes[j] != quote {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(QueryError::Lex {
                        offset,
                        found: quote as char,
                    });
                }
                out.push(Token {
                    kind: TokenKind::Str(src[i + 1..j].to_owned()),
                    offset,
                });
                i = j + 1;
            }
            b'0'..=b'9' => {
                let mut j = i;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                // A pure digit run can only fail to parse by overflow.
                let n: usize = src[i..j]
                    .parse()
                    .map_err(|_| QueryError::NumberOverflow { offset })?;
                out.push(Token {
                    kind: TokenKind::Number(n),
                    offset,
                });
                i = j;
            }
            _ if is_word_start(b) => {
                let mut j = i;
                while j < bytes.len() && is_word_byte(bytes[j]) {
                    j += 1;
                }
                out.push(Token {
                    kind: TokenKind::Word(src[i..j].to_owned()),
                    offset,
                });
                i = j;
            }
            _ => {
                return Err(QueryError::Lex {
                    offset,
                    found: src[i..].chars().next().unwrap_or('\0'),
                })
            }
        }
    }
    Ok(out)
}

fn is_word_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_word_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':') || b >= 0x80
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn words_and_punctuation() {
        assert_eq!(
            kinds("select meet(t1, t2)"),
            vec![
                TokenKind::Word("select".into()),
                TokenKind::Word("meet".into()),
                TokenKind::LParen,
                TokenKind::Word("t1".into()),
                TokenKind::Comma,
                TokenKind::Word("t2".into()),
                TokenKind::RParen,
            ]
        );
    }

    #[test]
    fn paths_with_wildcards() {
        assert_eq!(
            kinds("bibliography/%/$T/@key/*"),
            vec![
                TokenKind::Word("bibliography".into()),
                TokenKind::Slash,
                TokenKind::Percent,
                TokenKind::Slash,
                TokenKind::TagVar("T".into()),
                TokenKind::Slash,
                TokenKind::AttrName("key".into()),
                TokenKind::Slash,
                TokenKind::Star,
            ]
        );
    }

    #[test]
    fn string_literals_both_quote_styles() {
        assert_eq!(
            kinds("'Ben Bit' \"19 99\""),
            vec![
                TokenKind::Str("Ben Bit".into()),
                TokenKind::Str("19 99".into()),
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("within 12"),
            vec![TokenKind::Word("within".into()), TokenKind::Number(12),]
        );
    }

    #[test]
    fn offsets_point_into_source() {
        let toks = lex("a  'x'").unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 3);
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(matches!(lex("'open"), Err(QueryError::Lex { .. })));
    }

    #[test]
    fn bare_sigil_is_an_error() {
        assert!(matches!(lex("$ "), Err(QueryError::Lex { .. })));
        assert!(matches!(lex("@,"), Err(QueryError::Lex { .. })));
    }

    #[test]
    fn stray_characters_are_errors() {
        assert!(matches!(lex("a ; b"), Err(QueryError::Lex { .. })));
    }
}
