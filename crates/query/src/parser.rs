//! Recursive-descent parser for the query dialect.

use crate::ast::{
    Binding, Condition, MeetModifiers, PathExpr, PathStepExpr, Query, SelectClause, SelectItem,
};
use crate::error::QueryError;
use crate::lexer::{lex, Token, TokenKind};

/// Parse a query string into an AST and validate variable references.
pub fn parse_query(src: &str) -> Result<Query, QueryError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    p.expect_eof()?;
    validate(&q)?;
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn offset(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|t| t.offset)
            .unwrap_or_else(|| self.tokens.last().map(|t| t.offset + 1).unwrap_or(0))
    }

    fn advance(&mut self) -> Option<TokenKind> {
        let t = self.tokens.get(self.pos).map(|t| t.kind.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, expected: &str) -> QueryError {
        QueryError::Parse {
            offset: self.offset(),
            found: match self.peek() {
                Some(k) => format!("{k:?}"),
                None => "end of input".to_owned(),
            },
            expected: expected.to_owned(),
        }
    }

    /// Consume a word matching `kw` case-insensitively.
    fn eat_keyword(&mut self, kw: &str) -> bool {
        if let Some(TokenKind::Word(w)) = self.peek() {
            if w.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), QueryError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.err(kw))
        }
    }

    fn expect_word(&mut self, what: &str) -> Result<String, QueryError> {
        match self.peek() {
            Some(TokenKind::Word(_)) => match self.advance() {
                Some(TokenKind::Word(w)) => Ok(w),
                _ => unreachable!(),
            },
            _ => Err(self.err(what)),
        }
    }

    fn expect_kind(&mut self, kind: &TokenKind, what: &str) -> Result<(), QueryError> {
        if self.peek() == Some(kind) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn expect_eof(&self) -> Result<(), QueryError> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            Err(self.err("end of query"))
        }
    }

    fn query(&mut self) -> Result<Query, QueryError> {
        self.expect_keyword("select")?;
        let select = self.select_clause()?;
        self.expect_keyword("from")?;
        let corpus = self.corpus_clause()?;
        let from = self.bindings()?;
        let mut conditions = Vec::new();
        if self.eat_keyword("where") {
            loop {
                conditions.push(self.condition()?);
                if !self.eat_keyword("and") {
                    break;
                }
            }
        }
        let limit = self.limit_clause()?;
        Ok(Query {
            select,
            corpus,
            from,
            conditions,
            limit,
        })
    }

    /// Trailing `limit N`. `limit 0` is a typed error — a query that can
    /// never answer is a mistake, not a request.
    fn limit_clause(&mut self) -> Result<Option<usize>, QueryError> {
        if !self.eat_keyword("limit") {
            return Ok(None);
        }
        match self.advance() {
            Some(TokenKind::Number(0)) => Err(QueryError::InvalidLimit),
            Some(TokenKind::Number(n)) => Ok(Some(n)),
            _ => Err(self.err("a number after limit")),
        }
    }

    /// `corpus(name)` right after `from` addresses a named corpus of a
    /// forest deployment. Only the word `corpus` *followed by `(`* is
    /// the clause — a path whose first tag happens to be `corpus` is
    /// never followed by a parenthesis, so both stay parseable. The
    /// trailing comma is optional.
    fn corpus_clause(&mut self) -> Result<Option<String>, QueryError> {
        let is_clause = matches!(self.peek(), Some(TokenKind::Word(w)) if w.eq_ignore_ascii_case("corpus"))
            && matches!(
                self.tokens.get(self.pos + 1).map(|t| &t.kind),
                Some(TokenKind::LParen)
            );
        if !is_clause {
            return Ok(None);
        }
        self.pos += 2; // corpus (
        let name = self.expect_word("corpus name")?;
        self.expect_kind(&TokenKind::RParen, ")")?;
        if self.peek() == Some(&TokenKind::Comma) {
            self.pos += 1;
        }
        Ok(Some(name))
    }

    fn select_clause(&mut self) -> Result<SelectClause, QueryError> {
        // `meet(` starts the aggregate; a bare word `meet` not followed by
        // `(` is an ordinary variable.
        let is_meet = matches!(self.peek(), Some(TokenKind::Word(w)) if w.eq_ignore_ascii_case("meet"))
            && matches!(
                self.tokens.get(self.pos + 1).map(|t| &t.kind),
                Some(TokenKind::LParen)
            );
        if is_meet {
            self.pos += 2; // meet (
            let mut vars = vec![self.expect_word("variable")?];
            while self.peek() == Some(&TokenKind::Comma) {
                self.pos += 1;
                vars.push(self.expect_word("variable")?);
            }
            self.expect_kind(&TokenKind::RParen, ")")?;
            let mut modifiers = MeetModifiers::default();
            loop {
                if self.eat_keyword("within") {
                    match self.advance() {
                        Some(TokenKind::Number(n)) => modifiers.within = Some(n),
                        _ => return Err(self.err("a number after within")),
                    }
                } else if self.eat_keyword("excluding") {
                    modifiers.excluding.push(self.path_expr()?);
                } else if self.eat_keyword("only") {
                    modifiers.only.push(self.path_expr()?);
                } else {
                    break;
                }
            }
            if vars.len() < 2 {
                return Err(QueryError::MeetNeedsTwoVariables);
            }
            return Ok(SelectClause::Meet { vars, modifiers });
        }
        let mut items = vec![self.select_item()?];
        while self.peek() == Some(&TokenKind::Comma) {
            self.pos += 1;
            items.push(self.select_item()?);
        }
        Ok(SelectClause::Projection(items))
    }

    fn select_item(&mut self) -> Result<SelectItem, QueryError> {
        match self.peek() {
            Some(TokenKind::TagVar(_)) => match self.advance() {
                Some(TokenKind::TagVar(v)) => Ok(SelectItem::TagVar(v)),
                _ => unreachable!(),
            },
            Some(TokenKind::Word(_)) => Ok(SelectItem::Var(self.expect_word("select item")?)),
            _ => Err(self.err("variable or $tagvar")),
        }
    }

    fn bindings(&mut self) -> Result<Vec<Binding>, QueryError> {
        let mut out = vec![self.binding()?];
        while self.peek() == Some(&TokenKind::Comma) {
            self.pos += 1;
            out.push(self.binding()?);
        }
        Ok(out)
    }

    fn binding(&mut self) -> Result<Binding, QueryError> {
        let path = self.path_expr()?;
        self.eat_keyword("as"); // optional
        let var = self.expect_word("binding variable")?;
        Ok(Binding { path, var })
    }

    fn path_expr(&mut self) -> Result<PathExpr, QueryError> {
        let mut steps = vec![self.path_step()?];
        while self.peek() == Some(&TokenKind::Slash) {
            self.pos += 1;
            steps.push(self.path_step()?);
        }
        Ok(PathExpr { steps })
    }

    fn path_step(&mut self) -> Result<PathStepExpr, QueryError> {
        match self.peek() {
            Some(TokenKind::Star) => {
                self.pos += 1;
                Ok(PathStepExpr::AnyOne)
            }
            Some(TokenKind::Percent) => {
                self.pos += 1;
                Ok(PathStepExpr::AnySeq)
            }
            Some(TokenKind::TagVar(_)) => match self.advance() {
                Some(TokenKind::TagVar(v)) => Ok(PathStepExpr::TagVar(v)),
                _ => unreachable!(),
            },
            Some(TokenKind::AttrName(_)) => match self.advance() {
                Some(TokenKind::AttrName(a)) => Ok(PathStepExpr::Attribute(a)),
                _ => unreachable!(),
            },
            Some(TokenKind::Word(w)) if w == "cdata" => {
                self.pos += 1;
                Ok(PathStepExpr::Cdata)
            }
            Some(TokenKind::Word(_)) => Ok(PathStepExpr::Tag(self.expect_word("path step")?)),
            _ => Err(self.err("path step")),
        }
    }

    fn condition(&mut self) -> Result<Condition, QueryError> {
        let var = self.expect_word("variable")?;
        self.expect_keyword("contains")?;
        match self.advance() {
            Some(TokenKind::Str(s)) => Ok(Condition { var, needle: s }),
            _ => Err(self.err("a quoted string after contains")),
        }
    }
}

fn validate(q: &Query) -> Result<(), QueryError> {
    // Duplicate bindings.
    for (i, b) in q.from.iter().enumerate() {
        if q.from[..i].iter().any(|b2| b2.var == b.var) {
            return Err(QueryError::DuplicateVariable {
                name: b.var.clone(),
            });
        }
    }
    let bound = |name: &str| q.from.iter().any(|b| b.var == name);
    let tag_vars: Vec<&str> = q
        .from
        .iter()
        .flat_map(|b| b.path.steps.iter())
        .filter_map(|s| match s {
            PathStepExpr::TagVar(v) => Some(v.as_str()),
            _ => None,
        })
        .collect();
    match &q.select {
        SelectClause::Projection(items) => {
            for item in items {
                match item {
                    SelectItem::Var(v) if !bound(v) => {
                        return Err(QueryError::UnboundVariable { name: v.clone() })
                    }
                    SelectItem::TagVar(v) if !tag_vars.contains(&v.as_str()) => {
                        return Err(QueryError::UnboundVariable {
                            name: format!("${v}"),
                        })
                    }
                    _ => {}
                }
            }
        }
        SelectClause::Meet { vars, .. } => {
            for v in vars {
                if !bound(v) {
                    return Err(QueryError::UnboundVariable { name: v.clone() });
                }
            }
        }
    }
    for c in &q.conditions {
        if !bound(&c.var) {
            return Err(QueryError::UnboundVariable {
                name: c.var.clone(),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::PathStepExpr as S;

    #[test]
    fn parses_the_baseline_query() {
        let q = parse_query(
            "select $T from bibliography/%/$T as t1, bibliography/%/$T as t2 \
             where t1 contains 'Bit' and t2 contains '1999'",
        )
        .unwrap();
        assert_eq!(
            q.select,
            SelectClause::Projection(vec![SelectItem::TagVar("T".into())])
        );
        assert_eq!(q.from.len(), 2);
        assert_eq!(
            q.from[0].path.steps,
            vec![
                S::Tag("bibliography".into()),
                S::AnySeq,
                S::TagVar("T".into())
            ]
        );
        assert_eq!(q.conditions.len(), 2);
        assert_eq!(q.conditions[1].needle, "1999");
    }

    #[test]
    fn parses_the_meet_query_with_modifiers() {
        let q = parse_query(
            "select meet(t1, t2) within 6 excluding bibliography \
             from bibliography/% t1, bibliography/% t2 \
             where t1 contains 'ICDE' and t2 contains '1999'",
        )
        .unwrap();
        match q.select {
            SelectClause::Meet { vars, modifiers } => {
                assert_eq!(vars, vec!["t1", "t2"]);
                assert_eq!(modifiers.within, Some(6));
                assert_eq!(modifiers.excluding.len(), 1);
            }
            _ => panic!("expected meet"),
        }
    }

    #[test]
    fn corpus_clause_parses_and_round_trips() {
        let q = parse_query(
            "select meet(t1, t2) from corpus(dblp), bibliography/% as t1, \
             bibliography/% as t2 where t1 contains 'Bit'",
        )
        .unwrap();
        assert_eq!(q.corpus.as_deref(), Some("dblp"));
        assert_eq!(q.from.len(), 2);
        // Canonical print re-parses to the same AST.
        assert_eq!(parse_query(&q.to_string()).unwrap(), q);
        // The comma after the clause is optional.
        let q2 = parse_query("select t from corpus(dblp) x as t").unwrap();
        assert_eq!(q2.corpus.as_deref(), Some("dblp"));
        // Case-insensitive keyword, like the rest of the dialect.
        let q3 = parse_query("select t from CORPUS(deep), x as t").unwrap();
        assert_eq!(q3.corpus.as_deref(), Some("deep"));
    }

    #[test]
    fn corpus_as_a_plain_tag_still_works() {
        // A path starting with the tag `corpus` is not the clause.
        let q = parse_query("select t from corpus/% as t").unwrap();
        assert_eq!(q.corpus, None);
        assert_eq!(q.from[0].path.steps[0], S::Tag("corpus".into()));
        // And `corpus` as a binding variable is fine too.
        let q = parse_query("select corpus from x as corpus").unwrap();
        assert_eq!(q.corpus, None);
    }

    #[test]
    fn malformed_corpus_clauses_are_parse_errors() {
        for bad in [
            "select t from corpus(), x as t",
            "select t from corpus(a b), x as t",
            "select t from corpus(a, x as t",
        ] {
            assert!(parse_query(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn as_keyword_is_optional() {
        let a = parse_query("select t from x as t").unwrap();
        let b = parse_query("select t from x t").unwrap();
        assert_eq!(a.from, b.from);
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert!(parse_query("SELECT t FROM x AS t WHERE t CONTAINS 'q'").is_ok());
    }

    #[test]
    fn meet_as_plain_variable_still_works() {
        // `meet` without parentheses is an ordinary name.
        let q = parse_query("select meet from x as meet").unwrap();
        assert_eq!(
            q.select,
            SelectClause::Projection(vec![SelectItem::Var("meet".into())])
        );
    }

    #[test]
    fn attribute_and_cdata_steps_parse() {
        let q = parse_query("select t from dblp/*/@key as t").unwrap();
        assert_eq!(
            q.from[0].path.steps,
            vec![S::Tag("dblp".into()), S::AnyOne, S::Attribute("key".into())]
        );
        let q = parse_query("select t from dblp/%/cdata as t").unwrap();
        assert_eq!(q.from[0].path.steps.last(), Some(&S::Cdata));
    }

    #[test]
    fn unbound_variables_are_rejected() {
        let e = parse_query("select t9 from x as t1").unwrap_err();
        assert!(matches!(e, QueryError::UnboundVariable { .. }));
        let e = parse_query("select meet(t1, t9) from x as t1").unwrap_err();
        assert!(matches!(e, QueryError::UnboundVariable { .. }));
        let e = parse_query("select t1 from x as t1 where t9 contains 'x'").unwrap_err();
        assert!(matches!(e, QueryError::UnboundVariable { .. }));
        let e = parse_query("select $Z from x/$T as t1").unwrap_err();
        assert!(matches!(e, QueryError::UnboundVariable { .. }));
    }

    #[test]
    fn duplicate_bindings_are_rejected() {
        let e = parse_query("select t from x as t, y as t").unwrap_err();
        assert!(matches!(e, QueryError::DuplicateVariable { .. }));
    }

    #[test]
    fn meet_needs_two_vars() {
        let e = parse_query("select meet(t1) from x as t1").unwrap_err();
        assert!(matches!(e, QueryError::MeetNeedsTwoVariables));
    }

    #[test]
    fn limit_clause_parses_and_round_trips() {
        // On a meet, after conditions.
        let q =
            parse_query("select meet(t1, t2) from x as t1, y as t2 where t1 contains 'q' limit 3")
                .unwrap();
        assert_eq!(q.limit, Some(3));
        assert_eq!(parse_query(&q.to_string()).unwrap(), q);
        // On a projection, without conditions, and with a corpus clause
        // and an `only` modifier in the mix.
        let q = parse_query("select t from corpus(dblp), x as t limit 1").unwrap();
        assert_eq!(q.limit, Some(1));
        assert_eq!(q.corpus.as_deref(), Some("dblp"));
        assert_eq!(parse_query(&q.to_string()).unwrap(), q);
        let q = parse_query("select meet(t1, t2) only a/b from x as t1, y as t2 limit 12").unwrap();
        assert_eq!(q.limit, Some(12));
        assert_eq!(parse_query(&q.to_string()).unwrap(), q);
        // Case-insensitive like every other keyword.
        assert_eq!(
            parse_query("select t from x as t LIMIT 2").unwrap().limit,
            Some(2)
        );
    }

    #[test]
    fn limit_zero_is_a_typed_error() {
        let e = parse_query("select t from x as t limit 0").unwrap_err();
        assert!(matches!(e, QueryError::InvalidLimit));
    }

    #[test]
    fn limit_overflow_is_a_typed_error() {
        let src = "select t from x as t limit 123456789012345678901234567890";
        let e = parse_query(src).unwrap_err();
        let offset = src.find("123").unwrap();
        assert_eq!(e, QueryError::NumberOverflow { offset });
    }

    #[test]
    fn malformed_limit_clauses_are_parse_errors() {
        for bad in [
            "select t from x as t limit",
            "select t from x as t limit 'x'",
            "select t from x as t limit 3 4",
            "select t from x as t limit 3 limit 4",
        ] {
            assert!(
                matches!(parse_query(bad), Err(QueryError::Parse { .. })),
                "{bad} should be a parse error"
            );
        }
    }

    #[test]
    fn limit_as_a_plain_name_still_works() {
        // `limit` as a binding variable or tag, with an actual limit
        // clause after it.
        let q = parse_query("select limit from x as limit limit 4").unwrap();
        assert_eq!(q.limit, Some(4));
        assert_eq!(q.from[0].var, "limit");
        assert_eq!(parse_query(&q.to_string()).unwrap(), q);
        let q = parse_query("select t from limit/% as t").unwrap();
        assert_eq!(q.limit, None);
        assert_eq!(q.from[0].path.steps[0], S::Tag("limit".into()));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let e = parse_query("select t from x as t zzz qqq").unwrap_err();
        assert!(matches!(e, QueryError::Parse { .. }));
    }

    #[test]
    fn missing_pieces_are_parse_errors() {
        for bad in [
            "select",
            "select t",
            "select t from",
            "select t from x as",
            "select t from x as t where",
            "select t from x as t where t contains",
            "select t from x as t where t contains 5",
            "select meet() from x as t",
        ] {
            assert!(parse_query(bad).is_err(), "{bad} should fail");
        }
    }
}
