//! Matching path expressions against a database's path summary.
//!
//! A pattern is anchored at the root and matched against every interned
//! path. `%` (the paper's schema wildcard, "may stand for any sequence of
//! tags") skips zero or more *element* steps; `*` matches exactly one
//! element step; `$X` matches one element step and captures its tag,
//! unifying across repeated occurrences within the same pattern.

use crate::ast::{PathExpr, PathStepExpr};
use ncq_store::{MonetDb, PathId, PathStep};
use ncq_xml::Symbol;

/// One successful match of a pattern against a concrete path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathMatch {
    /// The matched path.
    pub path: PathId,
    /// Tag-variable assignments, in first-capture order.
    pub tags: Vec<(String, Symbol)>,
}

/// All paths of `db` matched by `pattern`, with tag captures. A path may
/// appear several times when distinct wildcard splits capture different
/// assignments; `(path, tags)` pairs are deduplicated.
pub fn match_paths(db: &MonetDb, pattern: &PathExpr) -> Vec<PathMatch> {
    let summary = db.summary();
    let mut out: Vec<PathMatch> = Vec::new();
    for path in summary.iter() {
        // Materialize the concrete step sequence root → path.
        let mut steps = Vec::with_capacity(summary.depth(path) + 1);
        let mut cur = Some(path);
        while let Some(c) = cur {
            steps.push(summary.step(c));
            cur = summary.parent(c);
        }
        steps.reverse();

        let mut assignments = Vec::new();
        collect_matches(
            db,
            &steps,
            &pattern.steps,
            &mut Vec::new(),
            &mut assignments,
        );
        for tags in assignments {
            let m = PathMatch { path, tags };
            if !out.contains(&m) {
                out.push(m);
            }
        }
    }
    out
}

/// Whether any path matches (used for filters).
pub fn matched_path_ids(db: &MonetDb, pattern: &PathExpr) -> Vec<PathId> {
    let mut ids: Vec<PathId> = match_paths(db, pattern)
        .into_iter()
        .map(|m| m.path)
        .collect();
    ids.sort_unstable();
    ids.dedup();
    ids
}

fn collect_matches(
    db: &MonetDb,
    concrete: &[PathStep],
    pattern: &[PathStepExpr],
    bindings: &mut Vec<(String, Symbol)>,
    out: &mut Vec<Vec<(String, Symbol)>>,
) {
    match (concrete.first(), pattern.first()) {
        (None, None) => {
            if !out.contains(bindings) {
                out.push(bindings.clone());
            }
        }
        (Some(_), None) | (None, Some(_)) => {
            // `%` may still absorb an empty tail.
            if concrete.is_empty() {
                if let Some(PathStepExpr::AnySeq) = pattern.first() {
                    collect_matches(db, concrete, &pattern[1..], bindings, out);
                }
            }
        }
        (Some(&cstep), Some(pstep)) => match pstep {
            PathStepExpr::Tag(name) => {
                if let PathStep::Element(sym) = cstep {
                    if db.symbols().resolve(sym) == name {
                        collect_matches(db, &concrete[1..], &pattern[1..], bindings, out);
                    }
                }
            }
            PathStepExpr::AnyOne => {
                if matches!(cstep, PathStep::Element(_)) {
                    collect_matches(db, &concrete[1..], &pattern[1..], bindings, out);
                }
            }
            PathStepExpr::AnySeq => {
                // Zero steps…
                collect_matches(db, concrete, &pattern[1..], bindings, out);
                // …or absorb one element step and stay on `%`.
                if matches!(cstep, PathStep::Element(_)) {
                    collect_matches(db, &concrete[1..], pattern, bindings, out);
                }
            }
            PathStepExpr::Attribute(name) => {
                if let PathStep::Attribute(sym) = cstep {
                    if db.symbols().resolve(sym) == name {
                        collect_matches(db, &concrete[1..], &pattern[1..], bindings, out);
                    }
                }
            }
            PathStepExpr::Cdata => {
                if matches!(cstep, PathStep::Cdata) {
                    collect_matches(db, &concrete[1..], &pattern[1..], bindings, out);
                }
            }
            PathStepExpr::TagVar(var) => {
                if let PathStep::Element(sym) = cstep {
                    match bindings.iter().find(|(v, _)| v == var) {
                        Some((_, bound)) if *bound != sym => {}
                        Some(_) => {
                            collect_matches(db, &concrete[1..], &pattern[1..], bindings, out)
                        }
                        None => {
                            bindings.push((var.clone(), sym));
                            collect_matches(db, &concrete[1..], &pattern[1..], bindings, out);
                            bindings.pop();
                        }
                    }
                }
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use ncq_store::MonetDb;
    use ncq_xml::parse;

    fn db() -> MonetDb {
        MonetDb::from_document(
            &parse(
                r#"<bib>
                     <article key="k1"><author><name>A</name></author><year>1999</year></article>
                     <book><author><name>B</name></author></book>
                   </bib>"#,
            )
            .unwrap(),
        )
    }

    fn pattern(src: &str) -> PathExpr {
        // Reuse the parser: wrap the path into a trivial query.
        let q = parse_query(&format!("select t from {src} as t")).unwrap();
        q.from[0].path.clone()
    }

    fn names(db: &MonetDb, pat: &str) -> Vec<String> {
        let mut v: Vec<String> = match_paths(db, &pattern(pat))
            .into_iter()
            .map(|m| db.relation_name(m.path))
            .collect();
        v.sort();
        v.dedup();
        v
    }

    #[test]
    fn concrete_paths_match_exactly() {
        let db = db();
        assert_eq!(names(&db, "bib/article/year"), vec!["bib/article/year"]);
        assert!(names(&db, "bib/missing").is_empty());
        // Patterns are anchored: `article/year` alone does not match.
        assert!(names(&db, "article/year").is_empty());
    }

    #[test]
    fn star_matches_exactly_one_element() {
        let db = db();
        assert_eq!(
            names(&db, "bib/*/author"),
            vec!["bib/article/author", "bib/book/author"]
        );
        assert!(names(&db, "bib/*").contains(&"bib/article".to_string()));
        // `*` does not match attribute or cdata steps.
        assert!(!names(&db, "bib/article/*")
            .iter()
            .any(|n| n.ends_with("@k1") || n.ends_with("@key")));
    }

    #[test]
    fn percent_matches_any_element_sequence() {
        let db = db();
        let all = names(&db, "bib/%");
        // Includes bib itself (empty sequence) and deep element paths.
        assert!(all.contains(&"bib".to_string()));
        assert!(all.contains(&"bib/article/author/name".to_string()));
        // But not cdata/attribute paths (those need explicit steps).
        assert!(!all.iter().any(|n| n.ends_with("cdata") || n.contains('@')));
    }

    #[test]
    fn percent_plus_cdata_reaches_text_relations() {
        let db = db();
        let all = names(&db, "bib/%/cdata");
        assert!(all.contains(&"bib/article/year/cdata".to_string()));
        assert!(all.iter().all(|n| n.ends_with("/cdata")));
    }

    #[test]
    fn attribute_steps_match() {
        let db = db();
        assert_eq!(names(&db, "bib/article/@key"), vec!["bib/article/@key"]);
        assert_eq!(names(&db, "bib/%/@key"), vec!["bib/article/@key"]);
    }

    #[test]
    fn tag_vars_capture_and_unify() {
        let db = db();
        let ms = match_paths(&db, &pattern("bib/$T/author"));
        let tags: Vec<&str> = ms
            .iter()
            .map(|m| db.symbols().resolve(m.tags[0].1))
            .collect();
        assert_eq!(tags.len(), 2);
        assert!(tags.contains(&"article"));
        assert!(tags.contains(&"book"));
        // Repeated variable must unify: $T/$T never matches article/author.
        let ms = match_paths(&db, &pattern("bib/$T/$T"));
        assert!(ms.is_empty());
    }

    #[test]
    fn duplicate_matches_are_deduplicated() {
        let db = db();
        // `%/%` offers many splits of the same path; each path appears once.
        let ms = match_paths(&db, &pattern("bib/%/%/author"));
        let mut paths: Vec<PathId> = ms.iter().map(|m| m.path).collect();
        let before = paths.len();
        paths.sort_unstable();
        paths.dedup();
        assert_eq!(before, paths.len());
    }

    #[test]
    fn matched_path_ids_are_sorted_unique() {
        let db = db();
        let ids = matched_path_ids(&db, &pattern("bib/%"));
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(ids, sorted);
    }
}
