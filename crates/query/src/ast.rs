//! Abstract syntax of the query dialect, with a canonical
//! pretty-printer ([`std::fmt::Display`]) such that
//! `parse(q.to_string()) == q` for every valid query.

use std::fmt;

/// One step of a path expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathStepExpr {
    /// A concrete element tag.
    Tag(String),
    /// `*` — exactly one element step.
    AnyOne,
    /// `%` — any (possibly empty) sequence of element steps; the paper's
    /// schema wildcard.
    AnySeq,
    /// `@name` — an attribute step.
    Attribute(String),
    /// `cdata` — a character-data step.
    Cdata,
    /// `$X` — a tag variable: matches one element step and captures its
    /// tag; repeated occurrences must unify.
    TagVar(String),
}

/// A path expression: a sequence of steps, matched from the root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathExpr {
    /// The steps.
    pub steps: Vec<PathStepExpr>,
}

/// One `from` binding: `pathexpr as var`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Binding {
    /// Matched path pattern.
    pub path: PathExpr,
    /// Tuple variable name.
    pub var: String,
}

/// One item in a projection select list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectItem {
    /// A tuple variable — projects the bound node's tag.
    Var(String),
    /// A tag variable — projects the unified tag name.
    TagVar(String),
}

/// Modifiers on a meet aggregate (§4 extensions).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MeetModifiers {
    /// `within N` — the distance bound `meet^δ`.
    pub within: Option<usize>,
    /// `excluding <path>` — `meet_Π` exclusion patterns.
    pub excluding: Vec<PathExpr>,
    /// `only <path>` — `meet_Π` allow patterns.
    pub only: Vec<PathExpr>,
}

/// The select clause: projection or meet aggregation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectClause {
    /// `select a, $T, b` — enumerate binding combinations.
    Projection(Vec<SelectItem>),
    /// `select meet(a, b, …)` — aggregate with the meet operator.
    Meet {
        /// Variables whose hit groups feed the meet.
        vars: Vec<String>,
        /// §4 restrictions.
        modifiers: MeetModifiers,
    },
}

/// A `where` predicate: `var contains 'string'`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Condition {
    /// The tuple variable.
    pub var: String,
    /// The search string.
    pub needle: String,
}

/// A full query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// What to return.
    pub select: SelectClause,
    /// The corpus this query addresses — `from corpus(name), …`.
    /// `None` resolves to the evaluation default (the backend itself
    /// for single-document engines, the catalog default for forests).
    pub corpus: Option<String>,
    /// The bindings.
    pub from: Vec<Binding>,
    /// Conjunctive conditions.
    pub conditions: Vec<Condition>,
    /// `limit N` — at most N answers. Meets are distance-ranked, so the
    /// engine serves this with a bounded sweep that stops once the k-th
    /// best distance cannot improve; projections stop enumerating rows
    /// at N. Always ≥ 1 in a parsed query (`limit 0` is a typed error).
    pub limit: Option<usize>,
}

impl fmt::Display for PathStepExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathStepExpr::Tag(t) => write!(f, "{t}"),
            PathStepExpr::AnyOne => write!(f, "*"),
            PathStepExpr::AnySeq => write!(f, "%"),
            PathStepExpr::Attribute(a) => write!(f, "@{a}"),
            PathStepExpr::Cdata => write!(f, "cdata"),
            PathStepExpr::TagVar(v) => write!(f, "${v}"),
        }
    }
}

impl fmt::Display for PathExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.steps.iter().enumerate() {
            if i > 0 {
                write!(f, "/")?;
            }
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Var(v) => write!(f, "{v}"),
            SelectItem::TagVar(t) => write!(f, "${t}"),
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "select ")?;
        match &self.select {
            SelectClause::Projection(items) => {
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
            }
            SelectClause::Meet { vars, modifiers } => {
                write!(f, "meet({})", vars.join(", "))?;
                if let Some(n) = modifiers.within {
                    write!(f, " within {n}")?;
                }
                for p in &modifiers.excluding {
                    write!(f, " excluding {p}")?;
                }
                for p in &modifiers.only {
                    write!(f, " only {p}")?;
                }
            }
        }
        write!(f, " from ")?;
        if let Some(corpus) = &self.corpus {
            write!(f, "corpus({corpus}), ")?;
        }
        for (i, b) in self.from.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} as {}", b.path, b.var)?;
        }
        for (i, c) in self.conditions.iter().enumerate() {
            write!(
                f,
                " {} {} contains '{}'",
                if i == 0 { "where" } else { "and" },
                c.var,
                c.needle
            )?;
        }
        if let Some(n) = self.limit {
            write!(f, " limit {n}")?;
        }
        Ok(())
    }
}

impl Query {
    /// All `contains` strings attached to one variable.
    pub fn needles_for(&self, var: &str) -> Vec<&str> {
        self.conditions
            .iter()
            .filter(|c| c.var == var)
            .map(|c| c.needle.as_str())
            .collect()
    }

    /// The binding for a variable, if any.
    pub fn binding_for(&self, var: &str) -> Option<&Binding> {
        self.from.iter().find(|b| b.var == var)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Query {
        Query {
            select: SelectClause::Projection(vec![SelectItem::TagVar("T".into())]),
            corpus: None,
            from: vec![Binding {
                path: PathExpr {
                    steps: vec![
                        PathStepExpr::Tag("bibliography".into()),
                        PathStepExpr::AnySeq,
                        PathStepExpr::TagVar("T".into()),
                    ],
                },
                var: "t1".into(),
            }],
            conditions: vec![Condition {
                var: "t1".into(),
                needle: "Bit".into(),
            }],
            limit: None,
        }
    }

    #[test]
    fn needles_for_collects_per_variable() {
        let mut q = sample();
        q.conditions.push(Condition {
            var: "t1".into(),
            needle: "1999".into(),
        });
        q.conditions.push(Condition {
            var: "t2".into(),
            needle: "x".into(),
        });
        assert_eq!(q.needles_for("t1"), vec!["Bit", "1999"]);
        assert_eq!(q.needles_for("t2"), vec!["x"]);
        assert!(q.needles_for("t3").is_empty());
    }

    #[test]
    fn binding_for_finds_bindings() {
        let q = sample();
        assert!(q.binding_for("t1").is_some());
        assert!(q.binding_for("nope").is_none());
    }
}
