//! Property tests: random query ASTs survive print → parse, and random
//! query *strings* never panic the pipeline.

use ncq_query::ast::{
    Binding, Condition, MeetModifiers, PathExpr, PathStepExpr, Query, SelectClause, SelectItem,
};
use ncq_query::parse_query;
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,6}".prop_filter("not a keyword", |s| {
        !matches!(
            s.as_str(),
            "select" | "from" | "where" | "and" | "as" | "contains" | "meet" | "within"
                | "excluding" | "only" | "cdata"
        )
    })
}

fn path_step() -> impl Strategy<Value = PathStepExpr> {
    prop_oneof![
        4 => ident().prop_map(PathStepExpr::Tag),
        1 => Just(PathStepExpr::AnyOne),
        1 => Just(PathStepExpr::AnySeq),
        1 => ident().prop_map(PathStepExpr::Attribute),
        1 => Just(PathStepExpr::Cdata),
        1 => "[A-Z]".prop_map(PathStepExpr::TagVar),
    ]
}

fn path_expr() -> impl Strategy<Value = PathExpr> {
    prop::collection::vec(path_step(), 1..5).prop_map(|steps| PathExpr { steps })
}

fn needle() -> impl Strategy<Value = String> {
    // Anything except quotes (the printer uses single quotes).
    "[a-zA-Z0-9 .&-]{1,12}".prop_map(|s| s.trim().to_string() + "x")
}

/// A structurally valid query: distinct binding vars, select/where refer
/// only to bound vars, meet has ≥ 2 vars.
fn query() -> impl Strategy<Value = Query> {
    (
        prop::collection::vec((path_expr(), ident()), 2..4),
        any::<bool>(),
        prop::collection::vec((prop::sample::Index::arbitrary(), needle()), 0..3),
        proptest::option::of(0usize..10),
        proptest::option::of(path_expr()),
    )
        .prop_map(|(mut from_raw, is_meet, conds, within, excluding)| {
            // Dedup binding variables.
            from_raw.sort_by(|a, b| a.1.cmp(&b.1));
            from_raw.dedup_by(|a, b| a.1 == b.1);
            let from: Vec<Binding> = from_raw
                .into_iter()
                .map(|(path, var)| Binding { path, var })
                .collect();
            let tag_vars: Vec<String> = from
                .iter()
                .flat_map(|b| b.path.steps.iter())
                .filter_map(|s| match s {
                    PathStepExpr::TagVar(v) => Some(v.clone()),
                    _ => None,
                })
                .collect();
            let select = if is_meet && from.len() >= 2 {
                SelectClause::Meet {
                    vars: from.iter().map(|b| b.var.clone()).collect(),
                    modifiers: MeetModifiers {
                        within,
                        excluding: excluding.into_iter().collect(),
                        only: vec![],
                    },
                }
            } else {
                let mut items: Vec<SelectItem> =
                    from.iter().map(|b| SelectItem::Var(b.var.clone())).collect();
                if let Some(tv) = tag_vars.first() {
                    items.push(SelectItem::TagVar(tv.clone()));
                }
                SelectClause::Projection(items)
            };
            let conditions = conds
                .into_iter()
                .map(|(idx, needle)| Condition {
                    var: from[idx.index(from.len())].var.clone(),
                    needle,
                })
                .collect();
            Query {
                select,
                from,
                conditions,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn print_then_parse_is_identity(q in query()) {
        let printed = q.to_string();
        let reparsed = parse_query(&printed)
            .unwrap_or_else(|e| panic!("{printed:?} failed: {e}"));
        prop_assert_eq!(reparsed, q, "printed: {}", printed);
    }

    #[test]
    fn parser_never_panics(src in "\\PC{0,120}") {
        let _ = parse_query(&src);
    }

    #[test]
    fn parser_never_panics_on_query_soup(
        src in "(select|from|where|meet|contains|and|as|[a-z$@%*/,()' ]){0,40}"
    ) {
        let _ = parse_query(&src);
    }
}
