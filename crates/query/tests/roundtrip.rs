//! Randomized tests: random query ASTs survive print → parse, and random
//! query *strings* never panic the pipeline.
//!
//! Seeded loops over a deterministic PRNG stand in for proptest (the
//! offline build cannot fetch it); failures print the seed.

use ncq_query::ast::{
    Binding, Condition, MeetModifiers, PathExpr, PathStepExpr, Query, SelectClause, SelectItem,
};
use ncq_query::parse_query;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn ident(rng: &mut StdRng) -> String {
    loop {
        let len = rng.random_range(1usize..8);
        let mut s = String::new();
        s.push((b'a' + rng.random_range(0u8..26)) as char);
        const TAIL: [char; 38] = [
            'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h', 'i', 'j', 'k', 'l', 'm', 'n', 'o', 'p', 'q',
            'r', 's', 't', 'u', 'v', 'w', 'x', 'y', 'z', '0', '1', '2', '3', '4', '5', '6', '7',
            '8', '9', '_', '_',
        ];
        for _ in 1..len {
            s.push(TAIL[rng.random_range(0..TAIL.len())]);
        }
        let keyword = matches!(
            s.as_str(),
            "select"
                | "from"
                | "where"
                | "and"
                | "as"
                | "contains"
                | "meet"
                | "within"
                | "excluding"
                | "only"
                | "cdata"
                | "limit"
        );
        if !keyword {
            return s;
        }
    }
}

fn path_step(rng: &mut StdRng) -> PathStepExpr {
    match rng.random_range(0usize..9) {
        0..=3 => PathStepExpr::Tag(ident(rng)),
        4 => PathStepExpr::AnyOne,
        5 => PathStepExpr::AnySeq,
        6 => PathStepExpr::Attribute(ident(rng)),
        7 => PathStepExpr::Cdata,
        _ => PathStepExpr::TagVar(((b'A' + rng.random_range(0u8..26)) as char).to_string()),
    }
}

fn path_expr(rng: &mut StdRng) -> PathExpr {
    let n = rng.random_range(1usize..5);
    PathExpr {
        steps: (0..n).map(|_| path_step(rng)).collect(),
    }
}

fn needle(rng: &mut StdRng) -> String {
    // Anything except quotes (the printer uses single quotes).
    const CHARS: [char; 10] = ['a', 'B', '7', ' ', '.', '&', '-', 'z', 'Q', '0'];
    let len = rng.random_range(1usize..13);
    let s: String = (0..len)
        .map(|_| CHARS[rng.random_range(0..CHARS.len())])
        .collect();
    s.trim().to_string() + "x"
}

/// A structurally valid query: distinct binding vars, select/where refer
/// only to bound vars, meet has ≥ 2 vars.
fn random_query(rng: &mut StdRng) -> Query {
    let n_bindings = rng.random_range(2usize..4);
    let mut from_raw: Vec<(PathExpr, String)> = (0..n_bindings)
        .map(|_| (path_expr(rng), ident(rng)))
        .collect();
    let is_meet = rng.random_bool();
    let n_conds = rng.random_range(0usize..3);
    let within = if rng.random_bool() {
        Some(rng.random_range(0usize..10))
    } else {
        None
    };
    let excluding: Vec<PathExpr> = (0..rng.random_range(0usize..3))
        .map(|_| path_expr(rng))
        .collect();
    let only: Vec<PathExpr> = (0..rng.random_range(0usize..3))
        .map(|_| path_expr(rng))
        .collect();

    // Dedup binding variables.
    from_raw.sort_by(|a, b| a.1.cmp(&b.1));
    from_raw.dedup_by(|a, b| a.1 == b.1);
    let from: Vec<Binding> = from_raw
        .into_iter()
        .map(|(path, var)| Binding { path, var })
        .collect();
    let tag_vars: Vec<String> = from
        .iter()
        .flat_map(|b| b.path.steps.iter())
        .filter_map(|s| match s {
            PathStepExpr::TagVar(v) => Some(v.clone()),
            _ => None,
        })
        .collect();
    let select = if is_meet && from.len() >= 2 {
        SelectClause::Meet {
            vars: from.iter().map(|b| b.var.clone()).collect(),
            modifiers: MeetModifiers {
                within,
                excluding,
                only,
            },
        }
    } else {
        let mut items: Vec<SelectItem> = from
            .iter()
            .map(|b| SelectItem::Var(b.var.clone()))
            .collect();
        if let Some(tv) = tag_vars.first() {
            items.push(SelectItem::TagVar(tv.clone()));
        }
        SelectClause::Projection(items)
    };
    let conditions = (0..n_conds)
        .map(|_| Condition {
            var: from[rng.random_range(0..from.len())].var.clone(),
            needle: needle(rng),
        })
        .collect();
    // A corpus-qualified query half the time (any identifier works —
    // `corpus` only becomes the clause when followed by `(`).
    let corpus = if rng.random_bool() {
        Some(ident(rng))
    } else {
        None
    };
    // `limit 0` is a typed parse error, so valid queries draw from 1..
    let limit = if rng.random_bool() {
        Some(rng.random_range(1usize..50))
    } else {
        None
    };
    Query {
        select,
        corpus,
        from,
        conditions,
        limit,
    }
}

const CASES: u64 = 256;

#[test]
fn print_then_parse_is_identity() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let q = random_query(&mut rng);
        let printed = q.to_string();
        let reparsed = parse_query(&printed)
            .unwrap_or_else(|e| panic!("seed {seed}: {printed:?} failed: {e}"));
        assert_eq!(reparsed, q, "seed {seed}, printed: {printed}");
    }
}

#[test]
fn parser_never_panics() {
    const CHARS: [char; 24] = [
        'a', 'z', '$', '@', '%', '*', '/', ',', '(', ')', '\'', ' ', '"', '0', '9', '<', '>', '=',
        ';', '.', '-', 'é', '≤', '\t',
    ];
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(1 << 32 | seed);
        let len = rng.random_range(0usize..120);
        let src: String = (0..len)
            .map(|_| CHARS[rng.random_range(0..CHARS.len())])
            .collect();
        let _ = parse_query(&src);
    }
}

/// Mutate a valid query string: each round inserts, deletes, replaces
/// or duplicates a random byte-range (on char boundaries). The pipeline
/// must reject or accept, never panic — and on acceptance, the printer
/// must still round-trip (parse → print → parse is a fixpoint).
#[test]
fn mutated_valid_queries_never_panic_and_reparse_stably() {
    const JUNK: [char; 16] = [
        'a', 'Z', '$', '@', '%', '*', '/', ',', '(', ')', '\'', ' ', '0', '\t', '"', ';',
    ];
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(3 << 32 | seed);
        let mut src = random_query(&mut rng).to_string();
        for _ in 0..rng.random_range(1usize..6) {
            let chars: Vec<char> = src.chars().collect();
            if chars.is_empty() {
                break;
            }
            let at = rng.random_range(0..chars.len());
            let mutated: String = match rng.random_range(0usize..4) {
                // Insert junk.
                0 => chars[..at]
                    .iter()
                    .chain([&JUNK[rng.random_range(0..JUNK.len())]])
                    .chain(&chars[at..])
                    .collect(),
                // Delete one char.
                1 => chars[..at].iter().chain(&chars[at + 1..]).collect(),
                // Replace one char.
                2 => {
                    let mut v = chars.clone();
                    v[at] = JUNK[rng.random_range(0..JUNK.len())];
                    v.into_iter().collect()
                }
                // Duplicate a range.
                _ => {
                    let end = rng.random_range(at..chars.len().min(at + 12) + 1);
                    chars[..end]
                        .iter()
                        .chain(&chars[at..end])
                        .chain(&chars[end..])
                        .collect()
                }
            };
            if let Ok(q) = parse_query(&mutated) {
                let printed = q.to_string();
                let again = parse_query(&printed)
                    .unwrap_or_else(|e| panic!("seed {seed}: reparse of {printed:?} failed: {e}"));
                assert_eq!(again, q, "seed {seed}: print/parse not a fixpoint");
            }
            src = mutated;
        }
    }
}

/// Lexer-level garbage: random byte strings (not just word soup) must
/// never panic, including multi-byte UTF-8 and control characters.
#[test]
fn lexer_survives_random_unicode() {
    const CHARS: [char; 16] = [
        'a',
        '\u{0}',
        '\u{7f}',
        'é',
        '漢',
        '\u{1F600}',
        '\'',
        '"',
        '\\',
        '\n',
        '\r',
        '\t',
        '$',
        '@',
        '%',
        '9',
    ];
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(4 << 32 | seed);
        let len = rng.random_range(0usize..80);
        let src: String = (0..len)
            .map(|_| CHARS[rng.random_range(0..CHARS.len())])
            .collect();
        let _ = parse_query(&src);
    }
}

/// `limit`-focused mutation fuzz: start from a corpus-qualified meet
/// query with `only` and `limit` (every clause that has to coexist with
/// it), then mutate the tail around the limit clause. Accepted mutants
/// must round-trip; `limit 0` and overflowing literals must surface as
/// their typed errors, never as panics.
#[test]
fn limit_clause_mutations_round_trip_or_fail_typed() {
    use ncq_query::QueryError;
    let base = "select meet(t1, t2) only a/b from corpus(dblp), x as t1, y as t2 \
                where t1 contains 'q' limit 7";
    let parsed = parse_query(base).expect("base query parses");
    assert_eq!(parsed.limit, Some(7));
    assert_eq!(parsed.corpus.as_deref(), Some("dblp"));
    assert_eq!(parse_query(&parsed.to_string()).unwrap(), parsed);

    assert!(matches!(
        parse_query(&base.replace("limit 7", "limit 0")),
        Err(QueryError::InvalidLimit)
    ));
    assert!(matches!(
        parse_query(&base.replace("limit 7", "limit 99999999999999999999999999")),
        Err(QueryError::NumberOverflow { .. })
    ));

    const TAILS: [&str; 8] = [
        "limit",
        "limit limit",
        "limit 'x'",
        "limit 7 8",
        "limit 7 limit 8",
        "limit -1",
        "limit 7)",
        "7",
    ];
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(5 << 32 | seed);
        let mut q = random_query(&mut rng);
        q.limit = None;
        let prefix = q.to_string();
        let tail = TAILS[rng.random_range(0..TAILS.len())];
        let src = format!("{prefix} {tail}");
        if let Ok(ok) = parse_query(&src) {
            let printed = ok.to_string();
            let again = parse_query(&printed)
                .unwrap_or_else(|e| panic!("seed {seed}: reparse of {printed:?} failed: {e}"));
            assert_eq!(again, ok, "seed {seed}: limit print/parse not a fixpoint");
        }
    }
}

#[test]
fn parser_never_panics_on_query_soup() {
    const PIECES: [&str; 16] = [
        "select ",
        "from ",
        "where ",
        "meet",
        "contains ",
        "and ",
        "as ",
        "limit ",
        "0 ",
        "(",
        ")",
        "'",
        "$t",
        "%",
        "/",
        ", ",
    ];
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(2 << 32 | seed);
        let n = rng.random_range(0usize..40);
        let src: String = (0..n)
            .map(|_| PIECES[rng.random_range(0..PIECES.len())])
            .collect();
        let _ = parse_query(&src);
    }
}
