//! Randomized invariants of the Monet transform and the meet index.
//!
//! Seeded loops over a deterministic PRNG stand in for proptest (the
//! offline build cannot fetch it); failures print the seed.

use ncq_store::{MonetDb, Oid, PathStep};
use ncq_xml::{Document, NodeId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Random document recipes (same instruction-list trick as in ncq-xml).
#[derive(Debug, Clone)]
enum Op {
    Open(&'static str),
    Close,
    Text(String),
    Attr(&'static str, String),
}

const TAGS: [&str; 5] = ["a", "b", "c", "d", "e"];

fn word(rng: &mut StdRng) -> String {
    let len = rng.random_range(1usize..7);
    (0..len)
        .map(|_| (b'a' + rng.random_range(0u8..26)) as char)
        .collect()
}

fn ops(rng: &mut StdRng) -> Vec<Op> {
    let n = rng.random_range(0usize..80);
    (0..n)
        .map(|_| match rng.random_range(0usize..8) {
            0..=2 => Op::Open(TAGS[rng.random_range(0..TAGS.len())]),
            3..=4 => Op::Close,
            5..=6 => Op::Text(word(rng)),
            _ => Op::Attr(TAGS[rng.random_range(0..TAGS.len())], word(rng)),
        })
        .collect()
}

fn build(ops: &[Op]) -> Document {
    let mut doc = Document::new("root");
    let mut stack: Vec<NodeId> = vec![doc.root()];
    for op in ops {
        let cur = *stack.last().unwrap();
        match op {
            Op::Open(tag) => {
                let id = doc.add_element(cur, tag);
                stack.push(id);
            }
            Op::Close => {
                if stack.len() > 1 {
                    stack.pop();
                }
            }
            Op::Text(s) => {
                // Avoid adjacent text nodes; the store does not merge them
                // and neither does the builder.
                let last_is_text = doc
                    .children(cur)
                    .last()
                    .is_some_and(|&c| doc.text(c).is_some());
                if !last_is_text {
                    doc.add_text(cur, s.clone());
                }
            }
            Op::Attr(k, v) => doc.set_attribute(cur, k, v.clone()),
        }
    }
    doc
}

const CASES: u64 = 192;

fn for_random_dbs(salt: u64, mut check: impl FnMut(&Document, &MonetDb, u64)) {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(salt << 32 | seed);
        let doc = build(&ops(&mut rng));
        let db = MonetDb::from_document(&doc);
        check(&doc, &db, seed);
    }
}

/// Every tree node gets exactly one oid; count matches.
#[test]
fn oid_assignment_is_a_bijection() {
    for_random_dbs(1, |doc, db, seed| {
        assert_eq!(db.node_count(), doc.len(), "seed {seed}");
        let mut seen = vec![false; doc.len()];
        for o in db.iter_oids() {
            let n = db.node_of(o);
            assert!(!seen[n.index()], "seed {seed}");
            seen[n.index()] = true;
            assert_eq!(db.oid_of(n), o, "seed {seed}");
        }
    });
}

/// Oids are depth-first document order: parent < child, and the sequence
/// of node_of(oid) equals the document's DFS pre-order.
#[test]
fn oids_follow_document_order() {
    for_random_dbs(2, |doc, db, seed| {
        let dfs: Vec<NodeId> = doc.iter_depth_first().collect();
        for (i, n) in dfs.iter().enumerate() {
            assert_eq!(db.node_of(Oid::from_index(i)), *n, "seed {seed}");
        }
        for o in db.iter_oids().skip(1) {
            assert!(db.parent(o).unwrap() < o, "seed {seed}");
        }
    });
}

/// Every non-root oid appears exactly once as the child component of
/// exactly one edge relation, and that relation is σ(o).
#[test]
fn edge_relations_partition_the_objects() {
    for_random_dbs(3, |_, db, seed| {
        let mut appearances = vec![0usize; db.node_count()];
        for p in db.summary().iter() {
            for &(parent, child) in db.edges_of(p) {
                assert_eq!(db.sigma(child), p, "seed {seed}");
                assert_eq!(db.parent(child), Some(parent), "seed {seed}");
                appearances[child.index()] += 1;
            }
        }
        assert_eq!(appearances[0], 0, "root is in no edge relation");
        for o in db.iter_oids().skip(1) {
            assert_eq!(appearances[o.index()], 1, "seed {seed}");
        }
    });
}

/// σ(o) is consistent: walking parents of o walks parents of σ(o).
#[test]
fn sigma_tracks_parent_paths() {
    for_random_dbs(4, |_, db, seed| {
        for o in db.iter_oids().skip(1) {
            let p = db.parent(o).unwrap();
            assert_eq!(
                db.summary().parent(db.sigma(o)),
                Some(db.sigma(p)),
                "seed {seed}"
            );
        }
    });
}

/// Depth in the tree equals path depth.
#[test]
fn depth_matches_ancestor_count() {
    for_random_dbs(5, |_, db, seed| {
        for o in db.iter_oids() {
            assert_eq!(db.depth(o), db.ancestors(o).count() - 1, "seed {seed}");
        }
    });
}

/// String associations cover exactly the text nodes and attributes.
#[test]
fn string_relations_cover_text_and_attributes() {
    for_random_dbs(6, |doc, db, seed| {
        let text_nodes = doc
            .iter_depth_first()
            .filter(|&n| doc.text(n).is_some())
            .count();
        let attrs: usize = doc
            .iter_depth_first()
            .map(|n| doc.attributes(n).len())
            .sum();
        let total: usize = db.summary().iter().map(|p| db.strings_of(p).len()).sum();
        assert_eq!(total, text_nodes + attrs, "seed {seed}");
        // Cdata string owners are the cdata nodes themselves; attribute
        // string owners are element nodes.
        for p in db.summary().iter() {
            for (owner, _) in db.strings_of(p) {
                match db.summary().step(p) {
                    PathStep::Cdata => assert_eq!(db.sigma(*owner), p, "seed {seed}"),
                    PathStep::Attribute(_) => {
                        assert_eq!(
                            Some(db.sigma(*owner)),
                            db.summary().parent(p),
                            "seed {seed}"
                        )
                    }
                    PathStep::Element(_) => panic!("element paths own no strings"),
                }
            }
        }
    });
}

/// The prefix order `le` agrees with an independent prefix check on
/// rendered path strings.
#[test]
fn le_agrees_with_string_prefixes() {
    for_random_dbs(7, |_, db, seed| {
        let s = db.summary();
        let paths: Vec<_> = s.iter().collect();
        for &a in paths.iter().take(20) {
            for &b in paths.iter().take(20) {
                let sa = db.relation_name(a);
                let sb = db.relation_name(b);
                let expect =
                    sa == sb || (sa.starts_with(&sb) && sa.as_bytes().get(sb.len()) == Some(&b'/'));
                assert_eq!(s.le(a, b), expect, "seed {seed} a={sa} b={sb}");
            }
        }
    });
}

/// The meet index agrees with parent-pointer walks on every primitive:
/// depth, inclusive-ancestor test, LCA, distance, and per-path postings.
#[test]
fn meet_index_agrees_with_parent_walks() {
    for_random_dbs(8, |_, db, seed| {
        let idx = db.meet_index();
        let n = db.node_count();
        // Exhaustive on small documents, sampled on larger ones.
        let mut rng = StdRng::seed_from_u64(9 << 32 | seed);
        let pairs: Vec<(Oid, Oid)> = if n <= 24 {
            db.iter_oids()
                .flat_map(|a| db.iter_oids().map(move |b| (a, b)))
                .collect()
        } else {
            (0..200)
                .map(|_| {
                    (
                        Oid::from_index(rng.random_range(0..n)),
                        Oid::from_index(rng.random_range(0..n)),
                    )
                })
                .collect()
        };
        for (a, b) in pairs {
            let anc: Vec<Oid> = db.ancestors(a).collect();
            let reference = db.ancestors(b).find(|x| anc.contains(x)).unwrap();
            assert_eq!(idx.lca(a, b), reference, "seed {seed} {a:?} {b:?}");
            let expect_d = db.depth(a) + db.depth(b) - 2 * db.depth(reference);
            assert_eq!(idx.distance(a, b), expect_d, "seed {seed} {a:?} {b:?}");
            assert_eq!(
                idx.is_ancestor_or_self(a, b),
                db.is_ancestor_or_self(a, b),
                "seed {seed} {a:?} {b:?}"
            );
            assert_eq!(idx.depth(a), db.depth(a), "seed {seed}");
        }
        let mut total = 0usize;
        for p in db.summary().iter() {
            let oids = idx.oids_of_path(p);
            assert!(oids.windows(2).all(|w| w[0] < w[1]), "seed {seed}");
            assert_eq!(oids, db.oids_of_path(p).as_slice(), "seed {seed}");
            total += oids.len();
        }
        assert_eq!(total, n, "seed {seed}");
    });
}
