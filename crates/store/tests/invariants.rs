//! Property-based invariants of the Monet transform.

use ncq_store::{MonetDb, Oid, PathStep};
use ncq_xml::{Document, NodeId};
use proptest::prelude::*;

/// Random document recipes (same instruction-list trick as in ncq-xml).
#[derive(Debug, Clone)]
enum Op {
    Open(&'static str),
    Close,
    Text(String),
    Attr(&'static str, String),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    let tag = prop::sample::select(vec!["a", "b", "c", "d", "e"]);
    let word = "[a-z]{1,6}";
    prop::collection::vec(
        prop_oneof![
            3 => tag.clone().prop_map(Op::Open),
            2 => Just(Op::Close),
            2 => word.prop_map(Op::Text),
            1 => (tag, word).prop_map(|(k, v)| Op::Attr(k, v)),
        ],
        0..80,
    )
}

fn build(ops: &[Op]) -> Document {
    let mut doc = Document::new("root");
    let mut stack: Vec<NodeId> = vec![doc.root()];
    for op in ops {
        let cur = *stack.last().unwrap();
        match op {
            Op::Open(tag) => {
                let id = doc.add_element(cur, tag);
                stack.push(id);
            }
            Op::Close => {
                if stack.len() > 1 {
                    stack.pop();
                }
            }
            Op::Text(s) => {
                // Avoid adjacent text nodes; the store does not merge them
                // and neither does the builder.
                let last_is_text = doc
                    .children(cur)
                    .last()
                    .is_some_and(|&c| doc.text(c).is_some());
                if !last_is_text {
                    doc.add_text(cur, s.clone());
                }
            }
            Op::Attr(k, v) => doc.set_attribute(cur, k, v.clone()),
        }
    }
    doc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Every tree node gets exactly one oid; count matches.
    #[test]
    fn oid_assignment_is_a_bijection(recipe in ops()) {
        let doc = build(&recipe);
        let db = MonetDb::from_document(&doc);
        prop_assert_eq!(db.node_count(), doc.len());
        let mut seen = vec![false; doc.len()];
        for o in db.iter_oids() {
            let n = db.node_of(o);
            prop_assert!(!seen[n.index()]);
            seen[n.index()] = true;
            prop_assert_eq!(db.oid_of(n), o);
        }
    }

    /// Oids are depth-first document order: parent < child, and the
    /// sequence of node_of(oid) equals the document's DFS pre-order.
    #[test]
    fn oids_follow_document_order(recipe in ops()) {
        let doc = build(&recipe);
        let db = MonetDb::from_document(&doc);
        let dfs: Vec<NodeId> = doc.iter_depth_first().collect();
        for (i, n) in dfs.iter().enumerate() {
            prop_assert_eq!(db.node_of(Oid::from_index(i)), *n);
        }
        for o in db.iter_oids().skip(1) {
            prop_assert!(db.parent(o).unwrap() < o);
        }
    }

    /// Every non-root oid appears exactly once as the child component of
    /// exactly one edge relation, and that relation is σ(o).
    #[test]
    fn edge_relations_partition_the_objects(recipe in ops()) {
        let doc = build(&recipe);
        let db = MonetDb::from_document(&doc);
        let mut appearances = vec![0usize; db.node_count()];
        for p in db.summary().iter() {
            for &(parent, child) in db.edges_of(p) {
                prop_assert_eq!(db.sigma(child), p);
                prop_assert_eq!(db.parent(child), Some(parent));
                appearances[child.index()] += 1;
            }
        }
        prop_assert_eq!(appearances[0], 0); // root is in no edge relation
        for o in db.iter_oids().skip(1) {
            prop_assert_eq!(appearances[o.index()], 1);
        }
    }

    /// σ(o) is consistent: walking parents of o walks parents of σ(o).
    #[test]
    fn sigma_tracks_parent_paths(recipe in ops()) {
        let doc = build(&recipe);
        let db = MonetDb::from_document(&doc);
        for o in db.iter_oids().skip(1) {
            let p = db.parent(o).unwrap();
            prop_assert_eq!(db.summary().parent(db.sigma(o)), Some(db.sigma(p)));
        }
    }

    /// Depth in the tree equals path depth.
    #[test]
    fn depth_matches_ancestor_count(recipe in ops()) {
        let doc = build(&recipe);
        let db = MonetDb::from_document(&doc);
        for o in db.iter_oids() {
            prop_assert_eq!(db.depth(o), db.ancestors(o).count() - 1);
        }
    }

    /// String associations cover exactly the text nodes and attributes.
    #[test]
    fn string_relations_cover_text_and_attributes(recipe in ops()) {
        let doc = build(&recipe);
        let db = MonetDb::from_document(&doc);
        let text_nodes = doc.iter_depth_first().filter(|&n| doc.text(n).is_some()).count();
        let attrs: usize = doc.iter_depth_first().map(|n| doc.attributes(n).len()).sum();
        let total: usize = db.summary().iter().map(|p| db.strings_of(p).len()).sum();
        prop_assert_eq!(total, text_nodes + attrs);
        // Cdata string owners are the cdata nodes themselves; attribute
        // string owners are element nodes.
        for p in db.summary().iter() {
            for (owner, _) in db.strings_of(p) {
                match db.summary().step(p) {
                    PathStep::Cdata => prop_assert_eq!(db.sigma(*owner), p),
                    PathStep::Attribute(_) => {
                        prop_assert_eq!(Some(db.sigma(*owner)), db.summary().parent(p))
                    }
                    PathStep::Element(_) => prop_assert!(false, "element paths own no strings"),
                }
            }
        }
    }

    /// The prefix order `le` agrees with an independent prefix check on
    /// rendered path strings.
    #[test]
    fn le_agrees_with_string_prefixes(recipe in ops()) {
        let doc = build(&recipe);
        let db = MonetDb::from_document(&doc);
        let s = db.summary();
        let paths: Vec<_> = s.iter().collect();
        for &a in paths.iter().take(20) {
            for &b in paths.iter().take(20) {
                let sa = db.relation_name(a);
                let sb = db.relation_name(b);
                let expect = sa == sb
                    || (sa.starts_with(&sb) && sa.as_bytes().get(sb.len()) == Some(&b'/'));
                prop_assert_eq!(s.le(a, b), expect, "a={} b={}", sa, sb);
            }
        }
    }
}
