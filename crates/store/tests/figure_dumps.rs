//! Exact-output tests for the Figure 1 / Figure 2 regenerators on small
//! hand-checked documents.

use ncq_store::MonetDb;
use ncq_xml::parse;

#[test]
fn tree_dump_of_tiny_document_is_exact() {
    let db = MonetDb::from_document(&parse(r#"<a x="1"><b>t</b><c/></a>"#).unwrap());
    assert_eq!(
        db.dump_tree(),
        "a, o0 [x=\"1\"]\n  b, o1\n    cdata, o2 \"t\"\n  c, o3\n"
    );
}

#[test]
fn relation_dump_of_tiny_document_is_exact() {
    let db = MonetDb::from_document(&parse(r#"<a x="1"><b>t</b><c/></a>"#).unwrap());
    assert_eq!(
        db.dump_relations(),
        "a/@x/string -> {(o0,\"1\")}\n\
         a/b -> {(o0,o1)}\n\
         a/b/cdata -> {(o1,o2)}\n\
         a/b/cdata/string -> {(o2,\"t\")}\n\
         a/c -> {(o0,o3)}\n"
    );
}

#[test]
fn dumps_scale_to_repeated_structures() {
    let db = MonetDb::from_document(&parse("<l><i>1</i><i>2</i><i>3</i></l>").unwrap());
    let tree = db.dump_tree();
    // Items in document order with their strings.
    let pos1 = tree.find("\"1\"").unwrap();
    let pos2 = tree.find("\"2\"").unwrap();
    let pos3 = tree.find("\"3\"").unwrap();
    assert!(pos1 < pos2 && pos2 < pos3);

    let rels = db.dump_relations();
    // One edge relation holding all three items.
    assert!(rels.contains("l/i -> {(o0,o1), (o0,o3), (o0,o5)}"));
    assert!(rels.contains("l/i/cdata/string -> {(o2,\"1\"), (o4,\"2\"), (o6,\"3\")}"));
}

#[test]
fn single_node_document_dumps() {
    let db = MonetDb::from_document(&parse("<only/>").unwrap());
    assert_eq!(db.dump_tree(), "only, o0\n");
    assert_eq!(db.dump_relations(), "\n");
}
