//! The Monet transform: bulk loading and the loaded database.
//!
//! [`MonetDb::from_document`] walks the syntax tree depth-first, assigns
//! dense [`Oid`]s in document order (paper: "the assignment of OIDs is
//! arbitrary, e.g., depth-first traversal order"), interns every node's
//! path `σ(o)`, and scatters the associations into per-path binary
//! relations:
//!
//! * **edge relations** `σ(o) ↦ [(parent, o)]` for element and cdata nodes,
//! * **string relations** for cdata text (`…/cdata`) and attribute values
//!   (`…/@name`), keyed by the owner's association path,
//! * **rank relations** `σ(o) ↦ [(o, rank)]` preserving sibling order.
//!
//! On top of the relations, two dense arrays provide the primitives the
//! meet algorithms need in O(1): `sigma: oid → PathId` and
//! `parent: oid → Oid` (the paper's "basically a hash look-up").

use crate::index::MeetIndex;
use crate::mmap::Col;
use crate::oid::Oid;
use crate::path::{PathId, PathStep, PathSummary};
use crate::stats::{DepthStats, PartitionStats, StoreStats};
use ncq_xml::{Document, NodeId, NodeKind, SymbolTable};
use std::ops::Range;
use std::sync::OnceLock;

/// A loaded, path-partitioned XML database instance.
///
/// The dense per-oid columns are [`Col`]s: owned after a bulk load or a
/// legacy snapshot decode, zero-copy views into the mapped file after a
/// v3 snapshot open. Edge relations are *derived* state — a pure
/// function of the `σ`/parent columns — and are materialized lazily on
/// first access, so neither open path pays for them up front.
#[derive(Debug, Clone)]
pub struct MonetDb {
    /// Field visibility is `pub(crate)` so the snapshot codec
    /// (`crate::snapshot`) can persist and reconstruct the columns
    /// without an intermediate copy.
    pub(crate) symbols: SymbolTable,
    pub(crate) summary: PathSummary,
    /// `σ(o)` per oid.
    pub(crate) sigma: Col<PathId>,
    /// Parent oid per oid; the root maps to itself.
    pub(crate) parent: Col<Oid>,
    /// Sibling rank per oid (0-based).
    pub(crate) rank: Col<u32>,
    /// Edge relations indexed by `PathId`: pairs `(parent(o), o)` with
    /// `σ(o)` = that path. Attribute paths have empty edge relations.
    /// Rebuilt lazily from `σ`/parent in two linear passes — byte-
    /// identical to the bulk-load push order, since a parent's children
    /// appear in oid order.
    pub(crate) edges: OnceLock<Vec<Vec<(Oid, Oid)>>>,
    /// String relations indexed by `PathId`: pairs `(owner, string)`.
    /// Non-empty only for cdata paths (owner = the cdata node) and
    /// attribute paths (owner = the element carrying the attribute).
    pub(crate) strings: Vec<Vec<(Oid, Box<str>)>>,
    /// Original tree node per oid, for object re-assembly.
    pub(crate) node_of_oid: Vec<NodeId>,
    /// Oid per tree node (dense over the arena).
    pub(crate) oid_of_node: Vec<Oid>,
    /// Lazily built structural meet index (Euler-tour LCA); the database
    /// is immutable after loading, so the cache never invalidates.
    pub(crate) meet_index: OnceLock<MeetIndex>,
    /// Lazily computed node-depth distribution (planner input).
    pub(crate) depth_stats: OnceLock<DepthStats>,
    /// Lazily computed per-oid mass prefix sums (partitioner input).
    pub(crate) partition_stats: OnceLock<PartitionStats>,
}

/// Bulk-load staging: plain growable vectors, converted to [`Col`]s
/// once the DFS finishes.
struct Loader {
    summary: PathSummary,
    sigma: Vec<PathId>,
    parent: Vec<Oid>,
    rank: Vec<u32>,
    strings: Vec<Vec<(Oid, Box<str>)>>,
    node_of_oid: Vec<NodeId>,
    oid_of_node: Vec<Oid>,
}

impl Loader {
    fn ensure_path_slot(&mut self, p: PathId) {
        let need = p.index() + 1;
        if self.strings.len() < need {
            self.strings.resize_with(need, Vec::new);
        }
    }

    fn bulk_load(&mut self, doc: &Document) {
        // Explicit DFS stack of (node, parent oid, parent path, rank).
        // Children are pushed in reverse so document order pops first.
        let root_sym = doc.tag_symbol(doc.root()).expect("root is an element node");
        // Symbols were cloned from the document, so the root symbol is
        // valid in our table too.
        let root_path = self.summary.intern_root(PathStep::Element(root_sym));
        self.ensure_path_slot(root_path);
        self.sigma.push(root_path);
        self.parent.push(Oid::ROOT);
        self.rank.push(0);
        self.node_of_oid.push(doc.root());
        self.oid_of_node[doc.root().index()] = Oid::ROOT;
        self.load_attributes(doc, doc.root(), Oid::ROOT, root_path);

        let mut stack: Vec<(NodeId, Oid, PathId)> = Vec::new();
        for &c in doc.children(doc.root()).iter().rev() {
            stack.push((c, Oid::ROOT, root_path));
        }

        while let Some((node, parent_oid, parent_path)) = stack.pop() {
            let oid = Oid::from_index(self.sigma.len());
            let rank = doc.rank(node) as u32;
            let path = match doc.kind(node) {
                NodeKind::Element(sym) => self
                    .summary
                    .intern_child(parent_path, PathStep::Element(*sym)),
                NodeKind::Text(_) => self.summary.intern_child(parent_path, PathStep::Cdata),
            };
            self.ensure_path_slot(path);
            self.sigma.push(path);
            self.parent.push(parent_oid);
            self.rank.push(rank);
            self.node_of_oid.push(node);
            self.oid_of_node[node.index()] = oid;

            match doc.kind(node) {
                NodeKind::Text(s) => {
                    self.strings[path.index()].push((oid, s.as_str().into()));
                }
                NodeKind::Element(_) => {
                    self.load_attributes(doc, node, oid, path);
                    for &c in doc.children(node).iter().rev() {
                        stack.push((c, oid, path));
                    }
                }
            }
        }
    }

    fn load_attributes(&mut self, doc: &Document, node: NodeId, oid: Oid, path: PathId) {
        for attr in doc.attributes(node) {
            let apath = self
                .summary
                .intern_child(path, PathStep::Attribute(attr.name));
            self.ensure_path_slot(apath);
            self.strings[apath.index()].push((oid, attr.value.as_str().into()));
        }
    }
}

impl MonetDb {
    /// Bulk-load a parsed document (paper §2, Definition 4).
    pub fn from_document(doc: &Document) -> MonetDb {
        let n = doc.len();
        let mut loader = Loader {
            summary: PathSummary::new(),
            sigma: Vec::with_capacity(n),
            parent: Vec::with_capacity(n),
            rank: Vec::with_capacity(n),
            strings: Vec::new(),
            node_of_oid: Vec::with_capacity(n),
            oid_of_node: vec![Oid::ROOT; n],
        };
        loader.bulk_load(doc);
        let Loader {
            summary,
            sigma,
            parent,
            rank,
            mut strings,
            node_of_oid,
            oid_of_node,
        } = loader;
        // Every interned path gets a string slot (the snapshot codec and
        // the `strings_of` accessor index by dense path id).
        strings.resize_with(summary.len(), Vec::new);
        MonetDb {
            symbols: doc.symbols().clone(),
            summary,
            sigma: sigma.into(),
            parent: parent.into(),
            rank: rank.into(),
            edges: OnceLock::new(),
            strings,
            node_of_oid,
            oid_of_node,
            meet_index: OnceLock::new(),
            depth_stats: OnceLock::new(),
            partition_stats: OnceLock::new(),
        }
    }

    /// The edge relations, materialized on first use: one counting pass
    /// sizes every relation exactly, one fill pass in oid order
    /// reproduces the bulk-load push order (no reallocation). Derived
    /// state stays out of the snapshot *and* out of the cold-start
    /// critical path.
    fn edge_relations(&self) -> &[Vec<(Oid, Oid)>] {
        self.edges.get_or_init(|| {
            let n = self.sigma.len();
            let path_count = self.summary.len();
            let mut counts = vec![0u32; path_count];
            for &p in &self.sigma[1..] {
                counts[p.index()] += 1;
            }
            let mut edges: Vec<Vec<(Oid, Oid)>> = counts
                .iter()
                .map(|&c| Vec::with_capacity(c as usize))
                .collect();
            for i in 1..n {
                edges[self.sigma[i].index()].push((self.parent[i], Oid::from_index(i)));
            }
            edges
        })
    }

    // ----- primitives used by the meet operators -----

    /// `σ(o)`: the association type / relation of `o` (Definition 3).
    #[inline]
    pub fn sigma(&self, o: Oid) -> PathId {
        self.sigma[o.index()]
    }

    /// The parent association head: `None` for the root.
    #[inline]
    pub fn parent(&self, o: Oid) -> Option<Oid> {
        if o == Oid::ROOT {
            None
        } else {
            Some(self.parent[o.index()])
        }
    }

    /// Depth of `o` (= depth of `σ(o)`; 0 for the root).
    #[inline]
    pub fn depth(&self, o: Oid) -> usize {
        self.summary.depth(self.sigma(o))
    }

    /// Sibling rank of `o` (0-based).
    #[inline]
    pub fn rank(&self, o: Oid) -> usize {
        self.rank[o.index()] as usize
    }

    /// The root object.
    #[inline]
    pub fn root(&self) -> Oid {
        Oid::ROOT
    }

    /// Total number of objects (element + cdata nodes).
    #[inline]
    pub fn node_count(&self) -> usize {
        self.sigma.len()
    }

    /// Iterate over all oids in document order.
    pub fn iter_oids(&self) -> impl Iterator<Item = Oid> {
        (0..self.sigma.len()).map(Oid::from_index)
    }

    /// Iterate `o, parent(o), …, root`.
    pub fn ancestors(&self, o: Oid) -> impl Iterator<Item = Oid> + '_ {
        let mut cur = Some(o);
        std::iter::from_fn(move || {
            let c = cur?;
            cur = self.parent(c);
            Some(c)
        })
    }

    /// Whether `anc` is an ancestor of `o` (inclusive).
    pub fn is_ancestor_or_self(&self, anc: Oid, o: Oid) -> bool {
        self.ancestors(o).any(|a| a == anc)
    }

    /// The structural meet index: O(1) `lca` / `distance` /
    /// `is_ancestor_or_self` after a one-off O(n log n) build. Built
    /// lazily on first use and cached for the lifetime of the database
    /// (which is immutable after bulk load).
    pub fn meet_index(&self) -> &MeetIndex {
        self.meet_index.get_or_init(|| MeetIndex::build(self))
    }

    /// Node-depth distribution of the instance — the corpus-shape signal
    /// the depth-aware meet planner reads. Computed once (one pass over
    /// the `σ` array) and cached.
    pub fn depth_stats(&self) -> DepthStats {
        *self.depth_stats.get_or_init(|| {
            let max_depth = self
                .summary
                .iter()
                .map(|p| self.summary.depth(p))
                .max()
                .unwrap_or(0);
            let mut histogram = vec![0usize; max_depth + 1];
            for &p in self.sigma.iter() {
                histogram[self.summary.depth(p)] += 1;
            }
            DepthStats::from_histogram(&histogram)
        })
    }

    /// Per-object mass prefix sums — the signal a partitioner balances
    /// when cutting the document into preorder-interval shards. The
    /// weight of an object is `1 + strings(o)` (structural mass plus
    /// posting mass). Computed once and cached.
    pub fn partition_stats(&self) -> &PartitionStats {
        self.partition_stats.get_or_init(|| {
            let mut weights = vec![1u64; self.node_count()];
            for p in self.summary.iter() {
                for (owner, _) in self.strings_of(p) {
                    weights[owner.index()] += 1;
                }
            }
            PartitionStats::from_weights(weights)
        })
    }

    // ----- schema access -----

    /// The path summary (tree-shaped schema).
    #[inline]
    pub fn summary(&self) -> &PathSummary {
        &self.summary
    }

    /// The symbol table shared with the source document.
    #[inline]
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Human-readable relation name of a path, e.g.
    /// `bibliography/institute/article/author/cdata`.
    pub fn relation_name(&self, p: PathId) -> String {
        self.summary.display(p, &self.symbols)
    }

    /// Label of `o` for display in answers: the element tag, `cdata`, or
    /// `@attr`.
    pub fn label(&self, o: Oid) -> String {
        self.summary.last_label(self.sigma(o), &self.symbols)
    }

    /// Tag name of `o` when it is an element node.
    pub fn tag(&self, o: Oid) -> Option<&str> {
        match self.summary.step(self.sigma(o)) {
            PathStep::Element(s) => Some(self.symbols.resolve(s)),
            _ => None,
        }
    }

    // ----- relation access -----

    /// Edge relation of a path: all `(parent, o)` with `σ(o)` = `p`,
    /// in document order of `o`.
    pub fn edges_of(&self, p: PathId) -> &[(Oid, Oid)] {
        self.edge_relations()
            .get(p.index())
            .map_or(&[], Vec::as_slice)
    }

    /// String relation of a path: `(owner, string)` pairs.
    pub fn strings_of(&self, p: PathId) -> &[(Oid, Box<str>)] {
        self.strings.get(p.index()).map_or(&[], Vec::as_slice)
    }

    /// Restriction of a string relation to a preorder OID interval:
    /// the `(owner, string)` pairs with `owner.index()` in `range`.
    /// String relations are loaded in document order of the owner, so
    /// the restriction is a contiguous subslice found by two binary
    /// searches — the zero-copy "relation restriction" a sharded
    /// execution layer scans instead of the whole relation.
    pub fn strings_in_range(&self, p: PathId, range: Range<usize>) -> &[(Oid, Box<str>)] {
        let rel = self.strings_of(p);
        let lo = rel.partition_point(|&(o, _)| o.index() < range.start);
        let hi = rel.partition_point(|&(o, _)| o.index() < range.end);
        &rel[lo..hi]
    }

    /// Restriction of an edge relation to a preorder OID interval of the
    /// *child*: the `(parent, o)` pairs with `o.index()` in `range`.
    /// Edge relations are in document order of `o`, so this is again a
    /// contiguous subslice.
    pub fn edges_in_range(&self, p: PathId, range: Range<usize>) -> &[(Oid, Oid)] {
        let rel = self.edges_of(p);
        let lo = rel.partition_point(|&(_, o)| o.index() < range.start);
        let hi = rel.partition_point(|&(_, o)| o.index() < range.end);
        &rel[lo..hi]
    }

    /// The string owned by `owner` in relation `p`, if any. String
    /// relations are loaded in document order of the owner, so this is a
    /// binary search.
    pub fn string_value(&self, p: PathId, owner: Oid) -> Option<&str> {
        let rel = self.strings_of(p);
        let idx = rel.binary_search_by_key(&owner, |(o, _)| *o).ok()?;
        Some(&rel[idx].1)
    }

    /// All paths that own a non-empty string relation (cdata and attribute
    /// paths) — the domain of full-text search.
    pub fn string_paths(&self) -> impl Iterator<Item = PathId> + '_ {
        self.summary
            .iter()
            .filter(|p| !self.strings_of(*p).is_empty())
    }

    /// All oids whose `σ` equals `p`, in document order.
    pub fn oids_of_path(&self, p: PathId) -> Vec<Oid> {
        if self.summary.depth(p) == 0 {
            return vec![Oid::ROOT];
        }
        self.edges_of(p).iter().map(|&(_, o)| o).collect()
    }

    // ----- provenance -----
    //
    // For databases whose arena ids coincide with document order (every
    // parsed document, and any snapshot-loaded instance), the maps are
    // the identity permutation and are stored as *empty* vectors — the
    // accessors fall back to the identity instead of materializing n
    // entries twice.

    /// The tree node behind an oid.
    pub fn node_of(&self, o: Oid) -> NodeId {
        if self.node_of_oid.is_empty() {
            NodeId::from_index(o.index())
        } else {
            self.node_of_oid[o.index()]
        }
    }

    /// The oid assigned to a tree node.
    pub fn oid_of(&self, n: NodeId) -> Oid {
        if self.oid_of_node.is_empty() {
            Oid::from_index(n.index())
        } else {
            self.oid_of_node[n.index()]
        }
    }

    /// Render the syntax tree in the style of the paper's **Figure 1**:
    /// one node per line, indented by depth, with labels, oids, attribute
    /// associations and strings.
    pub fn dump_tree(&self) -> String {
        let mut out = String::new();
        // Depth-first over oids; oids are document order, so a stack of
        // (oid, depth) walked via children keeps the figure's layout.
        let mut stack = vec![Oid::ROOT];
        while let Some(o) = stack.pop() {
            let depth = self.depth(o);
            for _ in 0..depth {
                out.push_str("  ");
            }
            match self.summary.step(self.sigma(o)) {
                PathStep::Cdata => {
                    let text = self.string_value(self.sigma(o), o).unwrap_or_default();
                    out.push_str(&format!("cdata, {o} \"{text}\"\n"));
                }
                _ => {
                    out.push_str(&format!("{}, {o}", self.label(o)));
                    for p in self.summary.children(self.sigma(o)) {
                        if let PathStep::Attribute(sym) = self.summary.step(*p) {
                            if let Some(v) = self.string_value(*p, o) {
                                out.push_str(&format!(
                                    " [{}=\"{}\"]",
                                    self.symbols.resolve(sym),
                                    v
                                ));
                            }
                        }
                    }
                    out.push('\n');
                }
            }
            // Children in reverse document order so the stack pops the
            // first child next.
            let mut children: Vec<Oid> = Vec::new();
            for p in self.summary.children(self.sigma(o)) {
                let edges = self.edges_of(*p);
                let start = edges.partition_point(|&(parent, _)| parent < o);
                for &(parent, child) in &edges[start..] {
                    if parent != o {
                        break;
                    }
                    children.push(child);
                }
            }
            children.sort_unstable();
            for c in children.into_iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// Render the Monet transform in the style of the paper's **Figure 2**:
    /// one line per non-empty relation, `name ↦ {associations}`.
    pub fn dump_relations(&self) -> String {
        let mut lines: Vec<String> = Vec::new();
        for p in self.summary.iter() {
            let name = self.relation_name(p);
            let edges = self.edges_of(p);
            if !edges.is_empty() {
                let pairs: Vec<String> = edges.iter().map(|(a, b)| format!("({a},{b})")).collect();
                lines.push(format!("{name} -> {{{}}}", pairs.join(", ")));
            }
            let strings = self.strings_of(p);
            if !strings.is_empty() {
                let pairs: Vec<String> = strings
                    .iter()
                    .map(|(o, s)| format!("({o},\"{s}\")"))
                    .collect();
                lines.push(format!("{name}/string -> {{{}}}", pairs.join(", ")));
            }
        }
        lines.sort();
        let mut out = lines.join("\n");
        out.push('\n');
        out
    }

    /// Summary statistics (relation counts, association counts…).
    pub fn stats(&self) -> StoreStats {
        let mut s = StoreStats {
            objects: self.node_count(),
            paths: self.summary.len(),
            ..StoreStats::default()
        };
        for p in self.summary.iter() {
            let e = self.edges_of(p).len();
            let t = self.strings_of(p).len();
            if e > 0 {
                s.edge_relations += 1;
                s.edge_associations += e;
            }
            if t > 0 {
                s.string_relations += 1;
                s.string_associations += t;
                s.string_bytes += self
                    .strings_of(p)
                    .iter()
                    .map(|(_, v)| v.len())
                    .sum::<usize>();
            }
            s.max_depth = s.max_depth.max(self.summary.depth(p));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncq_xml::parse;

    /// The paper's Figure 1 document, verbatim.
    pub(crate) const FIGURE1: &str = r#"
<bibliography>
  <institute>
    <article key="BB99">
      <author><firstname>Ben</firstname><lastname>Bit</lastname></author>
      <title>How to Hack</title>
      <year>1999</year>
    </article>
    <article key="BK99">
      <author>Bob Byte</author>
      <title>Hacking &amp; RSI</title>
      <year>1999</year>
    </article>
  </institute>
</bibliography>"#;

    fn figure1_db() -> MonetDb {
        MonetDb::from_document(&parse(FIGURE1).unwrap())
    }

    #[test]
    fn oids_are_depth_first_document_order() {
        let db = figure1_db();
        // Root gets o0, first child o1, etc. Parents precede children.
        assert_eq!(db.label(Oid::ROOT), "bibliography");
        assert_eq!(db.label(Oid::from_index(1)), "institute");
        assert_eq!(db.label(Oid::from_index(2)), "article");
        for o in db.iter_oids().skip(1) {
            assert!(db.parent(o).unwrap() < o);
        }
    }

    #[test]
    fn sigma_matches_figure2_relation_names() {
        let db = figure1_db();
        let names: Vec<String> = db.summary().iter().map(|p| db.relation_name(p)).collect();
        // Every relation of the paper's Figure 2 must exist.
        for expected in [
            "bibliography",
            "bibliography/institute",
            "bibliography/institute/article",
            "bibliography/institute/article/@key",
            "bibliography/institute/article/author",
            "bibliography/institute/article/author/cdata",
            "bibliography/institute/article/author/firstname",
            "bibliography/institute/article/author/firstname/cdata",
            "bibliography/institute/article/author/lastname",
            "bibliography/institute/article/author/lastname/cdata",
            "bibliography/institute/article/title",
            "bibliography/institute/article/title/cdata",
            "bibliography/institute/article/year",
            "bibliography/institute/article/year/cdata",
        ] {
            assert!(names.contains(&expected.to_string()), "missing {expected}");
        }
        assert_eq!(names.len(), 14);
    }

    #[test]
    fn key_attributes_are_stored_with_element_owner() {
        let db = figure1_db();
        let p = db
            .summary()
            .lookup_in(
                &["bibliography", "institute", "article", "@key"],
                db.symbols(),
            )
            .unwrap();
        let rel = db.strings_of(p);
        assert_eq!(rel.len(), 2);
        assert_eq!(&*rel[0].1, "BB99");
        assert_eq!(&*rel[1].1, "BK99");
        // Owners are the two article elements.
        assert_eq!(db.tag(rel[0].0), Some("article"));
        assert_eq!(db.tag(rel[1].0), Some("article"));
        assert_ne!(rel[0].0, rel[1].0);
    }

    #[test]
    fn year_strings_live_in_one_relation() {
        let db = figure1_db();
        let p = db
            .summary()
            .lookup_in(
                &["bibliography", "institute", "article", "year", "cdata"],
                db.symbols(),
            )
            .unwrap();
        let years: Vec<&str> = db.strings_of(p).iter().map(|(_, s)| &**s).collect();
        assert_eq!(years, vec!["1999", "1999"]);
    }

    #[test]
    fn edge_relations_hold_parent_child_pairs() {
        let db = figure1_db();
        let p_art = db
            .summary()
            .lookup_in(&["bibliography", "institute", "article"], db.symbols())
            .unwrap();
        let edges = db.edges_of(p_art);
        assert_eq!(edges.len(), 2);
        // Both articles share the institute parent.
        assert_eq!(edges[0].0, edges[1].0);
        assert_eq!(db.label(edges[0].0), "institute");
    }

    #[test]
    fn parent_walks_reach_root() {
        let db = figure1_db();
        for o in db.iter_oids() {
            let last = db.ancestors(o).last().unwrap();
            assert_eq!(last, Oid::ROOT);
        }
        assert_eq!(db.parent(Oid::ROOT), None);
    }

    #[test]
    fn depth_equals_path_depth_equals_ancestor_count() {
        let db = figure1_db();
        for o in db.iter_oids() {
            assert_eq!(db.depth(o), db.ancestors(o).count() - 1);
        }
    }

    #[test]
    fn ranks_match_sibling_positions() {
        let db = figure1_db();
        // institute's children: two articles with ranks 0 and 1.
        let p_art = db
            .summary()
            .lookup_in(&["bibliography", "institute", "article"], db.symbols())
            .unwrap();
        let arts = db.oids_of_path(p_art);
        assert_eq!(db.rank(arts[0]), 0);
        assert_eq!(db.rank(arts[1]), 1);
    }

    #[test]
    fn node_oid_mapping_round_trips() {
        let doc = parse(FIGURE1).unwrap();
        let db = MonetDb::from_document(&doc);
        for o in db.iter_oids() {
            assert_eq!(db.oid_of(db.node_of(o)), o);
        }
    }

    #[test]
    fn figure1_object_count_matches_paper() {
        // Figure 1 numbers the tree o1..o19 plus the root: element nodes
        // and cdata nodes (attribute values are not objects).
        let db = figure1_db();
        // bibliography, institute, 2×(article, author, title, year,
        // title/cdata, year/cdata) = see FIGURE1; count explicitly:
        // article1: article, author, firstname, firstname/cdata, lastname,
        //           lastname/cdata, title, title/cdata, year, year/cdata = 10
        // article2: article, author, author/cdata, title, title/cdata,
        //           year, year/cdata = 7
        assert_eq!(db.node_count(), 2 + 10 + 7);
    }

    #[test]
    fn string_paths_cover_cdata_and_attributes() {
        let db = figure1_db();
        let mut names: Vec<String> = db.string_paths().map(|p| db.relation_name(p)).collect();
        names.sort();
        assert!(names.iter().any(|n| n.ends_with("@key")));
        assert!(names
            .iter()
            .all(|n| n.ends_with("cdata") || n.ends_with("@key")));
    }

    #[test]
    fn is_ancestor_or_self_works() {
        let db = figure1_db();
        let any_leaf = db.iter_oids().find(|&o| db.label(o) == "cdata").unwrap();
        assert!(db.is_ancestor_or_self(Oid::ROOT, any_leaf));
        assert!(db.is_ancestor_or_self(any_leaf, any_leaf));
        assert!(!db.is_ancestor_or_self(any_leaf, Oid::ROOT));
    }

    #[test]
    fn stats_are_consistent() {
        let db = figure1_db();
        let s = db.stats();
        assert_eq!(s.objects, db.node_count());
        assert_eq!(s.paths, db.summary().len());
        // Every non-root object contributes exactly one edge association.
        assert_eq!(s.edge_associations, db.node_count() - 1);
        // 7 cdata strings + 2 key attributes.
        assert_eq!(s.string_associations, 9);
        assert!(s.max_depth >= 5);
    }

    #[test]
    fn dump_tree_reproduces_figure1_layout() {
        let db = figure1_db();
        let tree = db.dump_tree();
        let lines: Vec<&str> = tree.lines().collect();
        assert_eq!(lines[0], "bibliography, o0");
        assert_eq!(lines[1], "  institute, o1");
        assert!(lines[2].starts_with("    article, o2 [key=\"BB99\"]"));
        // Cdata nodes carry their strings.
        assert!(tree.contains("cdata, o5 \"Ben\""));
        assert!(tree.contains("\"Hacking & RSI\""));
        // One line per object.
        assert_eq!(lines.len(), db.node_count());
    }

    #[test]
    fn dump_relations_reproduces_figure2() {
        let db = figure1_db();
        let dump = db.dump_relations();
        // Spot-check the paper's Figure 2 rows (our oid numbering starts
        // at the root = o0).
        assert!(dump.contains("bibliography/institute -> {(o0,o1)}"));
        // The two articles share one relation.
        assert!(dump.contains("bibliography/institute/article -> {(o1,o2), (o1,o12)}"));
        // The key attribute relation with both values.
        assert!(dump.contains(
            "bibliography/institute/article/@key/string -> {(o2,\"BB99\"), (o12,\"BK99\")}"
        ));
        // Both years in one string relation.
        assert!(dump.contains(
            "bibliography/institute/article/year/cdata/string -> {(o11,\"1999\"), (o18,\"1999\")}"
        ));
        // Every non-empty relation appears exactly once.
        let lines: Vec<&str> = dump.lines().collect();
        let mut dedup = lines.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(lines.len(), dedup.len());
    }

    #[test]
    fn depth_stats_match_per_node_depths() {
        let db = figure1_db();
        let s = db.depth_stats();
        assert_eq!(s.nodes, db.node_count());
        let max = db.iter_oids().map(|o| db.depth(o)).max().unwrap();
        let sum: usize = db.iter_oids().map(|o| db.depth(o)).sum();
        assert_eq!(s.max_depth, max);
        assert!((s.mean_depth - sum as f64 / db.node_count() as f64).abs() < 1e-12);
        assert!(s.p90_depth <= s.max_depth);
        // Cached: second call returns the same value.
        assert_eq!(db.depth_stats(), s);
    }

    #[test]
    fn partition_stats_weigh_structure_plus_strings() {
        let db = figure1_db();
        let s = db.partition_stats();
        assert_eq!(s.len(), db.node_count());
        // Total mass = every object once + every string association.
        assert_eq!(
            s.total_mass(),
            (db.node_count() + db.stats().string_associations) as u64
        );
        // A cdata node weighs 2 (itself + its string); the root weighs 1.
        let cdata = db.iter_oids().find(|&o| db.label(o) == "cdata").unwrap();
        assert_eq!(s.mass_of(cdata.index()), 2);
        assert_eq!(s.mass_of(Oid::ROOT.index()), 1);
        // An article owns a @key attribute string.
        let article = db
            .iter_oids()
            .find(|&o| db.tag(o) == Some("article"))
            .unwrap();
        assert_eq!(s.mass_of(article.index()), 2);
        // Subtree masses sum like intervals: whole document = root range.
        let idx = db.meet_index();
        assert_eq!(
            s.interval_mass(idx.subtree_range(Oid::ROOT)),
            s.total_mass()
        );
        // Cached.
        assert!(std::ptr::eq(s, db.partition_stats()));
    }

    #[test]
    fn range_restrictions_are_contiguous_subslices() {
        let db = figure1_db();
        let idx = db.meet_index();
        // Restrict every relation to the second article's subtree and
        // compare against a filter.
        let article2 = db
            .iter_oids()
            .filter(|&o| db.tag(o) == Some("article"))
            .nth(1)
            .unwrap();
        let range = idx.subtree_range(article2);
        for p in db.summary().iter() {
            let strings: Vec<_> = db
                .strings_of(p)
                .iter()
                .filter(|(o, _)| range.contains(&o.index()))
                .cloned()
                .collect();
            assert_eq!(db.strings_in_range(p, range.clone()), strings.as_slice());
            let edges: Vec<_> = db
                .edges_of(p)
                .iter()
                .filter(|(_, o)| range.contains(&o.index()))
                .copied()
                .collect();
            assert_eq!(db.edges_in_range(p, range.clone()), edges.as_slice());
        }
        // The restricted year relation holds exactly the second year.
        let p_year = db
            .summary()
            .lookup_in(
                &["bibliography", "institute", "article", "year", "cdata"],
                db.symbols(),
            )
            .unwrap();
        assert_eq!(db.strings_in_range(p_year, range).len(), 1);
    }

    #[test]
    fn single_element_document_loads() {
        let db = MonetDb::from_document(&parse("<only/>").unwrap());
        assert_eq!(db.node_count(), 1);
        assert_eq!(db.label(db.root()), "only");
        assert_eq!(db.oids_of_path(db.sigma(db.root())), vec![Oid::ROOT]);
    }
}
