//! Summary statistics about a loaded database instance.

use std::fmt;

/// Counters describing a [`crate::MonetDb`], as printed by the examples and
/// the benchmark harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Objects (element + cdata nodes).
    pub objects: usize,
    /// Distinct paths in the path summary.
    pub paths: usize,
    /// Non-empty edge relations.
    pub edge_relations: usize,
    /// Total parent/child associations.
    pub edge_associations: usize,
    /// Non-empty string relations.
    pub string_relations: usize,
    /// Total string associations.
    pub string_associations: usize,
    /// Total bytes of string payload.
    pub string_bytes: usize,
    /// Deepest path in the summary.
    pub max_depth: usize,
}

impl fmt::Display for StoreStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "objects:             {}", self.objects)?;
        writeln!(f, "paths:               {}", self.paths)?;
        writeln!(f, "edge relations:      {}", self.edge_relations)?;
        writeln!(f, "edge associations:   {}", self.edge_associations)?;
        writeln!(f, "string relations:    {}", self.string_relations)?;
        writeln!(f, "string associations: {}", self.string_associations)?;
        writeln!(f, "string bytes:        {}", self.string_bytes)?;
        write!(f, "max path depth:      {}", self.max_depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_lists_all_counters() {
        let s = StoreStats {
            objects: 19,
            paths: 14,
            edge_relations: 13,
            edge_associations: 18,
            string_relations: 7,
            string_associations: 8,
            string_bytes: 64,
            max_depth: 5,
        };
        let text = s.to_string();
        for needle in ["objects:", "paths:", "string bytes:", "max path depth:"] {
            assert!(text.contains(needle));
        }
        assert!(text.contains("19"));
    }
}
