//! Summary statistics about a loaded database instance.

use crate::mmap::Col;
use std::fmt;

/// Counters describing a [`crate::MonetDb`], as printed by the examples and
/// the benchmark harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Objects (element + cdata nodes).
    pub objects: usize,
    /// Distinct paths in the path summary.
    pub paths: usize,
    /// Non-empty edge relations.
    pub edge_relations: usize,
    /// Total parent/child associations.
    pub edge_associations: usize,
    /// Non-empty string relations.
    pub string_relations: usize,
    /// Total string associations.
    pub string_associations: usize,
    /// Total bytes of string payload.
    pub string_bytes: usize,
    /// Deepest path in the summary.
    pub max_depth: usize,
}

impl fmt::Display for StoreStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "objects:             {}", self.objects)?;
        writeln!(f, "paths:               {}", self.paths)?;
        writeln!(f, "edge relations:      {}", self.edge_relations)?;
        writeln!(f, "edge associations:   {}", self.edge_associations)?;
        writeln!(f, "string relations:    {}", self.string_relations)?;
        writeln!(f, "string associations: {}", self.string_associations)?;
        writeln!(f, "string bytes:        {}", self.string_bytes)?;
        write!(f, "max path depth:      {}", self.max_depth)
    }
}

/// Node-depth distribution of a loaded instance — the signal the
/// depth-aware meet planner keys on (shallow corpora favour the Fig. 4
/// frontier lift, deep corpora the indexed plane sweep).
///
/// Computed once per database ([`crate::MonetDb::depth_stats`]) over the
/// dense `σ` array; all three counters are object-level (element + cdata
/// nodes), not path-level like [`StoreStats::max_depth`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DepthStats {
    /// Objects counted.
    pub nodes: usize,
    /// Deepest object.
    pub max_depth: usize,
    /// Mean object depth.
    pub mean_depth: f64,
    /// Depth below which 90% of the objects sit (inclusive).
    pub p90_depth: usize,
}

impl DepthStats {
    /// Build from a depth histogram: `histogram[d]` = number of objects
    /// at depth `d`.
    pub fn from_histogram(histogram: &[usize]) -> DepthStats {
        let nodes: usize = histogram.iter().sum();
        if nodes == 0 {
            return DepthStats::default();
        }
        let max_depth = histogram.iter().rposition(|&c| c > 0).unwrap_or(0);
        let sum: usize = histogram.iter().enumerate().map(|(d, &c)| d * c).sum();
        let p90_target = nodes - nodes / 10; // ceil(0.9 * nodes) ≤ this ≤ nodes
        let mut seen = 0usize;
        let mut p90_depth = max_depth;
        for (d, &c) in histogram.iter().enumerate() {
            seen += c;
            if seen >= p90_target {
                p90_depth = d;
                break;
            }
        }
        DepthStats {
            nodes,
            max_depth,
            mean_depth: sum as f64 / nodes as f64,
            p90_depth,
        }
    }
}

impl fmt::Display for DepthStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "nodes: {}, depth max/mean/p90: {}/{:.2}/{}",
            self.nodes, self.max_depth, self.mean_depth, self.p90_depth
        )
    }
}

/// Per-object load weights for partitioning, as prefix sums over the
/// document-order OID axis.
///
/// The weight of an object is `1 + strings(o)` — one unit of structural
/// mass plus its posting mass (string associations are what the
/// full-text index decomposes into postings, so they approximate the
/// per-subtree share of query work). Because OIDs are preorder, the
/// mass of any subtree is the prefix-sum difference over its preorder
/// interval — the quantity a partitioner balances when it cuts a
/// document into shards on subtree boundaries.
///
/// Computed once per database ([`crate::MonetDb::partition_stats`]) and
/// cached.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PartitionStats {
    /// `prefix[i]` = total weight of oids `0..i`; length `nodes + 1`.
    /// A [`Col`] so a v3 snapshot open can serve the array straight out
    /// of the mapped file.
    prefix: Col<u64>,
}

impl PartitionStats {
    /// Build from per-oid weights in document order.
    pub fn from_weights(weights: impl IntoIterator<Item = u64>) -> PartitionStats {
        let mut prefix = vec![0u64];
        let mut acc = 0u64;
        for w in weights {
            acc += w;
            prefix.push(acc);
        }
        PartitionStats {
            prefix: prefix.into(),
        }
    }

    /// Adopt an already-computed prefix array (the snapshot loader
    /// accumulates it while decoding the weight column, skipping the
    /// intermediate weights vector). The caller guarantees `prefix[0]`
    /// is 0 and the array is non-decreasing.
    pub(crate) fn from_prefix(prefix: Vec<u64>) -> PartitionStats {
        Self::from_prefix_col(prefix.into())
    }

    /// Adopt a prefix column directly — possibly a zero-copy view into
    /// a mapped v3 snapshot. Same caller contract as [`Self::from_prefix`].
    pub(crate) fn from_prefix_col(prefix: Col<u64>) -> PartitionStats {
        debug_assert!(prefix.first() == Some(&0));
        debug_assert!(prefix.windows(2).all(|w| w[0] <= w[1]));
        PartitionStats { prefix }
    }

    /// The raw prefix-sum array (`nodes + 1` entries), for persisting in
    /// final form.
    pub(crate) fn prefix_sums(&self) -> &[u64] {
        &self.prefix
    }

    /// Number of objects covered.
    pub fn len(&self) -> usize {
        self.prefix.len() - 1
    }

    /// Whether the instance has no objects (never true for a loaded
    /// document, which always has a root).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total weight of the whole document.
    pub fn total_mass(&self) -> u64 {
        *self.prefix.last().expect("prefix has a zero sentinel")
    }

    /// Weight of one object.
    pub fn mass_of(&self, index: usize) -> u64 {
        self.prefix[index + 1] - self.prefix[index]
    }

    /// Total weight of a preorder OID interval (e.g. a subtree's range
    /// from [`crate::MeetIndex::subtree_range`]).
    pub fn interval_mass(&self, range: std::ops::Range<usize>) -> u64 {
        self.prefix[range.end] - self.prefix[range.start]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_stats_from_histogram() {
        // 1 root, 3 at depth 1, 6 at depth 2.
        let s = DepthStats::from_histogram(&[1, 3, 6]);
        assert_eq!(s.nodes, 10);
        assert_eq!(s.max_depth, 2);
        assert!((s.mean_depth - 1.5).abs() < 1e-12);
        assert_eq!(s.p90_depth, 2);
        assert!(s.to_string().contains("depth max/mean/p90"));
    }

    #[test]
    fn depth_stats_skewed_p90() {
        // 90 shallow objects, 10 in one deep chain.
        let mut h = vec![90usize];
        h.extend(std::iter::repeat_n(1, 10));
        let s = DepthStats::from_histogram(&h);
        assert_eq!(s.max_depth, 10);
        assert_eq!(s.p90_depth, 0);
    }

    #[test]
    fn depth_stats_empty_histogram() {
        assert_eq!(DepthStats::from_histogram(&[]), DepthStats::default());
    }

    #[test]
    fn partition_stats_prefix_sums() {
        let s = PartitionStats::from_weights([3, 1, 1, 2]);
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        assert_eq!(s.total_mass(), 7);
        assert_eq!(s.mass_of(0), 3);
        assert_eq!(s.mass_of(3), 2);
        assert_eq!(s.interval_mass(1..3), 2);
        assert_eq!(s.interval_mass(0..4), 7);
        assert_eq!(s.interval_mass(2..2), 0);
    }

    #[test]
    fn partition_stats_empty() {
        let s = PartitionStats::from_weights([]);
        assert!(s.is_empty());
        assert_eq!(s.total_mass(), 0);
    }

    #[test]
    fn display_lists_all_counters() {
        let s = StoreStats {
            objects: 19,
            paths: 14,
            edge_relations: 13,
            edge_associations: 18,
            string_relations: 7,
            string_associations: 8,
            string_bytes: 64,
            max_depth: 5,
        };
        let text = s.to_string();
        for needle in ["objects:", "paths:", "string bytes:", "max path depth:"] {
            assert!(text.contains(needle));
        }
        assert!(text.contains("19"));
    }
}
