//! Persistent snapshots: a versioned on-disk layout for the Monet
//! relations, the structural meet index and the instance statistics.
//!
//! # Why
//!
//! The meet operator's O(1) fast paths rest on preprocessed state — the
//! Euler-tour/RMQ [`MeetIndex`], per-path postings, depth and mass
//! statistics — that the seed pipeline rebuilt on every process start
//! (parse → Monet transform → index build, O(n log n) and dominated by
//! XML parsing and tokenization). A snapshot pays that cost **once**:
//! [`MonetDb::save`] serializes the loaded columns and the finished
//! index; [`MonetDb::load`] reconstructs the database with bulk
//! little-endian column reads and linear finishing passes, no DFS, no
//! re-tokenization. Higher layers stack their own sections on the same
//! container: `ncq-fulltext` persists the inverted index, `ncq-shard`
//! the partition map, `ncq-core` ties them together behind
//! `Database::save_snapshot` / `Database::open_snapshot`.
//!
//! # Layouts
//!
//! Two container generations coexist:
//!
//! * **v1/v2 (legacy, materializing)** — the compact layout below.
//!   [`SnapshotReader`] verifies every checksum up front and the codecs
//!   rebuild derived state (depths, intervals, ranks, RMQ tables) in
//!   linear passes.
//! * **v3 (current, zero-copy)** — 64-byte-aligned sections holding the
//!   arrays in their in-memory representation, served straight out of an
//!   `mmap` with lazy per-section checksums. See [`crate::mmap`].
//!
//! ```text
//! legacy container (v1/v2):
//! offset 0   magic   b"NCQSNAP\0"                      8 bytes
//!        8   layout version (u32 LE)                   4 bytes
//!       12   section count  (u32 LE)                   4 bytes
//!       16   section table: per section                28 bytes each
//!              id (u32) · offset (u64) · len (u64) · checksum64 (u64)
//!        …   section payloads, back to back
//! ```
//!
//! Everything is little-endian. Each section's checksum covers its raw
//! payload bytes; [`SnapshotReader::from_bytes`] verifies every
//! checksum up front, so a bit flip anywhere surfaces as a typed
//! [`SnapshotError`] — never a panic and never silently wrong data.
//! Writers emit sections in a fixed order with sorted interior maps, so
//! **snapshot bytes are a pure function of the database**: saving twice
//! yields byte-identical files (the CI `snapshot-compat` job `cmp`s
//! them).
//!
//! # Versioning policy
//!
//! `SNAPSHOT_VERSION` names the layout, not the software: any change to
//! section payload encodings, section semantics or the header must bump
//! it. Loaders accept every version up to the current one — legacy
//! files route through [`SnapshotReader`], v3 files through
//! [`crate::mmap::MappedSnapshot`] — and refuse anything newer with
//! [`SnapshotError::UnsupportedVersion`]. [`SnapshotSource::open`]
//! peeks the header and dispatches. Pinned fixtures
//! (`tests/golden/snapshot_v1.bin` … `snapshot_v3.bin`) make a
//! forgotten bump fail loudly in CI. Adding a **new optional section
//! id** is backward compatible and needs no bump — readers ignore
//! unknown ids.

use crate::index::{MeetIndex, BLOCK};
use crate::mmap::{Col, MappedSnapshot, SnapshotWriterV3, VerifyMode};
use crate::monet::MonetDb;
use crate::oid::Oid;
use crate::path::{PathId, PathStep, PathSummary};
use crate::stats::{DepthStats, PartitionStats};
use ncq_xml::{NodeId, Symbol, SymbolTable};
use std::fmt;
use std::path::Path;
use std::sync::OnceLock;

/// The 8-byte file magic.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"NCQSNAP\0";

/// Current layout version (the zero-copy mmap container written by
/// [`crate::mmap::SnapshotWriterV3`]). Bump on any payload or header
/// change.
pub const SNAPSHOT_VERSION: u32 = 3;

/// The original materializing layout [`SnapshotWriter`] still emits for
/// compatibility fixtures.
pub const SNAPSHOT_VERSION_V1: u32 = 1;

/// Highest version decoded by the legacy materializing reader. v2 kept
/// v1's byte layout (it only widened the reader's tolerance), so both
/// route through [`SnapshotReader`].
pub const SNAPSHOT_LEGACY_MAX: u32 = 2;

/// Well-known section ids. Unknown ids are ignored by readers, so
/// higher layers can add sections without touching this crate.
pub mod section {
    /// Interned tag/attribute vocabulary (`SymbolTable`).
    pub const SYMBOLS: u32 = 1;
    /// The path summary (tree-shaped schema).
    pub const PATHS: u32 = 2;
    /// Dense per-oid columns: `σ`, parent, rank, node↔oid provenance.
    pub const COLUMNS: u32 = 3;
    /// String relations (cdata text and attribute values) per path.
    pub const STRINGS: u32 = 4;
    /// The structural meet index: preorder intervals, Euler tour,
    /// per-path document-order postings.
    pub const MEET_INDEX: u32 = 5;
    /// `DepthStats` + `PartitionStats` (planner / partitioner inputs).
    pub const STATS: u32 = 6;
    /// The full-text inverted index (written by `ncq-fulltext`).
    pub const FULLTEXT: u32 = 7;
    /// The shard partition map (written by `ncq-shard`).
    pub const PARTITION: u32 = 8;
}

/// Typed snapshot failures. Loading never panics on malformed input:
/// every corruption mode maps to one of these.
#[derive(Debug)]
pub enum SnapshotError {
    /// The underlying file could not be read or written.
    Io(std::io::Error),
    /// The file does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The layout version is not the one this build reads.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// The file ends before the advertised structure does.
    Truncated {
        /// What was being read when the bytes ran out.
        context: &'static str,
        /// Byte offset of the structure that ran past the end.
        offset: u64,
    },
    /// A section's payload does not match its table checksum.
    ChecksumMismatch {
        /// Human-readable section name (see [`crate::mmap::section_name`]).
        section: &'static str,
        /// Byte offset of the mismatching payload.
        offset: u64,
    },
    /// A required section is absent.
    MissingSection {
        /// Section id from [`section`].
        section: u32,
    },
    /// A checksum-valid payload decodes to inconsistent data (a writer
    /// bug or an unbumped layout change — the version pin's domain).
    Corrupt {
        /// What failed to validate.
        context: &'static str,
    },
    /// The operation is not supported by this backend/engine.
    Unsupported {
        /// What was requested.
        context: &'static str,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported snapshot layout version {found} (this build reads {supported})"
            ),
            SnapshotError::Truncated { context, offset } => {
                write!(
                    f,
                    "snapshot truncated while reading {context} at byte {offset}"
                )
            }
            SnapshotError::ChecksumMismatch { section, offset } => {
                write!(
                    f,
                    "snapshot section {section} at byte {offset} failed its checksum"
                )
            }
            SnapshotError::MissingSection { section } => {
                write!(f, "snapshot is missing required section {section}")
            }
            SnapshotError::Corrupt { context } => {
                write!(f, "snapshot payload is corrupt: {context}")
            }
            SnapshotError::Unsupported { context } => {
                write!(f, "snapshot operation unsupported: {context}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> SnapshotError {
        SnapshotError::Io(e)
    }
}

/// Word-wise multiply–rotate mix (xxHash-flavoured): dependency-free,
/// processes 8 bytes per step (~GB/s, vs ~50 ms for a byte-serial FNV
/// over a 28 MB section — cold-start time is the whole point of the
/// snapshot), and avalanches every flipped bit through the multiplies.
/// An integrity check against truncation and bit rot, not an
/// adversarial MAC. Public because sibling codecs (the forest
/// [`crate::manifest`]) checksum their own payloads — and whole
/// snapshot *files* — with the same function.
pub fn checksum64(bytes: &[u8]) -> u64 {
    const M: u64 = 0x9E37_79B9_7F4A_7C15;
    const SEEDS: [u64; 4] = [
        0xcbf2_9ce4_8422_2325,
        0x8422_2325_cbf2_9ce4,
        0x9ce4_8422_2325_cbf2,
        0x2325_cbf2_9ce4_8422,
    ];
    // Four independent lanes over 32-byte strides: the mul→rot→mul
    // chain is latency-bound, so lane-level ILP roughly quadruples
    // throughput on one core.
    let mut lanes = SEEDS;
    let mut strides = bytes.chunks_exact(32);
    for s in &mut strides {
        for (lane, c) in lanes.iter_mut().zip(s.chunks_exact(8)) {
            let w = u64::from_le_bytes(c.try_into().expect("8 bytes"));
            *lane ^= w.wrapping_mul(M);
            *lane = lane.rotate_left(27).wrapping_mul(M);
        }
    }
    let mut h = (bytes.len() as u64).wrapping_mul(M)
        ^ lanes[0]
            .wrapping_mul(M)
            .wrapping_add(lanes[1].rotate_left(17))
            .wrapping_mul(M)
            .wrapping_add(lanes[2].rotate_left(31))
            .wrapping_mul(M)
            .wrapping_add(lanes[3].rotate_left(47));
    // Tail: the remaining 0..31 bytes, zero-padded per 8-byte word.
    let rem = strides.remainder();
    let mut words = rem.chunks_exact(8);
    for c in &mut words {
        let w = u64::from_le_bytes(c.try_into().expect("8 bytes"));
        h ^= w.wrapping_mul(M);
        h = h.rotate_left(27).wrapping_mul(M);
    }
    let last = words.remainder();
    if !last.is_empty() {
        let mut tail = [0u8; 8];
        tail[..last.len()].copy_from_slice(last);
        h ^= u64::from_le_bytes(tail).wrapping_mul(M);
        h = h.rotate_left(27).wrapping_mul(M);
    }
    h = h.wrapping_mul(M);
    h ^ (h >> 29)
}

// ----- writing -----

/// Accumulates sections in memory, then emits the framed file. Section
/// order is the writer's call order, which every codec keeps fixed —
/// part of the byte-determinism contract.
#[derive(Default)]
pub struct SnapshotWriter {
    sections: Vec<(u32, Vec<u8>)>,
}

/// Append-only little-endian payload buffer for one section.
pub struct SectionBuf<'a> {
    buf: &'a mut Vec<u8>,
}

impl SnapshotWriter {
    /// An empty snapshot.
    pub fn new() -> SnapshotWriter {
        SnapshotWriter::default()
    }

    /// Start (or panic on a duplicate of) section `id`.
    pub fn section(&mut self, id: u32) -> SectionBuf<'_> {
        assert!(
            self.sections.iter().all(|&(existing, _)| existing != id),
            "duplicate snapshot section {id}"
        );
        self.sections.push((id, Vec::new()));
        let buf = &mut self.sections.last_mut().expect("just pushed").1;
        SectionBuf { buf }
    }

    /// Render the framed snapshot: header, section table, payloads.
    pub fn to_bytes(&self) -> Vec<u8> {
        let table_end = 16 + 28 * self.sections.len();
        let total: usize = table_end + self.sections.iter().map(|(_, b)| b.len()).sum::<usize>();
        let mut out = Vec::with_capacity(total);
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION_V1.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        let mut offset = table_end as u64;
        for (id, payload) in &self.sections {
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&offset.to_le_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&checksum64(payload).to_le_bytes());
            offset += payload.len() as u64;
        }
        for (_, payload) in &self.sections {
            out.extend_from_slice(payload);
        }
        out
    }

    /// Write the snapshot to `path` (atomically: a temp file in the
    /// same directory is renamed into place, so readers never observe a
    /// half-written snapshot). The temp name is unique per process and
    /// write, so concurrent saves — even to the same destination — never
    /// scribble over each other's staging file; the last rename wins.
    pub fn write_to(&self, path: &Path) -> Result<(), SnapshotError> {
        static WRITE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let bytes = self.to_bytes();
        let seq = WRITE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let tmp = path.with_extension(format!("tmp-snapshot-{}-{seq}", std::process::id()));
        std::fs::write(&tmp, &bytes)?;
        if let Err(e) = std::fs::rename(&tmp, path) {
            std::fs::remove_file(&tmp).ok();
            return Err(e.into());
        }
        Ok(())
    }
}

impl<'a> SectionBuf<'a> {
    /// A writer over a caller-owned buffer — codecs outside the
    /// snapshot container (e.g. the forest manifest) reuse the
    /// little-endian appenders without framing a section table.
    pub fn over(buf: &'a mut Vec<u8>) -> SectionBuf<'a> {
        SectionBuf { buf }
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(u32::try_from(s.len()).expect("string too long for snapshot"));
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Append a length-prefixed `u32` column as one contiguous LE run —
    /// the zero-copy-friendly encoding the bulk readers decode with
    /// `chunks_exact`.
    pub fn put_u32_col(&mut self, col: impl ExactSizeIterator<Item = u32>) {
        self.put_u32(u32::try_from(col.len()).expect("column too long for snapshot"));
        self.buf.reserve(4 * col.len());
        for v in col {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Append a length-prefixed `u64` column as one contiguous LE run.
    pub fn put_u64_col(&mut self, col: impl ExactSizeIterator<Item = u64>) {
        self.put_u32(u32::try_from(col.len()).expect("column too long for snapshot"));
        self.buf.reserve(8 * col.len());
        for v in col {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }
}

// ----- reading -----

/// A parsed, checksum-verified snapshot. Owns the raw bytes; section
/// cursors borrow slices of them (the bulk column decodes are straight
/// `chunks_exact` runs over the mapped payload).
pub struct SnapshotReader {
    data: Vec<u8>,
    /// `(id, payload range)` in file order.
    table: Vec<(u32, std::ops::Range<usize>)>,
}

impl SnapshotReader {
    /// Read and verify a snapshot file.
    pub fn open(path: &Path) -> Result<SnapshotReader, SnapshotError> {
        SnapshotReader::from_bytes(std::fs::read(path)?)
    }

    /// Parse and verify a snapshot from raw bytes: magic, version,
    /// table bounds, and **every** section checksum.
    pub fn from_bytes(data: Vec<u8>) -> Result<SnapshotReader, SnapshotError> {
        if data.len() < 8 {
            return Err(SnapshotError::Truncated {
                context: "magic",
                offset: 0,
            });
        }
        if data[..8] != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        if data.len() < 16 {
            return Err(SnapshotError::Truncated {
                context: "header",
                offset: 8,
            });
        }
        let version = u32::from_le_bytes(data[8..12].try_into().expect("4 bytes"));
        if !(SNAPSHOT_VERSION_V1..=SNAPSHOT_LEGACY_MAX).contains(&version) {
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                supported: SNAPSHOT_VERSION,
            });
        }
        let count = u32::from_le_bytes(data[12..16].try_into().expect("4 bytes")) as usize;
        let table_end = 16usize
            .checked_add(count.checked_mul(28).ok_or(SnapshotError::Corrupt {
                context: "section count overflows",
            })?)
            .ok_or(SnapshotError::Corrupt {
                context: "section table overflows",
            })?;
        if data.len() < table_end {
            return Err(SnapshotError::Truncated {
                context: "section table",
                offset: 16,
            });
        }
        let mut table = Vec::with_capacity(count);
        for i in 0..count {
            let at = 16 + 28 * i;
            let id = u32::from_le_bytes(data[at..at + 4].try_into().expect("4 bytes"));
            let offset = u64::from_le_bytes(data[at + 4..at + 12].try_into().expect("8 bytes"));
            let len = u64::from_le_bytes(data[at + 12..at + 20].try_into().expect("8 bytes"));
            let checksum = u64::from_le_bytes(data[at + 20..at + 28].try_into().expect("8 bytes"));
            let start = usize::try_from(offset).map_err(|_| SnapshotError::Corrupt {
                context: "section offset overflows",
            })?;
            let end = start
                .checked_add(usize::try_from(len).map_err(|_| SnapshotError::Corrupt {
                    context: "section length overflows",
                })?)
                .ok_or(SnapshotError::Corrupt {
                    context: "section range overflows",
                })?;
            if start < table_end || end > data.len() {
                return Err(SnapshotError::Truncated {
                    context: "section payload",
                    offset,
                });
            }
            if table.iter().any(|&(existing, _)| existing == id) {
                return Err(SnapshotError::Corrupt {
                    context: "duplicate section id",
                });
            }
            if checksum64(&data[start..end]) != checksum {
                return Err(SnapshotError::ChecksumMismatch {
                    section: crate::mmap::section_name(id),
                    offset,
                });
            }
            table.push((id, start..end));
        }
        Ok(SnapshotReader { data, table })
    }

    /// Whether a section is present.
    pub fn has_section(&self, id: u32) -> bool {
        self.table.iter().any(|&(existing, _)| existing == id)
    }

    /// A cursor over a required section's payload.
    pub fn section(&self, id: u32) -> Result<SectionCursor<'_>, SnapshotError> {
        let range = self
            .table
            .iter()
            .find(|&&(existing, _)| existing == id)
            .map(|(_, r)| r.clone())
            .ok_or(SnapshotError::MissingSection { section: id })?;
        Ok(SectionCursor {
            buf: &self.data[range],
            pos: 0,
        })
    }
}

// ----- version dispatch -----

/// Read the 12-byte preamble of an in-memory image: magic + version.
fn peek_version_bytes(data: &[u8]) -> Result<u32, SnapshotError> {
    if data.len() < 8 {
        return Err(SnapshotError::Truncated {
            context: "magic",
            offset: 0,
        });
    }
    if data[..8] != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    if data.len() < 12 {
        return Err(SnapshotError::Truncated {
            context: "header",
            offset: 8,
        });
    }
    Ok(u32::from_le_bytes(data[8..12].try_into().expect("4 bytes")))
}

/// Peek a snapshot file's layout version without reading the payload.
fn peek_version_file(path: &Path) -> Result<u32, SnapshotError> {
    use std::io::Read;
    let mut f = std::fs::File::open(path)?;
    let mut head = [0u8; 12];
    let mut filled = 0usize;
    while filled < head.len() {
        match f.read(&mut head[filled..]) {
            Ok(0) => break,
            Ok(k) => filled += k,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    peek_version_bytes(&head[..filled])
}

/// A snapshot opened through the version dispatcher: legacy (v1/v2)
/// files parse through the materializing [`SnapshotReader`], v3 files
/// map through [`MappedSnapshot`]. Every open path in the workspace —
/// `Database`, `ShardedDb`, the catalog, the forest — funnels through
/// here, so old files keep loading answer-identically while new files
/// take the zero-copy route. Versions above [`SNAPSHOT_VERSION`] are a
/// typed [`SnapshotError::UnsupportedVersion`].
pub enum SnapshotSource {
    /// A fully verified, materialized legacy container (v1/v2).
    Legacy(SnapshotReader),
    /// A v3 container, mapped — or heap-backed under `NCQ_NO_MMAP` /
    /// on non-unix hosts.
    Mapped(MappedSnapshot),
}

impl SnapshotSource {
    /// Open `path`, peeking the header to pick the decoder.
    pub fn open(path: &Path) -> Result<SnapshotSource, SnapshotError> {
        match peek_version_file(path)? {
            SNAPSHOT_VERSION_V1..=SNAPSHOT_LEGACY_MAX => {
                Ok(SnapshotSource::Legacy(SnapshotReader::open(path)?))
            }
            SNAPSHOT_VERSION => Ok(SnapshotSource::Mapped(MappedSnapshot::open(path)?)),
            found => Err(SnapshotError::UnsupportedVersion {
                found,
                supported: SNAPSHOT_VERSION,
            }),
        }
    }

    /// Dispatch over an in-memory image — the wire path (snapshots
    /// received over the remote protocol) and the test path. A v3
    /// image is adopted into an owned, 64-byte-aligned arena.
    pub fn from_bytes(data: Vec<u8>) -> Result<SnapshotSource, SnapshotError> {
        match peek_version_bytes(&data)? {
            SNAPSHOT_VERSION_V1..=SNAPSHOT_LEGACY_MAX => {
                Ok(SnapshotSource::Legacy(SnapshotReader::from_bytes(data)?))
            }
            SNAPSHOT_VERSION => Ok(SnapshotSource::Mapped(MappedSnapshot::from_owned_bytes(
                data,
                VerifyMode::from_env(),
            )?)),
            found => Err(SnapshotError::UnsupportedVersion {
                found,
                supported: SNAPSHOT_VERSION,
            }),
        }
    }

    /// Whether a section is present.
    pub fn has_section(&self, id: u32) -> bool {
        match self {
            SnapshotSource::Legacy(r) => r.has_section(id),
            SnapshotSource::Mapped(m) => m.has_section(id),
        }
    }

    /// Whether payloads are served from a memory map (false for legacy
    /// containers and for the owned v3 fallback).
    pub fn is_mapped(&self) -> bool {
        match self {
            SnapshotSource::Legacy(_) => false,
            SnapshotSource::Mapped(m) => m.is_mapped(),
        }
    }
}

/// Sequential little-endian reader over one section payload. All reads
/// are bounds-checked: payload underruns surface as
/// [`SnapshotError::Corrupt`] (the checksum already passed, so running
/// out of bytes means the encoder and decoder disagree — exactly what
/// the version pin exists to catch).
pub struct SectionCursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SectionCursor<'a> {
    /// A cursor over a raw buffer — codecs outside the snapshot
    /// container (e.g. the forest manifest) reuse the bounds-checked
    /// little-endian readers on their own payloads.
    pub fn new(buf: &'a [u8]) -> SectionCursor<'a> {
        SectionCursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(SnapshotError::Corrupt { context })?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Read one byte.
    pub fn get_u8(&mut self, context: &'static str) -> Result<u8, SnapshotError> {
        Ok(self.take(1, context)?[0])
    }

    /// Read a `u32`.
    pub fn get_u32(&mut self, context: &'static str) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(
            self.take(4, context)?.try_into().expect("4 bytes"),
        ))
    }

    /// Read a `u64`.
    pub fn get_u64(&mut self, context: &'static str) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(
            self.take(8, context)?.try_into().expect("8 bytes"),
        ))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self, context: &'static str) -> Result<&'a str, SnapshotError> {
        let len = self.get_u32(context)? as usize;
        let bytes = self.take(len, context)?;
        std::str::from_utf8(bytes).map_err(|_| SnapshotError::Corrupt { context })
    }

    /// Read a length-prefixed `u32` column.
    pub fn get_u32_col(&mut self, context: &'static str) -> Result<Vec<u32>, SnapshotError> {
        let len = self.get_u32(context)? as usize;
        let bytes = self.take(4 * len, context)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect())
    }

    /// Read a length-prefixed `u32` column, mapping every element
    /// through `f` after a `< bound` range check — one pass, one
    /// allocation (the hot path of the bulk column loads; pass
    /// `u32::MAX` as `bound` for unconstrained values).
    pub fn get_u32_col_mapped<T>(
        &mut self,
        context: &'static str,
        bound: u32,
        f: impl Fn(u32) -> T,
    ) -> Result<Vec<T>, SnapshotError> {
        let len = self.get_u32(context)? as usize;
        let bytes = self.take(4 * len, context)?;
        let mut out = Vec::with_capacity(len);
        for c in bytes.chunks_exact(4) {
            let v = u32::from_le_bytes(c.try_into().expect("4 bytes"));
            if v >= bound {
                return Err(SnapshotError::Corrupt { context });
            }
            out.push(f(v));
        }
        Ok(out)
    }

    /// Read a length-prefixed `u64` column.
    pub fn get_u64_col(&mut self, context: &'static str) -> Result<Vec<u64>, SnapshotError> {
        let len = self.get_u32(context)? as usize;
        let bytes = self.take(8 * len, context)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect())
    }

    /// Whether the cursor consumed the whole payload.
    pub fn at_end(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Unconsumed payload bytes. Decoders clamp length-prefix-derived
    /// pre-allocations with this (`count.min(remaining / min_elem)`):
    /// a checksum-valid but inconsistent count must surface as a typed
    /// [`SnapshotError::Corrupt`] when the payload runs out, never as
    /// an allocator abort from a multi-gigabyte `with_capacity`.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

// ----- MonetDb + MeetIndex + stats codecs -----

/// Path step encoding tags.
const STEP_ELEMENT: u8 = 0;
const STEP_ATTRIBUTE: u8 = 1;
const STEP_CDATA: u8 = 2;

// Shared payload codecs: the SYMBOLS / PATHS / STRINGS payloads are
// byte-identical in the legacy and v3 containers (they materialize at
// decode either way), so both writers and both readers call these.

/// SYMBOLS payload: interning order reproduces ids on replay.
fn encode_symbols_into(symbols: &SymbolTable, s: &mut SectionBuf<'_>) {
    s.put_u32(symbols.len() as u32);
    for (_, name) in symbols.iter() {
        s.put_str(name);
    }
}

/// PATHS payload: parents-before-children by interning order, so the
/// loader replays `intern_root`/`intern_child` and gets the same dense
/// ids back.
fn encode_paths_into(summary: &PathSummary, s: &mut SectionBuf<'_>) {
    s.put_u32(summary.len() as u32);
    for p in summary.iter() {
        s.put_u32(summary.parent(p).map_or(u32::MAX, |q| q.index() as u32));
        match summary.step(p) {
            PathStep::Element(sym) => {
                s.put_u8(STEP_ELEMENT);
                s.put_u32(sym.index() as u32);
            }
            PathStep::Attribute(sym) => {
                s.put_u8(STEP_ATTRIBUTE);
                s.put_u32(sym.index() as u32);
            }
            PathStep::Cdata => s.put_u8(STEP_CDATA),
        }
    }
}

/// STRINGS payload: per path (including empty relations, so the loader
/// needs no slot bookkeeping), `(owner, string)` in load order.
fn encode_strings_into(strings: &[Vec<(Oid, Box<str>)>], s: &mut SectionBuf<'_>) {
    s.put_u32(strings.len() as u32);
    for rel in strings {
        s.put_u32(rel.len() as u32);
        for (owner, text) in rel {
            s.put_u32(owner.index() as u32);
            s.put_str(text);
        }
    }
}

fn decode_symbols(s: &mut SectionCursor<'_>) -> Result<SymbolTable, SnapshotError> {
    let symbol_count = s.get_u32("symbol count")? as usize;
    let mut symbols = SymbolTable::new();
    for _ in 0..symbol_count {
        symbols.intern(s.get_str("symbol")?);
    }
    if symbols.len() != symbol_count {
        return Err(SnapshotError::Corrupt {
            context: "duplicate symbols",
        });
    }
    Ok(symbols)
}

/// Replay interning; dense ids must come back unchanged.
fn decode_paths(
    s: &mut SectionCursor<'_>,
    symbols: &SymbolTable,
) -> Result<PathSummary, SnapshotError> {
    let path_count = s.get_u32("path count")? as usize;
    let mut summary = PathSummary::new();
    for i in 0..path_count {
        let parent = s.get_u32("path parent")?;
        let tag = s.get_u8("path step tag")?;
        let step = match tag {
            STEP_ELEMENT | STEP_ATTRIBUTE => {
                let sym = s.get_u32("path symbol")? as usize;
                if sym >= symbols.len() {
                    return Err(SnapshotError::Corrupt {
                        context: "path symbol out of range",
                    });
                }
                if tag == STEP_ELEMENT {
                    PathStep::Element(Symbol::from_index(sym))
                } else {
                    PathStep::Attribute(Symbol::from_index(sym))
                }
            }
            STEP_CDATA => PathStep::Cdata,
            _ => {
                return Err(SnapshotError::Corrupt {
                    context: "unknown path step tag",
                })
            }
        };
        let id = if parent == u32::MAX {
            summary.intern_root(step)
        } else {
            if parent as usize >= i {
                return Err(SnapshotError::Corrupt {
                    context: "path parent not before child",
                });
            }
            summary.intern_child(PathId::from_index(parent as usize), step)
        };
        if id.index() != i {
            return Err(SnapshotError::Corrupt {
                context: "non-canonical path table",
            });
        }
    }
    Ok(summary)
}

/// Per-path string relations in document order, as `MonetDb` owns them.
type StringRelations = Vec<Vec<(Oid, Box<str>)>>;

fn decode_strings(
    s: &mut SectionCursor<'_>,
    path_count: usize,
    n: usize,
) -> Result<StringRelations, SnapshotError> {
    let string_paths = s.get_u32("string relation count")? as usize;
    if string_paths != path_count {
        return Err(SnapshotError::Corrupt {
            context: "string relation count mismatch",
        });
    }
    let mut strings: Vec<Vec<(Oid, Box<str>)>> = Vec::with_capacity(path_count);
    for _ in 0..path_count {
        let len = s.get_u32("string relation length")? as usize;
        // Capacity clamped to what the payload can actually hold
        // (≥ 8 bytes per entry: owner + string length prefix).
        let mut rel = Vec::with_capacity(len.min(s.remaining() / 8));
        let mut last: Option<u32> = None;
        for _ in 0..len {
            let owner = s.get_u32("string owner")?;
            if owner as usize >= n || last.is_some_and(|prev| prev >= owner) {
                return Err(SnapshotError::Corrupt {
                    context: "string relation not in document order",
                });
            }
            last = Some(owner);
            let text = s.get_str("string payload")?;
            rel.push((Oid::from_index(owner as usize), text.into()));
        }
        strings.push(rel);
    }
    Ok(strings)
}

impl MonetDb {
    /// Serialize the store into `writer` (the **legacy v1 container**):
    /// symbols, path summary, dense columns, string relations, the
    /// (eagerly built) meet index and the instance statistics. Edge
    /// relations are *not* written — they are a pure function of the
    /// `σ`/parent columns and are rebuilt lazily, byte-identically.
    /// Kept as a writer so compatibility fixtures and cross-version
    /// tests can still mint legacy files; [`MonetDb::save`] writes the
    /// v3 layout.
    pub fn encode_snapshot(&self, writer: &mut SnapshotWriter) {
        let mut s = writer.section(section::SYMBOLS);
        encode_symbols_into(&self.symbols, &mut s);

        let mut s = writer.section(section::PATHS);
        encode_paths_into(&self.summary, &mut s);

        // COLUMNS: the dense per-oid arrays, one contiguous LE run
        // each. Only `σ` and parent are stored — sibling ranks are
        // recomputed from the parent column in one linear pass (a
        // parent's children appear in oid order), and the node↔oid
        // provenance maps collapse to a single flag byte when they are
        // the identity permutation (always true for parsed documents,
        // whose arena ids are assigned in document order).
        let n = self.sigma.len();
        let mut s = writer.section(section::COLUMNS);
        s.put_u32(n as u32);
        s.put_u32_col(self.sigma.iter().map(|p| p.index() as u32));
        s.put_u32_col(self.parent.iter().map(|o| o.index() as u32));
        // Empty provenance vectors already mean "identity" (the
        // snapshot-loaded representation), so a save → load → save
        // cycle stays byte-stable.
        let identity = self
            .node_of_oid
            .iter()
            .enumerate()
            .all(|(i, nd)| nd.index() == i)
            && self
                .oid_of_node
                .iter()
                .enumerate()
                .all(|(i, o)| o.index() == i);
        s.put_u8(identity as u8);
        if !identity {
            s.put_u32_col(self.node_of_oid.iter().map(|n| n.index() as u32));
            s.put_u32_col(self.oid_of_node.iter().map(|o| o.index() as u32));
        }

        let mut s = writer.section(section::STRINGS);
        encode_strings_into(&self.strings, &mut s);

        // MEET_INDEX: the Euler tour and the per-path document-order
        // postings. Because OIDs are preorder and the tour is a DFS
        // walk, every tour step is either *down* to the next
        // undiscovered oid or *up* to the current node's parent — one
        // bit per step (2n − 2 bits ≈ n/4 bytes, vs 4 bytes per tour
        // entry), packed LSB-first into u64 words. Depths and preorder
        // intervals are recomputed from the parent column, and the
        // block RMQ tables are linear-pass reconstructions
        // (`MeetIndex::assemble`) — the construction DFS never reruns.
        let index = self.meet_index();
        let mut s = writer.section(section::MEET_INDEX);
        let steps = index.tour.len() - 1;
        s.put_u32(steps as u32);
        let words = steps.div_ceil(64);
        let mut packed = vec![0u64; words];
        for (i, w) in index.tour.windows(2).enumerate() {
            // Down-steps discover a new (larger) oid; up-steps return
            // to the (smaller) parent.
            if w[1] > w[0] {
                packed[i / 64] |= 1 << (i % 64);
            }
        }
        s.put_u64_col(packed.into_iter());
        s.put_u32(index.path_count() as u32);
        for pi in 0..index.path_count() {
            let oids = index.oids_of_path(PathId::from_index(pi));
            s.put_u32_col(oids.iter().map(|o| o.index() as u32));
        }

        // STATS: the planner and partitioner inputs.
        let depth_stats = self.depth_stats();
        let partition_stats = self.partition_stats();
        let mut s = writer.section(section::STATS);
        s.put_u64(depth_stats.nodes as u64);
        s.put_u64(depth_stats.max_depth as u64);
        s.put_u64(depth_stats.mean_depth.to_bits());
        s.put_u64(depth_stats.p90_depth as u64);
        // Per-oid masses, compact: `mass − 1` fits a byte for all but
        // pathological objects (mass = 1 structural unit + strings(o)),
        // so the column is ~1 byte/object instead of 8; 0xFF escapes to
        // a full u64.
        s.put_u32(partition_stats.len() as u32);
        for i in 0..partition_stats.len() {
            let m = partition_stats.mass_of(i) - 1;
            if m < 0xFF {
                s.put_u8(m as u8);
            } else {
                s.put_u8(0xFF);
                s.put_u64(m);
            }
        }
    }

    /// Reconstruct a store from a verified snapshot.
    pub fn decode_snapshot(reader: &SnapshotReader) -> Result<MonetDb, SnapshotError> {
        // SYMBOLS.
        let mut s = reader.section(section::SYMBOLS)?;
        let symbols = decode_symbols(&mut s)?;

        // PATHS.
        let mut s = reader.section(section::PATHS)?;
        let summary = decode_paths(&mut s, &symbols)?;
        let path_count = summary.len();

        // COLUMNS.
        let mut s = reader.section(section::COLUMNS)?;
        let n = s.get_u32("object count")? as usize;
        if n == 0 {
            return Err(SnapshotError::Corrupt {
                context: "empty instance (a loaded document has a root)",
            });
        }
        // Unchecked bulk decode + separate vectorizable max scans, then
        // a one-pass convert; cheaper than branchy per-element checks.
        let sigma_raw = s.get_u32_col("sigma column")?;
        let parent_raw = s.get_u32_col("parent column")?;
        if sigma_raw.len() != n || parent_raw.len() != n {
            return Err(SnapshotError::Corrupt {
                context: "column length mismatch",
            });
        }
        if sigma_raw
            .iter()
            .max()
            .is_some_and(|&p| p as usize >= path_count)
        {
            return Err(SnapshotError::Corrupt {
                context: "sigma path out of range",
            });
        }
        let sigma: Vec<PathId> = sigma_raw
            .iter()
            .map(|&p| PathId::from_index(p as usize))
            .collect();
        drop(sigma_raw);
        if parent_raw[0] != 0 || (1..n).any(|i| parent_raw[i] as usize >= i) {
            return Err(SnapshotError::Corrupt {
                context: "parent column is not preorder",
            });
        }
        let parent: Vec<Oid> = parent_raw
            .iter()
            .map(|&o| Oid::from_index(o as usize))
            .collect();
        // Sibling ranks: children of any parent appear in oid order, so
        // one counting pass reproduces `Document::rank` exactly.
        let mut rank = vec![0u32; n];
        let mut next_rank = vec![0u32; n];
        for i in 1..n {
            let p = parent_raw[i] as usize;
            rank[i] = next_rank[p];
            next_rank[p] += 1;
        }
        drop(next_rank);
        // Provenance maps: a flag byte marks the identity permutation
        // (parsed documents), represented as empty vectors — the
        // accessors fall back to the identity; explicit columns
        // otherwise.
        let (node_of_oid, oid_of_node) = if s.get_u8("provenance flag")? == 1 {
            (Vec::new(), Vec::new())
        } else {
            let nodes: Vec<NodeId> = s.get_u32_col_mapped("node_of_oid column", u32::MAX, |v| {
                NodeId::from_index(v as usize)
            })?;
            let oids: Vec<Oid> = s.get_u32_col_mapped("oid_of_node column", n as u32, |v| {
                Oid::from_index(v as usize)
            })?;
            if nodes.len() != n || oids.len() != n {
                return Err(SnapshotError::Corrupt {
                    context: "provenance column length mismatch",
                });
            }
            (nodes, oids)
        };

        // STRINGS.
        let mut s = reader.section(section::STRINGS)?;
        let strings = decode_strings(&mut s, path_count, n)?;

        // Edge relations are *not* decoded — they are derived lazily
        // from the `σ`/parent columns on first `edges_of` call, in the
        // exact bulk-load push order.

        // MEET_INDEX. Depths and preorder intervals are pure functions
        // of the (already validated, preorder) parent column — one
        // forward and one reverse pass, the same folds the builder
        // runs.
        let mut depth = vec![0u32; n];
        for i in 1..n {
            depth[i] = depth[parent_raw[i] as usize] + 1;
        }
        let mut subtree_end: Vec<u32> = (1..=n as u32).collect();
        for i in (1..n).rev() {
            let p = parent_raw[i] as usize;
            if subtree_end[p] < subtree_end[i] {
                subtree_end[p] = subtree_end[i];
            }
        }
        let mut s = reader.section(section::MEET_INDEX)?;
        // Replay the bit-packed walk: a set bit descends to the next
        // undiscovered oid (preorder discovery order), a clear bit
        // climbs to the parent. Every reconstructed entry is < n by
        // construction, so no separate range scan is needed.
        let steps = s.get_u32("index tour steps")? as usize;
        let packed = s.get_u64_col("index tour bits")?;
        if steps != 2 * n - 2 || packed.len() != steps.div_ceil(64) {
            return Err(SnapshotError::Corrupt {
                context: "meet index shape mismatch",
            });
        }
        let mut tour: Vec<u32> = Vec::with_capacity(steps + 1);
        let mut first_visit: Vec<u32> = Vec::with_capacity(n);
        tour.push(0);
        first_visit.push(0);
        {
            let mut cur = 0u32;
            for (i, &word) in packed.iter().enumerate() {
                let bits = if (i + 1) * 64 <= steps {
                    64
                } else {
                    steps - i * 64
                };
                for b in 0..bits {
                    if word >> b & 1 == 1 {
                        // Down-step: discover the next oid; its first
                        // visit is the position about to be pushed. The
                        // descent must follow a real tree edge —
                        // without this check a wrong-but-checksummed
                        // bit stream could reconstruct a non-Euler walk
                        // whose RMQ answers meets silently wrong.
                        let next = first_visit.len();
                        if next >= n {
                            return Err(SnapshotError::Corrupt {
                                context: "euler tour discovers too many objects",
                            });
                        }
                        if parent_raw[next] != cur {
                            return Err(SnapshotError::Corrupt {
                                context: "euler tour descends a non-edge",
                            });
                        }
                        cur = next as u32;
                        first_visit.push(tour.len() as u32);
                    } else {
                        if cur == 0 {
                            return Err(SnapshotError::Corrupt {
                                context: "euler tour climbs above the root",
                            });
                        }
                        cur = parent_raw[cur as usize];
                    }
                    tour.push(cur);
                }
            }
            if first_visit.len() != n {
                return Err(SnapshotError::Corrupt {
                    context: "euler tour does not discover every object",
                });
            }
        }
        let index_paths = s.get_u32("index path count")? as usize;
        if index_paths != path_count {
            return Err(SnapshotError::Corrupt {
                context: "meet index shape mismatch",
            });
        }
        let mut path_oids: Vec<Vec<Oid>> = Vec::with_capacity(path_count);
        let mut posted = 0usize;
        for _ in 0..path_count {
            let oids = s.get_u32_col_mapped("index path postings", n as u32, |v| {
                Oid::from_index(v as usize)
            })?;
            posted += oids.len();
            path_oids.push(oids);
        }
        if posted != n {
            return Err(SnapshotError::Corrupt {
                context: "postings do not cover the instance",
            });
        }
        let index =
            MeetIndex::assemble_with_visits(depth, subtree_end, tour, first_visit, path_oids);

        // STATS.
        let mut s = reader.section(section::STATS)?;
        let depth_stats = DepthStats {
            nodes: s.get_u64("depth stats nodes")? as usize,
            max_depth: s.get_u64("depth stats max")? as usize,
            mean_depth: f64::from_bits(s.get_u64("depth stats mean")?),
            p90_depth: s.get_u64("depth stats p90")? as usize,
        };
        if depth_stats.nodes != n {
            return Err(SnapshotError::Corrupt {
                context: "depth stats disagree with columns",
            });
        }
        let weight_count = s.get_u32("partition weight count")? as usize;
        if weight_count != n {
            return Err(SnapshotError::Corrupt {
                context: "partition weights length mismatch",
            });
        }
        // Specialized raw-slice loop accumulating the prefix sums
        // directly: one byte per object in the common case, no
        // intermediate weights vector, no per-read cursor plumbing.
        let mut prefix = Vec::with_capacity(n + 1);
        prefix.push(0u64);
        {
            let buf = s.buf;
            let mut pos = s.pos;
            let mut acc = 0u64;
            for _ in 0..n {
                let b = *buf.get(pos).ok_or(SnapshotError::Corrupt {
                    context: "partition weight",
                })?;
                pos += 1;
                let m = if b == 0xFF {
                    let end = pos + 8;
                    if end > buf.len() {
                        return Err(SnapshotError::Corrupt {
                            context: "partition weight escape",
                        });
                    }
                    let wide = u64::from_le_bytes(buf[pos..end].try_into().expect("8 bytes"));
                    pos = end;
                    wide
                } else {
                    b as u64
                };
                acc = m.checked_add(1).and_then(|w| acc.checked_add(w)).ok_or(
                    SnapshotError::Corrupt {
                        context: "partition weight overflows",
                    },
                )?;
                prefix.push(acc);
            }
            s.pos = pos;
        }
        debug_assert!(s.at_end(), "stats section fully consumed");
        let partition_stats = PartitionStats::from_prefix(prefix);

        let db = MonetDb {
            symbols,
            summary,
            sigma: sigma.into(),
            parent: parent.into(),
            rank: rank.into(),
            edges: OnceLock::new(),
            strings,
            node_of_oid,
            oid_of_node,
            meet_index: OnceLock::new(),
            depth_stats: OnceLock::new(),
            partition_stats: OnceLock::new(),
        };
        let _ = db.meet_index.set(index);
        let _ = db.depth_stats.set(depth_stats);
        let _ = db.partition_stats.set(partition_stats);
        Ok(db)
    }

    /// Serialize the store into the **v3 zero-copy container**: the
    /// same SYMBOLS / PATHS / STRINGS payloads as v1 (those materialize
    /// at decode in every generation) plus final-form, 64-byte-aligned
    /// arrays for the dense columns, the finished meet index and the
    /// statistics — exactly the in-memory representation, so a v3 open
    /// is a map + pointer fixup, not a rebuild.
    pub fn encode_snapshot_v3(&self, writer: &mut SnapshotWriterV3) {
        let mut buf = Vec::new();
        encode_symbols_into(&self.symbols, &mut SectionBuf::over(&mut buf));
        writer.section(section::SYMBOLS).put_raw(&buf);

        buf.clear();
        encode_paths_into(&self.summary, &mut SectionBuf::over(&mut buf));
        writer.section(section::PATHS).put_raw(&buf);

        // COLUMNS: `σ`, parent and rank in final form. Unlike v1, the
        // rank column is stored rather than recomputed — the whole
        // point is that the open performs no linear passes.
        let n = self.sigma.len();
        let identity = self
            .node_of_oid
            .iter()
            .enumerate()
            .all(|(i, nd)| nd.index() == i)
            && self
                .oid_of_node
                .iter()
                .enumerate()
                .all(|(i, o)| o.index() == i);
        let mut s = writer.section(section::COLUMNS);
        s.put_u64(n as u64);
        s.put_u64(identity as u64);
        s.put_col::<PathId>(&self.sigma);
        s.put_col::<Oid>(&self.parent);
        s.put_col::<u32>(&self.rank);
        if !identity {
            let nodes: Vec<u32> = self
                .node_of_oid
                .iter()
                .map(|nd| nd.index() as u32)
                .collect();
            let oids: Vec<u32> = self.oid_of_node.iter().map(|o| o.index() as u32).collect();
            s.put_col::<u32>(&nodes);
            s.put_col::<u32>(&oids);
        }

        buf.clear();
        encode_strings_into(&self.strings, &mut SectionBuf::over(&mut buf));
        writer.section(section::STRINGS).put_raw(&buf);

        // MEET_INDEX: the finished index, field for field — Euler-tour
        // first visits (packed in `visit_depth`), depths, subtree
        // intervals, the block-RMQ tables and the CSR postings.
        let index = self.meet_index();
        let levels = index
            .block_table
            .len()
            .checked_div(index.num_blocks)
            .unwrap_or(0);
        let tour_len = index.tour.len();
        let mut s = writer.section(section::MEET_INDEX);
        s.put_u64(n as u64);
        s.put_u64(tour_len as u64);
        s.put_u64(index.num_blocks as u64);
        s.put_u64(levels as u64);
        s.put_u64(index.path_count() as u64);
        s.put_col::<u32>(&index.depth);
        s.put_col::<u32>(&index.subtree_end);
        s.put_col::<u64>(&index.visit_depth);
        s.put_col::<u32>(&index.tour);
        s.put_col::<u32>(&index.tour_depth);
        s.put_col::<u64>(&index.prefix_min);
        s.put_col::<u64>(&index.suffix_min);
        s.put_col::<u64>(&index.block_table);
        s.put_col::<u32>(&index.path_off);
        s.put_col::<Oid>(&index.path_data);

        // STATS: the scalars plus the partition prefix sums in final
        // form (v1 re-derives them from a packed weight column).
        let depth_stats = self.depth_stats();
        let partition_stats = self.partition_stats();
        let mut s = writer.section(section::STATS);
        s.put_u64(depth_stats.nodes as u64);
        s.put_u64(depth_stats.max_depth as u64);
        s.put_u64(depth_stats.mean_depth.to_bits());
        s.put_u64(depth_stats.p90_depth as u64);
        s.put_col::<u64>(partition_stats.prefix_sums());
    }

    /// Reconstruct a store from a v3 container: decode the small
    /// materialized sections (checksummed here — they are a few percent
    /// of the file), reattach every large array as a zero-copy [`Col`]
    /// view, and seed the index/stats caches. Shape invariants the
    /// accessors rely on are validated; content checksums of the array
    /// sections follow the lazy-verify policy (see [`crate::mmap`]).
    pub fn decode_snapshot_v3(snap: &MappedSnapshot) -> Result<MonetDb, SnapshotError> {
        // SYMBOLS / PATHS.
        let view = snap.section_verified(section::SYMBOLS)?;
        let symbols = decode_symbols(&mut SectionCursor::new(view.payload()))?;
        let view = snap.section_verified(section::PATHS)?;
        let summary = decode_paths(&mut SectionCursor::new(view.payload()), &symbols)?;
        let path_count = summary.len();

        // COLUMNS: zero-copy views. The preorder/range invariants that
        // the lazily derived edge relations index by are re-validated —
        // two vectorizable scans, the only O(n) work on this path.
        let mut v = snap.section(section::COLUMNS)?;
        let n = v.get_u64()? as usize;
        if n == 0 {
            return Err(SnapshotError::Corrupt {
                context: "empty instance (a loaded document has a root)",
            });
        }
        let identity = v.get_u64()?;
        if identity > 1 {
            return Err(SnapshotError::Corrupt {
                context: "provenance flag out of range",
            });
        }
        let sigma: Col<PathId> = v.take_col(n)?;
        let parent: Col<Oid> = v.take_col(n)?;
        let rank: Col<u32> = v.take_col(n)?;
        if sigma.iter().any(|p| p.index() >= path_count) {
            return Err(SnapshotError::Corrupt {
                context: "sigma path out of range",
            });
        }
        if parent[0] != Oid::ROOT || (1..n).any(|i| parent[i].index() >= i) {
            return Err(SnapshotError::Corrupt {
                context: "parent column is not preorder",
            });
        }
        let (node_of_oid, oid_of_node) = if identity == 1 {
            (Vec::new(), Vec::new())
        } else {
            let nodes: Col<u32> = v.take_col(n)?;
            let oids: Col<u32> = v.take_col(n)?;
            if oids.iter().any(|&x| x as usize >= n) {
                return Err(SnapshotError::Corrupt {
                    context: "oid_of_node out of range",
                });
            }
            (
                nodes
                    .iter()
                    .map(|&x| NodeId::from_index(x as usize))
                    .collect(),
                oids.iter().map(|&x| Oid::from_index(x as usize)).collect(),
            )
        };

        // STRINGS.
        let view = snap.section_verified(section::STRINGS)?;
        let strings = decode_strings(&mut SectionCursor::new(view.payload()), path_count, n)?;

        // MEET_INDEX: shape scalars, then straight pointer fixups.
        let mut v = snap.section(section::MEET_INDEX)?;
        let idx_n = v.get_u64()? as usize;
        let tour_len = v.get_u64()? as usize;
        let num_blocks = v.get_u64()? as usize;
        let levels = v.get_u64()? as usize;
        let idx_paths = v.get_u64()? as usize;
        if idx_n != n
            || tour_len != 2 * n - 1
            || num_blocks != tour_len.div_ceil(BLOCK)
            || levels != usize::BITS as usize - num_blocks.leading_zeros() as usize
            || idx_paths != path_count
        {
            return Err(SnapshotError::Corrupt {
                context: "meet index shape mismatch",
            });
        }
        let depth: Col<u32> = v.take_col(n)?;
        let subtree_end: Col<u32> = v.take_col(n)?;
        let visit_depth: Col<u64> = v.take_col(n)?;
        let tour: Col<u32> = v.take_col(tour_len)?;
        let tour_depth: Col<u32> = v.take_col(tour_len)?;
        let prefix_min: Col<u64> = v.take_col(tour_len)?;
        let suffix_min: Col<u64> = v.take_col(tour_len)?;
        let block_table: Col<u64> = v.take_col(levels * num_blocks)?;
        let path_off: Col<u32> = v.take_col(path_count + 1)?;
        if path_off.first() != Some(&0)
            || path_off.last().copied() != Some(n as u32)
            || path_off.windows(2).any(|w| w[0] > w[1])
        {
            return Err(SnapshotError::Corrupt {
                context: "postings do not cover the instance",
            });
        }
        let path_data: Col<Oid> = v.take_col(n)?;
        let index = MeetIndex::from_parts(
            depth,
            subtree_end,
            visit_depth,
            tour,
            tour_depth,
            prefix_min,
            suffix_min,
            block_table,
            num_blocks,
            path_off,
            path_data,
        );

        // STATS.
        let mut v = snap.section(section::STATS)?;
        let depth_stats = DepthStats {
            nodes: v.get_u64()? as usize,
            max_depth: v.get_u64()? as usize,
            mean_depth: f64::from_bits(v.get_u64()?),
            p90_depth: v.get_u64()? as usize,
        };
        if depth_stats.nodes != n {
            return Err(SnapshotError::Corrupt {
                context: "depth stats disagree with columns",
            });
        }
        let prefix: Col<u64> = v.take_col(n + 1)?;
        if prefix.first() != Some(&0) {
            return Err(SnapshotError::Corrupt {
                context: "partition prefix does not start at zero",
            });
        }
        let partition_stats = PartitionStats::from_prefix_col(prefix);

        let db = MonetDb {
            symbols,
            summary,
            sigma,
            parent,
            rank,
            edges: OnceLock::new(),
            strings,
            node_of_oid,
            oid_of_node,
            meet_index: OnceLock::new(),
            depth_stats: OnceLock::new(),
            partition_stats: OnceLock::new(),
        };
        let _ = db.meet_index.set(index);
        let _ = db.depth_stats.set(depth_stats);
        let _ = db.partition_stats.set(partition_stats);
        Ok(db)
    }

    /// Reconstruct a store from any dispatched snapshot source.
    pub fn decode_source(source: &SnapshotSource) -> Result<MonetDb, SnapshotError> {
        match source {
            SnapshotSource::Legacy(r) => MonetDb::decode_snapshot(r),
            SnapshotSource::Mapped(m) => MonetDb::decode_snapshot_v3(m),
        }
    }

    /// Save the store (plus index and stats) as a standalone v3
    /// snapshot file. Higher layers that stack more sections go through
    /// [`MonetDb::encode_snapshot_v3`] instead.
    pub fn save(&self, path: &Path) -> Result<(), SnapshotError> {
        let mut writer = SnapshotWriterV3::new();
        self.encode_snapshot_v3(&mut writer);
        writer.write_to(path)
    }

    /// Load a store from a snapshot file of any supported layout
    /// version: v3 maps (no parse, no DFS, no O(n log n) preprocess —
    /// the index and stats arrive in final form), v1/v2 take the
    /// legacy materializing path.
    pub fn load(path: &Path) -> Result<MonetDb, SnapshotError> {
        MonetDb::decode_source(&SnapshotSource::open(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncq_xml::parse;

    const FIGURE1: &str = r#"
<bibliography>
  <institute>
    <article key="BB99">
      <author><firstname>Ben</firstname><lastname>Bit</lastname></author>
      <title>How to Hack</title>
      <year>1999</year>
    </article>
    <article key="BK99">
      <author>Bob Byte</author>
      <title>Hacking &amp; RSI</title>
      <year>1999</year>
    </article>
  </institute>
</bibliography>"#;

    fn db() -> MonetDb {
        MonetDb::from_document(&parse(FIGURE1).unwrap())
    }

    fn snapshot_bytes(db: &MonetDb) -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        db.encode_snapshot(&mut w);
        w.to_bytes()
    }

    #[test]
    fn round_trip_preserves_every_relation_and_lookup() {
        let original = db();
        let loaded = MonetDb::decode_snapshot(
            &SnapshotReader::from_bytes(snapshot_bytes(&original)).unwrap(),
        )
        .unwrap();

        assert_eq!(loaded.node_count(), original.node_count());
        assert_eq!(loaded.summary().len(), original.summary().len());
        assert_eq!(loaded.dump_tree(), original.dump_tree());
        assert_eq!(loaded.dump_relations(), original.dump_relations());
        assert_eq!(loaded.stats(), original.stats());
        assert_eq!(loaded.depth_stats(), original.depth_stats());
        assert_eq!(loaded.partition_stats(), original.partition_stats());
        for o in original.iter_oids() {
            assert_eq!(loaded.sigma(o), original.sigma(o));
            assert_eq!(loaded.parent(o), original.parent(o));
            assert_eq!(loaded.rank(o), original.rank(o));
            assert_eq!(loaded.node_of(o), original.node_of(o));
        }
        // The meet index answers identically without being rebuilt.
        let (a, b) = (Oid::from_index(5), Oid::from_index(15));
        assert_eq!(
            loaded.meet_index().meet(a, b),
            original.meet_index().meet(a, b)
        );
        for p in original.summary().iter() {
            assert_eq!(
                loaded.meet_index().oids_of_path(p),
                original.meet_index().oids_of_path(p)
            );
        }
    }

    #[test]
    fn snapshot_bytes_are_deterministic() {
        let original = db();
        assert_eq!(snapshot_bytes(&original), snapshot_bytes(&original));
        // A freshly loaded clone re-saves byte-identically too.
        let loaded = MonetDb::decode_snapshot(
            &SnapshotReader::from_bytes(snapshot_bytes(&original)).unwrap(),
        )
        .unwrap();
        assert_eq!(snapshot_bytes(&loaded), snapshot_bytes(&original));
    }

    #[test]
    fn save_and_load_round_trip_through_a_file() {
        let dir = std::env::temp_dir().join("ncq-snapshot-store-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("figure1.ncq");
        let original = db();
        original.save(&path).unwrap();
        let loaded = MonetDb::load(&path).unwrap();
        assert_eq!(loaded.dump_relations(), original.dump_relations());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut bytes = snapshot_bytes(&db());
        bytes[0] ^= 0xFF;
        assert!(matches!(
            SnapshotReader::from_bytes(bytes),
            Err(SnapshotError::BadMagic)
        ));
    }

    #[test]
    fn version_mismatch_is_typed() {
        let mut bytes = snapshot_bytes(&db());
        bytes[8] = 99;
        assert!(matches!(
            SnapshotReader::from_bytes(bytes),
            Err(SnapshotError::UnsupportedVersion { found: 99, .. })
        ));
    }

    #[test]
    fn payload_bit_flips_fail_the_checksum() {
        let bytes = snapshot_bytes(&db());
        // Flip one byte in every section payload in turn.
        let table_end = {
            let count = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
            16 + 28 * count
        };
        for at in [table_end, table_end + 97, bytes.len() - 1] {
            let mut corrupt = bytes.clone();
            corrupt[at] ^= 0x10;
            assert!(
                matches!(
                    SnapshotReader::from_bytes(corrupt),
                    Err(SnapshotError::ChecksumMismatch { .. })
                ),
                "flip at {at} went undetected"
            );
        }
    }

    #[test]
    fn truncation_at_every_length_is_typed_not_a_panic() {
        let bytes = snapshot_bytes(&db());
        // Exhaustive prefix truncation: cheap at Figure 1 scale and
        // covers every section boundary by construction.
        for len in 0..bytes.len() {
            let result = SnapshotReader::from_bytes(bytes[..len].to_vec())
                .and_then(|r| MonetDb::decode_snapshot(&r));
            assert!(result.is_err(), "prefix of {len} bytes decoded");
        }
    }

    #[test]
    fn missing_section_is_typed() {
        let mut w = SnapshotWriter::new();
        w.section(section::SYMBOLS).put_u32(0);
        let r = SnapshotReader::from_bytes(w.to_bytes()).unwrap();
        assert!(matches!(
            r.section(section::COLUMNS),
            Err(SnapshotError::MissingSection {
                section: section::COLUMNS
            })
        ));
        assert!(matches!(
            MonetDb::decode_snapshot(&r),
            Err(SnapshotError::MissingSection { .. })
        ));
    }

    #[test]
    fn huge_declared_counts_fail_typed_without_allocating() {
        // A checksum-valid payload whose length prefix claims ~4 billion
        // string entries must not abort on a pre-allocation — capacity
        // is clamped to the actual payload, so it fails typed.
        let original = db();
        let mut w = SnapshotWriter::new();
        original.encode_snapshot(&mut w);
        let mut bytes = w.to_bytes();
        // Find the STRINGS section and rewrite its first relation's
        // length prefix (right after the u32 path count), then repair
        // the checksum so only the decoder sees the lie.
        let count = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
        let (mut start, mut end) = (0usize, 0usize);
        let mut table_at = 0usize;
        for i in 0..count {
            let at = 16 + 28 * i;
            if u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) == section::STRINGS {
                start = u64::from_le_bytes(bytes[at + 4..at + 12].try_into().unwrap()) as usize;
                end = start
                    + u64::from_le_bytes(bytes[at + 12..at + 20].try_into().unwrap()) as usize;
                table_at = at;
            }
        }
        bytes[start + 4..start + 8].copy_from_slice(&u32::MAX.to_le_bytes());
        let sum = checksum64(&bytes[start..end]);
        bytes[table_at + 20..table_at + 28].copy_from_slice(&sum.to_le_bytes());
        let result = MonetDb::decode_snapshot(&SnapshotReader::from_bytes(bytes).unwrap());
        assert!(matches!(result, Err(SnapshotError::Corrupt { .. })));
    }

    #[test]
    fn non_edge_tour_bits_fail_typed_not_silently_wrong() {
        // A 3-node chain r -> x -> y. The canonical tour bits are
        // down,down,up,up (0b0011 LSB-first). Rewriting them to
        // down,up,down,up (0b0101) keeps the step count, discovers
        // every oid and never climbs above the root — but the second
        // down would descend the non-edge r -> y, which must be a
        // typed Corrupt, not an index that answers meets wrongly.
        let chain = MonetDb::from_document(&parse("<r><x><y/></x></r>").unwrap());
        let mut w = SnapshotWriter::new();
        chain.encode_snapshot(&mut w);
        let mut bytes = w.to_bytes();
        let count = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
        for i in 0..count {
            let at = 16 + 28 * i;
            if u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) == section::MEET_INDEX {
                let start = u64::from_le_bytes(bytes[at + 4..at + 12].try_into().unwrap()) as usize;
                let end = start
                    + u64::from_le_bytes(bytes[at + 12..at + 20].try_into().unwrap()) as usize;
                // Payload: steps u32, word count u32, then the word.
                assert_eq!(bytes[start + 8], 0b0011);
                bytes[start + 8] = 0b0101;
                let sum = checksum64(&bytes[start..end]);
                bytes[at + 20..at + 28].copy_from_slice(&sum.to_le_bytes());
            }
        }
        let result = MonetDb::decode_snapshot(&SnapshotReader::from_bytes(bytes).unwrap());
        assert!(matches!(
            result,
            Err(SnapshotError::Corrupt {
                context: "euler tour descends a non-edge"
            })
        ));
    }

    fn snapshot_bytes_v3(db: &MonetDb) -> Vec<u8> {
        let mut w = SnapshotWriterV3::new();
        db.encode_snapshot_v3(&mut w);
        w.to_bytes()
    }

    #[test]
    fn v3_round_trip_preserves_every_relation_and_lookup() {
        let original = db();
        let source = SnapshotSource::from_bytes(snapshot_bytes_v3(&original)).unwrap();
        assert!(matches!(source, SnapshotSource::Mapped(_)));
        let loaded = MonetDb::decode_source(&source).unwrap();

        assert_eq!(loaded.dump_tree(), original.dump_tree());
        assert_eq!(loaded.dump_relations(), original.dump_relations());
        assert_eq!(loaded.stats(), original.stats());
        assert_eq!(loaded.depth_stats(), original.depth_stats());
        assert_eq!(loaded.partition_stats(), original.partition_stats());
        for o in original.iter_oids() {
            assert_eq!(loaded.sigma(o), original.sigma(o));
            assert_eq!(loaded.parent(o), original.parent(o));
            assert_eq!(loaded.rank(o), original.rank(o));
            assert_eq!(loaded.node_of(o), original.node_of(o));
        }
        let (a, b) = (Oid::from_index(5), Oid::from_index(15));
        assert_eq!(
            loaded.meet_index().meet(a, b),
            original.meet_index().meet(a, b)
        );
        for p in original.summary().iter() {
            assert_eq!(
                loaded.meet_index().oids_of_path(p),
                original.meet_index().oids_of_path(p)
            );
            assert_eq!(loaded.edges_of(p), original.edges_of(p));
            assert_eq!(loaded.strings_of(p), original.strings_of(p));
        }
    }

    #[test]
    fn v3_bytes_are_deterministic_and_resave_stable() {
        let original = db();
        let bytes = snapshot_bytes_v3(&original);
        assert_eq!(bytes, snapshot_bytes_v3(&original));
        let loaded =
            MonetDb::decode_source(&SnapshotSource::from_bytes(bytes.clone()).unwrap()).unwrap();
        assert_eq!(snapshot_bytes_v3(&loaded), bytes);
    }

    #[test]
    fn save_writes_v3_and_load_dispatches_by_version() {
        let dir = std::env::temp_dir().join("ncq-snapshot-dispatch-test");
        std::fs::create_dir_all(&dir).unwrap();
        let original = db();

        // `save` emits the current (v3) layout.
        let v3_path = dir.join("dispatch.v3.ncq");
        original.save(&v3_path).unwrap();
        let head = std::fs::read(&v3_path).unwrap();
        assert_eq!(
            u32::from_le_bytes(head[8..12].try_into().unwrap()),
            SNAPSHOT_VERSION
        );
        let loaded = MonetDb::load(&v3_path).unwrap();
        assert_eq!(loaded.dump_relations(), original.dump_relations());

        // A legacy writer's file still loads through the same entry
        // point, and so does a byte-patched v2 (same payload layout).
        let v1_path = dir.join("dispatch.v1.ncq");
        let mut w = SnapshotWriter::new();
        original.encode_snapshot(&mut w);
        w.write_to(&v1_path).unwrap();
        let mut v2_bytes = std::fs::read(&v1_path).unwrap();
        assert_eq!(
            u32::from_le_bytes(v2_bytes[8..12].try_into().unwrap()),
            SNAPSHOT_VERSION_V1
        );
        let legacy = MonetDb::load(&v1_path).unwrap();
        assert_eq!(legacy.dump_relations(), original.dump_relations());
        v2_bytes[8] = 2;
        let v2 = MonetDb::decode_source(&SnapshotSource::from_bytes(v2_bytes).unwrap()).unwrap();
        assert_eq!(v2.dump_relations(), original.dump_relations());

        std::fs::remove_file(&v3_path).ok();
        std::fs::remove_file(&v1_path).ok();
    }

    #[test]
    fn versions_above_current_are_typed_through_dispatch() {
        let mut bytes = snapshot_bytes_v3(&db());
        bytes[8] = 99;
        assert!(matches!(
            SnapshotSource::from_bytes(bytes),
            Err(SnapshotError::UnsupportedVersion {
                found: 99,
                supported: SNAPSHOT_VERSION
            })
        ));
    }

    #[test]
    fn unknown_sections_are_ignored() {
        let original = db();
        let mut w = SnapshotWriter::new();
        original.encode_snapshot(&mut w);
        w.section(0xBEEF).put_str("future extension");
        let loaded =
            MonetDb::decode_snapshot(&SnapshotReader::from_bytes(w.to_bytes()).unwrap()).unwrap();
        assert_eq!(loaded.dump_relations(), original.dump_relations());
    }
}
