//! Object identifiers.

use std::fmt;

/// A dense object identifier, assigned in depth-first (document) order at
/// bulk-load time — the assignment the paper suggests ("e.g., depth-first
/// traversal order").
///
/// Two consequences the meet algorithms exploit:
///
/// * `Oid` order *is* document order;
/// * `parent(o) < o` for every non-root `o`.
///
/// `repr(transparent)` over the raw `u32` so sorted `Oid` runs can be
/// viewed as raw lanes ([`Oid::raw_slice`]) for the SIMD kernels in
/// `ncq-simd` — `Oid` order *is* raw order, so the view preserves
/// sortedness.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(transparent)]
pub struct Oid(u32);

impl Oid {
    /// The root object of every document.
    pub const ROOT: Oid = Oid(0);

    /// Raw dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstruct from a raw index previously obtained via [`Oid::index`].
    #[inline]
    pub fn from_index(index: usize) -> Oid {
        Oid(u32::try_from(index).expect("too many objects"))
    }

    /// The raw dense id — the lane representation SIMD kernels consume.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Reconstruct from a raw lane previously obtained via [`Oid::raw`].
    #[inline]
    pub fn from_raw(raw: u32) -> Oid {
        Oid(raw)
    }

    /// Zero-copy view of an `Oid` run as raw `u32` lanes.
    #[inline]
    pub fn raw_slice(oids: &[Oid]) -> &[u32] {
        // SAFETY: `Oid` is `repr(transparent)` over `u32` — identical
        // size, alignment and bit validity.
        unsafe { std::slice::from_raw_parts(oids.as_ptr().cast::<u32>(), oids.len()) }
    }

    /// Reinterpret a raw lane vector as oids without copying — the
    /// return path from kernels that produce `Vec<u32>`.
    #[inline]
    pub fn wrap_raw_vec(raw: Vec<u32>) -> Vec<Oid> {
        let mut raw = std::mem::ManuallyDrop::new(raw);
        // SAFETY: identical layout via `repr(transparent)`; ownership
        // of the allocation transfers wholesale (len, capacity and
        // allocator layout all unchanged).
        unsafe { Vec::from_raw_parts(raw.as_mut_ptr().cast::<Oid>(), raw.len(), raw.capacity()) }
    }
}

impl fmt::Debug for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_is_zero() {
        assert_eq!(Oid::ROOT.index(), 0);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(Oid::from_index(1) < Oid::from_index(2));
        assert!(Oid::ROOT < Oid::from_index(1));
    }

    #[test]
    fn round_trip() {
        let o = Oid::from_index(1234);
        assert_eq!(o.index(), 1234);
        assert_eq!(format!("{o}"), "o1234");
        assert_eq!(format!("{o:?}"), "o1234");
    }
}
