//! Object identifiers.

use std::fmt;

/// A dense object identifier, assigned in depth-first (document) order at
/// bulk-load time — the assignment the paper suggests ("e.g., depth-first
/// traversal order").
///
/// Two consequences the meet algorithms exploit:
///
/// * `Oid` order *is* document order;
/// * `parent(o) < o` for every non-root `o`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Oid(u32);

impl Oid {
    /// The root object of every document.
    pub const ROOT: Oid = Oid(0);

    /// Raw dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstruct from a raw index previously obtained via [`Oid::index`].
    #[inline]
    pub fn from_index(index: usize) -> Oid {
        Oid(u32::try_from(index).expect("too many objects"))
    }
}

impl fmt::Debug for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_is_zero() {
        assert_eq!(Oid::ROOT.index(), 0);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(Oid::from_index(1) < Oid::from_index(2));
        assert!(Oid::ROOT < Oid::from_index(1));
    }

    #[test]
    fn round_trip() {
        let o = Oid::from_index(1234);
        assert_eq!(o.index(), 1234);
        assert_eq!(format!("{o}"), "o1234");
        assert_eq!(format!("{o:?}"), "o1234");
    }
}
