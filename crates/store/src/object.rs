//! Object re-assembly (paper §2, end).
//!
//! > "we 're-assemble' an object with OID `o` from those associations whose
//! > first component is `o` … an object can be regarded as a set of
//! > associations."
//!
//! [`ObjectView`] gathers, for one oid: its attributes, its direct text,
//! and its element children — the paper's example re-assembles
//! `author(o14) = { cdata(o14, "BB99"), year(o14, …), title(o14, …) }` into
//! an instance of a class. Useful for displaying answers of meet queries.

use crate::monet::MonetDb;
use crate::oid::Oid;
use crate::path::PathStep;

/// A re-assembled object: one oid with its immediate associations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectView {
    /// The object's oid.
    pub oid: Oid,
    /// Display label (tag name, `cdata`, …).
    pub label: String,
    /// Attribute name/value pairs.
    pub attributes: Vec<(String, String)>,
    /// Direct character data (text of this node if it is a cdata node, or
    /// concatenation of its direct cdata children when an element).
    pub text: String,
    /// Element children in document order.
    pub children: Vec<Oid>,
}

impl ObjectView {
    /// Re-assemble the object behind `oid`.
    pub fn assemble(db: &MonetDb, oid: Oid) -> ObjectView {
        let path = db.sigma(oid);
        let summary = db.summary();
        let mut attributes = Vec::new();
        let mut text = String::new();
        let mut children = Vec::new();

        match summary.step(path) {
            PathStep::Cdata => {
                // The node's own string lives in its path's string relation.
                if let Some((_, s)) = db.strings_of(path).iter().find(|(owner, _)| *owner == oid) {
                    text.push_str(s);
                }
            }
            _ => {
                // Attributes: string relations on attribute child paths
                // whose owner is this oid.
                for &child_path in summary.children(path) {
                    match summary.step(child_path) {
                        PathStep::Attribute(sym) => {
                            for (owner, value) in db.strings_of(child_path) {
                                if *owner == oid {
                                    attributes.push((
                                        db.symbols().resolve(sym).to_owned(),
                                        value.to_string(),
                                    ));
                                }
                            }
                        }
                        PathStep::Cdata => {
                            for &(parent, child) in db.edges_of(child_path) {
                                if parent == oid {
                                    if let Some((_, s)) = db
                                        .strings_of(child_path)
                                        .iter()
                                        .find(|(owner, _)| *owner == child)
                                    {
                                        text.push_str(s);
                                    }
                                }
                            }
                        }
                        PathStep::Element(_) => {
                            for &(parent, child) in db.edges_of(child_path) {
                                if parent == oid {
                                    children.push(child);
                                }
                            }
                        }
                    }
                }
                children.sort_unstable(); // document order
            }
        }

        ObjectView {
            oid,
            label: db.label(oid),
            attributes,
            text,
            children,
        }
    }

    /// Concatenated text of the whole subtree under this object.
    pub fn deep_text(db: &MonetDb, oid: Oid) -> String {
        let mut out = String::new();
        deep_text_rec(db, oid, &mut out);
        out
    }
}

fn deep_text_rec(db: &MonetDb, oid: Oid, out: &mut String) {
    let view = ObjectView::assemble(db, oid);
    if matches!(db.summary().step(db.sigma(oid)), PathStep::Cdata) {
        out.push_str(&view.text);
        return;
    }
    // Interleave cdata children and element children in document order by
    // walking the original tree is simpler, but we stay in the store: use
    // direct text then recurse (adequate for display purposes; element-only
    // content dominates the corpora).
    out.push_str(&view.text);
    for c in view.children {
        deep_text_rec(db, c, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monet::MonetDb;
    use ncq_xml::parse;

    fn db() -> MonetDb {
        MonetDb::from_document(
            &parse(
                r#"<bib><article key="BB99"><author>Ben Bit</author>
                   <year>1999</year></article></bib>"#,
            )
            .unwrap(),
        )
    }

    fn find(db: &MonetDb, label: &str) -> Oid {
        db.iter_oids().find(|&o| db.label(o) == label).unwrap()
    }

    #[test]
    fn article_assembles_with_key_and_children() {
        let db = db();
        let art = find(&db, "article");
        let v = ObjectView::assemble(&db, art);
        assert_eq!(v.label, "article");
        assert_eq!(v.attributes, vec![("key".to_string(), "BB99".to_string())]);
        assert_eq!(v.children.len(), 2); // author, year
        assert!(v.text.is_empty());
    }

    #[test]
    fn author_assembles_with_text() {
        let db = db();
        let author = find(&db, "author");
        let v = ObjectView::assemble(&db, author);
        assert_eq!(v.text, "Ben Bit");
        assert!(v.children.is_empty());
        assert!(v.attributes.is_empty());
    }

    #[test]
    fn cdata_node_assembles_to_its_string() {
        let db = db();
        let cd = db
            .iter_oids()
            .find(|&o| {
                db.label(o) == "cdata" && {
                    let v = ObjectView::assemble(&db, o);
                    v.text == "1999"
                }
            })
            .unwrap();
        let v = ObjectView::assemble(&db, cd);
        assert_eq!(v.text, "1999");
        assert_eq!(v.label, "cdata");
    }

    #[test]
    fn deep_text_concatenates() {
        let db = db();
        let art = find(&db, "article");
        assert_eq!(ObjectView::deep_text(&db, art), "Ben Bit1999");
    }
}
