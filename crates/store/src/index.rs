//! The structural meet index: O(1) ancestor tests, O(1) LCA, O(1)
//! distances, and document-order posting lists.
//!
//! # Why
//!
//! The paper's meet operator answers `meet₂(o₁, o₂)` by σ-steered parent
//! walks — O(`distance`) look-ups per pair (§3.2, Fig. 3), and §4 counts
//! "the number of joins executed" as exactly that distance. That is the
//! right *relational* cost model, but for a query engine serving large hit
//! sets the classical LCA result applies: after one linear-ish preprocess,
//! every lowest-common-ancestor query is O(1). This module is that
//! preprocess; the operators in `ncq-core` build their indexed fast paths
//! on top of it, keeping the steered walk as the ablation baseline.
//!
//! # Construction
//!
//! One pass over the loaded [`crate::MonetDb`] (whose OIDs are
//! depth-first preorder by construction) yields three structures:
//!
//! 1. **Preorder intervals** — because OIDs are assigned in DFS order,
//!    the subtree of `o` occupies the contiguous OID range
//!    `[o, subtree_end(o))`. Storing one `end` per node gives O(1)
//!    [`MeetIndex::is_ancestor_or_self`] — the pre/post-order numbering
//!    trick with the pre-number coming for free from the OID itself.
//! 2. **Euler tour + block-decomposed sparse-table RMQ** — the tour
//!    visits `2n − 1` nodes; the LCA of `a` and `b` is the minimum-depth
//!    node between their first tour occurrences (Bender & Farach-Colton's
//!    reduction of LCA to range-minimum). The tour is cut into 32-entry
//!    blocks: per-position prefix/suffix minima answer the partial
//!    blocks, and a sparse table over whole-block minima answers the
//!    middle, so [`MeetIndex::lca`] and [`MeetIndex::distance`]
//!    (`depth(a) + depth(b) − 2·depth(lca)`) are O(1) with **O(n)**
//!    memory (a flat sparse table over the raw tour would be
//!    O(n log n) — 168 MB at a million nodes; this layout is ~32 MB).
//!    Ties at the minimum depth need no care: every minimum-depth
//!    position in the queried range is an occurrence of the same node,
//!    the LCA itself.
//! 3. **Per-path posting lists** — for every path `p` of the summary, the
//!    OIDs with `σ(o) = p`, in document order. Document-order sortedness
//!    is what the plane-sweep set operators and the galloping posting
//!    intersections rely on; keeping the lists here makes the guarantee
//!    explicit (and allocation-free to read).
//!
//! # Paper connection
//!
//! §4 of the paper ranks answers by the join count of the meet, i.e. by
//! tree distance. With this index the *ranking quantity is preserved* —
//! [`MeetIndex::distance`] returns exactly the number of parent joins the
//! relational plan would execute — while the *evaluation cost* drops from
//! O(hits × depth) to O(1) per pair. The operators report the joins they
//! *model*, not the look-ups they perform.

use crate::mmap::Col;
use crate::monet::MonetDb;
use crate::oid::Oid;
use crate::path::PathId;

/// Euler-tour LCA index with preorder intervals and per-path postings.
///
/// Built once per document via [`MonetDb::meet_index`] (lazily, cached)
/// or eagerly with [`MeetIndex::build`].
///
/// Every array is a [`Col`]: owned when the index was built or loaded
/// from a legacy snapshot, a zero-copy view into a mapped v3 snapshot
/// otherwise — all eleven arrays here are **final-form** on disk in v3,
/// so a mapped open performs no assembly at all. `pub(crate)` fields:
/// the snapshot codecs persist and reattach them directly.
#[derive(Debug, Clone)]
pub struct MeetIndex {
    /// Tree depth per oid (copied out of the path summary for locality).
    pub(crate) depth: Col<u32>,
    /// Exclusive end of the preorder interval per oid: the subtree of `o`
    /// is exactly the OID range `o.index()..subtree_end[o.index()]`.
    pub(crate) subtree_end: Col<u32>,
    /// `(first_visit << 32) | depth` per oid: one load per query
    /// endpoint yields both the tour position and the depth.
    pub(crate) visit_depth: Col<u64>,
    /// The Euler tour: `2n − 1` oid values.
    pub(crate) tour: Col<u32>,
    /// `depth[tour[i]]`, materialized so in-block scans read contiguous
    /// memory instead of chasing `tour` → `depth`.
    pub(crate) tour_depth: Col<u32>,
    /// Per tour position: packed `(depth << 32) | pos` argmin within its
    /// block, from the block start up to and including this position.
    /// Packing makes every RMQ comparison a plain u64 compare with no
    /// dependent loads.
    pub(crate) prefix_min: Col<u64>,
    /// Per tour position: packed argmin within its block, from this
    /// position to the block end.
    pub(crate) suffix_min: Col<u64>,
    /// Sparse table over whole-block minima, flattened level-major:
    /// `block_table[level * num_blocks + b]` is the packed minimum over
    /// blocks `b .. b + 2^level`.
    pub(crate) block_table: Col<u64>,
    /// Number of 32-entry tour blocks.
    pub(crate) num_blocks: usize,
    /// Per-path posting offsets (CSR): the oids of path `p` are
    /// `path_data[path_off[p] .. path_off[p + 1]]`, in document order.
    pub(crate) path_off: Col<u32>,
    /// Concatenated per-path postings, `n` oids total.
    pub(crate) path_data: Col<Oid>,
}

/// Tour block size: 32 entries = two cache lines of `tour_depth`, and a
/// worst-case in-block scan of 31 contiguous comparisons. `pub(crate)`:
/// the v3 snapshot codec validates block counts against it.
pub(crate) const BLOCK: usize = 32;
const BLOCK_SHIFT: u32 = BLOCK.trailing_zeros();

/// Pack a (depth, tour position) pair; the natural u64 order is then
/// exactly "smaller depth first, leftmost position on ties".
#[inline]
fn pack(depth: u32, pos: usize) -> u64 {
    ((depth as u64) << 32) | pos as u64
}

impl MeetIndex {
    /// Build the index from a loaded database — one DFS plus the
    /// O(n log n) sparse-table fill.
    pub fn build(db: &MonetDb) -> MeetIndex {
        let n = db.node_count();
        assert!(n > 0, "a loaded document always has a root");

        let mut depth = Vec::with_capacity(n);
        let mut path_oids: Vec<Vec<Oid>> = vec![Vec::new(); db.summary().len()];
        for o in db.iter_oids() {
            depth.push(db.depth(o) as u32);
            path_oids[db.sigma(o).index()].push(o);
        }

        // Preorder intervals: children have larger OIDs than parents, so
        // a reverse sweep folds each subtree's end into its parent.
        let mut subtree_end: Vec<u32> = (1..=n as u32).collect();
        for i in (1..n).rev() {
            let p = db.parent(Oid::from_index(i)).expect("non-root").index();
            if subtree_end[p] < subtree_end[i] {
                subtree_end[p] = subtree_end[i];
            }
        }

        // Children in document order, CSR layout over the parent array.
        let mut child_count = vec![0u32; n];
        for i in 1..n {
            child_count[db.parent(Oid::from_index(i)).expect("non-root").index()] += 1;
        }
        let mut child_start = vec![0u32; n + 1];
        for i in 0..n {
            child_start[i + 1] = child_start[i] + child_count[i];
        }
        let mut children = vec![0u32; n.saturating_sub(1)];
        let mut fill = child_start.clone();
        for i in 1..n {
            let p = db.parent(Oid::from_index(i)).expect("non-root").index();
            children[fill[p] as usize] = i as u32;
            fill[p] += 1;
        }

        // Euler tour via an explicit DFS stack of (node, next child slot).
        // First-visit positions are recovered from the tour by `assemble`.
        let tour_len = 2 * n - 1;
        let mut tour = Vec::with_capacity(tour_len);
        let mut stack: Vec<(u32, u32)> = vec![(0, child_start[0])];
        tour.push(0u32);
        while let Some(top) = stack.last_mut() {
            let node = top.0 as usize;
            if top.1 < child_start[node + 1] {
                let child = children[top.1 as usize];
                top.1 += 1;
                tour.push(child);
                stack.push((child, child_start[child as usize]));
            } else {
                stack.pop();
                if let Some(&(parent, _)) = stack.last() {
                    tour.push(parent);
                }
            }
        }
        debug_assert_eq!(tour.len(), tour_len);

        MeetIndex::assemble(depth, subtree_end, tour, path_oids)
            .expect("a freshly built DFS tour always assembles")
    }

    /// Finish an index from its four source arrays — the preorder
    /// intervals, the Euler tour and the per-path postings — by
    /// rebuilding the derived structures (first visits, tour depths,
    /// block RMQ tables) in linear passes plus the small
    /// O((n/32)·log(n/32)) sparse-table fill. [`MeetIndex::build`]
    /// funnels through here after its DFS; the snapshot loader calls it
    /// directly on the persisted arrays, which is what makes a cold
    /// start skip the construction DFS entirely. Returns `None` for a
    /// tour that is not a preorder DFS walk (only reachable from a
    /// corrupt snapshot — the builder's own tour always qualifies).
    pub(crate) fn assemble(
        depth: Vec<u32>,
        subtree_end: Vec<u32>,
        tour: Vec<u32>,
        path_oids: Vec<Vec<Oid>>,
    ) -> Option<MeetIndex> {
        let n = depth.len();
        let tour_len = tour.len();
        debug_assert_eq!(tour_len, 2 * n - 1);

        // First tour occurrence per oid (one forward pass). OIDs are
        // preorder and the tour is a DFS walk, so nodes are discovered
        // in oid order: entry `o` is a first visit exactly when it is
        // the next undiscovered oid — an append, not a random write.
        // (The snapshot loader skips this pass: its bit-packed tour
        // replay emits the first visits directly and enters through
        // `assemble_with_visits`.)
        let mut first_visit: Vec<u32> = Vec::with_capacity(n);
        for (i, &o) in tour.iter().enumerate() {
            if o as usize == first_visit.len() {
                first_visit.push(i as u32);
            }
        }
        if first_visit.len() != n {
            return None;
        }
        Some(MeetIndex::assemble_with_visits(
            depth,
            subtree_end,
            tour,
            first_visit,
            path_oids,
        ))
    }

    /// [`MeetIndex::assemble`] with the first-visit positions already
    /// known. The caller guarantees `first_visit[o]` is the tour index
    /// of `o`'s first occurrence and that every oid occurs.
    pub(crate) fn assemble_with_visits(
        depth: Vec<u32>,
        subtree_end: Vec<u32>,
        tour: Vec<u32>,
        first_visit: Vec<u32>,
        path_oids: Vec<Vec<Oid>>,
    ) -> MeetIndex {
        let n = depth.len();
        let tour_len = tour.len();
        debug_assert_eq!(first_visit.len(), n);

        // Note the layout difference: visit_depth is
        // (first_visit << 32) | depth, while the RMQ tables pack
        // (depth << 32) | pos so the u64 order is depth-first.
        let visit_depth: Vec<u64> = (0..n)
            .map(|i| ((first_visit[i] as u64) << 32) | depth[i] as u64)
            .collect();

        // Per-block pass, fused for locality: gather the block's tour
        // depths, fold its prefix/suffix packed argmins and seed the
        // sparse table's level 0 while the 32 entries are cache-hot.
        // The big arrays are appended to (prefix order) or staged in a
        // block-sized scratch (suffix order) so nothing is zero-filled
        // only to be overwritten.
        let num_blocks = tour_len.div_ceil(BLOCK);
        let levels = usize::BITS as usize - (num_blocks.leading_zeros() as usize);
        let mut tour_depth: Vec<u32> = Vec::with_capacity(tour_len);
        let mut prefix_min: Vec<u64> = Vec::with_capacity(tour_len);
        let mut suffix_min: Vec<u64> = Vec::with_capacity(tour_len);
        let mut block_table = vec![0u64; levels * num_blocks];
        let mut scratch = [0u64; BLOCK];
        for (b, level0) in block_table.iter_mut().take(num_blocks).enumerate() {
            let start = b * BLOCK;
            let end = (start + BLOCK).min(tour_len);
            tour_depth.extend(tour[start..end].iter().map(|&o| depth[o as usize]));
            let block = &tour_depth[start..end];
            let mut best = pack(block[0], start);
            for (off, &d) in block.iter().enumerate() {
                best = best.min(pack(d, start + off));
                prefix_min.push(best);
            }
            let mut best = pack(block[block.len() - 1], end - 1);
            for (off, &d) in block.iter().enumerate().rev() {
                best = best.min(pack(d, start + off));
                scratch[off] = best;
            }
            suffix_min.extend_from_slice(&scratch[..block.len()]);
            *level0 = scratch[0];
        }
        // Remaining sparse-table levels over whole-block minima.
        for level in 1..levels {
            let half = 1usize << (level - 1);
            let width = 1usize << level;
            let (prev_rows, row) = block_table.split_at_mut(level * num_blocks);
            let prev = &prev_rows[(level - 1) * num_blocks..];
            for i in 0..=(num_blocks - width) {
                row[i] = prev[i].min(prev[i + half]);
            }
        }

        // Per-path postings in CSR layout: one offsets array plus the
        // concatenated document-order data — the shape the v3 snapshot
        // maps back without assembly.
        let mut path_off: Vec<u32> = Vec::with_capacity(path_oids.len() + 1);
        let mut path_data: Vec<Oid> = Vec::with_capacity(n);
        path_off.push(0);
        for oids in &path_oids {
            path_data.extend_from_slice(oids);
            path_off.push(path_data.len() as u32);
        }

        MeetIndex {
            depth: depth.into(),
            subtree_end: subtree_end.into(),
            visit_depth: visit_depth.into(),
            tour: tour.into(),
            tour_depth: tour_depth.into(),
            prefix_min: prefix_min.into(),
            suffix_min: suffix_min.into(),
            block_table: block_table.into(),
            num_blocks,
            path_off: path_off.into(),
            path_data: path_data.into(),
        }
    }

    /// Reattach an index from its persisted final-form arrays — the v3
    /// snapshot path: no DFS, no RMQ fill, no posting regrouping. The
    /// caller (the codec) has validated the shape invariants the
    /// accessors rely on: matching lengths, `path_off` monotone from 0
    /// to `n`, and `block_table.len() == levels * num_blocks`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        depth: Col<u32>,
        subtree_end: Col<u32>,
        visit_depth: Col<u64>,
        tour: Col<u32>,
        tour_depth: Col<u32>,
        prefix_min: Col<u64>,
        suffix_min: Col<u64>,
        block_table: Col<u64>,
        num_blocks: usize,
        path_off: Col<u32>,
        path_data: Col<Oid>,
    ) -> MeetIndex {
        MeetIndex {
            depth,
            subtree_end,
            visit_depth,
            tour,
            tour_depth,
            prefix_min,
            suffix_min,
            block_table,
            num_blocks,
            path_off,
            path_data,
        }
    }

    /// Number of paths with a postings slot.
    #[inline]
    pub(crate) fn path_count(&self) -> usize {
        self.path_off.len().saturating_sub(1)
    }

    /// Number of indexed objects.
    #[inline]
    pub fn len(&self) -> usize {
        self.depth.len()
    }

    /// Always false: an index exists only for a loaded (rooted) document.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Tree depth of `o` (0 for the root).
    #[inline]
    pub fn depth(&self, o: Oid) -> usize {
        self.depth[o.index()] as usize
    }

    /// The preorder interval of `o`'s subtree: `o` is an ancestor-or-self
    /// of exactly the OIDs with index in this range.
    #[inline]
    pub fn subtree_range(&self, o: Oid) -> std::ops::Range<usize> {
        o.index()..self.subtree_end[o.index()] as usize
    }

    /// O(1) inclusive ancestor test via preorder intervals.
    #[inline]
    pub fn is_ancestor_or_self(&self, anc: Oid, o: Oid) -> bool {
        anc.index() <= o.index() && o.index() < self.subtree_end[anc.index()] as usize
    }

    /// Packed `(depth << 32) | pos` of a minimum-depth node in
    /// `tour[l..=r]`. Any argmin is correct: all minimum-depth positions
    /// in an Euler-tour range are occurrences of one node (the LCA).
    #[inline]
    fn rmq(&self, l: usize, r: usize) -> u64 {
        debug_assert!(l <= r);
        let (bl, br) = (l >> BLOCK_SHIFT, r >> BLOCK_SHIFT);
        if bl == br {
            // One block: contiguous scan over at most 32 depths.
            let mut best = pack(self.tour_depth[l], l);
            for i in l + 1..=r {
                best = best.min(pack(self.tour_depth[i], i));
            }
            return best;
        }
        let mut best = self.suffix_min[l].min(self.prefix_min[r]);
        if bl + 1 < br {
            // Whole blocks strictly between: one sparse-table probe.
            let span = br - bl - 1;
            let level = usize::BITS as usize - 1 - span.leading_zeros() as usize;
            let row = &self.block_table[level * self.num_blocks..];
            best = best.min(row[bl + 1]).min(row[br - (1usize << level)]);
        }
        best
    }

    /// Packed rmq over the endpoints' first-visit range.
    #[inline]
    fn meet_packed(&self, va: u64, vb: u64) -> u64 {
        let fa = (va >> 32) as usize;
        let fb = (vb >> 32) as usize;
        let (l, r) = if fa <= fb { (fa, fb) } else { (fb, fa) };
        self.rmq(l, r)
    }

    /// O(1) lowest common ancestor.
    #[inline]
    pub fn lca(&self, a: Oid, b: Oid) -> Oid {
        let m = self.meet_packed(self.visit_depth[a.index()], self.visit_depth[b.index()]);
        Oid::from_index(self.tour[(m & 0xFFFF_FFFF) as usize] as usize)
    }

    /// O(1) tree distance: the number of edges on the shortest path —
    /// the paper's join count `d(o₁, o₂)`.
    #[inline]
    pub fn distance(&self, a: Oid, b: Oid) -> usize {
        self.meet(a, b).1
    }

    /// O(1) combined meet: the LCA and the distance through it, sharing
    /// one RMQ probe (the hot path of `meet2_indexed`).
    #[inline]
    pub fn meet(&self, a: Oid, b: Oid) -> (Oid, usize) {
        let va = self.visit_depth[a.index()];
        let vb = self.visit_depth[b.index()];
        let m = self.meet_packed(va, vb);
        let meet = Oid::from_index(self.tour[(m & 0xFFFF_FFFF) as usize] as usize);
        let dm = (m >> 32) as usize;
        let da = (va & 0xFFFF_FFFF) as usize;
        let dbv = (vb & 0xFFFF_FFFF) as usize;
        (meet, da + dbv - 2 * dm)
    }

    /// All OIDs of path `p` in document order (empty for attribute paths,
    /// which own no objects). Reading is allocation-free, unlike
    /// [`MonetDb::oids_of_path`].
    #[inline]
    pub fn oids_of_path(&self, p: PathId) -> &[Oid] {
        let i = p.index();
        if i + 1 >= self.path_off.len() {
            return &[];
        }
        &self.path_data[self.path_off[i] as usize..self.path_off[i + 1] as usize]
    }

    /// Whether any OID of the sorted document-order `oids` slice falls in
    /// the subtree of `o` — an O(log n) containment test used by query
    /// evaluation ("does this node's offspring contain a hit?").
    pub fn subtree_contains_any(&self, o: Oid, oids: &[Oid]) -> bool {
        let start = ncq_simd::lower_bound_u32(Oid::raw_slice(oids), o.raw());
        oids.get(start)
            .is_some_and(|&x| x.index() < self.subtree_end[o.index()] as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncq_xml::parse;

    const FIGURE1: &str = r#"
<bibliography>
  <institute>
    <article key="BB99">
      <author><firstname>Ben</firstname><lastname>Bit</lastname></author>
      <title>How to Hack</title>
      <year>1999</year>
    </article>
    <article key="BK99">
      <author>Bob Byte</author>
      <title>Hacking &amp; RSI</title>
      <year>1999</year>
    </article>
  </institute>
</bibliography>"#;

    fn db() -> MonetDb {
        MonetDb::from_document(&parse(FIGURE1).unwrap())
    }

    /// Reference LCA by intersecting ancestor lists.
    fn reference_lca(db: &MonetDb, a: Oid, b: Oid) -> Oid {
        let anc: Vec<Oid> = db.ancestors(a).collect();
        db.ancestors(b).find(|x| anc.contains(x)).unwrap()
    }

    #[test]
    fn lca_matches_ancestor_walks_on_all_pairs() {
        let db = db();
        let idx = db.meet_index();
        for a in db.iter_oids() {
            for b in db.iter_oids() {
                assert_eq!(idx.lca(a, b), reference_lca(&db, a, b), "{a:?} {b:?}");
            }
        }
    }

    #[test]
    fn distance_matches_depth_arithmetic() {
        let db = db();
        let idx = db.meet_index();
        for a in db.iter_oids() {
            for b in db.iter_oids() {
                let m = reference_lca(&db, a, b);
                let expect = db.depth(a) + db.depth(b) - 2 * db.depth(m);
                assert_eq!(idx.distance(a, b), expect);
            }
        }
    }

    #[test]
    fn ancestor_test_matches_walks() {
        let db = db();
        let idx = db.meet_index();
        for a in db.iter_oids() {
            for b in db.iter_oids() {
                assert_eq!(
                    idx.is_ancestor_or_self(a, b),
                    db.is_ancestor_or_self(a, b),
                    "{a:?} {b:?}"
                );
            }
        }
    }

    #[test]
    fn subtree_ranges_are_preorder_intervals() {
        let db = db();
        let idx = db.meet_index();
        for o in db.iter_oids() {
            let range = idx.subtree_range(o);
            let members: Vec<usize> = db
                .iter_oids()
                .filter(|&x| db.is_ancestor_or_self(o, x))
                .map(Oid::index)
                .collect();
            assert_eq!(members, range.collect::<Vec<_>>());
        }
    }

    #[test]
    fn path_oids_are_document_order_and_complete() {
        let db = db();
        let idx = db.meet_index();
        let mut total = 0;
        for p in db.summary().iter() {
            let oids = idx.oids_of_path(p);
            assert!(oids.windows(2).all(|w| w[0] < w[1]), "sorted, deduped");
            assert_eq!(oids, db.oids_of_path(p).as_slice());
            total += oids.len();
        }
        assert_eq!(total, db.node_count());
    }

    #[test]
    fn subtree_contains_any_agrees_with_scan() {
        let db = db();
        let idx = db.meet_index();
        let hits: Vec<Oid> = db.iter_oids().filter(|&o| db.label(o) == "cdata").collect();
        for o in db.iter_oids() {
            let expect = hits.iter().any(|&h| db.is_ancestor_or_self(o, h));
            assert_eq!(idx.subtree_contains_any(o, &hits), expect, "{o:?}");
        }
        assert!(!idx.subtree_contains_any(db.root(), &[]));
    }

    #[test]
    fn single_node_document_indexes() {
        let db = MonetDb::from_document(&parse("<only/>").unwrap());
        let idx = db.meet_index();
        let root = db.root();
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.lca(root, root), root);
        assert_eq!(idx.distance(root, root), 0);
        assert!(idx.is_ancestor_or_self(root, root));
    }

    #[test]
    fn deep_chain_lca_is_exact() {
        // A 64-deep chain with a two-leaf fork at the bottom.
        let mut xml = String::from("<r>");
        for _ in 0..64 {
            xml.push_str("<e>");
        }
        xml.push_str("<a>x</a><b>y</b>");
        for _ in 0..64 {
            xml.push_str("</e>");
        }
        xml.push_str("</r>");
        let db = MonetDb::from_document(&parse(&xml).unwrap());
        let idx = db.meet_index();
        let a = db.iter_oids().find(|&o| db.label(o) == "a").unwrap();
        let b = db.iter_oids().find(|&o| db.label(o) == "b").unwrap();
        let m = idx.lca(a, b);
        assert_eq!(db.label(m), "e");
        assert_eq!(db.depth(m), 64);
        assert_eq!(idx.distance(a, b), 2);
    }
}
