//! Paths (`σ(o)`, Definition 3) and the path summary.
//!
//! A path is the sequence of labels from the root to a node. Because paths
//! are prefix-closed, the set of all paths of a document — its **path
//! summary** — forms a tree: exactly the "tree-shaped schema" that
//! the generalized meet algorithm (paper Figure 5) rolls up bottom-up.
//!
//! Paths are interned: equal label sequences share one [`PathId`]. Each
//! path node stores its parent and depth, so the prefix order of
//! Definition 5 (`σ(o₁) ≤ σ(o₂)` iff `σ(o₂)` is a prefix of `σ(o₁)`)
//! costs at most `depth(σ(o₁)) − depth(σ(o₂))` pointer hops to decide.

use ncq_xml::{Symbol, SymbolTable};
use std::collections::HashMap;
use std::fmt;

/// One step of a path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PathStep {
    /// Descent into an element with this tag.
    Element(Symbol),
    /// Descent into an attribute (`@name`); always a terminal step.
    Attribute(Symbol),
    /// Descent into a character-data node (the paper's `cdata` step);
    /// always a terminal step, with the actual string stored in the
    /// corresponding string relation.
    Cdata,
}

/// Interned identifier of a path within a [`PathSummary`].
///
/// `repr(transparent)`: guaranteed to be exactly a `u32`, so a
/// `(PathId, Oid)` posting has a defined `[u32; 2]` layout the SIMD
/// decode kernel can read.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(transparent)]
pub struct PathId(u32);

impl PathId {
    /// Raw dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstruct from a raw index previously obtained via [`PathId::index`].
    #[inline]
    pub fn from_index(index: usize) -> PathId {
        PathId(u32::try_from(index).expect("too many paths"))
    }
}

impl fmt::Debug for PathId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

#[derive(Debug, Clone)]
struct PathNode {
    parent: Option<PathId>,
    step: PathStep,
    depth: u32,
}

/// The tree of all interned paths of a document.
#[derive(Debug, Clone, Default)]
pub struct PathSummary {
    nodes: Vec<PathNode>,
    children: Vec<Vec<PathId>>,
    intern: HashMap<(Option<PathId>, PathStep), PathId>,
}

impl PathSummary {
    /// Create an empty summary.
    pub fn new() -> PathSummary {
        PathSummary::default()
    }

    /// Intern the single-step root path.
    pub fn intern_root(&mut self, step: PathStep) -> PathId {
        self.intern_step(None, step)
    }

    /// Intern `parent` extended by `step`.
    pub fn intern_child(&mut self, parent: PathId, step: PathStep) -> PathId {
        self.intern_step(Some(parent), step)
    }

    fn intern_step(&mut self, parent: Option<PathId>, step: PathStep) -> PathId {
        if let Some(&p) = self.intern.get(&(parent, step)) {
            return p;
        }
        let id = PathId(u32::try_from(self.nodes.len()).expect("too many paths"));
        let depth = parent.map_or(0, |p| self.nodes[p.index()].depth + 1);
        self.nodes.push(PathNode {
            parent,
            step,
            depth,
        });
        self.children.push(Vec::new());
        if let Some(p) = parent {
            self.children[p.index()].push(id);
        }
        self.intern.insert((parent, step), id);
        id
    }

    /// Number of distinct paths.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether no path has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Parent path (`None` for the root path).
    #[inline]
    pub fn parent(&self, p: PathId) -> Option<PathId> {
        self.nodes[p.index()].parent
    }

    /// Last step of the path.
    #[inline]
    pub fn step(&self, p: PathId) -> PathStep {
        self.nodes[p.index()].step
    }

    /// Depth: 0 for the root path.
    #[inline]
    pub fn depth(&self, p: PathId) -> usize {
        self.nodes[p.index()].depth as usize
    }

    /// Child paths (the schema-tree edges used by the roll-up algorithm).
    #[inline]
    pub fn children(&self, p: PathId) -> &[PathId] {
        &self.children[p.index()]
    }

    /// Iterate over all interned paths in interning order (parents first).
    pub fn iter(&self) -> impl Iterator<Item = PathId> + '_ {
        (0..self.nodes.len()).map(|i| PathId(i as u32))
    }

    /// Definition 5: `le(a, b)` iff `b` is a prefix of `a` (including
    /// `a == b`). "`σ(o₁) ≤ σ(o₂)`" in the paper's notation.
    pub fn le(&self, a: PathId, b: PathId) -> bool {
        let target_depth = self.depth(b);
        let mut cur = a;
        while self.depth(cur) > target_depth {
            cur = self.parent(cur).expect("depth > 0 implies a parent");
        }
        cur == b
    }

    /// Strict version of [`PathSummary::le`].
    pub fn lt(&self, a: PathId, b: PathId) -> bool {
        a != b && self.le(a, b)
    }

    /// Longest common prefix of two paths — the path of the meet of any
    /// two nodes with these paths (paper §3.1, first interpretation).
    pub fn common_prefix(&self, a: PathId, b: PathId) -> PathId {
        let mut x = a;
        let mut y = b;
        while self.depth(x) > self.depth(y) {
            x = self.parent(x).expect("deeper path has parent");
        }
        while self.depth(y) > self.depth(x) {
            y = self.parent(y).expect("deeper path has parent");
        }
        while x != y {
            x = self.parent(x).expect("paths share a root");
            y = self.parent(y).expect("paths share a root");
        }
        x
    }

    /// Render the path in the `a/b/@c` notation used throughout this repo
    /// (the paper's Figure 2 uses the same shape with different separators).
    pub fn display(&self, p: PathId, symbols: &SymbolTable) -> String {
        let mut steps = Vec::with_capacity(self.depth(p) + 1);
        let mut cur = Some(p);
        while let Some(c) = cur {
            steps.push(c);
            cur = self.parent(c);
        }
        let mut out = String::new();
        for (i, id) in steps.iter().rev().enumerate() {
            if i > 0 {
                out.push('/');
            }
            match self.step(*id) {
                PathStep::Element(s) => out.push_str(symbols.resolve(s)),
                PathStep::Attribute(s) => {
                    out.push('@');
                    out.push_str(symbols.resolve(s));
                }
                PathStep::Cdata => out.push_str("cdata"),
            }
        }
        out
    }

    /// Look up a path by its step names. `"@name"` selects an attribute
    /// step, `"cdata"` the cdata step, anything else an element step.
    /// Requires the exact vocabulary of `symbols` used at interning time.
    pub fn lookup_in(&self, steps: &[&str], symbols: &SymbolTable) -> Option<PathId> {
        let mut cur: Option<PathId> = None;
        for (i, name) in steps.iter().enumerate() {
            let step = if let Some(attr) = name.strip_prefix('@') {
                PathStep::Attribute(symbols.get(attr)?)
            } else if *name == "cdata" {
                PathStep::Cdata
            } else {
                PathStep::Element(symbols.get(name)?)
            };
            let found = if i == 0 {
                *self.intern.get(&(None, step))?
            } else {
                *self.intern.get(&(cur, step))?
            };
            cur = Some(found);
        }
        cur
    }

    /// Label of the last step, e.g. `article`, `@key` or `cdata`.
    pub fn last_label(&self, p: PathId, symbols: &SymbolTable) -> String {
        match self.step(p) {
            PathStep::Element(s) => symbols.resolve(s).to_owned(),
            PathStep::Attribute(s) => format!("@{}", symbols.resolve(s)),
            PathStep::Cdata => "cdata".to_owned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (PathSummary, SymbolTable, PathId, PathId, PathId, PathId) {
        let mut sym = SymbolTable::new();
        let bib = sym.intern("bib");
        let art = sym.intern("article");
        let year = sym.intern("year");
        let key = sym.intern("key");

        let mut ps = PathSummary::new();
        let p_bib = ps.intern_root(PathStep::Element(bib));
        let p_art = ps.intern_child(p_bib, PathStep::Element(art));
        let p_year = ps.intern_child(p_art, PathStep::Element(year));
        let p_key = ps.intern_child(p_art, PathStep::Attribute(key));
        (ps, sym, p_bib, p_art, p_year, p_key)
    }

    #[test]
    fn interning_is_idempotent() {
        let (mut ps, mut sym, p_bib, p_art, ..) = setup();
        let art = sym.intern("article");
        assert_eq!(ps.intern_child(p_bib, PathStep::Element(art)), p_art);
        assert_eq!(ps.len(), 4);
    }

    #[test]
    fn depths_count_from_zero() {
        let (ps, _, p_bib, p_art, p_year, _) = setup();
        assert_eq!(ps.depth(p_bib), 0);
        assert_eq!(ps.depth(p_art), 1);
        assert_eq!(ps.depth(p_year), 2);
    }

    #[test]
    fn le_matches_definition_5() {
        let (ps, _, p_bib, p_art, p_year, p_key) = setup();
        // σ(year) ≤ σ(article): article-path is a prefix of year-path.
        assert!(ps.le(p_year, p_art));
        assert!(ps.le(p_year, p_bib));
        assert!(ps.le(p_year, p_year)); // inclusive
        assert!(!ps.le(p_art, p_year));
        // Sibling steps are incomparable.
        assert!(!ps.le(p_year, p_key));
        assert!(!ps.le(p_key, p_year));
        // Strict version.
        assert!(ps.lt(p_year, p_art));
        assert!(!ps.lt(p_year, p_year));
    }

    #[test]
    fn common_prefix_is_the_schema_lca() {
        let (ps, _, p_bib, p_art, p_year, p_key) = setup();
        assert_eq!(ps.common_prefix(p_year, p_key), p_art);
        assert_eq!(ps.common_prefix(p_year, p_art), p_art);
        assert_eq!(ps.common_prefix(p_bib, p_year), p_bib);
        assert_eq!(ps.common_prefix(p_year, p_year), p_year);
    }

    #[test]
    fn display_renders_relation_names() {
        let (mut ps, sym, _, p_art, p_year, p_key) = setup();
        assert_eq!(ps.display(p_year, &sym), "bib/article/year");
        assert_eq!(ps.display(p_key, &sym), "bib/article/@key");
        let p_cd = ps.intern_child(p_art, PathStep::Cdata);
        assert_eq!(ps.display(p_cd, &sym), "bib/article/cdata");
        let _ = sym;
    }

    #[test]
    fn lookup_reverses_display() {
        let (mut ps, sym, _, p_art, p_year, p_key) = setup();
        let p_cd = ps.intern_child(p_art, PathStep::Cdata);
        assert_eq!(
            ps.lookup_in(&["bib", "article", "year"], &sym),
            Some(p_year)
        );
        assert_eq!(ps.lookup_in(&["bib", "article", "@key"], &sym), Some(p_key));
        assert_eq!(ps.lookup_in(&["bib", "article", "cdata"], &sym), Some(p_cd));
        assert_eq!(ps.lookup_in(&["bib", "nothere"], &sym), None);
        assert_eq!(ps.lookup_in(&["article"], &sym), None);
    }

    #[test]
    fn children_form_the_schema_tree() {
        let (ps, _, p_bib, p_art, p_year, p_key) = setup();
        assert_eq!(ps.children(p_bib), &[p_art]);
        assert_eq!(ps.children(p_art), &[p_year, p_key]);
        assert!(ps.children(p_year).is_empty());
    }

    #[test]
    fn last_label_names_steps() {
        let (ps, sym, p_bib, _, p_year, p_key) = setup();
        assert_eq!(ps.last_label(p_bib, &sym), "bib");
        assert_eq!(ps.last_label(p_year, &sym), "year");
        assert_eq!(ps.last_label(p_key, &sym), "@key");
    }
}
