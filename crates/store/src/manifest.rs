//! The forest manifest: a versioned catalog file naming N corpora.
//!
//! The ROADMAP's forest-of-documents item needs exactly one artifact
//! beyond the PR-4 snapshot: a small, corruption-proof file that names
//! every corpus of a deployment and says where its snapshot lives, how
//! many shards it wants, and what the snapshot bytes must hash to. A
//! catalog (`ncq-core::Catalog`) opens this file and materializes one
//! engine per entry; the scatter/gather layer then addresses
//! `(corpus, shard)` pairs instead of assuming one document per
//! process.
//!
//! # Layout (manifest version 2)
//!
//! ```text
//! offset 0   magic   b"NCQFRST\0"                    8 bytes
//!        8   manifest version (u32 LE)               4 bytes
//!       12   checksum64 of the body (u64 LE)         8 bytes
//!       20   body:
//!              corpus count (u32) · default corpus index (u32)
//!              per corpus:
//!                name (len-prefixed str)
//!                snapshot path (len-prefixed str)
//!                shard count (u32)
//!                snapshot layout version (u32)
//!                snapshot checksum64 (u64)
//!                replica endpoint count (u32)          [v2]
//!                per endpoint: host:port (str)         [v2]
//! ```
//!
//! Version 1 manifests (no endpoint lists) still load — every entry
//! gets an empty endpoint list, meaning "serve this corpus
//! in-process". A corpus *with* endpoints is served through
//! `ncq-core`'s `RemoteBackend`: the snapshot path stays the
//! coordinator's local resolver copy, and the endpoints name the
//! replica engines that execute search/meet remotely.
//!
//! The same corruption discipline as [`crate::snapshot`]: every failure
//! mode is a typed [`ManifestError`], never a panic — bad magic, a
//! version this build does not read, truncation anywhere, a flipped
//! bit (the body checksum), duplicate or malformed corpus names, a
//! default index out of range. The per-entry snapshot checksum lets the
//! catalog detect a swapped or bit-rotted snapshot *file* before
//! decoding it, and the recorded layout version makes a stale manifest
//! (pointing at snapshots of another era) fail with a version message
//! instead of a decode error.
//!
//! Snapshot paths are stored verbatim; relative paths are resolved
//! against the manifest file's directory ([`Manifest::resolve`]), so a
//! manifest and its snapshots move between machines as one directory.

use crate::snapshot::{checksum64, SectionBuf, SectionCursor, SnapshotError, SNAPSHOT_MAGIC};
use std::fmt;
use std::path::{Path, PathBuf};

/// The 8-byte manifest magic.
pub const MANIFEST_MAGIC: [u8; 8] = *b"NCQFRST\0";

/// Current manifest layout version. Bump on any layout change.
pub const MANIFEST_VERSION: u32 = 2;

/// Oldest manifest layout version this build still reads (v1 entries
/// load with empty endpoint lists).
pub const MANIFEST_MIN_VERSION: u32 = 1;

/// Typed manifest failures. Loading never panics on malformed input.
#[derive(Debug)]
pub enum ManifestError {
    /// The underlying file could not be read or written.
    Io(std::io::Error),
    /// The file does not start with [`MANIFEST_MAGIC`].
    BadMagic,
    /// The manifest layout version is not the one this build reads.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// The file ends before the advertised structure does.
    Truncated {
        /// What was being read when the bytes ran out.
        context: &'static str,
    },
    /// The body does not match the header checksum.
    ChecksumMismatch,
    /// A checksum-valid body decodes to inconsistent data.
    Corrupt {
        /// What failed to validate.
        context: &'static str,
    },
    /// A corpus name is not a query-dialect word (see
    /// [`validate_corpus_name`]) — names are `from corpus(name)`
    /// arguments, protocol verb tokens and cache-key components, so
    /// they must stay single unambiguous identifiers.
    InvalidName {
        /// The offending name.
        name: String,
    },
    /// The same corpus name appears twice.
    DuplicateCorpus {
        /// The duplicated name.
        name: String,
    },
    /// A replica endpoint is not a `host:port` pair (see
    /// [`validate_endpoint`]).
    InvalidEndpoint {
        /// The offending endpoint.
        endpoint: String,
    },
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManifestError::Io(e) => write!(f, "manifest io error: {e}"),
            ManifestError::BadMagic => write!(f, "not a forest manifest (bad magic)"),
            ManifestError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported manifest version {found} (this build reads {supported})"
            ),
            ManifestError::Truncated { context } => {
                write!(f, "manifest truncated while reading {context}")
            }
            ManifestError::ChecksumMismatch => write!(f, "manifest body failed its checksum"),
            ManifestError::Corrupt { context } => {
                write!(f, "manifest payload is corrupt: {context}")
            }
            ManifestError::InvalidName { name } => write!(
                f,
                "corpus name {name:?} must be a query-dialect word (letter or _ first, \
                 then letters, digits, _ - . :)"
            ),
            ManifestError::DuplicateCorpus { name } => {
                write!(f, "corpus {name:?} appears more than once")
            }
            ManifestError::InvalidEndpoint { endpoint } => write!(
                f,
                "replica endpoint {endpoint:?} must be host:port with a non-empty host \
                 and a numeric port"
            ),
        }
    }
}

impl std::error::Error for ManifestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ManifestError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ManifestError {
    fn from(e: std::io::Error) -> ManifestError {
        ManifestError::Io(e)
    }
}

/// Cursor failures become manifest failures: the bounds-checked readers
/// of [`SectionCursor`] report `Corrupt`/`Truncated`, which keep their
/// context here.
impl From<SnapshotError> for ManifestError {
    fn from(e: SnapshotError) -> ManifestError {
        match e {
            SnapshotError::Truncated { context, .. } => ManifestError::Truncated { context },
            SnapshotError::Corrupt { context } => ManifestError::Corrupt { context },
            _ => ManifestError::Corrupt {
                context: "manifest body",
            },
        }
    }
}

/// Whether `name` can name a corpus. The rule is exactly the query
/// lexer's *word* shape — first byte alphabetic, `_` or multi-byte
/// UTF-8; remaining bytes alphanumeric, `_`, `-`, `.`, `:` or
/// multi-byte UTF-8 — so every valid corpus name is addressable as
/// `from corpus(name)` and round-trips through the canonical query
/// printer. This also excludes whitespace, NUL and all other control
/// characters, keeping names single unambiguous protocol tokens and
/// collision-free term-cache key prefixes. Shared by the manifest
/// decoder, `ncq-core::Catalog` and the server verbs.
pub fn validate_corpus_name(name: &str) -> Result<(), ManifestError> {
    let bytes = name.as_bytes();
    let valid = match bytes.first() {
        None => false,
        Some(&first) => {
            (first.is_ascii_alphabetic() || first == b'_' || first >= 0x80)
                && bytes[1..].iter().all(|&b| {
                    b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':') || b >= 0x80
                })
        }
    };
    if valid {
        Ok(())
    } else {
        Err(ManifestError::InvalidName {
            name: name.to_owned(),
        })
    }
}

/// Whether `endpoint` can name a replica. The rule: a `host:port`
/// pair whose host is non-empty without whitespace, NUL or other
/// control characters, and whose port parses as a non-zero u16.
/// (Bracketed IPv6 literals like `[::1]:9201` pass — the split is on
/// the *last* colon.) Resolution to a socket address happens at
/// connect time; this check only keeps manifests from carrying tokens
/// the router could never dial.
pub fn validate_endpoint(endpoint: &str) -> Result<(), ManifestError> {
    let invalid = || ManifestError::InvalidEndpoint {
        endpoint: endpoint.to_owned(),
    };
    let (host, port) = endpoint.rsplit_once(':').ok_or_else(invalid)?;
    if host.is_empty()
        || host
            .bytes()
            .any(|b| b.is_ascii_whitespace() || b.is_ascii_control())
    {
        return Err(invalid());
    }
    match port.parse::<u16>() {
        Ok(p) if p != 0 => Ok(()),
        _ => Err(invalid()),
    }
}

/// One corpus of a forest deployment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Corpus name — the routing key of `FROM corpus(name)` queries and
    /// the `USE` verb.
    pub name: String,
    /// Snapshot path as stored (relative paths resolve against the
    /// manifest's directory).
    pub snapshot: String,
    /// Requested shard count (1 = single-process engine).
    pub shards: usize,
    /// The snapshot's layout version as recorded at manifest build
    /// time; a catalog refuses entries whose version it cannot read.
    pub layout_version: u32,
    /// `checksum64` of the whole snapshot file, so a swapped or rotted
    /// snapshot is detected before decoding.
    pub checksum: u64,
    /// Replica engine endpoints (`host:port`), in failover-routing
    /// order. Empty = serve in-process from the snapshot (the v1
    /// behaviour); non-empty = proxy search/meet to these replicas,
    /// keeping the snapshot as the coordinator's local resolver copy.
    pub endpoints: Vec<String>,
}

impl ManifestEntry {
    /// Describe an existing snapshot file: read it, record its layout
    /// version and checksum. The snapshot itself is not decoded.
    pub fn describe(
        name: impl Into<String>,
        snapshot_path: impl AsRef<Path>,
        shards: usize,
    ) -> Result<ManifestEntry, ManifestError> {
        let name = name.into();
        validate_corpus_name(&name)?;
        let path = snapshot_path.as_ref();
        let bytes = std::fs::read(path)?;
        if bytes.len() < 12 || bytes[..8] != SNAPSHOT_MAGIC {
            return Err(ManifestError::Corrupt {
                context: "described file is not a snapshot",
            });
        }
        let layout_version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        Ok(ManifestEntry {
            name,
            snapshot: path.to_string_lossy().into_owned(),
            shards: shards.max(1),
            layout_version,
            checksum: checksum64(&bytes),
            endpoints: Vec::new(),
        })
    }

    /// Attach replica endpoints (builder style), validating each.
    pub fn with_endpoints(
        mut self,
        endpoints: impl IntoIterator<Item = impl Into<String>>,
    ) -> Result<ManifestEntry, ManifestError> {
        let endpoints: Vec<String> = endpoints.into_iter().map(Into::into).collect();
        for e in &endpoints {
            validate_endpoint(e)?;
        }
        self.endpoints = endpoints;
        Ok(self)
    }
}

/// A versioned, checksummed catalog of corpora.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    /// The corpora, in catalog order (cross-corpus answers concatenate
    /// in this order).
    pub corpora: Vec<ManifestEntry>,
    /// Index of the default corpus (the one unqualified queries hit).
    pub default: usize,
}

impl Manifest {
    /// An empty manifest (push entries, then save).
    pub fn new() -> Manifest {
        Manifest::default()
    }

    /// Append an entry, enforcing name validity, uniqueness and
    /// endpoint shape.
    pub fn push(&mut self, entry: ManifestEntry) -> Result<(), ManifestError> {
        validate_corpus_name(&entry.name)?;
        if self.corpora.iter().any(|e| e.name == entry.name) {
            return Err(ManifestError::DuplicateCorpus { name: entry.name });
        }
        for e in &entry.endpoints {
            validate_endpoint(e)?;
        }
        self.corpora.push(entry);
        Ok(())
    }

    /// The entry named `name`, if any.
    pub fn entry(&self, name: &str) -> Option<&ManifestEntry> {
        self.corpora.iter().find(|e| e.name == name)
    }

    /// Resolve an entry's snapshot path against the manifest location:
    /// absolute paths pass through, relative ones join the manifest's
    /// directory.
    pub fn resolve(manifest_path: &Path, entry: &ManifestEntry) -> PathBuf {
        let p = Path::new(&entry.snapshot);
        if p.is_absolute() {
            p.to_path_buf()
        } else {
            manifest_path.parent().unwrap_or(Path::new(".")).join(p)
        }
    }

    /// Render the framed manifest bytes (deterministic).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut body = Vec::new();
        {
            let mut b = SectionBuf::over(&mut body);
            b.put_u32(self.corpora.len() as u32);
            b.put_u32(self.default as u32);
            for e in &self.corpora {
                b.put_str(&e.name);
                b.put_str(&e.snapshot);
                b.put_u32(e.shards as u32);
                b.put_u32(e.layout_version);
                b.put_u64(e.checksum);
                b.put_u32(e.endpoints.len() as u32);
                for endpoint in &e.endpoints {
                    b.put_str(endpoint);
                }
            }
        }
        let mut out = Vec::with_capacity(20 + body.len());
        out.extend_from_slice(&MANIFEST_MAGIC);
        out.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
        out.extend_from_slice(&checksum64(&body).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Parse and validate manifest bytes: magic, version, body
    /// checksum, then every structural invariant (non-empty, default in
    /// range, valid unique names, positive shard counts, no trailing
    /// garbage).
    pub fn from_bytes(bytes: &[u8]) -> Result<Manifest, ManifestError> {
        if bytes.len() < 8 {
            return Err(ManifestError::Truncated { context: "magic" });
        }
        if bytes[..8] != MANIFEST_MAGIC {
            return Err(ManifestError::BadMagic);
        }
        if bytes.len() < 20 {
            return Err(ManifestError::Truncated { context: "header" });
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if !(MANIFEST_MIN_VERSION..=MANIFEST_VERSION).contains(&version) {
            return Err(ManifestError::UnsupportedVersion {
                found: version,
                supported: MANIFEST_VERSION,
            });
        }
        let checksum = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
        let body = &bytes[20..];
        if checksum64(body) != checksum {
            return Err(ManifestError::ChecksumMismatch);
        }
        let mut c = SectionCursor::new(body);
        let count = c.get_u32("corpus count")? as usize;
        if count == 0 {
            return Err(ManifestError::Corrupt {
                context: "manifest names no corpora",
            });
        }
        let default = c.get_u32("default corpus index")? as usize;
        if default >= count {
            return Err(ManifestError::Corrupt {
                context: "default corpus index out of range",
            });
        }
        // Clamped: an entry spans ≥ 24 payload bytes, so a lying count
        // fails typed instead of aborting on a huge pre-allocation.
        let mut corpora = Vec::with_capacity(count.min(c.remaining() / 24 + 1));
        for _ in 0..count {
            let name = c.get_str("corpus name")?.to_owned();
            validate_corpus_name(&name)?;
            if corpora.iter().any(|e: &ManifestEntry| e.name == name) {
                return Err(ManifestError::DuplicateCorpus { name });
            }
            let snapshot = c.get_str("corpus snapshot path")?.to_owned();
            let shards = c.get_u32("corpus shard count")? as usize;
            if shards == 0 {
                return Err(ManifestError::Corrupt {
                    context: "corpus shard count is zero",
                });
            }
            let layout_version = c.get_u32("corpus layout version")?;
            let checksum = c.get_u64("corpus snapshot checksum")?;
            // v1 entries carry no endpoint list: in-process serving.
            let mut endpoints = Vec::new();
            if version >= 2 {
                let n = c.get_u32("corpus endpoint count")? as usize;
                endpoints.reserve(n.min(c.remaining() / 4 + 1));
                for _ in 0..n {
                    let endpoint = c.get_str("corpus replica endpoint")?.to_owned();
                    validate_endpoint(&endpoint)?;
                    endpoints.push(endpoint);
                }
            }
            corpora.push(ManifestEntry {
                name,
                snapshot,
                shards,
                layout_version,
                checksum,
                endpoints,
            });
        }
        if !c.at_end() {
            return Err(ManifestError::Corrupt {
                context: "trailing bytes after the last corpus",
            });
        }
        Ok(Manifest { corpora, default })
    }

    /// Write the manifest to `path` (atomic temp-file + rename, like
    /// snapshot saves). The temp name is unique per process *and*
    /// write, so concurrent saves — even to the same destination —
    /// never scribble over each other's staging file; the last rename
    /// wins.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ManifestError> {
        static WRITE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let path = path.as_ref();
        let bytes = self.to_bytes();
        let seq = WRITE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let tmp = path.with_extension(format!("tmp-manifest-{}-{seq}", std::process::id()));
        std::fs::write(&tmp, &bytes)?;
        if let Err(e) = std::fs::rename(&tmp, path) {
            std::fs::remove_file(&tmp).ok();
            return Err(e.into());
        }
        Ok(())
    }

    /// Read and validate a manifest file.
    pub fn load(path: impl AsRef<Path>) -> Result<Manifest, ManifestError> {
        Manifest::from_bytes(&std::fs::read(path.as_ref())?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        let mut m = Manifest::new();
        for (name, path, shards, endpoints) in [
            ("dblp", "dblp.ncq", 1usize, vec![]),
            (
                "multimedia",
                "snapshots/mm.ncq",
                4,
                vec!["127.0.0.1:9201".to_owned(), "replica-b:9201".to_owned()],
            ),
            ("deep", "/abs/deep.ncq", 2, vec![]),
        ] {
            m.push(ManifestEntry {
                name: name.into(),
                snapshot: path.into(),
                shards,
                layout_version: crate::snapshot::SNAPSHOT_VERSION,
                checksum: 0x1234_5678_9abc_def0 ^ shards as u64,
                endpoints,
            })
            .unwrap();
        }
        m.default = 1;
        m
    }

    #[test]
    fn round_trip_preserves_every_field() {
        let m = sample();
        let loaded = Manifest::from_bytes(&m.to_bytes()).unwrap();
        assert_eq!(loaded, m);
        assert_eq!(loaded.entry("deep").unwrap().shards, 2);
        assert!(loaded.entry("absent").is_none());
    }

    #[test]
    fn bytes_are_deterministic() {
        assert_eq!(sample().to_bytes(), sample().to_bytes());
    }

    #[test]
    fn truncation_at_every_prefix_is_typed_never_a_panic() {
        let bytes = sample().to_bytes();
        for len in 0..bytes.len() {
            assert!(
                Manifest::from_bytes(&bytes[..len]).is_err(),
                "prefix of {len} bytes decoded"
            );
        }
    }

    #[test]
    fn every_byte_flip_is_typed_never_a_panic() {
        let bytes = sample().to_bytes();
        for at in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[at] ^= 0x40;
            // Any single flip must be rejected: magic, version, the
            // checksum field itself, or the body (caught by the
            // checksum). No flip may decode successfully — a flipped
            // body byte that somehow passed would silently reroute
            // corpora.
            assert!(
                Manifest::from_bytes(&corrupt).is_err(),
                "flip at {at} went undetected"
            );
        }
    }

    #[test]
    fn header_failures_are_distinct() {
        let bytes = sample().to_bytes();
        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xFF;
        assert!(matches!(
            Manifest::from_bytes(&bad_magic),
            Err(ManifestError::BadMagic)
        ));
        let mut bad_version = bytes.clone();
        bad_version[8] = 99;
        assert!(matches!(
            Manifest::from_bytes(&bad_version),
            Err(ManifestError::UnsupportedVersion { found: 99, .. })
        ));
        let mut flipped_body = bytes.clone();
        let last = flipped_body.len() - 1;
        flipped_body[last] ^= 0x01;
        assert!(matches!(
            Manifest::from_bytes(&flipped_body),
            Err(ManifestError::ChecksumMismatch)
        ));
    }

    #[test]
    fn duplicate_names_are_typed() {
        let mut m = sample();
        // `push` refuses up front …
        assert!(matches!(
            m.push(ManifestEntry {
                name: "dblp".into(),
                snapshot: "other.ncq".into(),
                shards: 1,
                layout_version: 1,
                checksum: 0,
                endpoints: vec![],
            }),
            Err(ManifestError::DuplicateCorpus { .. })
        ));
        // … and a hand-built duplicate fails at decode.
        m.corpora.push(ManifestEntry {
            name: "dblp".into(),
            snapshot: "other.ncq".into(),
            shards: 1,
            layout_version: 1,
            checksum: 0,
            endpoints: vec![],
        });
        assert!(matches!(
            Manifest::from_bytes(&m.to_bytes()),
            Err(ManifestError::DuplicateCorpus { name }) if name == "dblp"
        ));
    }

    #[test]
    fn malformed_names_are_typed() {
        // Whitespace/control forms, plus names the query lexer could
        // never address as `from corpus(name)`: leading digits,
        // punctuation that closes or splits the clause.
        for bad in [
            "",
            "two words",
            "tab\tname",
            "nul\0name",
            "nl\nname",
            "2024",
            "a)b",
            "x,y",
            "*",
            "semi;colon",
        ] {
            assert!(
                matches!(
                    validate_corpus_name(bad),
                    Err(ManifestError::InvalidName { .. })
                ),
                "{bad:?} accepted"
            );
            let mut m = sample();
            m.corpora[0].name = bad.to_owned();
            assert!(
                Manifest::from_bytes(&m.to_bytes()).is_err(),
                "{bad:?} decoded"
            );
        }
        assert!(validate_corpus_name("dblp-2026.v1").is_ok());
    }

    /// Render `m` in the *version 1* layout (no endpoint lists) — the
    /// bytes a pre-endpoint build would have written.
    fn to_v1_bytes(m: &Manifest) -> Vec<u8> {
        let mut body = Vec::new();
        {
            let mut b = SectionBuf::over(&mut body);
            b.put_u32(m.corpora.len() as u32);
            b.put_u32(m.default as u32);
            for e in &m.corpora {
                b.put_str(&e.name);
                b.put_str(&e.snapshot);
                b.put_u32(e.shards as u32);
                b.put_u32(e.layout_version);
                b.put_u64(e.checksum);
            }
        }
        let mut out = Vec::with_capacity(20 + body.len());
        out.extend_from_slice(&MANIFEST_MAGIC);
        out.extend_from_slice(&1u32.to_le_bytes());
        out.extend_from_slice(&checksum64(&body).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    #[test]
    fn version_1_manifests_still_load_with_empty_endpoints() {
        let mut m = sample();
        // Drop the endpoints the v1 layout cannot carry; everything
        // else must round-trip through the old bytes unchanged.
        for e in &mut m.corpora {
            e.endpoints.clear();
        }
        let loaded = Manifest::from_bytes(&to_v1_bytes(&m)).unwrap();
        assert_eq!(loaded, m);
        assert!(loaded.corpora.iter().all(|e| e.endpoints.is_empty()));
        // The v1 corruption discipline holds through the compat path.
        let bytes = to_v1_bytes(&m);
        for len in 0..bytes.len() {
            assert!(Manifest::from_bytes(&bytes[..len]).is_err());
        }
        // Versions outside [min, current] stay refused.
        let mut future = sample().to_bytes();
        future[8] = 99;
        assert!(matches!(
            Manifest::from_bytes(&future),
            Err(ManifestError::UnsupportedVersion { found: 99, .. })
        ));
        let mut zero = sample().to_bytes();
        zero[8] = 0;
        assert!(matches!(
            Manifest::from_bytes(&zero),
            Err(ManifestError::UnsupportedVersion { found: 0, .. })
        ));
    }

    #[test]
    fn endpoints_round_trip_and_validate() {
        let m = sample();
        let loaded = Manifest::from_bytes(&m.to_bytes()).unwrap();
        assert_eq!(
            loaded.entry("multimedia").unwrap().endpoints,
            vec!["127.0.0.1:9201", "replica-b:9201"]
        );
        assert!(loaded.entry("dblp").unwrap().endpoints.is_empty());
        // The builder validates…
        let entry = ManifestEntry {
            name: "x".into(),
            snapshot: "x.ncq".into(),
            shards: 1,
            layout_version: 1,
            checksum: 0,
            endpoints: vec![],
        };
        assert!(entry
            .clone()
            .with_endpoints(["localhost:9201", "[::1]:9201"])
            .is_ok());
        for bad in [
            "",
            "noport",
            "host:",
            ":9201",
            "host:0",
            "host:99999",
            "host:port",
            "ho st:1",
        ] {
            assert!(
                matches!(
                    entry.clone().with_endpoints([bad]),
                    Err(ManifestError::InvalidEndpoint { .. })
                ),
                "{bad:?} accepted by builder"
            );
            // …push validates…
            let mut m2 = Manifest::new();
            let mut e2 = entry.clone();
            e2.endpoints = vec![bad.to_owned()];
            assert!(m2.push(e2).is_err(), "{bad:?} accepted by push");
            // …and a hand-built bad endpoint fails at decode.
            let mut m3 = sample();
            m3.corpora[1].endpoints[0] = bad.to_owned();
            assert!(
                matches!(
                    Manifest::from_bytes(&m3.to_bytes()),
                    Err(ManifestError::InvalidEndpoint { .. })
                ),
                "{bad:?} decoded"
            );
        }
    }

    #[test]
    fn structural_invariants_are_typed() {
        // Empty manifest.
        let empty = Manifest::new();
        assert!(matches!(
            Manifest::from_bytes(&empty.to_bytes()),
            Err(ManifestError::Corrupt { .. })
        ));
        // Default index out of range.
        let mut m = sample();
        m.default = 3;
        assert!(matches!(
            Manifest::from_bytes(&m.to_bytes()),
            Err(ManifestError::Corrupt { .. })
        ));
        // Zero shard count.
        let mut m = sample();
        m.corpora[2].shards = 0;
        assert!(matches!(
            Manifest::from_bytes(&m.to_bytes()),
            Err(ManifestError::Corrupt { .. })
        ));
    }

    #[test]
    fn save_load_round_trips_through_a_file_and_resolves_paths() {
        let dir = std::env::temp_dir().join("ncq-manifest-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("forest.ncqm");
        let m = sample();
        m.save(&path).unwrap();
        let loaded = Manifest::load(&path).unwrap();
        assert_eq!(loaded, m);
        // Relative entries resolve against the manifest dir; absolute
        // ones pass through.
        assert_eq!(
            Manifest::resolve(&path, loaded.entry("dblp").unwrap()),
            dir.join("dblp.ncq")
        );
        assert_eq!(
            Manifest::resolve(&path, loaded.entry("multimedia").unwrap()),
            dir.join("snapshots/mm.ncq")
        );
        assert_eq!(
            Manifest::resolve(&path, loaded.entry("deep").unwrap()),
            PathBuf::from("/abs/deep.ncq")
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn describe_reads_version_and_checksum_from_a_real_snapshot() {
        let dir = std::env::temp_dir().join("ncq-manifest-describe-test");
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("fig.ncq");
        let db = crate::MonetDb::from_document(&ncq_xml::parse("<bib><a>x</a></bib>").unwrap());
        db.save(&snap).unwrap();
        let entry = ManifestEntry::describe("fig", &snap, 1).unwrap();
        assert_eq!(entry.layout_version, crate::snapshot::SNAPSHOT_VERSION);
        assert_eq!(entry.checksum, checksum64(&std::fs::read(&snap).unwrap()));
        // A non-snapshot file is refused.
        let junk = dir.join("junk.bin");
        std::fs::write(&junk, b"not a snapshot").unwrap();
        assert!(matches!(
            ManifestEntry::describe("junk", &junk, 1),
            Err(ManifestError::Corrupt { .. })
        ));
        // A dangling path is a typed io error.
        assert!(matches!(
            ManifestEntry::describe("gone", dir.join("gone.ncq"), 1),
            Err(ManifestError::Io(_))
        ));
        for p in [&snap, &junk] {
            std::fs::remove_file(p).ok();
        }
    }
}
