//! # ncq-store — the Monet transform (physical data model)
//!
//! Implements Section 2 of Schmidt, Kersten & Windhouwer (ICDE 2001): XML
//! syntax trees are decomposed into **associations** (Definition 2) —
//! binary tuples `(oid, oid)`, `(oid, string)` and `(oid, int)` — and all
//! associations of the same **type** are stored together in one binary
//! relation. The type of an association `(·, o)` is the **path** `σ(o)`
//! (Definition 3): the sequence of labels from the root to `o`. The set of
//! all paths of a document is its **path summary**.
//!
//! This path-partitioned, fully decomposed storage model (the *Monet
//! transform*, Definition 4) is what makes the meet operator cheap:
//!
//! * `σ(o)` "comes for free by looking at the name of the relation" — here
//!   a dense `oid → PathId` array filled at bulk-load time;
//! * `parent(o)` is "basically a hash look-up" — here a dense `oid → Oid`
//!   array;
//! * the prefix order on paths (Definition 5) steers the meet algorithms so
//!   that no superfluous look-ups happen.
//!
//! ```
//! let doc = ncq_xml::parse("<bib><article><year>1999</year></article></bib>").unwrap();
//! let db = ncq_store::MonetDb::from_document(&doc);
//! // The year's cdata node lives in relation bib/article/year/cdata:
//! let path = db
//!     .summary()
//!     .lookup_in(&["bib", "article", "year", "cdata"], db.symbols())
//!     .unwrap();
//! let (owner, text) = &db.strings_of(path)[0];
//! assert_eq!(&**text, "1999");
//! assert_eq!(db.relation_name(db.sigma(*owner)), "bib/article/year/cdata");
//! ```

pub mod index;
pub mod manifest;
pub mod mmap;
pub mod monet;
pub mod object;
pub mod oid;
pub mod path;
pub mod snapshot;
pub mod stats;

pub use index::MeetIndex;
pub use manifest::{
    validate_corpus_name, Manifest, ManifestEntry, ManifestError, MANIFEST_MAGIC, MANIFEST_VERSION,
};
pub use mmap::{
    mmap_disabled, section_name, Col, MappedSnapshot, Pod, SectionBufV3, SectionView,
    SnapshotArena, SnapshotWriterV3, VerifyMode,
};
pub use monet::MonetDb;
pub use object::ObjectView;
pub use oid::Oid;
pub use path::{PathId, PathStep, PathSummary};
pub use snapshot::{
    SectionBuf, SectionCursor, SnapshotError, SnapshotReader, SnapshotSource, SnapshotWriter,
    SNAPSHOT_LEGACY_MAX, SNAPSHOT_MAGIC, SNAPSHOT_VERSION, SNAPSHOT_VERSION_V1,
};
pub use stats::{DepthStats, PartitionStats, StoreStats};
