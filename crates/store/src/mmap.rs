//! Zero-copy snapshot layout **v3**: the mapped container, the aligned
//! writer, and the borrowed-or-owned column machinery.
//!
//! # Why
//!
//! The v1 loader ([`crate::snapshot::SnapshotReader`]) materializes
//! every section and rebuilds derived state — depths, preorder
//! intervals, sibling ranks, RMQ tables — in linear passes. That is
//! 5–8× faster than parse+build, but a replica cold start or a
//! `SNAPSHOT LOAD` hot swap still pays O(n) before the first query.
//! Layout v3 stores every array in its **final in-memory form**,
//! 64-byte aligned, so opening a snapshot is `mmap` + header/table
//! checksum + pointer fixup: the engine serves straight out of the
//! page cache, one physical copy shared across processes, and the
//! first byte of a multi-gigabyte corpus is query-able in
//! microseconds.
//!
//! # Layout (version 3)
//!
//! ```text
//! offset  0  magic   b"NCQSNAP\0"                      8 bytes
//!         8  layout version = 3 (u32 LE)               4 bytes
//!        12  section count  (u32 LE)                   4 bytes
//!        16  table checksum64 over the table bytes     8 bytes
//!        24  section table: per section               32 bytes each
//!              id (u32) · reserved (u32, zero) ·
//!              offset (u64) · len (u64) · checksum64 (u64)
//!         …  section payloads, each starting at a 64-byte-aligned
//!            offset, zero-padded to the next 64-byte boundary; the
//!            payloads are packed back to back (offset k+1 = padded
//!            end of k) and the file ends at the last padded end.
//! ```
//!
//! Scalars are little-endian; array payloads are raw native-endian
//! element runs (the format is only defined for little-endian hosts,
//! which every supported target is). Each section checksum covers its
//! **padded** extent, so together with the table checksum every byte
//! of the file after the header is covered by exactly one checksum.
//!
//! # Verification policy
//!
//! The header, section table, and the file length against every
//! advertised section extent are always validated at open — a
//! truncated or table-corrupt file fails typed before any payload
//! pointer is formed (no SIGBUS-prone blind dereference). Payload
//! checksums are **lazy** by default: sections the decoder
//! materializes (symbols, paths, strings, the full-text vocabulary,
//! the partition map) are verified when decoded, while the large
//! final-form arrays served as mapped views (columns, meet index,
//! stats prefix sums) defer their checksum so first touch stays at
//! page-fault cost. `NCQ_SNAPSHOT_VERIFY=eager` (or
//! [`VerifyMode::Eager`], which the forest catalog uses in place of
//! the manifest's whole-file checksum) verifies every section at
//! open. Under lazy verification a bit flip in an unverified array
//! can only produce wrong answers or a bounds-check panic — all views
//! are ordinary checked slices, never undefined behaviour.
//!
//! `NCQ_NO_MMAP=1` (or a non-unix target) routes opens through an
//! owned, 64-byte-aligned heap copy of the file — the same views over
//! the same layout, minus the shared page cache.

use crate::snapshot::{checksum64, SnapshotError, SNAPSHOT_MAGIC};
use std::path::Path;
use std::ptr::NonNull;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Round up to the next 64-byte boundary.
#[inline]
pub const fn align64(n: usize) -> usize {
    (n + 63) & !63
}

/// Section payload alignment (one cache line; also the alignment of
/// every array start inside a section).
pub const SECTION_ALIGN: usize = 64;

/// Human-readable section name for error context, so a
/// `ChecksumMismatch` names what rotted instead of a bare id.
pub fn section_name(id: u32) -> &'static str {
    match id {
        crate::snapshot::section::SYMBOLS => "symbols",
        crate::snapshot::section::PATHS => "paths",
        crate::snapshot::section::COLUMNS => "columns",
        crate::snapshot::section::STRINGS => "strings",
        crate::snapshot::section::MEET_INDEX => "meet-index",
        crate::snapshot::section::STATS => "stats",
        crate::snapshot::section::FULLTEXT => "fulltext",
        crate::snapshot::section::PARTITION => "partition",
        _ => "unknown-section",
    }
}

/// Whether snapshot opens should avoid `mmap` and fall back to the
/// owned-copy path: always on non-unix targets, or when the
/// `NCQ_NO_MMAP` environment switch is set (truthy) — the knob the CI
/// mmap-on/off matrix flips, mirroring `NCQ_SIMD`.
pub fn mmap_disabled() -> bool {
    if !cfg!(unix) {
        return true;
    }
    std::env::var("NCQ_NO_MMAP").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// When payload checksums are verified. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyMode {
    /// Header + table at open; payload sections on first decode of the
    /// materialized sections only (the default).
    Lazy,
    /// Every section checksum at open (reads every page once).
    Eager,
}

impl VerifyMode {
    /// `NCQ_SNAPSHOT_VERIFY=eager` upgrades the process default.
    pub fn from_env() -> VerifyMode {
        match std::env::var("NCQ_SNAPSHOT_VERIFY").as_deref() {
            Ok("eager") => VerifyMode::Eager,
            _ => VerifyMode::Lazy,
        }
    }
}

// ----- plain-old-data element types -----

/// Element types that may be viewed directly over snapshot bytes.
///
/// # Safety
///
/// Implementors guarantee: no padding bytes, every bit pattern is a
/// valid value, size is a multiple of alignment, and alignment divides
/// [`SECTION_ALIGN`]. `repr(transparent)` newtypes over such a type and
/// `repr(C)` structs of such fields qualify.
pub unsafe trait Pod: Copy + Send + Sync + 'static {}

// SAFETY: primitive integers are padding-free and bit-pattern-complete.
unsafe impl Pod for u8 {}
// SAFETY: as above.
unsafe impl Pod for u32 {}
// SAFETY: as above.
unsafe impl Pod for u64 {}
// SAFETY: `Oid` is `repr(transparent)` over `u32` (asserted below).
unsafe impl Pod for crate::oid::Oid {}
// SAFETY: `PathId` is `repr(transparent)` over `u32` (asserted below).
unsafe impl Pod for crate::path::PathId {}

// Compile-time layout asserts: the zero-copy views cast raw snapshot
// bytes to these element types, so any layout drift must fail the
// build, not corrupt a mapped read.
const _: () = {
    assert!(std::mem::size_of::<crate::oid::Oid>() == 4);
    assert!(std::mem::align_of::<crate::oid::Oid>() == 4);
    assert!(std::mem::size_of::<crate::path::PathId>() == 4);
    assert!(std::mem::align_of::<crate::path::PathId>() == 4);
};

/// View a byte slice as `&[T]`; `None` on misalignment or a length
/// that is not a whole number of elements.
fn cast_slice<T: Pod>(bytes: &[u8]) -> Option<&[T]> {
    let size = std::mem::size_of::<T>();
    if size == 0 || !bytes.len().is_multiple_of(size) {
        return None;
    }
    if !(bytes.as_ptr() as usize).is_multiple_of(std::mem::align_of::<T>()) {
        return None;
    }
    // SAFETY: alignment and length were just checked; `T: Pod` makes
    // every bit pattern a valid `T`, and the returned lifetime borrows
    // the input bytes.
    Some(unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<T>(), bytes.len() / size) })
}

/// View a `Pod` slice as raw bytes (the writer's array emitter).
fn as_bytes<T: Pod>(vals: &[T]) -> &[u8] {
    // SAFETY: `T: Pod` has no padding, so every byte of the slice is
    // initialized; the lifetime borrows the input.
    unsafe { std::slice::from_raw_parts(vals.as_ptr().cast::<u8>(), std::mem::size_of_val(vals)) }
}

// ----- the arena: one mapped or owned allocation per snapshot -----

#[cfg(unix)]
mod sys {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

/// The backing memory of one open snapshot: either a read-only file
/// mapping (zero-copy, page cache shared across processes) or an
/// owned 64-byte-aligned heap copy (the `NCQ_NO_MMAP` / non-unix /
/// from-bytes fallback). Column views ([`Col`]) hold an `Arc` to the
/// arena, so the mapping lives exactly as long as any view over it.
pub struct SnapshotArena {
    ptr: NonNull<u8>,
    len: usize,
    backing: ArenaBacking,
}

enum ArenaBacking {
    Owned {
        layout: std::alloc::Layout,
    },
    #[cfg(unix)]
    Mapped,
}

// SAFETY: the arena is immutable after construction (PROT_READ mapping
// or a never-mutated heap copy); sharing &-references across threads
// is sound.
unsafe impl Send for SnapshotArena {}
// SAFETY: as above.
unsafe impl Sync for SnapshotArena {}

impl SnapshotArena {
    /// Copy `bytes` into a fresh 64-byte-aligned allocation. A `Vec`
    /// would only guarantee byte alignment — not enough to view u64
    /// arrays in place.
    pub fn from_bytes(bytes: &[u8]) -> SnapshotArena {
        if bytes.is_empty() {
            return SnapshotArena {
                ptr: NonNull::dangling(),
                len: 0,
                backing: ArenaBacking::Owned {
                    layout: std::alloc::Layout::from_size_align(0, SECTION_ALIGN)
                        .expect("static layout"),
                },
            };
        }
        let layout = std::alloc::Layout::from_size_align(bytes.len(), SECTION_ALIGN)
            .expect("snapshot length fits a layout");
        // SAFETY: layout has non-zero size (checked above).
        let raw = unsafe { std::alloc::alloc(layout) };
        let ptr = NonNull::new(raw).unwrap_or_else(|| std::alloc::handle_alloc_error(layout));
        // SAFETY: the fresh allocation holds at least `bytes.len()`
        // bytes and cannot overlap the source.
        unsafe {
            ptr.as_ptr()
                .copy_from_nonoverlapping(bytes.as_ptr(), bytes.len())
        };
        SnapshotArena {
            ptr,
            len: bytes.len(),
            backing: ArenaBacking::Owned { layout },
        }
    }

    /// Map `len` bytes of an open file read-only. `len` comes from a
    /// just-taken `stat`, and every section extent is validated
    /// against it before any pointer into the map is formed — a file
    /// shorter than its section table fails typed instead of faulting.
    /// (A truncation racing *after* the map is established is outside
    /// the integrity model, as with any mmap consumer.)
    #[cfg(unix)]
    pub fn map_file(file: &std::fs::File, len: usize) -> Result<SnapshotArena, SnapshotError> {
        use std::os::fd::AsRawFd;
        if len == 0 {
            // mmap rejects zero-length maps; an empty file is not a
            // snapshot anyway — surface the same typed error the
            // header parser would.
            return Err(SnapshotError::Truncated {
                context: "magic",
                offset: 0,
            });
        }
        // SAFETY: a fresh anonymous-address read-only private mapping
        // of a file descriptor we hold open; failure is checked below.
        let raw = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if raw as isize == -1 {
            return Err(SnapshotError::Io(std::io::Error::last_os_error()));
        }
        let ptr = NonNull::new(raw.cast::<u8>()).ok_or_else(|| {
            SnapshotError::Io(std::io::Error::other("mmap returned a null mapping"))
        })?;
        Ok(SnapshotArena {
            ptr,
            len,
            backing: ArenaBacking::Mapped,
        })
    }

    /// The full backing bytes.
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        // SAFETY: `ptr` covers `len` initialized, immutable bytes for
        // the arena's lifetime (dangling only when len == 0).
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }

    /// Whether this arena is a live file mapping (vs an owned copy).
    pub fn is_mapped(&self) -> bool {
        match self.backing {
            ArenaBacking::Owned { .. } => false,
            #[cfg(unix)]
            ArenaBacking::Mapped => true,
        }
    }
}

impl Drop for SnapshotArena {
    fn drop(&mut self) {
        match &self.backing {
            ArenaBacking::Owned { layout } => {
                if layout.size() > 0 {
                    // SAFETY: allocated with exactly this layout in
                    // `from_bytes`.
                    unsafe { std::alloc::dealloc(self.ptr.as_ptr(), *layout) };
                }
            }
            #[cfg(unix)]
            ArenaBacking::Mapped => {
                // SAFETY: mapped with exactly this base and length in
                // `map_file`; no view outlives the arena (they hold
                // the Arc keeping us alive).
                unsafe { sys::munmap(self.ptr.as_ptr().cast(), self.len) };
            }
        }
    }
}

impl std::fmt::Debug for SnapshotArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotArena")
            .field("len", &self.len)
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

// ----- Col: a column that is either owned or a view into the arena -----

/// A read-only typed column: either an owned boxed slice (built
/// databases, v1 loads, the no-mmap fallback) or a zero-copy view
/// into a [`SnapshotArena`] (v3 loads). Dereferences to `&[T]` with
/// no per-access branching — the pointer/length pair is resolved at
/// construction, and the backing enum only keeps the memory alive.
pub struct Col<T: Pod> {
    ptr: *const T,
    len: usize,
    backing: ColBacking<T>,
}

enum ColBacking<T> {
    Owned(Box<[T]>),
    Arena(Arc<SnapshotArena>),
}

// SAFETY: the data behind `ptr` is immutable and outlives the Col via
// its backing (owned box or arena Arc); `T: Pod` is Send + Sync.
unsafe impl<T: Pod> Send for Col<T> {}
// SAFETY: as above.
unsafe impl<T: Pod> Sync for Col<T> {}

impl<T: Pod> Col<T> {
    fn from_box(b: Box<[T]>) -> Col<T> {
        Col {
            ptr: if b.is_empty() {
                NonNull::dangling().as_ptr()
            } else {
                b.as_ptr()
            },
            len: b.len(),
            backing: ColBacking::Owned(b),
        }
    }

    /// A zero-copy view of `len` elements at `byte_offset` into the
    /// arena. Fails typed on misalignment or out-of-bounds — never a
    /// wild pointer.
    pub(crate) fn mapped(
        arena: &Arc<SnapshotArena>,
        byte_offset: usize,
        len: usize,
        context: &'static str,
    ) -> Result<Col<T>, SnapshotError> {
        let need = len
            .checked_mul(std::mem::size_of::<T>())
            .ok_or(SnapshotError::Corrupt { context })?;
        let end = byte_offset
            .checked_add(need)
            .ok_or(SnapshotError::Corrupt { context })?;
        if end > arena.bytes().len() {
            return Err(SnapshotError::Truncated {
                context,
                offset: byte_offset as u64,
            });
        }
        let bytes = &arena.bytes()[byte_offset..end];
        let slice: &[T] = cast_slice(bytes).ok_or(SnapshotError::Corrupt { context })?;
        Ok(Col {
            ptr: if slice.is_empty() {
                NonNull::dangling().as_ptr()
            } else {
                slice.as_ptr()
            },
            len: slice.len(),
            backing: ColBacking::Arena(Arc::clone(arena)),
        })
    }

    /// Whether this column borrows a mapped arena (vs owning its data).
    pub fn is_mapped(&self) -> bool {
        match &self.backing {
            ColBacking::Owned(_) => false,
            ColBacking::Arena(a) => a.is_mapped(),
        }
    }
}

impl<T: Pod> std::ops::Deref for Col<T> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        // SAFETY: `ptr`/`len` were derived from a valid slice at
        // construction and the backing keeps that memory alive.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl<T: Pod> From<Vec<T>> for Col<T> {
    fn from(v: Vec<T>) -> Col<T> {
        Col::from_box(v.into_boxed_slice())
    }
}

impl<T: Pod> Default for Col<T> {
    fn default() -> Col<T> {
        Col::from_box(Box::default())
    }
}

impl<T: Pod> Clone for Col<T> {
    fn clone(&self) -> Col<T> {
        match &self.backing {
            ColBacking::Owned(b) => Col::from_box(b.clone()),
            ColBacking::Arena(a) => Col {
                ptr: self.ptr,
                len: self.len,
                backing: ColBacking::Arena(Arc::clone(a)),
            },
        }
    }
}

impl<T: Pod + std::fmt::Debug> std::fmt::Debug for Col<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}

impl<T: Pod + PartialEq> PartialEq for Col<T> {
    fn eq(&self, other: &Col<T>) -> bool {
        **self == **other
    }
}

impl<T: Pod + Eq> Eq for Col<T> {}

// ----- v3 writer -----

/// Accumulates sections, then emits the aligned v3 container. Same
/// call-order contract as the v1 [`crate::snapshot::SnapshotWriter`]:
/// section order is the writer's call order and every codec keeps it
/// fixed, so v3 bytes are a pure function of the database.
#[derive(Default)]
pub struct SnapshotWriterV3 {
    sections: Vec<(u32, Vec<u8>)>,
}

/// Builder for one v3 section payload: little-endian scalars, raw
/// embedded payloads, and 64-byte-aligned typed arrays.
pub struct SectionBufV3<'a> {
    buf: &'a mut Vec<u8>,
}

impl SnapshotWriterV3 {
    /// An empty snapshot.
    pub fn new() -> SnapshotWriterV3 {
        SnapshotWriterV3::default()
    }

    /// Start (or panic on a duplicate of) section `id`.
    pub fn section(&mut self, id: u32) -> SectionBufV3<'_> {
        assert!(
            self.sections.iter().all(|&(existing, _)| existing != id),
            "duplicate snapshot section {id}"
        );
        self.sections.push((id, Vec::new()));
        let buf = &mut self.sections.last_mut().expect("just pushed").1;
        SectionBufV3 { buf }
    }

    /// Render the framed v3 snapshot: header, checksummed table,
    /// aligned zero-padded payloads.
    pub fn to_bytes(&self) -> Vec<u8> {
        let count = self.sections.len();
        let table_end = 24 + 32 * count;
        let payload_start = align64(table_end);
        let total: usize = payload_start
            + self
                .sections
                .iter()
                .map(|(_, b)| align64(b.len()))
                .sum::<usize>();
        let mut out = vec![0u8; total];
        out[..8].copy_from_slice(&SNAPSHOT_MAGIC);
        out[8..12].copy_from_slice(&3u32.to_le_bytes());
        out[12..16].copy_from_slice(&(count as u32).to_le_bytes());
        // Payloads first (the table checksums their padded extents).
        let mut offset = payload_start;
        let mut extents = Vec::with_capacity(count);
        for (_, payload) in &self.sections {
            out[offset..offset + payload.len()].copy_from_slice(payload);
            let padded = align64(payload.len());
            extents.push((offset, payload.len(), padded));
            offset += padded;
        }
        for (i, ((id, _), &(start, len, padded))) in
            self.sections.iter().zip(extents.iter()).enumerate()
        {
            let at = 24 + 32 * i;
            out[at..at + 4].copy_from_slice(&id.to_le_bytes());
            // bytes at+4..at+8 stay zero (reserved).
            out[at + 8..at + 16].copy_from_slice(&(start as u64).to_le_bytes());
            out[at + 16..at + 24].copy_from_slice(&(len as u64).to_le_bytes());
            let sum = checksum64(&out[start..start + padded]);
            out[at + 24..at + 32].copy_from_slice(&sum.to_le_bytes());
        }
        let table_sum = checksum64(&out[24..table_end]);
        out[16..24].copy_from_slice(&table_sum.to_le_bytes());
        out
    }

    /// Write the snapshot to `path` atomically (temp file + rename,
    /// unique per process and write — same contract as the v1 writer).
    pub fn write_to(&self, path: &Path) -> Result<(), SnapshotError> {
        static WRITE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let bytes = self.to_bytes();
        let seq = WRITE_SEQ.fetch_add(1, Ordering::Relaxed);
        let tmp = path.with_extension(format!("tmp-snapshot-{}-{seq}", std::process::id()));
        std::fs::write(&tmp, &bytes)?;
        if let Err(e) = std::fs::rename(&tmp, path) {
            std::fs::remove_file(&tmp).ok();
            return Err(e.into());
        }
        Ok(())
    }
}

impl SectionBufV3<'_> {
    /// Append a `u32` scalar, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64` scalar, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Embed a pre-encoded payload verbatim (the v1 codecs for the
    /// small replay-decoded sections are reused byte-identically).
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Append a typed array at the next 64-byte boundary (zero padding
    /// in between). The reader recomputes the same position from the
    /// element count, so arrays need no length prefix.
    pub fn put_col<T: Pod>(&mut self, vals: &[T]) {
        let aligned = align64(self.buf.len());
        self.buf.resize(aligned, 0);
        self.buf.extend_from_slice(as_bytes(vals));
    }
}

// ----- v3 reader -----

struct SectionEntry {
    id: u32,
    start: usize,
    len: usize,
    padded: usize,
    checksum: u64,
    verified: AtomicBool,
}

/// An open v3 snapshot: the arena plus the validated section table.
/// Section payloads are served as [`SectionView`] cursors whose typed
/// array reads produce zero-copy [`Col`] views.
pub struct MappedSnapshot {
    arena: Arc<SnapshotArena>,
    table: Vec<SectionEntry>,
}

impl MappedSnapshot {
    /// Open a v3 snapshot file with the process-default
    /// [`VerifyMode`]: mmap (or owned fallback), then header + table +
    /// extent validation.
    pub fn open(path: &Path) -> Result<MappedSnapshot, SnapshotError> {
        MappedSnapshot::open_with(path, VerifyMode::from_env())
    }

    /// [`MappedSnapshot::open`] with an explicit verification mode.
    pub fn open_with(path: &Path, mode: VerifyMode) -> Result<MappedSnapshot, SnapshotError> {
        #[cfg(unix)]
        {
            if !mmap_disabled() {
                let file = std::fs::File::open(path)?;
                let len = usize::try_from(file.metadata()?.len())
                    .map_err(|_| SnapshotError::Io(std::io::Error::other("file too large")))?;
                let arena = SnapshotArena::map_file(&file, len)?;
                return MappedSnapshot::from_arena(Arc::new(arena), mode);
            }
        }
        MappedSnapshot::from_owned_bytes(std::fs::read(path)?, mode)
    }

    /// Open from in-memory bytes (always the owned arena — the
    /// from-bytes entry points and the no-mmap fallback).
    pub fn from_owned_bytes(
        bytes: Vec<u8>,
        mode: VerifyMode,
    ) -> Result<MappedSnapshot, SnapshotError> {
        MappedSnapshot::from_arena(Arc::new(SnapshotArena::from_bytes(&bytes)), mode)
    }

    fn from_arena(
        arena: Arc<SnapshotArena>,
        mode: VerifyMode,
    ) -> Result<MappedSnapshot, SnapshotError> {
        let data = arena.bytes();
        if data.len() < 8 {
            return Err(SnapshotError::Truncated {
                context: "magic",
                offset: data.len() as u64,
            });
        }
        if data[..8] != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        if data.len() < 24 {
            return Err(SnapshotError::Truncated {
                context: "header",
                offset: 8,
            });
        }
        let version = u32::from_le_bytes(data[8..12].try_into().expect("4 bytes"));
        if version != 3 {
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                supported: crate::snapshot::SNAPSHOT_VERSION,
            });
        }
        let count = u32::from_le_bytes(data[12..16].try_into().expect("4 bytes")) as usize;
        let table_end = 24usize
            .checked_add(count.checked_mul(32).ok_or(SnapshotError::Corrupt {
                context: "section count overflows",
            })?)
            .ok_or(SnapshotError::Corrupt {
                context: "section table overflows",
            })?;
        if data.len() < table_end {
            return Err(SnapshotError::Truncated {
                context: "section table",
                offset: 24,
            });
        }
        let table_sum = u64::from_le_bytes(data[16..24].try_into().expect("8 bytes"));
        if checksum64(&data[24..table_end]) != table_sum {
            return Err(SnapshotError::ChecksumMismatch {
                section: "section table",
                offset: 24,
            });
        }
        // The table checksum passed, so the entries are what the
        // writer emitted — but length validation against the *actual*
        // file stays mandatory: the stat'd length is the only defense
        // between a truncated file and a faulting dereference.
        let mut table = Vec::with_capacity(count);
        let mut expected = align64(table_end);
        for i in 0..count {
            let at = 24 + 32 * i;
            let id = u32::from_le_bytes(data[at..at + 4].try_into().expect("4 bytes"));
            let reserved = u32::from_le_bytes(data[at + 4..at + 8].try_into().expect("4 bytes"));
            let offset = u64::from_le_bytes(data[at + 8..at + 16].try_into().expect("8 bytes"));
            let len = u64::from_le_bytes(data[at + 16..at + 24].try_into().expect("8 bytes"));
            let checksum = u64::from_le_bytes(data[at + 24..at + 32].try_into().expect("8 bytes"));
            if reserved != 0 {
                return Err(SnapshotError::Corrupt {
                    context: "reserved table bytes are not zero",
                });
            }
            let start = usize::try_from(offset).map_err(|_| SnapshotError::Corrupt {
                context: "section offset overflows",
            })?;
            let len = usize::try_from(len).map_err(|_| SnapshotError::Corrupt {
                context: "section length overflows",
            })?;
            // v3 packs sections deterministically: each starts exactly
            // at the padded end of its predecessor. A table that lies
            // about an offset or length (to alias sections or reach
            // past the file) fails here, typed.
            if start != expected {
                return Err(SnapshotError::Corrupt {
                    context: "section offsets are not packed and aligned",
                });
            }
            let padded = align64(len);
            let end = start.checked_add(padded).ok_or(SnapshotError::Corrupt {
                context: "section range overflows",
            })?;
            if end > data.len() {
                return Err(SnapshotError::Truncated {
                    context: section_name(id),
                    offset: start as u64,
                });
            }
            if table.iter().any(|e: &SectionEntry| e.id == id) {
                return Err(SnapshotError::Corrupt {
                    context: "duplicate section id",
                });
            }
            table.push(SectionEntry {
                id,
                start,
                len,
                padded,
                checksum,
                verified: AtomicBool::new(false),
            });
            expected = end;
        }
        if expected != data.len() {
            return Err(SnapshotError::Corrupt {
                context: "trailing bytes after the last section",
            });
        }
        let snapshot = MappedSnapshot { arena, table };
        if mode == VerifyMode::Eager {
            snapshot.verify_all()?;
        }
        Ok(snapshot)
    }

    /// Whether a section is present.
    pub fn has_section(&self, id: u32) -> bool {
        self.table.iter().any(|e| e.id == id)
    }

    /// The whole snapshot file as bytes (mapped or owned). The forest
    /// catalog hashes this against the manifest's recorded whole-file
    /// checksum so a swapped-but-internally-valid file still fails
    /// typed.
    pub fn bytes(&self) -> &[u8] {
        self.arena.bytes()
    }

    /// Whether this snapshot serves out of a live file mapping.
    pub fn is_mapped(&self) -> bool {
        self.arena.is_mapped()
    }

    fn entry(&self, id: u32) -> Result<&SectionEntry, SnapshotError> {
        self.table
            .iter()
            .find(|e| e.id == id)
            .ok_or(SnapshotError::MissingSection { section: id })
    }

    fn verify_entry(&self, e: &SectionEntry) -> Result<(), SnapshotError> {
        if e.verified.load(Ordering::Acquire) {
            return Ok(());
        }
        let extent = &self.arena.bytes()[e.start..e.start + e.padded];
        if checksum64(extent) != e.checksum {
            return Err(SnapshotError::ChecksumMismatch {
                section: section_name(e.id),
                offset: e.start as u64,
            });
        }
        e.verified.store(true, Ordering::Release);
        Ok(())
    }

    /// Cursor over a section payload **without** checksumming it —
    /// the deferred-verification path for sections served as mapped
    /// views.
    pub fn section(&self, id: u32) -> Result<SectionView<'_>, SnapshotError> {
        let e = self.entry(id)?;
        Ok(self.view(e))
    }

    /// Cursor over a section payload after verifying its checksum
    /// (once; subsequent calls are free) — the path for sections the
    /// decoder materializes.
    pub fn section_verified(&self, id: u32) -> Result<SectionView<'_>, SnapshotError> {
        let e = self.entry(id)?;
        self.verify_entry(e)?;
        Ok(self.view(e))
    }

    fn view<'a>(&'a self, e: &'a SectionEntry) -> SectionView<'a> {
        SectionView {
            arena: &self.arena,
            name: section_name(e.id),
            base: e.start,
            len: e.len,
            pos: 0,
        }
    }

    /// Verify every section checksum (the eager mode; also what the
    /// forest catalog runs in place of the manifest's whole-file
    /// checksum).
    pub fn verify_all(&self) -> Result<(), SnapshotError> {
        for e in &self.table {
            self.verify_entry(e)?;
        }
        Ok(())
    }
}

impl std::fmt::Debug for MappedSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappedSnapshot")
            .field(
                "sections",
                &self.table.iter().map(|e| e.id).collect::<Vec<_>>(),
            )
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

/// Sequential reader over one v3 section payload: little-endian
/// scalars, embedded raw payloads, and 64-byte-aligned typed arrays
/// that come back as zero-copy [`Col`] views. Every read is
/// bounds-checked against the table-declared payload length (itself
/// validated against the real file length at open), so a length-lie
/// surfaces as a typed error, never an out-of-bounds dereference.
pub struct SectionView<'a> {
    arena: &'a Arc<SnapshotArena>,
    name: &'static str,
    base: usize,
    len: usize,
    pos: usize,
}

impl<'a> SectionView<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end =
            self.pos
                .checked_add(n)
                .filter(|&e| e <= self.len)
                .ok_or(SnapshotError::Truncated {
                    context: self.name,
                    offset: (self.base + self.pos) as u64,
                })?;
        let slice = &self.arena.bytes()[self.base + self.pos..self.base + end];
        self.pos = end;
        Ok(slice)
    }

    /// Read a `u32` scalar.
    pub fn get_u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Read a `u64` scalar.
    pub fn get_u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// The whole payload (for sections that embed a v1-encoded body).
    pub fn payload(&self) -> &'a [u8] {
        &self.arena.bytes()[self.base..self.base + self.len]
    }

    /// Read `len` elements of a typed array at the next 64-byte
    /// boundary as a zero-copy column.
    pub fn take_col<T: Pod>(&mut self, len: usize) -> Result<Col<T>, SnapshotError> {
        let aligned = align64(self.pos);
        let need = len
            .checked_mul(std::mem::size_of::<T>())
            .and_then(|n| aligned.checked_add(n))
            .ok_or(SnapshotError::Corrupt { context: self.name })?;
        if need > self.len {
            return Err(SnapshotError::Truncated {
                context: self.name,
                offset: (self.base + aligned) as u64,
            });
        }
        let col = Col::mapped(self.arena, self.base + aligned, len, self.name)?;
        self.pos = need;
        Ok(col)
    }

    /// Bytes left after the cursor (capacity clamps for count fields).
    pub fn remaining(&self) -> usize {
        self.len - self.pos
    }

    /// Whether the cursor consumed the whole payload.
    pub fn at_end(&self) -> bool {
        self.pos == self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::section;

    fn sample() -> Vec<u8> {
        let mut w = SnapshotWriterV3::new();
        let mut s = w.section(section::COLUMNS);
        s.put_u64(3);
        s.put_col::<u32>(&[7, 8, 9]);
        s.put_col::<u64>(&[1 << 40, 2]);
        let mut s = w.section(section::STATS);
        s.put_u64(42);
        w.to_bytes()
    }

    #[test]
    fn round_trip_scalars_and_cols() {
        let bytes = sample();
        let snap = MappedSnapshot::from_owned_bytes(bytes, VerifyMode::Eager).unwrap();
        assert!(!snap.is_mapped());
        let mut v = snap.section_verified(section::COLUMNS).unwrap();
        assert_eq!(v.get_u64().unwrap(), 3);
        let a: Col<u32> = v.take_col(3).unwrap();
        assert_eq!(&*a, &[7, 8, 9]);
        let b: Col<u64> = v.take_col(2).unwrap();
        assert_eq!(&*b, &[1 << 40, 2]);
        assert!(v.at_end());
        let mut s = snap.section(section::STATS).unwrap();
        assert_eq!(s.get_u64().unwrap(), 42);
        assert!(!snap.has_section(section::FULLTEXT));
        assert!(matches!(
            snap.section(section::FULLTEXT),
            Err(SnapshotError::MissingSection { .. })
        ));
    }

    #[test]
    fn writer_is_deterministic_and_aligned() {
        let a = sample();
        let b = sample();
        assert_eq!(a, b);
        assert_eq!(a.len() % SECTION_ALIGN, 0);
        // Every section offset in the table is 64-byte aligned.
        let count = u32::from_le_bytes(a[12..16].try_into().unwrap()) as usize;
        for i in 0..count {
            let at = 24 + 32 * i;
            let offset = u64::from_le_bytes(a[at + 8..at + 16].try_into().unwrap());
            assert_eq!(offset % SECTION_ALIGN as u64, 0);
        }
    }

    #[test]
    fn header_and_table_corruption_is_typed() {
        let bytes = sample();
        // Bad magic.
        let mut c = bytes.clone();
        c[0] ^= 0xFF;
        assert!(matches!(
            MappedSnapshot::from_owned_bytes(c, VerifyMode::Lazy),
            Err(SnapshotError::BadMagic)
        ));
        // Wrong version.
        let mut c = bytes.clone();
        c[8] = 99;
        assert!(matches!(
            MappedSnapshot::from_owned_bytes(c, VerifyMode::Lazy),
            Err(SnapshotError::UnsupportedVersion { found: 99, .. })
        ));
        // Table bit flip fails the table checksum even in lazy mode.
        let mut c = bytes.clone();
        c[24] ^= 0x01;
        assert!(matches!(
            MappedSnapshot::from_owned_bytes(c, VerifyMode::Lazy),
            Err(SnapshotError::ChecksumMismatch {
                section: "section table",
                ..
            })
        ));
        // Payload flip: lazy open succeeds, eager open fails typed,
        // and the lazily opened snapshot fails on verified access.
        let mut c = bytes.clone();
        let last = c.len() - 1;
        c[last] ^= 0x01;
        assert!(matches!(
            MappedSnapshot::from_owned_bytes(c.clone(), VerifyMode::Eager),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
        let lazy = MappedSnapshot::from_owned_bytes(c, VerifyMode::Lazy).unwrap();
        assert!(lazy.section_verified(section::STATS).is_err());
    }

    #[test]
    fn truncation_at_every_length_is_typed_not_a_fault() {
        let bytes = sample();
        for len in 0..bytes.len() {
            let r = MappedSnapshot::from_owned_bytes(bytes[..len].to_vec(), VerifyMode::Lazy);
            assert!(r.is_err(), "prefix of {len} bytes opened");
        }
    }

    #[test]
    fn misaligned_or_lying_table_is_typed() {
        let bytes = sample();
        let count = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
        let table_end = 24 + 32 * count;
        // Rewrite the first section's offset to a misaligned value and
        // repair the table checksum so only the layout check can catch
        // the lie.
        let mut c = bytes.clone();
        let bad = (align64(table_end) + 8) as u64;
        c[24 + 8..24 + 16].copy_from_slice(&bad.to_le_bytes());
        let sum = checksum64(&c[24..table_end]);
        c[16..24].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            MappedSnapshot::from_owned_bytes(c, VerifyMode::Lazy),
            Err(SnapshotError::Corrupt { .. })
        ));
        // Inflate a section length past the file end (with a repaired
        // table checksum): the stat-vs-table validation must fail
        // typed before any payload pointer is formed.
        let mut c = bytes.clone();
        let huge = (bytes.len() as u64) * 4;
        c[24 + 16..24 + 24].copy_from_slice(&huge.to_le_bytes());
        let sum = checksum64(&c[24..table_end]);
        c[16..24].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            MappedSnapshot::from_owned_bytes(c, VerifyMode::Lazy),
            Err(SnapshotError::Truncated { .. })
        ));
    }

    #[cfg(unix)]
    #[test]
    fn file_mapping_round_trips_and_reports_mapped() {
        let dir = std::env::temp_dir().join("ncq-mmap-unit-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.ncq");
        std::fs::write(&path, sample()).unwrap();
        let file = std::fs::File::open(&path).unwrap();
        let len = file.metadata().unwrap().len() as usize;
        let arena = SnapshotArena::map_file(&file, len).unwrap();
        assert!(arena.is_mapped());
        assert_eq!(arena.bytes(), sample().as_slice());
        drop(file); // the mapping outlives the descriptor
        let snap = MappedSnapshot::from_arena(Arc::new(arena), VerifyMode::Eager).unwrap();
        assert!(snap.is_mapped());
        let mut v = snap.section_verified(section::COLUMNS).unwrap();
        assert_eq!(v.get_u64().unwrap(), 3);
        let col: Col<u32> = v.take_col(3).unwrap();
        assert!(col.is_mapped());
        drop(snap); // the Col's arena Arc keeps the mapping alive
        assert_eq!(&*col, &[7, 8, 9]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn col_from_vec_and_clone_behave_like_slices() {
        let col: Col<u32> = vec![1, 2, 3].into();
        assert_eq!(&*col, &[1, 2, 3]);
        assert!(!col.is_mapped());
        let copy = col.clone();
        assert_eq!(copy, col);
        let empty: Col<u64> = Col::default();
        assert!(empty.is_empty());
        assert_eq!(format!("{col:?}"), "[1, 2, 3]");
    }
}
