//! Distributed-serving stress: a coordinator must give **byte-identical
//! answers** whether it evaluates in-process or through remote replica
//! engines — including while replicas refuse connections, corrupt
//! frames, stall, disconnect mid-response, or die outright — and must
//! degrade to **typed** partial answers (never panics, never hangs past
//! its timeout budget) when every replica of a corpus is gone.
//!
//! The fault schedule is a seeded PRNG ([`ncq_server::ChaosSchedule`]),
//! so every run of this suite injects exactly the same faults in the
//! same order: a failure here replays deterministically.

use ncq_core::remote::{
    encode_request, read_frame, write_frame, EngineRequest, EngineResponse, RemoteBackend,
    RemoteConfig, DEFAULT_FRAME_CAP,
};
use ncq_core::{Catalog, Database, ForestBackend, MeetBackend, MeetOptions};
use ncq_datagen::{DblpConfig, DblpCorpus};
use ncq_server::{
    ChaosProxy, ChaosSchedule, EngineConfig, Fault, RemoteEngine, Request, Response, Server,
    ServerConfig, ALL_CORPORA,
};
use ncq_store::manifest::{Manifest, ManifestEntry};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

const FIG: &str = r#"<bib><article key="BB99"><author>Ben Bit</author>
    <year>1999</year></article><article key="BC00"><author>Bob Byte</author>
    <year>2000</year></article></bib>"#;

fn dblp_db() -> Arc<Database> {
    let corpus = DblpCorpus::generate(&DblpConfig {
        papers_per_edition: 4,
        journal_articles_per_year: 2,
        ..DblpConfig::default()
    });
    Arc::new(Database::from_document(&corpus.document))
}

/// Term pairs harvested from the corpus's own strings, so every query
/// has real hits to meet.
fn term_pairs(db: &Database, want: usize) -> Vec<(String, String)> {
    let store = db.store();
    let mut terms: Vec<String> = Vec::new();
    'outer: for p in store.string_paths() {
        for (_, text) in store.strings_of(p) {
            if let Some(word) = text.split_whitespace().next() {
                let word: String = word.chars().filter(|c| c.is_alphanumeric()).collect();
                if word.len() >= 2 && !terms.contains(&word) {
                    terms.push(word);
                    if terms.len() > want {
                        break 'outer;
                    }
                }
            }
        }
    }
    assert!(terms.len() >= 2, "corpus must yield terms");
    (0..terms.len() - 1)
        .map(|i| (terms[i].clone(), terms[i + 1].clone()))
        .collect()
}

fn engine(db: &Arc<Database>) -> RemoteEngine {
    RemoteEngine::bind(
        "127.0.0.1:0",
        Arc::clone(db) as Arc<dyn MeetBackend>,
        EngineConfig::default(),
    )
    .unwrap()
}

/// Stress-suite router tuning: tight timeouts, fast probes. The retry
/// budget (2 rounds) bounds the worst case asserted by the
/// all-replicas-down test.
fn fast_config() -> RemoteConfig {
    RemoteConfig {
        connect_timeout: Duration::from_millis(300),
        read_timeout: Duration::from_millis(500),
        write_timeout: Duration::from_millis(500),
        retry_rounds: 2,
        backoff_base: Duration::from_millis(2),
        backoff_max: Duration::from_millis(20),
        down_probe_after: Duration::from_millis(20),
        ..RemoteConfig::default()
    }
}

/// An address nothing listens on (bind an OS port, then free it).
fn dead_endpoint() -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    listener.local_addr().unwrap()
}

#[test]
fn remote_replicas_answer_byte_identically() {
    let db = dblp_db();
    let a = engine(&db);
    let b = engine(&db);
    let remote = RemoteBackend::new(
        (*db).clone(),
        &[a.local_addr().to_string(), b.local_addr().to_string()],
        fast_config(),
    )
    .unwrap();
    let opts = MeetOptions::default();
    for (t1, t2) in term_pairs(&db, 12) {
        let over_wire = remote
            .try_meet_terms_answers(&[t1.as_str(), t2.as_str()], &opts)
            .unwrap();
        let local = db.meet_terms(&[t1.as_str(), t2.as_str()]).unwrap();
        assert_eq!(
            over_wire.to_detailed_xml(),
            local.to_detailed_xml(),
            "meet({t1}, {t2}) diverged over the wire"
        );
    }
    a.shutdown();
    b.shutdown();
}

#[test]
fn chaos_replica_with_one_healthy_peer_stays_byte_identical() {
    let db = dblp_db();
    let sick = engine(&db);
    let healthy = engine(&db);
    // Every fault mode except Stall (covered separately — each stall
    // costs a full read timeout) on a seeded schedule: the exact fault
    // sequence replays on every run.
    let proxy = ChaosProxy::bind(
        sick.local_addr(),
        ChaosSchedule::seeded(
            0x0063_6861_6f73,
            vec![
                Fault::Refuse,
                Fault::Disconnect { after_bytes: 7 },
                Fault::Disconnect { after_bytes: 40 },
                Fault::CorruptFrame,
                Fault::SlowDrip,
                Fault::None,
            ],
        ),
    )
    .unwrap();
    let remote = RemoteBackend::new(
        (*db).clone(),
        &[
            proxy.local_addr().to_string(),
            healthy.local_addr().to_string(),
        ],
        fast_config(),
    )
    .unwrap();
    let opts = MeetOptions::default();
    for (t1, t2) in term_pairs(&db, 16) {
        let over_wire = remote
            .try_meet_terms_answers(&[t1.as_str(), t2.as_str()], &opts)
            .unwrap();
        let local = db.meet_terms(&[t1.as_str(), t2.as_str()]).unwrap();
        assert_eq!(
            over_wire.to_detailed_xml(),
            local.to_detailed_xml(),
            "meet({t1}, {t2}) diverged under fault injection"
        );
    }
    assert!(proxy.faults_injected() > 0, "the schedule injected faults");
    let stats = remote.robustness_stats();
    assert!(
        stats.failovers > 0,
        "faults forced failovers: {stats:?} ({} faults)",
        proxy.faults_injected()
    );
    proxy.shutdown();
    sick.shutdown();
    healthy.shutdown();
}

#[test]
fn stalled_replica_times_out_and_fails_over() {
    let db = Arc::new(Database::from_xml_str(FIG).unwrap());
    let sick = engine(&db);
    let healthy = engine(&db);
    let proxy = ChaosProxy::bind(
        sick.local_addr(),
        ChaosSchedule::always(Fault::Stall(Duration::from_millis(1500))),
    )
    .unwrap();
    let remote = RemoteBackend::new(
        Database::from_xml_str(FIG).unwrap(),
        &[
            proxy.local_addr().to_string(),
            healthy.local_addr().to_string(),
        ],
        fast_config(),
    )
    .unwrap();
    let started = Instant::now();
    let opts = MeetOptions::default();
    let answers = remote
        .try_meet_terms_answers(&["Bit", "1999"], &opts)
        .unwrap();
    assert_eq!(
        answers.to_detailed_xml(),
        db.meet_terms(&["Bit", "1999"]).unwrap().to_detailed_xml()
    );
    // Each stalled exchange costs at most one read timeout before the
    // failover; three exchanges (two searches + one meet) stay well
    // under the budget.
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "stall handling blew the timeout budget: {:?}",
        started.elapsed()
    );
    let stats = remote.robustness_stats();
    assert!(stats.timeouts > 0, "stalls counted as timeouts: {stats:?}");
    proxy.shutdown();
    sick.shutdown();
    healthy.shutdown();
}

#[test]
fn killing_a_replica_mid_batch_keeps_answers_byte_identical() {
    let db = dblp_db();
    let doomed = engine(&db);
    let survivor = engine(&db);
    let remote = RemoteBackend::new(
        (*db).clone(),
        &[
            doomed.local_addr().to_string(),
            survivor.local_addr().to_string(),
        ],
        fast_config(),
    )
    .unwrap();
    let opts = MeetOptions::default();
    let pairs = term_pairs(&db, 16);
    let mut doomed = Some(doomed);
    for (i, (t1, t2)) in pairs.iter().enumerate() {
        // Kill the first replica with the batch half-done: in-flight
        // pooled connections die mid-stream, later queries must route
        // around the corpse without a wrong or lost answer.
        if i == pairs.len() / 2 {
            doomed.take().unwrap().shutdown();
        }
        let over_wire = remote
            .try_meet_terms_answers(&[t1.as_str(), t2.as_str()], &opts)
            .unwrap();
        let local = db.meet_terms(&[t1.as_str(), t2.as_str()]).unwrap();
        assert_eq!(
            over_wire.to_detailed_xml(),
            local.to_detailed_xml(),
            "meet({t1}, {t2}) diverged after the replica died"
        );
    }
    let stats = remote.robustness_stats();
    assert!(
        stats.failovers > 0,
        "the dead replica forced failovers: {stats:?}"
    );
    survivor.shutdown();
}

#[test]
fn all_replicas_down_is_typed_and_bounded() {
    let db = Arc::new(Database::from_xml_str(FIG).unwrap());
    let remote = RemoteBackend::new(
        Database::from_xml_str(FIG).unwrap(),
        &[dead_endpoint().to_string(), dead_endpoint().to_string()],
        fast_config(),
    )
    .unwrap();
    let started = Instant::now();
    let err = remote.try_search("Bit").unwrap_err();
    let elapsed = started.elapsed();
    // Typed, never a panic or an empty hit set masquerading as an
    // answer.
    assert!(
        err.to_string().contains("unavailable"),
        "typed unavailability: {err}"
    );
    // Bounded: (1 + retry_rounds) rounds × 2 replicas × connect
    // timeout, plus backoff — the budget below has ~4× slack.
    assert!(
        elapsed < Duration::from_secs(10),
        "down-replica handling must not hang: {elapsed:?}"
    );
    drop(db);
}

#[test]
fn forest_with_a_down_corpus_degrades_to_typed_partial_answers() {
    let fig = Arc::new(Database::from_xml_str(FIG).unwrap());
    let remote_only = RemoteBackend::new(
        Database::from_xml_str(FIG).unwrap(),
        &[dead_endpoint().to_string()],
        fast_config(),
    )
    .unwrap();
    let mut catalog = Catalog::new();
    catalog
        .add("local", Arc::clone(&fig) as Arc<dyn MeetBackend>)
        .unwrap();
    catalog
        .add("remote", Arc::new(remote_only) as Arc<dyn MeetBackend>)
        .unwrap();
    let forest = ForestBackend::new(catalog).unwrap();

    // Direct forest fan-out: the healthy corpus answers, the dead one
    // degrades to a typed partial marker.
    let opts = MeetOptions::default();
    let answers = forest.meet_terms_forest(&["Bit", "1999"], &opts);
    assert!(answers.is_partial(), "dead corpus must mark the answer");
    assert!(
        !answers.results.is_empty(),
        "healthy corpus still answers: {}",
        answers.to_detailed_xml()
    );
    let xml = answers.to_detailed_xml();
    assert!(
        xml.contains("<partial corpus=\"remote\""),
        "typed partial rides the answer markup: {xml}"
    );

    // Through the server: USE * fan-out answers partially and the
    // robustness counters expose it.
    let server = Server::start_backend(
        Arc::new(forest),
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    );
    let client = server.client();
    let response = client
        .request(Request::MeetTerms {
            terms: vec!["Bit".into(), "1999".into()],
            within: None,
            limit: None,
            corpus: Some(ALL_CORPORA.into()),
        })
        .unwrap();
    let Response::Answers(a) = response else {
        panic!("expected answers, got {response:?}");
    };
    assert!(a.is_partial());
    assert!(!a.results.is_empty());
    let stats = server.stats();
    assert!(stats.partial_answers >= 1, "{stats:?}");
    assert!(
        stats.replicas_down >= 1 || stats.timeouts > 0 || stats.retries > 0,
        "router counters surface the dead replica: {stats:?}"
    );
    server.shutdown();
}

#[test]
fn manifest_endpoint_entries_serve_through_remote_replicas() {
    let dir = std::env::temp_dir().join("ncq-distributed-manifest-test");
    std::fs::create_dir_all(&dir).unwrap();
    let db = Arc::new(Database::from_xml_str(FIG).unwrap());
    let snap: PathBuf = dir.join("fig.ncq");
    db.save_snapshot(&snap).unwrap();

    let replica = engine(&db);
    let mut manifest = Manifest::new();
    manifest
        .push(
            ManifestEntry::describe("fig", &snap, 1)
                .unwrap()
                .with_endpoints([replica.local_addr().to_string()])
                .unwrap(),
        )
        .unwrap();
    let mpath = dir.join("forest.ncqm");
    manifest.save(&mpath).unwrap();

    let catalog = ncq_shard::open_catalog_remote(&mpath, fast_config()).unwrap();
    let corpus = catalog.get("fig").unwrap();
    let opts = MeetOptions::default();
    let via_manifest = corpus.meet_terms_answers(&["Bit", "1999"], &opts);
    let local = db.meet_terms(&["Bit", "1999"]).unwrap();
    assert_eq!(via_manifest.to_detailed_xml(), local.to_detailed_xml());

    replica.shutdown();
    for p in [&snap, &mpath] {
        std::fs::remove_file(p).ok();
    }
}

// ----- wire-level malformed input (the engine must answer typed
// errors or close — never panic, never hang) -----

#[test]
fn engine_survives_truncation_at_every_frame_prefix() {
    let db = Arc::new(Database::from_xml_str(FIG).unwrap());
    let eng = engine(&db);
    let mut framed = Vec::new();
    write_frame(
        &mut framed,
        &encode_request(&EngineRequest::Ping),
        DEFAULT_FRAME_CAP,
    )
    .unwrap();
    for cut in 0..framed.len() {
        let mut stream = TcpStream::connect(eng.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        stream.write_all(&framed[..cut]).unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        // The engine must close without answering (a truncated frame
        // has no recoverable boundary) — and without hanging.
        let mut rest = Vec::new();
        stream.read_to_end(&mut rest).unwrap();
        assert!(
            rest.is_empty(),
            "truncation at byte {cut} must not produce a response"
        );
    }
    // The engine still serves clean sessions afterwards.
    let mut stream = TcpStream::connect(eng.local_addr()).unwrap();
    stream.write_all(&framed).unwrap();
    let reply = read_frame(&mut stream, DEFAULT_FRAME_CAP).unwrap();
    assert_eq!(
        ncq_core::remote::decode_response(&reply).unwrap(),
        EngineResponse::Pong
    );
    eng.shutdown();
}

#[test]
fn engine_refuses_oversized_lengths_and_garbage_mid_stream() {
    let db = Arc::new(Database::from_xml_str(FIG).unwrap());
    let eng = engine(&db);

    // A length field past the cap: refused before any allocation, the
    // connection closes with no response.
    let mut stream = TcpStream::connect(eng.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut huge = Vec::new();
    huge.extend_from_slice(&(DEFAULT_FRAME_CAP + 1).to_le_bytes());
    huge.extend_from_slice(&0u64.to_le_bytes());
    stream.write_all(&huge).unwrap();
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "oversized length must not be answered");

    // Garbage after a valid frame: the valid request is answered, then
    // the stream desyncs and closes — the garbage never panics the
    // engine.
    let mut stream = TcpStream::connect(eng.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut framed = Vec::new();
    write_frame(
        &mut framed,
        &encode_request(&EngineRequest::Ping),
        DEFAULT_FRAME_CAP,
    )
    .unwrap();
    stream.write_all(&framed).unwrap();
    let reply = read_frame(&mut stream, DEFAULT_FRAME_CAP).unwrap();
    assert_eq!(
        ncq_core::remote::decode_response(&reply).unwrap(),
        EngineResponse::Pong
    );
    let garbage: Vec<u8> = (0..64u8).map(|i| i.wrapping_mul(37) ^ 0x5A).collect();
    stream.write_all(&garbage).unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "garbage must close, not answer");

    // Still alive for the next clean session.
    let mut stream = TcpStream::connect(eng.local_addr()).unwrap();
    stream.write_all(&framed).unwrap();
    let reply = read_frame(&mut stream, DEFAULT_FRAME_CAP).unwrap();
    assert_eq!(
        ncq_core::remote::decode_response(&reply).unwrap(),
        EngineResponse::Pong
    );
    eng.shutdown();
}

/// End-to-end trace stitching under fault injection: the coordinator's
/// trace id rides the wire envelope, the replica's engine seals a span
/// tree under the *same* id, and a refusing replica shows up in the
/// coordinator's trace as a failed `remote_attempt` span followed by a
/// `failover` event and a successful attempt on the healthy peer.
#[test]
fn trace_ids_propagate_over_the_wire_and_record_failover() {
    let db = Arc::new(Database::from_xml_str(FIG).unwrap());
    let sick = engine(&db);
    let healthy = engine(&db);
    let proxy = ChaosProxy::bind(sick.local_addr(), ChaosSchedule::always(Fault::Refuse)).unwrap();
    let remote = RemoteBackend::new(
        Database::from_xml_str(FIG).unwrap(),
        &[
            proxy.local_addr().to_string(),
            healthy.local_addr().to_string(),
        ],
        fast_config(),
    )
    .unwrap();

    let id = ncq_obs::obs().next_trace_id();
    ncq_obs::obs().begin_trace(id);
    let answers = remote
        .try_meet_terms_answers(&["Bit", "1999"], &MeetOptions::default())
        .unwrap();
    let sealed = ncq_obs::obs()
        .finish_trace()
        .expect("coordinator trace was active");
    assert!(answers.to_detailed_xml().contains("tag=\"article\""));
    assert_eq!(sealed.id, id);

    // Replicas sweep in order, so the refusing proxy is attempted
    // before the healthy peer: the trace records the failed attempt,
    // the failover, and the attempt that answered.
    let attempts = sealed.spans_named("remote_attempt");
    assert!(
        attempts.len() >= 2,
        "expected failed + failover attempts: {:#?}",
        sealed.spans
    );
    let outcomes: Vec<&str> = attempts
        .iter()
        .flat_map(|s| s.attrs.iter())
        .filter(|(k, _)| *k == "outcome")
        .map(|(_, v)| v.as_str())
        .collect();
    assert!(
        outcomes.iter().any(|o| o.starts_with("error")),
        "{outcomes:?}"
    );
    assert!(outcomes.contains(&"ok"), "{outcomes:?}");
    assert!(
        !sealed.spans_named("failover").is_empty(),
        "failover event missing: {:#?}",
        sealed.spans
    );

    // The replica engines run in-process here, so their span trees land
    // in the same global ring: every engine-side evaluation sealed a
    // trace under the coordinator's id — the cross-process stitch.
    let stitched = ncq_obs::obs()
        .recent_traces(256)
        .into_iter()
        .filter(|t| t.id == id && !t.spans_named("engine_eval").is_empty())
        .count();
    assert!(stitched >= 1, "no engine-side trace under id {id}");

    proxy.shutdown();
    sick.shutdown();
    healthy.shutdown();
}
