//! Semantic result cache coherence: generation-tagged entries must
//! never serve an answer from a corpus generation that is no longer
//! (and was not, at batch start) live.
//!
//! The deterministic tests pin the invalidation unit — a
//! `SNAPSHOT LOAD … INTO` swap drops exactly the swapped corpus's
//! entries; a full `SNAPSHOT LOAD` drops everything. The stress test is
//! the acceptance criterion: threads hammer one corpus through the
//! cache while that same corpus hot-swaps between two distinguishable
//! generations, and every single response must be byte-identical to one
//! of the two generations' reference answers — a torn or stale-beyond-
//! swap answer fails the run. The STATS counters must reconcile:
//! every cacheable query is exactly one semantic hit or miss.

use ncq_core::{Catalog, Database, ForestBackend, MeetBackend};
use ncq_server::{Request, Response, Server, ServerConfig};
use std::path::{Path, PathBuf};
use std::sync::Arc;

const BIB_V1: &str = r#"<bib><article key="BB99"><author>Ben Bit</author>
    <year>1999</year></article></bib>"#;
const BIB_V2: &str = r#"<bib><article><author>Ben Bit</author><year>1999</year></article>
    <article><author>New Bit</author><year>1999</year></article></bib>"#;
const SHOP: &str = r#"<shop><item><label>Bit driver</label>
    <price>1999</price></item></shop>"#;

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(name);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A bib+shop forest server with both bib generations saved as
/// snapshot files, ready for `SNAPSHOT LOAD … INTO bib` swaps.
fn forest_server(dir: &Path, workers: usize) -> Server {
    let bib = Database::from_xml_str(BIB_V1).unwrap();
    let shop = Database::from_xml_str(SHOP).unwrap();
    bib.save_snapshot(dir.join("bib-v1.ncq")).unwrap();
    Database::from_xml_str(BIB_V2)
        .unwrap()
        .save_snapshot(dir.join("bib-v2.ncq"))
        .unwrap();
    shop.save_snapshot(dir.join("shop.ncq")).unwrap();
    let mut catalog = Catalog::new();
    catalog
        .add("bib", Arc::new(bib) as Arc<dyn MeetBackend>)
        .unwrap();
    catalog
        .add("shop", Arc::new(shop) as Arc<dyn MeetBackend>)
        .unwrap();
    let forest = ForestBackend::new(catalog).unwrap();
    Server::start_backend(
        Arc::new(forest),
        ServerConfig {
            workers,
            snapshot_dir: Some(dir.to_path_buf()),
            ..ServerConfig::default()
        },
    )
}

fn meet_bib(client: &ncq_server::Client) -> String {
    match client
        .request(Request::meet_terms(["Bit", "1999"]).with_corpus(Some("bib".into())))
        .unwrap()
    {
        Response::Answers(a) => a.to_detailed_xml(),
        other => panic!("unexpected {other:?}"),
    }
}

fn reference(xml: &str) -> String {
    Database::from_xml_str(xml)
        .unwrap()
        .meet_terms(&["Bit", "1999"])
        .unwrap()
        .to_detailed_xml()
}

/// Swapping one corpus invalidates exactly that corpus's cache entries:
/// a swap of `shop` leaves warmed `bib` entries serving hits; a swap of
/// `bib` forces the next `bib` query to miss — and to answer from the
/// *new* generation, never the cached old one.
#[test]
fn corpus_swap_invalidates_only_that_corpus() {
    let dir = scratch_dir("ncq-sem-cache-unit");
    let server = forest_server(&dir, 1);
    let client = server.client();

    let v1 = reference(BIB_V1);
    let v2 = reference(BIB_V2);
    assert_ne!(v1, v2, "generations must be distinguishable");

    // Warm, then hit.
    assert_eq!(meet_bib(&client), v1);
    assert_eq!(meet_bib(&client), v1);
    let s = server.stats();
    assert_eq!((s.sem_misses, s.sem_hits), (1, 1));

    // An unrelated corpus swap must not invalidate bib's entry.
    match client
        .request(Request::snapshot_load_into("shop.ncq", "shop"))
        .unwrap()
    {
        Response::Info(msg) => assert!(msg.contains("reloaded"), "{msg}"),
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(meet_bib(&client), v1);
    let s = server.stats();
    assert_eq!(
        (s.sem_misses, s.sem_hits),
        (1, 2),
        "a shop swap evicted bib's entry"
    );

    // Swapping bib itself drops its entry: the next query misses and
    // serves the new generation byte-for-byte.
    match client
        .request(Request::snapshot_load_into("bib-v2.ncq", "bib"))
        .unwrap()
    {
        Response::Info(msg) => assert!(msg.contains("reloaded"), "{msg}"),
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(meet_bib(&client), v2, "stale generation served after swap");
    assert_eq!(meet_bib(&client), v2);
    let s = server.stats();
    assert_eq!((s.sem_misses, s.sem_hits), (2, 3));
    assert_eq!(
        s.sem_hits + s.sem_misses,
        5,
        "every cacheable query is exactly one hit or miss"
    );
    server.shutdown();
}

/// A full-database `SNAPSHOT LOAD` (no `INTO`) starts a new full
/// generation: every cached entry — whatever its corpus — is stale.
#[test]
fn full_reload_invalidates_everything() {
    let dir = scratch_dir("ncq-sem-cache-full-reload");
    let db = Database::from_xml_str(BIB_V1).unwrap();
    db.save_snapshot(dir.join("self.ncq")).unwrap();
    let server = Server::start(
        Arc::new(db),
        ServerConfig {
            workers: 1,
            snapshot_dir: Some(dir.clone()),
            ..ServerConfig::default()
        },
    );
    let client = server.client();
    let v1 = reference(BIB_V1);

    let meet = |client: &ncq_server::Client| match client
        .request(Request::meet_terms(["Bit", "1999"]))
        .unwrap()
    {
        Response::Answers(a) => a.to_detailed_xml(),
        other => panic!("unexpected {other:?}"),
    };
    assert_eq!(meet(&client), v1);
    assert_eq!(meet(&client), v1);
    match client.request(Request::snapshot_load("self.ncq")).unwrap() {
        Response::Info(msg) => assert!(msg.contains("loaded"), "{msg}"),
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(meet(&client), v1, "reloaded engine answers identically");
    let s = server.shutdown();
    assert_eq!(
        (s.sem_misses, s.sem_hits),
        (2, 1),
        "the full reload must invalidate the warmed entry"
    );
}

/// The acceptance stress: threads hammer corpus `bib` through the
/// semantic cache while `bib` itself hot-swaps back and forth between
/// two distinguishable generations. Every response must be
/// byte-identical to the v1 or v2 reference answer — cache hits
/// included, across every interleaving of lookup, insert and epoch
/// bump — and the semantic counters must reconcile exactly with the
/// number of cacheable queries served.
#[test]
fn hot_swap_stress_serves_only_live_generations() {
    let dir = scratch_dir("ncq-sem-cache-stress");
    let server = forest_server(&dir, 4);
    let v1 = reference(BIB_V1);
    let v2 = reference(BIB_V2);

    const QUERIES_PER_THREAD: usize = 150;
    const THREADS: usize = 4;
    const SWAPS: usize = 50;
    let mut handles = Vec::new();
    for _ in 0..THREADS {
        let client = server.client();
        let (v1, v2) = (v1.clone(), v2.clone());
        handles.push(std::thread::spawn(move || {
            for i in 0..QUERIES_PER_THREAD {
                let got = meet_bib(&client);
                assert!(
                    got == v1 || got == v2,
                    "query {i}: answer matches neither generation:\n{got}"
                );
            }
        }));
    }
    let swapper = server.client();
    for round in 0..SWAPS {
        let file = if round % 2 == 0 {
            "bib-v2.ncq"
        } else {
            "bib-v1.ncq"
        };
        match swapper
            .request(Request::snapshot_load_into(file, "bib"))
            .unwrap()
        {
            Response::Info(msg) => assert!(msg.contains("reloaded"), "{msg}"),
            other => panic!("unexpected {other:?}"),
        }
    }
    for h in handles {
        h.join().unwrap();
    }

    // The final generation is v1 (SWAPS is even, so the last loaded
    // file was bib-v1.ncq) and serves byte-identically, cold or cached.
    let client = server.client();
    assert_eq!(meet_bib(&client), v1);
    assert_eq!(meet_bib(&client), v1);

    let stats = server.shutdown();
    let cacheable = QUERIES_PER_THREAD * THREADS + 2;
    assert_eq!(
        stats.sem_hits + stats.sem_misses,
        cacheable,
        "hits + misses must equal cacheable queries served"
    );
    assert!(stats.sem_hits > 0, "the stress never hit the cache");
    assert!(stats.sem_misses >= 1, "at least the first query must miss");
    assert!(stats.served >= (cacheable + SWAPS));
}
