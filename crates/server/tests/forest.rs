//! Forest serving end-to-end: manifest cold start, `USE`/`CORPORA`
//! routing over the wire, per-corpus stats, and the single-corpus
//! hot-swap — stress-tested so a reload of one corpus provably leaves
//! the other corpora's in-flight batches untouched.

use ncq_core::{Catalog, Database, ForestBackend, MeetBackend};
use ncq_server::{serve_lines, Request, Response, Server, ServerConfig};
use ncq_store::manifest::{Manifest, ManifestEntry};
use std::path::{Path, PathBuf};
use std::sync::Arc;

const BIB: &str = r#"<bib><article key="BB99"><author>Ben Bit</author>
    <year>1999</year></article></bib>"#;
const SHOP: &str = r#"<shop><item><label>Bit driver</label>
    <price>1999</price></item></shop>"#;

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(name);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A 2-corpus forest server (default corpus `bib`), snapshot dir
/// enabled, with the corpora also saved as snapshot files for reloads.
fn forest_server(dir: &Path, workers: usize) -> Server {
    let bib = Database::from_xml_str(BIB).unwrap();
    let shop = Database::from_xml_str(SHOP).unwrap();
    bib.save_snapshot(dir.join("bib.ncq")).unwrap();
    shop.save_snapshot(dir.join("shop.ncq")).unwrap();
    let mut catalog = Catalog::new();
    catalog
        .add("bib", Arc::new(bib) as Arc<dyn MeetBackend>)
        .unwrap();
    catalog
        .add("shop", Arc::new(shop) as Arc<dyn MeetBackend>)
        .unwrap();
    let forest = ForestBackend::new(catalog).unwrap();
    Server::start_backend(
        Arc::new(forest),
        ServerConfig {
            workers,
            snapshot_dir: Some(dir.to_path_buf()),
            ..ServerConfig::default()
        },
    )
}

#[test]
fn manifest_cold_start_serves_every_corpus() {
    let dir = scratch_dir("ncq-server-manifest-test");
    let bib = Database::from_xml_str(BIB).unwrap();
    let shop = Database::from_xml_str(SHOP).unwrap();
    bib.save_snapshot(dir.join("bib.ncq")).unwrap();
    shop.save_snapshot(dir.join("shop.ncq")).unwrap();
    let mut manifest = Manifest::new();
    manifest
        .push(ManifestEntry::describe("bib", dir.join("bib.ncq"), 1).unwrap())
        .unwrap();
    manifest
        .push(ManifestEntry::describe("shop", dir.join("shop.ncq"), 1).unwrap())
        .unwrap();
    let mpath = dir.join("forest.ncqm");
    manifest.save(&mpath).unwrap();

    let server = Server::open_manifest(
        &mpath,
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let client = server.client();
    let (names, default) = client.corpora().unwrap();
    assert_eq!(names, vec!["bib", "shop"]);
    assert_eq!(default.as_deref(), Some("bib"));

    // MEET/SQL/SEARCH routed per corpus answer byte-identically to the
    // direct per-corpus engines — the acceptance criterion.
    let direct_bib = bib.meet_terms(&["Bit", "1999"]).unwrap().to_detailed_xml();
    let direct_shop = shop.meet_terms(&["Bit", "1999"]).unwrap().to_detailed_xml();
    let routed = |corpus: &str| match client
        .request(Request::meet_terms(["Bit", "1999"]).with_corpus(Some(corpus.to_owned())))
        .unwrap()
    {
        Response::Answers(a) => a.to_detailed_xml(),
        other => panic!("unexpected {other:?}"),
    };
    assert_eq!(routed("bib"), direct_bib);
    assert_eq!(routed("shop"), direct_shop);
    // Default routing = the manifest default, byte-identical too.
    match client
        .request(Request::meet_terms(["Bit", "1999"]))
        .unwrap()
    {
        Response::Answers(a) => assert_eq!(a.to_detailed_xml(), direct_bib),
        other => panic!("unexpected {other:?}"),
    }
    // SEARCH routed and fanned out.
    match client
        .request(Request::search("1999").with_corpus(Some("shop".into())))
        .unwrap()
    {
        Response::Count(n) => assert_eq!(n, 1),
        other => panic!("unexpected {other:?}"),
    }
    match client
        .request(Request::search("1999").with_corpus(Some("*".into())))
        .unwrap()
    {
        Response::Count(n) => assert_eq!(n, 2, "both corpora contain 1999"),
        other => panic!("unexpected {other:?}"),
    }
    // SQL with an explicit corpus clause routes inside the evaluator.
    match client
        .sql(
            "select meet(a, b) from corpus(shop), shop/% as a, shop/% as b \
             where a contains 'Bit' and b contains '1999'",
        )
        .unwrap()
    {
        Response::Answers(a) => assert_eq!(a.tags(), vec!["item"]),
        other => panic!("unexpected {other:?}"),
    }
    // Unknown corpus routing is an in-band error.
    match client
        .request(Request::search("x").with_corpus(Some("absent".into())))
        .unwrap()
    {
        Response::Error(msg) => assert!(msg.contains("unknown corpus"), "{msg}"),
        other => panic!("unexpected {other:?}"),
    }

    // Per-corpus query counters surfaced through the stats.
    let stats = server.stats();
    let count = |name: &str| {
        stats
            .queries_by_corpus
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| *c)
            .unwrap_or(0)
    };
    assert!(count("bib") >= 2, "{:?}", stats.queries_by_corpus);
    assert!(count("shop") >= 3, "{:?}", stats.queries_by_corpus);
}

#[test]
fn forest_verbs_round_trip_over_the_wire() {
    let dir = scratch_dir("ncq-server-forest-wire-test");
    let server = forest_server(&dir, 1);
    let mut out = Vec::new();
    serve_lines(
        &server.client(),
        "CORPORA\nUSE shop\nMEET Bit 1999\nSEARCH driver\nUSE *\nMEET Bit 1999\n\
         USE absent\nUSE\nSNAPSHOT LOAD shop.ncq INTO shop\n\
         SNAPSHOT LOAD shop.ncq INTO absent\nSNAPSHOT SAVE x.ncq INTO shop\nSTATS\nQUIT\n"
            .as_bytes(),
        &mut out,
    )
    .unwrap();
    let out = String::from_utf8(out).unwrap();
    assert!(out.contains("bib (default)"), "{out}");
    assert!(out.contains("using corpus shop"), "{out}");
    // The USE'd session serves shop's answers (the item meet).
    assert!(out.contains("tag=\"item\""), "{out}");
    // The fan-out answers carry corpus tags for both corpora.
    assert!(out.contains("corpus=\"bib\""), "{out}");
    assert!(out.contains("corpus=\"shop\""), "{out}");
    // Bad USE forms are in-band errors.
    assert!(out.contains("ERR unknown corpus \"absent\""), "{out}");
    assert!(out.contains("ERR USE needs a corpus name"), "{out}");
    // Per-corpus hot swap acknowledged; bad targets typed in-band.
    assert!(out.contains("corpus \"shop\" reloaded"), "{out}");
    assert!(out.contains("ERR corpus \"absent\""), "{out}");
    assert!(
        out.contains("ERR SNAPSHOT SAVE does not take INTO"),
        "{out}"
    );
    // STATS grew per-corpus lines.
    assert!(out.contains("corpus.shop="), "{out}");
}

#[test]
fn snapshot_names_with_whitespace_or_nul_are_typed_errors() {
    let dir = scratch_dir("ncq-server-snapname-test");
    let server = forest_server(&dir, 1);
    let client = server.client();
    for bad in ["a b.ncq", "tab\there", "nul\0name", " "] {
        match client.request(Request::snapshot_load(bad)).unwrap() {
            Response::Error(msg) => assert!(
                msg.contains("whitespace or control characters") || msg.contains("bare file name"),
                "{bad:?}: {msg}"
            ),
            other => panic!("{bad:?}: unexpected {other:?}"),
        }
    }
    // An empty path has no components at all → the bare-file error.
    match client.request(Request::snapshot_save("")).unwrap() {
        Response::Error(msg) => assert!(msg.contains("bare file name"), "{msg}"),
        other => panic!("unexpected {other:?}"),
    }
}

/// Concurrent `SNAPSHOT LOAD … INTO` requests for *different* corpora
/// must both take effect: each splice clones the current catalog (not
/// the requester's batch-stale one) and retries if another swap landed
/// in between, so neither reload can silently revert the other.
#[test]
fn concurrent_reloads_of_different_corpora_both_stick() {
    let dir = scratch_dir("ncq-server-forest-race");
    // Replacement corpora with *distinguishable* content: v2 of bib
    // adds a second article, v2 of shop a second item.
    let bib_v2 = Database::from_xml_str(
        r#"<bib><article><author>Ben Bit</author><year>1999</year></article>
           <article><author>New Bit</author><year>1999</year></article></bib>"#,
    )
    .unwrap();
    let shop_v2 = Database::from_xml_str(
        r#"<shop><item><label>Bit driver</label><price>1999</price></item>
           <item><label>Bit set</label><price>1999</price></item></shop>"#,
    )
    .unwrap();
    let server = forest_server(&dir, 4);
    bib_v2.save_snapshot(dir.join("bib-v2.ncq")).unwrap();
    shop_v2.save_snapshot(dir.join("shop-v2.ncq")).unwrap();

    const ROUNDS: usize = 60;
    let mut handles = Vec::new();
    for (file, corpus) in [("bib-v2.ncq", "bib"), ("shop-v2.ncq", "shop")] {
        let client = server.client();
        handles.push(std::thread::spawn(move || {
            for _ in 0..ROUNDS {
                match client
                    .request(Request::snapshot_load_into(file, corpus))
                    .unwrap()
                {
                    Response::Info(msg) => assert!(msg.contains("reloaded"), "{msg}"),
                    other => panic!("unexpected {other:?}"),
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // Both final reloads must be live: each corpus serves its v2
    // content (two meets instead of one). With a batch-stale splice
    // base, one corpus would flakily revert to v1 here.
    let client = server.client();
    for corpus in ["bib", "shop"] {
        match client
            .request(Request::meet_terms(["Bit", "1999"]).with_corpus(Some(corpus.into())))
            .unwrap()
        {
            Response::Answers(a) => {
                assert_eq!(a.len(), 2, "{corpus}: lost a concurrent corpus reload")
            }
            other => panic!("{corpus}: unexpected {other:?}"),
        }
    }
}

/// The acceptance stress: hammer corpus `bib` from several threads
/// while corpus `shop` hot-swaps over and over. Every `bib` answer —
/// including those from batches in flight across a swap — must be
/// byte-identical to the reference, and the swap acknowledgements must
/// all succeed.
#[test]
fn single_corpus_hot_swap_leaves_other_corpora_untouched() {
    let dir = scratch_dir("ncq-server-forest-swap-stress");
    let server = forest_server(&dir, 4);
    let reference = Database::from_xml_str(BIB)
        .unwrap()
        .meet_terms(&["Bit", "1999"])
        .unwrap()
        .to_detailed_xml();

    const QUERIES_PER_THREAD: usize = 120;
    const THREADS: usize = 4;
    const SWAPS: usize = 40;
    let mut handles = Vec::new();
    for _ in 0..THREADS {
        let client = server.client();
        let reference = reference.clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..QUERIES_PER_THREAD {
                let answers = match client
                    .request(Request::meet_terms(["Bit", "1999"]).with_corpus(Some("bib".into())))
                    .unwrap()
                {
                    Response::Answers(a) => a.to_detailed_xml(),
                    other => panic!("unexpected {other:?}"),
                };
                assert_eq!(answers, reference, "bib answers drifted during a shop swap");
            }
        }));
    }
    let swapper = server.client();
    for _ in 0..SWAPS {
        match swapper
            .request(Request::snapshot_load_into("shop.ncq", "shop"))
            .unwrap()
        {
            Response::Info(msg) => assert!(msg.contains("reloaded"), "{msg}"),
            other => panic!("unexpected {other:?}"),
        }
    }
    for h in handles {
        h.join().unwrap();
    }
    // The swapped corpus still serves correctly afterwards.
    match server
        .client()
        .request(Request::meet_terms(["Bit", "1999"]).with_corpus(Some("shop".into())))
        .unwrap()
    {
        Response::Answers(a) => assert_eq!(a.tags(), vec!["item"]),
        other => panic!("unexpected {other:?}"),
    }
    let stats = server.shutdown();
    assert!(stats.served >= (QUERIES_PER_THREAD * THREADS + SWAPS));
}
