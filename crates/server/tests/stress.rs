//! Concurrency stress: many client threads firing mixed meet / search /
//! projection queries at a live server must get byte-identical answers
//! to a single-threaded `run_query` evaluation, and a saturated
//! admission queue must shed or drain — never deadlock.
//!
//! Workloads run over the two datagen corpora of the paper's evaluation
//! (the DBLP substitute and the multimedia substitute), exactly the
//! online query-at-a-time shape the XML IR literature frames for
//! loosely-structured search.

use ncq_core::Database;
use ncq_datagen::{DblpConfig, DblpCorpus, MultimediaConfig, MultimediaCorpus};
use ncq_query::{run_query_opts, QueryConfig, QueryOptions, QueryOutput};
use ncq_server::{Request, Response, Server, ServerConfig};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;
use std::thread;

const CLIENT_THREADS: usize = 8;

fn dblp_db() -> Arc<Database> {
    let corpus = DblpCorpus::generate(&DblpConfig {
        papers_per_edition: 6,
        journal_articles_per_year: 2,
        ..DblpConfig::default()
    });
    Arc::new(Database::from_document(&corpus.document))
}

fn multimedia_db() -> Arc<Database> {
    let corpus = MultimediaCorpus::generate(&MultimediaConfig {
        noise_items: 60,
        ..MultimediaConfig::default()
    });
    Arc::new(Database::from_document(&corpus.document))
}

/// Terms guaranteed to hit: whole words harvested from the corpus's own
/// string relations.
fn corpus_terms(db: &Database, want: usize) -> Vec<String> {
    let store = db.store();
    let mut terms = Vec::new();
    'outer: for p in store.string_paths() {
        for (_, text) in store.strings_of(p) {
            if let Some(word) = text.split_whitespace().next() {
                let word: String = word.chars().filter(|c| c.is_alphanumeric()).collect();
                if word.len() >= 2 && !terms.contains(&word) {
                    terms.push(word);
                    if terms.len() >= want {
                        break 'outer;
                    }
                }
            }
        }
    }
    assert!(terms.len() >= 2, "corpus must yield search terms");
    terms
}

/// The request mix one corpus serves, with single-threaded reference
/// responses computed exactly the way the server evaluates them.
fn request_mix(db: &Database, terms: &[String]) -> Vec<(Request, Response)> {
    let root_tag = db.store().label(db.store().root());
    let mut mix: Vec<Request> = Vec::new();
    for pair in terms.windows(2) {
        mix.push(Request::meet_terms([pair[0].clone(), pair[1].clone()]));
        mix.push(Request::MeetTerms {
            terms: vec![pair[0].clone(), pair[1].clone()],
            within: Some(6),
            limit: None,
            corpus: None,
        });
        mix.push(Request::search(pair[0].clone()));
        mix.push(Request::sql(format!(
            "select meet(a, b) from {root_tag}/% as a, {root_tag}/% as b \
             where a contains '{}' and b contains '{}'",
            pair[0], pair[1]
        )));
    }
    // A projection (rows, not answers) and a deliberate parse error.
    mix.push(Request::sql(format!("select t from {root_tag}/* as t")));
    mix.push(Request::sql("select broken ((".to_owned()));

    mix.into_iter()
        .map(|request| {
            let expected = reference(db, &request);
            (request, expected)
        })
        .collect()
}

/// Single-threaded reference evaluation (same options as the server's
/// defaults: Auto planner, 10k row limit).
fn reference(db: &Database, request: &Request) -> Response {
    match request {
        Request::MeetTerms { terms, within, .. } => {
            let refs: Vec<&str> = terms.iter().map(String::as_str).collect();
            let options = ncq_core::MeetOptions {
                max_distance: *within,
                ..ncq_core::MeetOptions::default()
            };
            Response::Answers(db.meet_terms_with(&refs, &options).unwrap())
        }
        Request::Sql { src, .. } => {
            let options = QueryOptions {
                config: QueryConfig { max_rows: 10_000 },
                ..QueryOptions::default()
            };
            match run_query_opts(db, src, &options) {
                Ok(QueryOutput::Answers(a)) => Response::Answers(a),
                Ok(QueryOutput::Rows(r)) => Response::Rows(r),
                Err(e) => Response::Error(e.to_string()),
            }
        }
        Request::Search { term, .. } => Response::Count(db.search(term).len()),
        // The stress mix is query-only; snapshot and catalog control
        // requests are covered by the unit and protocol suites.
        Request::SnapshotSave { .. } | Request::SnapshotLoad { .. } | Request::Corpora => {
            unreachable!("control requests are not part of the stress mix")
        }
    }
}

fn stress_one_corpus(db: Arc<Database>, label: &str) {
    let terms = corpus_terms(&db, 6);
    let mix = Arc::new(request_mix(&db, &terms));
    let server = Server::start(
        Arc::clone(&db),
        ServerConfig {
            workers: 4,
            queue_capacity: 64,
            batch_max: 8,
            ..ServerConfig::default()
        },
    );

    let handles: Vec<_> = (0..CLIENT_THREADS)
        .map(|t| {
            let client = server.client();
            let mix = Arc::clone(&mix);
            let label = label.to_owned();
            thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xD00D + t as u64);
                for i in 0..40 {
                    let (request, expected) = &mix[rng.random_range(0..mix.len())];
                    let got = client.request(request.clone()).unwrap();
                    assert_eq!(
                        &got, expected,
                        "{label}: thread {t} iteration {i} diverged on {request:?}"
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread panicked");
    }

    let stats = server.shutdown();
    assert_eq!(
        stats.served,
        CLIENT_THREADS * 40,
        "{label}: every request answered"
    );
    assert!(stats.batches > 0);
}

#[test]
fn dblp_concurrent_answers_match_single_threaded() {
    stress_one_corpus(dblp_db(), "dblp");
}

#[test]
fn multimedia_concurrent_answers_match_single_threaded() {
    stress_one_corpus(multimedia_db(), "multimedia");
}

/// Saturation: a tiny admission queue under far more offered load than
/// capacity. Blocking clients must all drain (no deadlock), and
/// non-blocking admission must shed with `Saturated` instead of
/// stalling.
#[test]
fn saturated_admission_queue_never_deadlocks() {
    let db = dblp_db();
    let terms = corpus_terms(&db, 3);
    let server = Server::start(
        Arc::clone(&db),
        ServerConfig {
            workers: 2,
            queue_capacity: 2,
            batch_max: 2,
            ..ServerConfig::default()
        },
    );

    let handles: Vec<_> = (0..12)
        .map(|t| {
            let client = server.client();
            let term = terms[t % terms.len()].clone();
            thread::spawn(move || {
                let mut served = 0usize;
                let mut shed = 0usize;
                for i in 0..30 {
                    let request = Request::search(term.clone());
                    if i % 3 == 0 {
                        // Non-blocking admission may shed under saturation.
                        match client.try_request(request) {
                            Ok(Response::Count(_)) => served += 1,
                            Ok(other) => panic!("unexpected {other:?}"),
                            Err(ncq_server::ServerError::Saturated) => shed += 1,
                            Err(e) => panic!("unexpected error {e}"),
                        }
                    } else {
                        match client.request(request) {
                            Ok(Response::Count(_)) => served += 1,
                            other => panic!("unexpected {other:?}"),
                        }
                    }
                }
                (served, shed)
            })
        })
        .collect();

    let mut total_served = 0usize;
    for h in handles {
        let (served, shed) = h.join().expect("client thread panicked");
        assert_eq!(served + shed, 30);
        total_served += served;
    }
    let stats = server.shutdown();
    assert_eq!(stats.served, total_served);
    // Blocking requests (2/3 of the offered load) always complete.
    assert!(total_served >= 12 * 20);
}
