//! A minimal TCP front end: one `std::net::TcpListener`, one session
//! thread per connection, a hard connection cap.
//!
//! The line protocol ([`crate::protocol::serve_lines`]) is transport
//! agnostic; this module supplies the first real transport. The design
//! stays deliberately synchronous — thread-per-connection over the
//! blocking [`Client`] handle — because the admission queue already
//! provides the back-pressure story: a connection thread that blocks in
//! [`Client::request`] is exactly a queued request. What the acceptor
//! adds is the *outer* limit: at most [`NetConfig::max_connections`]
//! live sessions; a connection beyond the cap is answered with a single
//! in-band `ERR` line and closed, so remote clients observe shedding
//! the same way [`crate::ServerError::Saturated`] reports it locally.
//! (An async runtime shim remains future work — see ROADMAP.)

use crate::protocol::serve_lines;
use crate::remote::SessionRegistry;
use crate::server::Client;
use std::io::{BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering::SeqCst};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Acceptor tuning knobs.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Maximum concurrently served connections; further connections are
    /// refused with `ERR server at connection capacity`. Minimum 1.
    pub max_connections: usize,
    /// Idle read timeout per session: a connection that sends no
    /// request line for this long is told `ERR timeout …` in-band and
    /// closed, so a hung or abandoned client cannot hold a connection
    /// slot forever. `None` (the default) keeps the historical
    /// block-forever behaviour.
    pub read_timeout: Option<Duration>,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            max_connections: 64,
            read_timeout: None,
        }
    }
}

/// A running TCP acceptor: owns the accept loop thread and spawns one
/// session thread per admitted connection.
///
/// [`TcpAcceptor::shutdown`] (or drop) is a graceful drain: it stops
/// accepting, severs every live session's socket (unblocking reads),
/// and joins all session threads before returning — no session thread
/// outlives the acceptor.
pub struct TcpAcceptor {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    sessions: Arc<SessionRegistry>,
    accept_thread: Option<thread::JoinHandle<()>>,
}

impl TcpAcceptor {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an OS-assigned port) and
    /// start accepting sessions served through `client`.
    pub fn bind(
        addr: impl ToSocketAddrs,
        client: Client,
        config: NetConfig,
    ) -> std::io::Result<TcpAcceptor> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let sessions = Arc::new(SessionRegistry::default());
        let active = Arc::new(AtomicUsize::new(0));
        let cap = config.max_connections.max(1);
        let read_timeout = config.read_timeout;

        let accept_stop = Arc::clone(&stop);
        let accept_sessions = Arc::clone(&sessions);
        let accept_thread = thread::Builder::new()
            .name("ncq-acceptor".to_owned())
            .spawn(move || {
                let mut handles: Vec<thread::JoinHandle<()>> = Vec::new();
                for stream in listener.incoming() {
                    if accept_stop.load(SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    // Claim a session slot; refuse in-band when full so
                    // the remote side sees *why* it was dropped, and
                    // count the refusal into the service's shed rate.
                    if active.fetch_add(1, SeqCst) >= cap {
                        active.fetch_sub(1, SeqCst);
                        client.note_shed();
                        let mut stream = stream;
                        let _ = writeln!(stream, "ERR server at connection capacity");
                        continue; // drop closes the socket
                    }
                    let client = client.clone();
                    let slot = Arc::clone(&active);
                    let registry = Arc::clone(&accept_sessions);
                    let session =
                        thread::Builder::new()
                            .name("ncq-session".to_owned())
                            .spawn(move || {
                                let id = registry.register(&stream);
                                let _ = serve_session(&client, stream, read_timeout);
                                registry.deregister(id);
                                slot.fetch_sub(1, SeqCst);
                            });
                    match session {
                        Ok(handle) => handles.push(handle),
                        Err(_) => {
                            active.fetch_sub(1, SeqCst);
                        }
                    }
                    handles.retain(|h| !h.is_finished());
                }
                // Graceful drain: sever every live session (unblocking
                // blocked reads), then join all session threads.
                accept_sessions.shutdown_all();
                for handle in handles {
                    let _ = handle.join();
                }
            })?;

        Ok(TcpAcceptor {
            local_addr,
            stop,
            sessions,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (with the OS-assigned port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stop accepting, sever live sessions, join every thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if let Some(handle) = self.accept_thread.take() {
            self.stop.store(true, SeqCst);
            // Unblock the accept loop with a throwaway connection; the
            // accept thread then drains the session threads.
            let _ = TcpStream::connect(self.local_addr);
            self.sessions.shutdown_all();
            let _ = handle.join();
        }
    }
}

impl Drop for TcpAcceptor {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// One session: split the stream into a buffered reader and a writer
/// and hand both to the line protocol. An idle read timeout is told
/// apart from a real transport failure and answered with a typed
/// in-band `ERR timeout` line before the close, so the remote client
/// knows it was dropped for idleness rather than by a crash.
fn serve_session(
    client: &Client,
    stream: TcpStream,
    read_timeout: Option<Duration>,
) -> std::io::Result<()> {
    if read_timeout.is_some() {
        stream.set_read_timeout(read_timeout)?;
    }
    let reader = BufReader::new(stream.try_clone()?);
    let result = serve_lines(client, reader, stream.try_clone()?);
    if let Err(e) = &result {
        if matches!(e.kind(), ErrorKind::TimedOut | ErrorKind::WouldBlock) {
            let mut stream = stream;
            let _ = writeln!(stream, "ERR timeout: session idle past the read timeout");
            return Ok(());
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{Server, ServerConfig};
    use ncq_core::Database;
    use std::io::{BufRead, Read};
    use std::sync::mpsc;

    fn server() -> Server {
        let db = Arc::new(
            Database::from_xml_str(
                r#"<bib><article key="BB99"><author>Ben Bit</author>
                   <year>1999</year></article></bib>"#,
            )
            .unwrap(),
        );
        Server::start(
            db,
            ServerConfig {
                workers: 2,
                ..ServerConfig::default()
            },
        )
    }

    fn send(addr: SocketAddr, input: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(input.as_bytes()).unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn tcp_round_trip_serves_the_line_protocol() {
        let s = server();
        let acceptor = TcpAcceptor::bind("127.0.0.1:0", s.client(), NetConfig::default()).unwrap();
        let addr = acceptor.local_addr();
        let out = send(addr, "PING\nMEET Bit 1999\nSEARCH 1999\nQUIT\n");
        assert!(out.starts_with("OK 0"));
        assert!(out.contains("tag=\"article\""));
        assert!(out.contains("OK 1\n1\n"));
        // Sequential sessions reuse the acceptor.
        let out2 = send(addr, "STATS\n");
        assert!(out2.contains("served="));
        acceptor.shutdown();
        s.shutdown();
    }

    #[test]
    fn connection_cap_refuses_in_band() {
        let s = server();
        let acceptor = TcpAcceptor::bind(
            "127.0.0.1:0",
            s.client(),
            NetConfig {
                max_connections: 1,
                ..NetConfig::default()
            },
        )
        .unwrap();
        let addr = acceptor.local_addr();

        // Hold one session open (slot occupied until we drop it).
        let mut held = TcpStream::connect(addr).unwrap();
        held.write_all(b"PING\n").unwrap();
        let mut reader = BufReader::new(held.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim(), "OK 0");

        // The second connection must be refused with the capacity error.
        // Retry briefly: the refusal is written by the accept loop.
        let (tx, rx) = mpsc::channel();
        let t = thread::spawn(move || {
            let mut refused = String::new();
            let mut stream = TcpStream::connect(addr).unwrap();
            BufReader::new(&mut stream).read_line(&mut refused).unwrap();
            tx.send(refused).unwrap();
        });
        let refused = rx
            .recv_timeout(std::time::Duration::from_secs(10))
            .expect("refusal line");
        assert_eq!(refused.trim(), "ERR server at connection capacity");
        t.join().unwrap();
        // The refusal shows up in the service's shed counters, so STATS
        // covers TCP-level shedding too.
        assert_eq!(s.stats().shed, 1);
        assert!(s.stats().shed_rate() > 0.0);

        // Freeing the held slot admits new sessions again.
        held.write_all(b"QUIT\n").unwrap();
        drop(reader);
        drop(held);
        // The slot is released asynchronously; poll until admitted. A
        // refused probe may observe a reset or an already-closed socket
        // at any step (the acceptor closes with our unread PING still
        // buffered) — every I/O error just means "not yet".
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            let admitted = TcpStream::connect(addr).is_ok_and(|mut stream| {
                let mut out = String::new();
                stream.write_all(b"PING\n").is_ok()
                    && stream.shutdown(std::net::Shutdown::Write).is_ok()
                    && stream.read_to_string(&mut out).is_ok()
                    && out.starts_with("OK 0")
            });
            if admitted {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "slot never freed");
            thread::sleep(std::time::Duration::from_millis(10));
        }
        acceptor.shutdown();
        s.shutdown();
    }

    #[test]
    fn idle_sessions_get_a_typed_timeout_line() {
        let s = server();
        let acceptor = TcpAcceptor::bind(
            "127.0.0.1:0",
            s.client(),
            NetConfig {
                read_timeout: Some(std::time::Duration::from_millis(100)),
                ..NetConfig::default()
            },
        )
        .unwrap();
        let mut stream = TcpStream::connect(acceptor.local_addr()).unwrap();
        // One request proves the session works, then go idle: the
        // server must answer the timeout in-band before closing.
        stream.write_all(b"PING\n").unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap(); // until server closes
        assert!(out.starts_with("OK 0"), "{out}");
        assert!(
            out.contains("ERR timeout: session idle"),
            "typed idle-timeout line before close: {out}"
        );
        acceptor.shutdown();
        s.shutdown();
    }
}
