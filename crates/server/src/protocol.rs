//! A minimal line protocol over any `BufRead`/`Write` transport.
//!
//! One request per line, verb first (case-insensitive):
//!
//! ```text
//! MEET term term …​ [WITHIN n]     meet of full-text terms (meet^δ via WITHIN)
//! SQL select meet(a, b) from …​    the SQL-with-paths dialect
//! SEARCH term                     full-text hit count
//! SNAPSHOT SAVE name              persist the serving backend to a snapshot
//! SNAPSHOT LOAD name              cold-load a snapshot, hot-swap it in
//!                                 (both gated by ServerConfig::snapshot_dir;
//!                                 `name` is a bare file inside that dir)
//! STATS                           service counters incl. admission shed rate
//! PING                            liveness check
//! QUIT                            end the session
//! ```
//!
//! Responses are framed so multi-line XML survives a line transport:
//!
//! ```text
//! OK <n>        followed by exactly n payload lines
//! ERR <message> single line, no payload
//! ```
//!
//! Meet answers are serialized with
//! [`AnswerSet::to_detailed_xml`](ncq_core::AnswerSet::to_detailed_xml)
//! (tags, paths, distances and witnesses — the same fixture format the
//! golden suite pins); projections use the paper's `<answer>` row
//! markup. The function is transport-agnostic: tests drive it over
//! in-memory buffers, examples over OS pipes, and a TCP acceptor only
//! needs to hand each connection's stream pair to [`serve_lines`].

use crate::server::{Client, Request, Response};
use std::io::{BufRead, Write};

/// Serve one session: read commands from `input` until EOF or `QUIT`,
/// writing framed responses to `output`. Query errors are reported
/// in-band (`ERR …`); only transport failures surface as `io::Error`.
pub fn serve_lines<R: BufRead, W: Write>(
    client: &Client,
    input: R,
    mut output: W,
) -> std::io::Result<()> {
    let mut payload = String::new();
    for line in input.lines() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let (verb, rest) = match trimmed.split_once(char::is_whitespace) {
            Some((v, r)) => (v, r.trim()),
            None => (trimmed, ""),
        };
        payload.clear();
        match verb.to_ascii_uppercase().as_str() {
            "QUIT" => break,
            "PING" => write_ok(&mut output, "")?,
            "STATS" => {
                payload.push_str(&format_stats(client));
                write_ok(&mut output, &payload)?;
            }
            "MEET" => match parse_meet(rest) {
                Ok(request) => respond(client, request, &mut output, &mut payload)?,
                Err(msg) => write_err(&mut output, &msg)?,
            },
            "SQL" if !rest.is_empty() => {
                respond(client, Request::sql(rest), &mut output, &mut payload)?
            }
            "SEARCH" if !rest.is_empty() => {
                respond(client, Request::search(rest), &mut output, &mut payload)?
            }
            "SQL" => write_err(&mut output, "SQL needs a query")?,
            "SEARCH" => write_err(&mut output, "SEARCH needs a term")?,
            "SNAPSHOT" => match parse_snapshot(rest) {
                Ok(request) => respond(client, request, &mut output, &mut payload)?,
                Err(msg) => write_err(&mut output, &msg)?,
            },
            other => write_err(&mut output, &format!("unknown verb {other:?}"))?,
        }
    }
    output.flush()
}

/// The `STATS` payload: one `key=value` line per counter, plus the
/// derived admission shed rate (shed / admission attempts) — the
/// back-pressure signal an operator watches to size the queue.
fn format_stats(client: &Client) -> String {
    let stats = client.stats();
    format!(
        "served={}\nbatches={}\nmax_batch={}\nterm_decodes={}\nterm_cache_hits={}\nshed={}\nshed_rate={:.4}",
        stats.served,
        stats.batches,
        stats.max_batch,
        stats.term_decodes,
        stats.term_cache_hits,
        stats.shed,
        stats.shed_rate()
    )
}

/// `MEET t1 t2 … [WITHIN n]` — terms are whitespace-separated; a
/// trailing `WITHIN <number>` becomes the distance bound.
fn parse_meet(rest: &str) -> Result<Request, String> {
    let mut terms: Vec<String> = rest.split_whitespace().map(str::to_owned).collect();
    let mut within = None;
    if terms.len() >= 2 && terms[terms.len() - 2].eq_ignore_ascii_case("within") {
        let n = terms[terms.len() - 1]
            .parse::<usize>()
            .map_err(|_| format!("WITHIN needs a number, got {:?}", terms[terms.len() - 1]))?;
        within = Some(n);
        terms.truncate(terms.len() - 2);
    }
    if terms.is_empty() {
        return Err("MEET needs at least one term".to_owned());
    }
    Ok(Request::MeetTerms { terms, within })
}

/// `SNAPSHOT SAVE <name>` / `SNAPSHOT LOAD <name>` — the name is the
/// rest of the line verbatim (snapshot files may carry spaces); the
/// server resolves it inside its configured snapshot directory and
/// refuses anything that is not a bare file name.
fn parse_snapshot(rest: &str) -> Result<Request, String> {
    let (mode, path) = match rest.split_once(char::is_whitespace) {
        Some((m, p)) if !p.trim().is_empty() => (m, p.trim()),
        _ => return Err("SNAPSHOT needs SAVE|LOAD and a path".to_owned()),
    };
    match mode.to_ascii_uppercase().as_str() {
        "SAVE" => Ok(Request::snapshot_save(path)),
        "LOAD" => Ok(Request::snapshot_load(path)),
        other => Err(format!("SNAPSHOT knows SAVE and LOAD, not {other:?}")),
    }
}

fn respond<W: Write>(
    client: &Client,
    request: Request,
    output: &mut W,
    payload: &mut String,
) -> std::io::Result<()> {
    match client.request(request) {
        Ok(Response::Answers(a)) => {
            payload.push_str(&a.to_detailed_xml());
            write_ok(output, payload)
        }
        Ok(Response::Rows(r)) => {
            payload.push_str(&r.to_answer_xml());
            write_ok(output, payload)
        }
        Ok(Response::Count(n)) => {
            payload.push_str(&n.to_string());
            write_ok(output, payload)
        }
        Ok(Response::Info(msg)) => {
            payload.push_str(&msg);
            write_ok(output, payload)
        }
        Ok(Response::Error(msg)) => write_err(output, &msg),
        Err(e) => write_err(output, &e.to_string()),
    }
}

fn write_ok<W: Write>(output: &mut W, payload: &str) -> std::io::Result<()> {
    let lines = if payload.is_empty() {
        0
    } else {
        payload.lines().count()
    };
    writeln!(output, "OK {lines}")?;
    if !payload.is_empty() {
        writeln!(output, "{payload}")?;
    }
    Ok(())
}

fn write_err<W: Write>(output: &mut W, message: &str) -> std::io::Result<()> {
    // Keep the frame parseable: an error is always exactly one line.
    let flat = message.replace('\n', " ");
    writeln!(output, "ERR {flat}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{Server, ServerConfig};
    use ncq_core::Database;
    use std::sync::Arc;

    fn session(input: &str) -> String {
        let db = Arc::new(
            Database::from_xml_str(
                r#"<bib><article key="BB99"><author>Ben Bit</author>
                   <year>1999</year></article></bib>"#,
            )
            .unwrap(),
        );
        let server = Server::start(
            db,
            ServerConfig {
                workers: 1,
                ..ServerConfig::default()
            },
        );
        let mut out = Vec::new();
        serve_lines(&server.client(), input.as_bytes(), &mut out).unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn meet_command_returns_framed_xml() {
        let out = session("MEET Bit 1999\nQUIT\n");
        let mut lines = out.lines();
        let header = lines.next().unwrap();
        let n: usize = header.strip_prefix("OK ").unwrap().parse().unwrap();
        let body: Vec<&str> = lines.collect();
        assert_eq!(body.len(), n);
        assert!(body[0].starts_with("<answer>"));
        assert!(out.contains("tag=\"article\""));
        assert!(out.contains(">1999</witness>"));
    }

    #[test]
    fn within_bounds_the_meet() {
        // article meet needs distance 3 here (Bit climbs 2, 1999 climbs 1
        // — actually author/cdata → article is 2, year/cdata → 2; bound 1
        // kills it).
        let out = session("MEET Bit 1999 WITHIN 1\n");
        assert!(out.starts_with("OK"));
        assert!(!out.contains("result"), "{out}");
    }

    #[test]
    fn sql_search_ping_and_errors() {
        let out = session(
            "PING\nSEARCH 1999\nSQL select meet(a, b) from bib/% as a, bib/% as b \
             where a contains 'Ben' and b contains 'Bit'\nSQL !!!\nNONSENSE\nMEET\n",
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "OK 0"); // PING
        assert_eq!(lines[1], "OK 1"); // SEARCH
        assert_eq!(lines[2], "1");
        assert!(out.contains("tag=\"cdata\"")); // Ben Bit meet at the cdata
        assert!(out.contains("ERR ")); // the SQL parse error
        assert!(out.contains("unknown verb"));
        assert!(out.contains("MEET needs at least one term"));
    }

    #[test]
    fn stats_are_framed_key_values() {
        let out = session("MEET Bit 1999\nSTATS\nQUIT\n");
        // Skip the MEET frame, find the STATS frame.
        let stats_at = out
            .lines()
            .position(|l| l.starts_with("served="))
            .expect("stats payload");
        let lines: Vec<&str> = out.lines().collect();
        let header = lines[stats_at - 1];
        let n: usize = header.strip_prefix("OK ").unwrap().parse().unwrap();
        assert_eq!(n, 7, "one line per counter plus the shed rate");
        assert_eq!(lines[stats_at], "served=1");
        assert!(lines[stats_at..stats_at + n]
            .iter()
            .any(|l| l.starts_with("shed=0")));
        assert!(lines[stats_at..stats_at + n]
            .iter()
            .any(|l| l.starts_with("shed_rate=0.0000")));
    }

    #[test]
    fn projection_rows_are_framed() {
        let out = session("SQL select t from bib/article as t\n");
        assert!(out.starts_with("OK "));
        assert!(out.contains("<result> article </result>"));
    }

    #[test]
    fn bad_within_is_an_error() {
        let out = session("MEET Bit WITHIN abc\n");
        assert!(out.contains("ERR WITHIN needs a number"));
    }

    #[test]
    fn snapshot_verbs_round_trip_over_the_wire() {
        let dir = std::env::temp_dir().join("ncq-protocol-snapshot-test");
        std::fs::create_dir_all(&dir).unwrap();
        let db = Arc::new(
            Database::from_xml_str(
                r#"<bib><article key="BB99"><author>Ben Bit</author>
                   <year>1999</year></article></bib>"#,
            )
            .unwrap(),
        );
        let server = Server::start(
            db,
            ServerConfig {
                workers: 1,
                snapshot_dir: Some(dir.clone()),
                ..ServerConfig::default()
            },
        );
        let mut out = Vec::new();
        serve_lines(
            &server.client(),
            "SNAPSHOT SAVE wire.ncq\nSNAPSHOT LOAD wire.ncq\nMEET Bit 1999\n\
             SNAPSHOT SAVE ../escape.ncq\nSNAPSHOT\nSNAPSHOT PRUNE x\nQUIT\n"
                .as_bytes(),
            &mut out,
        )
        .unwrap();
        let out = String::from_utf8(out).unwrap();
        assert!(out.contains("snapshot saved"), "{out}");
        assert!(out.contains("snapshot loaded"), "{out}");
        assert!(out.contains("tag=\"article\""), "{out}");
        assert!(out.contains("bare file name"), "{out}");
        assert!(out.contains("ERR SNAPSHOT needs SAVE|LOAD and a path"));
        assert!(out.contains("ERR SNAPSHOT knows SAVE and LOAD"));
        std::fs::remove_file(dir.join("wire.ncq")).ok();
    }

    #[test]
    fn snapshot_verbs_are_disabled_by_default_on_the_wire() {
        // `session()` uses the default config (no snapshot_dir): the
        // control verbs must refuse in-band, queries keep working.
        let out = session("SNAPSHOT SAVE x.ncq\nMEET Bit 1999\nQUIT\n");
        assert!(out.contains("ERR snapshot verbs are disabled"), "{out}");
        assert!(out.contains("tag=\"article\""), "{out}");
    }
}
